// Comparison: the paper's headline experiment in miniature. Labels runs
// of growing size with TCM+SKL and BFS+SKL and compares them against
// applying TCM or BFS directly to the run — showing why the skeleton
// approach wins: flat query time and logarithmic labels regardless of run
// size, where the direct approaches pay linear labels or linear queries.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"repro"
)

func main() {
	s, err := repro.SynthesizeSpec(rand.New(rand.NewSource(1)), 100, 200, 10, 4)
	if err != nil {
		log.Fatal(err)
	}
	tcmSkel, err := repro.TCM.Build(s.Graph)
	if err != nil {
		log.Fatal(err)
	}
	bfsSkel, err := repro.BFS.Build(s.Graph)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "run size\tTCM+SKL ns/q\tBFS+SKL ns/q\tTCM-direct ns/q\tBFS-direct ns/q\tSKL max bits\tTCM-direct bits")
	for _, target := range []int{200, 800, 3200, 12800} {
		r, _ := repro.GenerateRun(s, rng, target)
		n := r.NumVertices()

		lt, err := repro.LabelWithSkeleton(r, tcmSkel)
		if err != nil {
			log.Fatal(err)
		}
		lb, err := repro.LabelWithSkeleton(r, bfsSkel)
		if err != nil {
			log.Fatal(err)
		}
		closure, _ := r.Graph.TransitiveClosure()

		queries := 50_000
		tcmSklNs := measure(queries, n, rng, lt.Reachable)
		bfsSklNs := measure(queries, n, rng, lb.Reachable)
		tcmNs := measure(queries, n, rng, closure.Reachable)
		bfsNs := measure(2_000, n, rng, r.Graph.ReachableBFS)

		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			n, tcmSklNs, bfsSklNs, tcmNs, bfsNs, lt.MaxLabelBits(), n)
	}
	tw.Flush()
	fmt.Println("\nTCM-direct labels grow linearly (one bit per vertex);")
	fmt.Println("BFS-direct queries grow linearly; SKL stays logarithmic/flat.")
}

func measure(q, n int, rng *rand.Rand, f func(u, v repro.VertexID) bool) float64 {
	us := make([]repro.VertexID, 1024)
	vs := make([]repro.VertexID, 1024)
	for i := range us {
		us[i] = repro.VertexID(rng.Intn(n))
		vs[i] = repro.VertexID(rng.Intn(n))
	}
	start := time.Now()
	for i := 0; i < q; i++ {
		f(us[i&1023], vs[i&1023])
	}
	return float64(time.Since(start).Nanoseconds()) / float64(q)
}
