// Enginelog: the Taverna-style deployment the paper describes in Section
// 8.1 — "the execution plan and context can be directly extracted from
// the system log". A run's engine log is written to disk, parsed back,
// and replayed through the online labeler, labeling every module
// execution as its log record arrives; finally the labels themselves are
// persisted and re-loaded for querying without the run graph.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	s := repro.PaperSpec()
	rng := rand.New(rand.NewSource(9))
	r, plan := repro.GenerateRun(s, rng, 3000)
	fmt.Printf("run: %d module executions\n", r.NumVertices())

	// 1. The "engine" writes its execution log.
	evs := repro.EmitEvents(r, plan)
	var logFile bytes.Buffer
	if err := repro.WriteEventLog(&logFile, evs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine log: %d events, %d bytes\n", len(evs), logFile.Len())

	// 2. Parse the log and label online, one event at a time.
	parsed, err := repro.ReadEventLog(&logFile)
	if err != nil {
		log.Fatal(err)
	}
	skel, err := repro.TCM.Build(s.Graph)
	if err != nil {
		log.Fatal(err)
	}
	ol, err := repro.ReplayEvents(s, skel, parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online labeler: %d executions labeled, %d renumberings\n",
		ol.NumVertices(), ol.Renumbers())

	// 3. Independently, label the finished run offline and persist the
	// labels — the "store labels in the database" deployment.
	l, err := repro.LabelWithSkeleton(r, skel)
	if err != nil {
		log.Fatal(err)
	}
	var db bytes.Buffer
	if _, err := l.WriteTo(&db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted labels: %d bytes (%.1f bytes/vertex)\n",
		db.Len(), float64(db.Len())/float64(r.NumVertices()))

	// 4. A later session loads the stored labels (no run graph!) and
	// queries them.
	snap, err := repro.ReadLabelSnapshot(&db)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := snap.Bind(skel)
	if err != nil {
		log.Fatal(err)
	}
	agree := 0
	const samples = 20000
	for q := 0; q < samples; q++ {
		u := repro.VertexID(rng.Intn(r.NumVertices()))
		v := repro.VertexID(rng.Intn(r.NumVertices()))
		a := stored.Reachable(u, v)
		b := ol.Reachable(u, v)
		if a == b {
			agree++
		}
	}
	fmt.Printf("stored labels vs online labels: %d/%d sampled queries agree\n", agree, samples)
}
