// QBLAST: data provenance on a genomics-style pipeline. Uses the QBLAST
// stand-in specification (Table 1), executes it into a large run with
// data items on every channel, and answers the two provenance questions
// from the paper's introduction: "what does this result depend on?" and
// "which downstream data did this bad input affect?".
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	s, err := repro.StandInSpec("QBLAST", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QBLAST stand-in: %d modules, %d channels, |TG|=%d, depth %d\n",
		s.NumVertices(), s.NumEdges(), s.Hier.NumNodes(), s.Hier.MaxDepth)

	rng := rand.New(rand.NewSource(7))
	r, _ := repro.GenerateRun(s, rng, 20_000)
	ann := repro.RandomData(r, rng, 1.3, 0.4)
	fmt.Printf("run: %d module executions, %d channels, %d data items\n",
		r.NumVertices(), r.NumEdges(), len(ann.Items))

	start := time.Now()
	mod, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		log.Fatal(err)
	}
	dl, err := repro.LabelData(ann, mod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled everything in %v (max module label: %d bits)\n\n",
		time.Since(start).Round(time.Microsecond), mod.MaxLabelBits())

	// Backward provenance: pick a "final result" item (produced late in
	// the run) and count everything it depends on.
	final := latestItem(r, ann)
	deps := 0
	for i := range ann.Items {
		if repro.DataItemID(i) != final && dl.DependsOn(final, repro.DataItemID(i)) {
			deps++
		}
	}
	fmt.Printf("backward: result %s depends on %d of %d earlier items\n",
		ann.Items[final].Name, deps, len(ann.Items)-1)

	// Forward provenance: a "bad" early item — which downstream data is
	// tainted?
	bad := earliestItem(r, ann)
	start = time.Now()
	affected := dl.AffectedItems(bad)
	fmt.Printf("forward: item %s taints %d downstream items (computed in %v)\n",
		ann.Items[bad].Name, len(affected), time.Since(start).Round(time.Microsecond))

	// Module-level question: does the final result depend on the module
	// execution that produced the bad item?
	fmt.Printf("does %s depend on the module that wrote %s? %v\n",
		ann.Items[final].Name, ann.Items[bad].Name,
		dl.DataDependsOnModule(final, ann.Items[bad].Producer))
}

// latestItem returns an item produced by a vertex with maximal ID (late
// in generation order).
func latestItem(r *repro.Run, ann *repro.DataAnnotation) repro.DataItemID {
	best := repro.DataItemID(0)
	for i, it := range ann.Items {
		if it.Producer > ann.Items[best].Producer {
			best = repro.DataItemID(i)
		}
	}
	return best
}

func earliestItem(r *repro.Run, ann *repro.DataAnnotation) repro.DataItemID {
	best := repro.DataItemID(0)
	for i, it := range ann.Items {
		if it.Producer < ann.Items[best].Producer {
			best = repro.DataItemID(i)
		}
	}
	return best
}
