// Online: labels a workflow's module executions while it "runs" (the
// paper's future-work direction, Section 9). A simulated engine executes
// the paper's Figure-2 workflow, reporting loop iterations and fork
// copies as they start; provenance queries are answered on intermediate
// data long before the run finishes.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	s := repro.PaperSpec()
	skel, err := repro.TCM.Build(s.Graph)
	if err != nil {
		log.Fatal(err)
	}
	l := repro.NewOnline(s, skel)
	root := l.Root()

	// Locate the hierarchy nodes of the paper's subgraphs.
	var f1, l1, l2, f2 int
	for i, sub := range s.Subgraphs {
		node := i + 1
		switch {
		case sub.Kind.String() == "fork" && s.NameOf(sub.Source) == "a":
			f1 = node
		case sub.Kind.String() == "loop" && s.NameOf(sub.Source) == "b":
			l1 = node
		case sub.Kind.String() == "loop" && s.NameOf(sub.Source) == "e":
			l2 = node
		case sub.Kind.String() == "fork" && s.NameOf(sub.Source) == "e":
			f2 = node
		}
	}
	orig := func(name repro.ModuleName) repro.VertexID {
		v, _ := s.VertexOf(name)
		return v
	}
	exec := func(c *repro.OnlineCopy, name repro.ModuleName) repro.VertexID {
		v, err := l.AddExec(c, orig(name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executed %-2s -> vertex %d labeled immediately\n", name, v)
		return v
	}
	copyOf := func(parent *repro.OnlineCopy, hnode int) *repro.OnlineCopy {
		c, err := l.StartCopy(parent, hnode)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// The engine starts: a runs, the fork F1 spawns its first copy, the
	// loop L1 iterates once.
	a1 := exec(root, "a")
	f1c1 := copyOf(root, f1)
	l1c1 := copyOf(f1c1, l1)
	b1 := exec(l1c1, "b")
	c1 := exec(l1c1, "c")

	// Mid-run query: the workflow has NOT finished, but b1's provenance
	// is already answerable.
	fmt.Printf("\nmid-run: does c1 depend on a1? %v; on b1? %v\n\n",
		l.Reachable(a1, c1), l.Reachable(b1, c1))

	// The loop iterates again, and a second parallel fork copy starts.
	l1c2, err := l.StartLoopIterationAfter(l1c1)
	if err != nil {
		log.Fatal(err)
	}
	b2 := exec(l1c2, "b")
	exec(l1c2, "c")
	f1c2 := copyOf(root, f1)
	l1c3 := copyOf(f1c2, l1)
	b3 := exec(l1c3, "b")
	exec(l1c3, "c")

	fmt.Printf("\nacross iterations: does b2 depend on c1? %v (successive loop iterations)\n",
		l.Reachable(c1, b2))
	fmt.Printf("across fork copies: does b3 depend on b1? %v (parallel copies)\n\n",
		l.Reachable(b1, b3))

	// The lower branch with a nested fork inside a loop.
	exec(root, "d")
	l2c1 := copyOf(root, l2)
	exec(l2c1, "e")
	f2c1 := copyOf(l2c1, f2)
	fx1 := exec(f2c1, "f")
	exec(l2c1, "g")
	l2c2, err := l.StartLoopIterationAfter(l2c1)
	if err != nil {
		log.Fatal(err)
	}
	e2 := exec(l2c2, "e")
	h1 := exec(root, "h")

	fmt.Printf("\nfinal: does e2 depend on f1? %v; does h depend on everything? a1:%v f1:%v b3:%v\n",
		l.Reachable(fx1, e2), l.Reachable(a1, h1), l.Reachable(fx1, h1), l.Reachable(b3, h1))
	fmt.Printf("total executions labeled online: %d (global renumberings: %d)\n",
		l.NumVertices(), l.Renumbers())
}
