// Quickstart: build the paper's running example specification, generate a
// run, label it with the skeleton-based scheme, answer the three
// provenance queries from the paper's introduction, and finally serve the
// labeled run over HTTP the way a production deployment would — including
// the write path: a second run is ingested over the wire with
// PUT /runs/{name} and queried immediately.
//
// The serving section uses an in-memory store backend; the same code
// works over any backend the store package ships. In production you pick
// the substrate with a store URL:
//
//	provserve -store ./provstore              # one directory
//	provserve -store 'mem://./provstore'      # preloaded into RAM
//	provserve -store 'shard://diskA,diskB'    # sharded across disks
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"

	"repro"
)

func main() {
	// The Figure-2 specification: two branches between source a and sink
	// h, a fork around {b, c} with a nested loop, and a loop over
	// {e, f, g} with a nested fork around f.
	b := repro.NewSpecBuilder()
	b.Chain("a", "b", "c", "h")
	b.Chain("a", "d", "e", "f", "g", "h")
	b.Fork("a", "h", "b", "c")
	b.Loop("b", "c")
	b.Loop("e", "g", "f")
	b.Fork("e", "g", "f")
	s, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specification: %d modules, %d channels, %d forks/loops, hierarchy depth %d\n",
		s.NumVertices(), s.NumEdges(), len(s.Subgraphs), s.Hier.MaxDepth)

	// A run with roughly 2000 module executions: forks execute in
	// parallel, loops iterate, exactly as Definition 6 prescribes.
	r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(42)), 2000)
	fmt.Printf("run: %d module executions, %d data channels\n", r.NumVertices(), r.NumEdges())

	// Label the run. The specification gets transitive-closure skeleton
	// labels; the run gets three-order context positions on top.
	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labels: max %d bits, avg %.1f bits (3*log2(%d) = %.1f)\n\n",
		l.MaxLabelBits(), l.AvgLabelBits(), r.NumVertices(),
		3*log2(r.NumVertices()))

	// The introduction's three queries, replayed on the paper's exact
	// Figure 3 run so the occurrence names line up with the figure.
	fr, _ := repro.PaperRun(s)
	fl, err := repro.LabelRun(fr, repro.TCM)
	if err != nil {
		log.Fatal(err)
	}
	queries := []struct {
		from, to string
		why      string
	}{
		{"b1", "c3", "parallel fork copies"},
		{"c1", "b2", "successive loop iterations"},
		{"b1", "c1", "same copy, decided by the skeleton labels"},
	}
	for _, q := range queries {
		u, v := mustVertex(fr, q.from), mustVertex(fr, q.to)
		byContext := ""
		if fl.AnsweredByContext(u, v) {
			byContext = ", answered by context encoding alone"
		}
		fmt.Printf("does %s depend on %s? %v (%s%s)\n", q.to, q.from, fl.Reachable(u, v), q.why, byContext)
	}

	// Persist the labeled run and serve it. In production this is
	// `provserve -store <url>` over an fs or sharded store; here an
	// in-memory store backend keeps the demo self-contained and the
	// server runs in-process on an ephemeral port, answering one query
	// before exiting. Swapping backends is one line: CreateStore(dir,...)
	// for a directory, NewShardedStore(dirs,...) to span disks.
	st, err := repro.NewMemStore(s, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	if err := st.PutRun("figure3", fr, nil, repro.TCM); err != nil {
		log.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{Store: st, EnableIngest: true})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	url := fmt.Sprintf("http://%s/reachable?run=figure3&from=b1&to=c3", ln.Addr())
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	answer, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET %s\n%s", url, answer)

	// The write path: ingest the 2000-execution run over HTTP (the body
	// is the run's XML document) and query it immediately — this is how
	// a mem-backed provserve is populated remotely (`provserve -ingest`;
	// `provquery -put` is the command-line client).
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, nil, "quickstart"); err != nil {
		log.Fatal(err)
	}
	putURL := fmt.Sprintf("http://%s/runs/r2000", ln.Addr())
	req, err := http.NewRequest(http.MethodPut, putURL, &doc)
	if err != nil {
		log.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	stored, err := io.ReadAll(putResp.Body)
	putResp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPUT %s\n%s", putURL, stored)
	url = fmt.Sprintf("http://%s/reachable?run=r2000&from=0&to=%d", ln.Addr(), r.NumVertices()-1)
	resp, err = http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	answer, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET %s\n%s", url, answer)

	// The lifecycle's exit path: DELETE retires a stored run — blobs,
	// labels and cached session together — and the very next query for
	// it answers 404. In production this is how retention runs against a
	// live server: one-off with `provquery -delete <url> -run <name>`,
	// or automatically with `provserve -ingest -max-runs N`, which
	// deletes least-recently-used runs after each ingest so a long-lived
	// server holds a bounded working set.
	delURL := fmt.Sprintf("http://%s/runs/r2000", ln.Addr())
	req, err = http.NewRequest(http.MethodDelete, delURL, nil)
	if err != nil {
		log.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	gone, err := io.ReadAll(delResp.Body)
	delResp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDELETE %s\n%s", delURL, gone)
	resp, err = http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	answer, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET %s (after delete)\nstatus %d: %s", url, resp.StatusCode, answer)
}

func mustVertex(r *repro.Run, name string) repro.VertexID {
	for v := 0; v < r.NumVertices(); v++ {
		if r.NameOf(repro.VertexID(v)) == name {
			return repro.VertexID(v)
		}
	}
	log.Fatalf("vertex %s not found", name)
	return 0
}

func log2(n int) float64 {
	b := 0.0
	for x := 1; x < n; x *= 2 {
		b++
	}
	return b
}
