// Montecarlo: simulate many executions of one workflow with the built-in
// engine, label every run against a single shared skeleton labeling (the
// paper's amortization argument made concrete), and report the
// distribution of run sizes, makespans and label lengths across the
// fleet — the "once created, a workflow is executed repeatedly" scenario
// that motivates the skeleton approach.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro"
)

func main() {
	s, err := repro.StandInSpec("BioAID", 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow: BioAID stand-in (%d modules, %d forks/loops)\n",
		s.NumVertices(), len(s.Subgraphs))

	// One skeleton labeling, shared by every run (labeled once, reused).
	skelStart := time.Now()
	skel, err := repro.TCM.Build(s.Graph)
	if err != nil {
		log.Fatal(err)
	}
	skelTime := time.Since(skelStart)

	const fleet = 50
	policy := repro.DefaultEnginePolicy()
	policy.MeanForkWidth = 2.5
	policy.MeanLoopIterations = 4
	rng := rand.New(rand.NewSource(99))
	eng := repro.NewEngine(s, policy, rng)

	var sizes []int
	var makespans []time.Duration
	var labelTimes []time.Duration
	var maxBits []int
	totalQueries := 0
	for i := 0; i < fleet; i++ {
		tr, err := eng.Execute()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		l, err := repro.LabelWithPlan(tr.Run, tr.Plan, skel)
		if err != nil {
			log.Fatal(err)
		}
		labelTimes = append(labelTimes, time.Since(start))
		sizes = append(sizes, tr.Run.NumVertices())
		makespans = append(makespans, tr.Makespan)
		maxBits = append(maxBits, l.MaxLabelBits())

		// A few provenance queries per run, as a fleet monitor would issue.
		for q := 0; q < 1000; q++ {
			u := repro.VertexID(rng.Intn(tr.Run.NumVertices()))
			v := repro.VertexID(rng.Intn(tr.Run.NumVertices()))
			l.Reachable(u, v)
			totalQueries++
		}
	}

	sort.Ints(sizes)
	sort.Slice(makespans, func(i, j int) bool { return makespans[i] < makespans[j] })
	sort.Ints(maxBits)
	var totalLabel time.Duration
	for _, d := range labelTimes {
		totalLabel += d
	}
	fmt.Printf("fleet: %d simulated runs, %d provenance queries\n", fleet, totalQueries)
	fmt.Printf("run sizes:  min %d, median %d, max %d vertices\n",
		sizes[0], sizes[fleet/2], sizes[fleet-1])
	fmt.Printf("makespans:  min %v, median %v, max %v (simulated)\n",
		makespans[0].Round(time.Millisecond), makespans[fleet/2].Round(time.Millisecond),
		makespans[fleet-1].Round(time.Millisecond))
	fmt.Printf("max labels: %d..%d bits\n", maxBits[0], maxBits[fleet-1])
	fmt.Printf("labeling:   %v total across the fleet; skeleton labeled once in %v (amortized %.1f%%)\n",
		totalLabel.Round(time.Microsecond), skelTime.Round(time.Microsecond),
		100*float64(skelTime)/float64(totalLabel+skelTime))
}
