package repro_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro"
)

func TestFacadeLineage(t *testing.T) {
	s := repro.PaperSpec()
	r, _ := repro.PaperRun(s)
	l, err := repro.LabelRun(r, repro.Dual)
	if err != nil {
		t.Fatal(err)
	}
	src, snk, err := r.Graph.FlowNetworkTerminals()
	if err != nil {
		t.Fatal(err)
	}
	down := repro.Downstream(r, src)
	if len(down) != r.NumVertices()-1 {
		t.Errorf("source downstream = %d, want everything", len(down))
	}
	up := repro.Upstream(r, snk)
	if len(up) != r.NumVertices()-1 {
		t.Errorf("sink upstream = %d, want everything", len(up))
	}
	if got := repro.UpstreamByLabels(l, snk); len(got) != len(up) {
		t.Errorf("label-scan upstream = %d, traversal = %d", len(got), len(up))
	}
	if got := repro.DownstreamByLabels(l, src); len(got) != len(down) {
		t.Errorf("label-scan downstream = %d, traversal = %d", len(got), len(down))
	}
	path := repro.Explain(r, src, snk)
	if len(path) < 2 || path[0] != src || path[len(path)-1] != snk {
		t.Errorf("Explain(source,sink) = %v", path)
	}
}

func TestFacadeEngineAndEvents(t *testing.T) {
	s, err := repro.StandInSpec("PubMed", 2)
	if err != nil {
		t.Fatal(err)
	}
	policy := repro.DefaultEnginePolicy()
	policy.MaxCopies = 6
	eng := repro.NewEngine(s, policy, rand.New(rand.NewSource(3)))
	tr, err := eng.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan <= 0 || tr.Run.NumVertices() < s.NumVertices() {
		t.Fatal("trace implausible")
	}
	var logBuf bytes.Buffer
	if err := repro.WriteEventLog(&logBuf, tr.Events); err != nil {
		t.Fatal(err)
	}
	evs, err := repro.ReadEventLog(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	skel, err := repro.TCM.Build(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ol, err := repro.ReplayEvents(s, skel, evs)
	if err != nil {
		t.Fatal(err)
	}
	if ol.NumVertices() != tr.Run.NumVertices() {
		t.Fatal("event replay vertex count mismatch")
	}
	// Spot-check agreement with offline labeling.
	off, err := repro.LabelWithPlan(tr.Run, tr.Plan, skel)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 1000; q++ {
		u := repro.VertexID(rng.Intn(tr.Run.NumVertices()))
		v := repro.VertexID(rng.Intn(tr.Run.NumVertices()))
		if ol.Reachable(u, v) != off.Reachable(u, v) {
			t.Fatalf("online/offline mismatch at (%d,%d)", u, v)
		}
	}
}

func TestFacadeSnapshot(t *testing.T) {
	s := repro.PaperSpec()
	r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(5)), 300)
	skel, _ := repro.Chain.Build(s.Graph)
	l, err := repro.LabelWithSkeleton(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := repro.ReadLabelSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := snap.Bind(skel)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 1000; q++ {
		u := repro.VertexID(rng.Intn(r.NumVertices()))
		v := repro.VertexID(rng.Intn(r.NumVertices()))
		if bound.Reachable(u, v) != l.Reachable(u, v) {
			t.Fatal("snapshot answers diverged")
		}
	}
}

func TestFacadeDOT(t *testing.T) {
	s := repro.PaperSpec()
	r, p := repro.PaperRun(s)
	var spec, runDot, planDot bytes.Buffer
	if err := repro.WriteSpecDOT(&spec, s, "paper"); err != nil {
		t.Fatal(err)
	}
	if err := repro.WriteRunDOT(&runDot, r, p, "fig3"); err != nil {
		t.Fatal(err)
	}
	if err := repro.WritePlanDOT(&planDot, p, "fig7"); err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{"spec": spec.String(), "run": runDot.String(), "plan": planDot.String()} {
		if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
			t.Errorf("%s DOT malformed", name)
		}
	}
}

func TestFacadeStoreBackends(t *testing.T) {
	s := repro.PaperSpec()
	rng := rand.New(rand.NewSource(7))

	// In-memory store: create, ingest, query — no disk anywhere.
	mem, err := repro.NewMemStore(s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	if kind := mem.Stat().Kind; kind != "mem" {
		t.Fatalf("NewMemStore backend kind = %q", kind)
	}
	r, _ := repro.GenerateRun(s, rng, 200)
	if err := mem.PutRun("r1", r, nil, repro.TCM); err != nil {
		t.Fatal(err)
	}
	sess, err := mem.OpenRun("r1", repro.TCM)
	if err != nil || sess.Run.NumVertices() != r.NumVertices() {
		t.Fatalf("mem OpenRun = %v", err)
	}

	// The same store reopened over its own backend handle.
	again, err := repro.OpenStoreOverBackend(mem.Backend())
	if err != nil || again.SpecName() != "paper" {
		t.Fatalf("OpenStoreOverBackend = %v", err)
	}

	// Sharded store: runs spread over directories, reopened by URL.
	dirs := []string{t.TempDir(), t.TempDir()}
	sh, err := repro.NewShardedStore(dirs, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		r, _ := repro.GenerateRun(s, rng, 100)
		if err := sh.PutRun(name, r, nil, repro.TCM); err != nil {
			t.Fatalf("PutRun(%s): %v", name, err)
		}
	}
	reopened, err := repro.OpenStoreURL("shard://" + strings.Join(dirs, ","))
	if err != nil {
		t.Fatal(err)
	}
	if st := reopened.Stat(); st.Kind != "shard" || len(st.Shards) != 2 {
		t.Fatalf("sharded Stat = %+v", st)
	}
	names, err := reopened.Runs()
	if err != nil || len(names) != 4 {
		t.Fatalf("sharded Runs = %v, %v", names, err)
	}
	if _, err := reopened.OpenRun("c", repro.BFS); err != nil {
		t.Fatalf("sharded OpenRun: %v", err)
	}
}
