package repro

import (
	"io"
	"math/rand"
	"net/http"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/export"
	"repro/internal/label"
	"repro/internal/lineage"
	"repro/internal/online"
	"repro/internal/plan"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/store"
	// Registers the fault:// store URL scheme (chaos-testing backend
	// wrapper), so OpenStoreURL and every CLI accept it.
	_ "repro/internal/store/faultinject"
	"repro/internal/workload"
	"repro/internal/xmlio"
)

// Core model types.
type (
	// Spec is a validated workflow specification (G, F, L).
	Spec = spec.Spec
	// SpecBuilder assembles specifications.
	SpecBuilder = spec.Builder
	// ModuleName is a unique module name in a specification.
	ModuleName = spec.ModuleName
	// Run is a workflow run conforming to a specification.
	Run = run.Run
	// ExecTree describes a run's fork/loop replication structure.
	ExecTree = run.ExecTree
	// Plan is an execution plan T_R with the context function.
	Plan = plan.Plan
	// VertexID identifies a vertex of a specification or run graph.
	VertexID = dag.VertexID
	// Labeling is a skeleton-labeled run answering reachability queries.
	Labeling = core.Labeling
	// Label is one vertex's reachability label.
	Label = core.Label
	// SpecScheme labels specification graphs (the skeleton labels).
	SpecScheme = label.Scheme
	// SpecLabeling is a labeled specification.
	SpecLabeling = label.Labeling
	// DataItem is a data item flowing over a run's channels.
	DataItem = provdata.Item
	// DataItemID identifies a data item.
	DataItemID = provdata.ItemID
	// DataAnnotation attaches data items to a run.
	DataAnnotation = provdata.Annotation
	// DataLabeling answers data-provenance queries (Section 6).
	DataLabeling = provdata.Labeling
	// OnlineLabeler labels a run incrementally while it executes (§9).
	OnlineLabeler = online.Labeler
	// OnlineCopy is a live fork/loop copy handle of an OnlineLabeler.
	OnlineCopy = online.Copy
	// LabelSnapshot is a deserialized label set bindable to a skeleton.
	LabelSnapshot = core.Snapshot
	// SnapshotVersion identifies a label snapshot wire format (SKL1 or
	// SKL2); writers emit SKL2, readers auto-detect either.
	SnapshotVersion = core.SnapshotVersion
	// EngineEvent is one workflow-engine log record.
	EngineEvent = events.Event
	// Engine simulates a workflow system executing a specification.
	Engine = engine.Engine
	// EnginePolicy makes the engine's dynamic control-flow choices.
	EnginePolicy = engine.Policy
	// RandomEnginePolicy is a geometric-distribution policy.
	RandomEnginePolicy = engine.RandomPolicy
	// Trace is the complete record of one simulated execution.
	Trace = engine.Trace
	// Namer resolves run vertex display names in O(1).
	Namer = run.Namer
	// DataStream registers data items of a still-running workflow (§6+§9).
	DataStream = provdata.Stream
	// Store is a provenance store (spec + runs + labels) over some
	// StoreBackend.
	Store = store.Store
	// StoreSession is one stored run opened for querying.
	StoreSession = store.Session
	// StoreBackend is the blob-level storage substrate under a Store:
	// fs (one directory), mem (RAM), shard (hash-routed children), or
	// any implementation passing store/backendtest.
	StoreBackend = store.Backend
	// StoreStats describes a store's backend (kind, path, shard children).
	StoreStats = store.Stats
	// StoreRetryPolicy tunes WithRetryBackend's backoff.
	StoreRetryPolicy = store.RetryPolicy
	// QueryServer is a concurrent HTTP provenance query service over a
	// Store, with an LRU session cache, a batched query endpoint, an
	// optional write path (PUT and DELETE /runs/{name}, with
	// count-bounded retention via ServerConfig.MaxRuns /
	// Server.EnforceMaxRuns), admission control (bounded concurrency +
	// per-client rate limits), and warm-restart support
	// (SaveHotList/WarmFromHotList).
	QueryServer = server.Server
	// ServerConfig configures a QueryServer.
	ServerConfig = server.Config
	// ServerCacheStats reports the query server's session cache counters.
	ServerCacheStats = server.CacheStats
	// ServerAdmissionStats reports the query server's admission-control
	// counters (inflight/queued gauges, 429 reject counts).
	ServerAdmissionStats = server.AdmissionStats
	// ServerBreakerStats reports the query server's circuit-breaker state
	// (closed / open-degraded, strike and probe counters) as surfaced in
	// /healthz.
	ServerBreakerStats = server.BreakerStats
)

// Specification labeling schemes (Section 7).
var (
	// TCM precomputes the transitive closure matrix: O(1) spec queries,
	// n_G² bits of index.
	TCM SpecScheme = label.TCM{}
	// BFS stores nothing and searches the spec graph per query.
	BFS SpecScheme = label.BFS{}
	// DFS is BFS with depth-first search.
	DFS SpecScheme = label.DFS{}
	// Interval is the tree-cover interval index (Agrawal et al. 1989).
	Interval SpecScheme = label.Interval{}
	// Chain is the chain-decomposition index (Jagadish 1990).
	Chain SpecScheme = label.Chain{}
	// TwoHop is the 2-hop cover index (Cohen et al. 2002).
	TwoHop SpecScheme = label.TwoHop{}
	// Dual is a tree+link index after Dual Labeling (Wang et al. 2006).
	Dual SpecScheme = label.Dual{}
)

// NewSpecBuilder returns an empty specification builder.
func NewSpecBuilder() *SpecBuilder { return spec.NewBuilder() }

// PaperSpec returns the paper's running example (Figure 2).
func PaperSpec() *Spec { return spec.PaperSpec() }

// PaperRun returns the paper's Figure 3 run of PaperSpec, with its
// Figure 7 execution plan.
func PaperRun(s *Spec) (*Run, *Plan) { return run.Figure3Run(s) }

// SpecSchemes returns every available specification labeling scheme.
func SpecSchemes() []SpecScheme { return label.All() }

// SpecSchemeByName resolves "TCM", "BFS", "DFS", "Interval", "Chain" or "2-Hop".
func SpecSchemeByName(name string) (SpecScheme, error) { return label.ByName(name) }

// GenerateRun produces a random run of the specification with
// approximately targetVertices vertices, by the paper's fork/loop
// replication semantics, together with its ground-truth execution plan.
func GenerateRun(s *Spec, rng *rand.Rand, targetVertices int) (*Run, *Plan) {
	return run.GenerateSized(s, rng, targetVertices)
}

// MinimalRun produces the unique run executing every fork and loop once.
func MinimalRun(s *Spec) (*Run, *Plan) {
	return run.MustMaterialize(s, run.SingleExec(s))
}

// ConstructPlan recovers a run's execution plan and context from its
// graph alone, in linear time (Section 5).
func ConstructPlan(r *Run) (*Plan, error) {
	return plan.Construct(r.Spec, r.Graph, r.Origin)
}

// LabelRun labels a run with the skeleton-based scheme: the specification
// is labeled by the given scheme and the run by SKL (Algorithm 2). The
// returned labeling answers reachability in constant time plus at most
// one skeleton query (Algorithm 3).
func LabelRun(r *Run, scheme SpecScheme) (*Labeling, error) {
	skel, err := scheme.Build(r.Spec.Graph)
	if err != nil {
		return nil, err
	}
	return core.LabelRun(r, skel)
}

// LabelWithSkeleton labels a run reusing an existing specification
// labeling (the amortization the paper's Table 2 assumes: one skeleton
// labeling shared by all runs of the spec).
func LabelWithSkeleton(r *Run, skeleton SpecLabeling) (*Labeling, error) {
	return core.LabelRun(r, skeleton)
}

// LabelWithPlan labels a run whose execution plan is already known (e.g.
// from an engine log), skipping plan reconstruction.
func LabelWithPlan(r *Run, p *Plan, skeleton SpecLabeling) (*Labeling, error) {
	return core.LabelRunWithPlan(r, p, skeleton)
}

// LabelData builds data-provenance labels over a module labeling (§6).
func LabelData(a *DataAnnotation, l *Labeling) (*DataLabeling, error) {
	return provdata.LabelData(a, l)
}

// RandomData annotates a run with synthetic data items.
func RandomData(r *Run, rng *rand.Rand, meanPerEdge, shareProb float64) *DataAnnotation {
	return provdata.RandomItems(r, rng, meanPerEdge, shareProb)
}

// NewOnline starts an online labeler for a specification (§9): report
// fork/loop copies and module executions as they happen and query
// intermediate provenance immediately.
func NewOnline(s *Spec, skeleton SpecLabeling) *OnlineLabeler {
	return online.New(s, skeleton)
}

// SynthesizeSpec generates a random specification with exactly the given
// structural parameters (Section 8's synthetic workloads).
func SynthesizeSpec(rng *rand.Rand, nG, mG, tgSize, tgDepth int) (*Spec, error) {
	return workload.Synthesize(rng, workload.Params{NG: nG, MG: mG, TGSize: tgSize, TGDepth: tgDepth})
}

// StandInSpec synthesizes one of the six Table-1 workflows ("EBI",
// "PubMed", "QBLAST", "BioAID", "ProScan", "ProDisc") by name.
func StandInSpec(name string, seed int64) (*Spec, error) {
	return workload.StandIn(name, seed)
}

// WriteSpecXML and ReadSpecXML serialize specifications.
func WriteSpecXML(w io.Writer, s *Spec, name string) error { return xmlio.EncodeSpec(w, s, name) }

// ReadSpecXML decodes and validates a specification.
func ReadSpecXML(r io.Reader) (*Spec, string, error) { return xmlio.DecodeSpec(r) }

// WriteRunXML serializes a run and optional data annotation.
func WriteRunXML(w io.Writer, r *Run, a *DataAnnotation, workflowName string) error {
	return xmlio.EncodeRun(w, r, a, workflowName)
}

// ReadRunXML decodes and validates a run (and data annotation, if items
// are present) against its specification.
func ReadRunXML(rd io.Reader, s *Spec) (*Run, *DataAnnotation, error) {
	return xmlio.DecodeRun(rd, s)
}

// Label snapshot wire format versions. Labeling.WriteTo emits the
// columnar SnapshotV2 format; WriteToVersion pins a version explicitly
// and the readers auto-detect either, so stores mixing versions keep
// loading transparently.
const (
	SnapshotV1 = core.SnapshotV1
	SnapshotV2 = core.SnapshotV2
)

// ReadLabelSnapshot deserializes labels persisted with Labeling.WriteTo;
// bind a skeleton labeling of the same specification to query them.
// Both wire formats (SKL1, SKL2) are detected from the leading magic.
func ReadLabelSnapshot(r io.Reader) (*LabelSnapshot, error) { return core.ReadSnapshot(r) }

// DecodeLabelSnapshot is ReadLabelSnapshot over an in-memory buffer —
// the fast path when the snapshot bytes are already resident.
func DecodeLabelSnapshot(data []byte) (*LabelSnapshot, error) { return core.DecodeSnapshot(data) }

// Upstream returns every module execution v's output was derived from,
// by reverse traversal of the run graph.
func Upstream(r *Run, v VertexID) []VertexID { return lineage.Upstream(r, v) }

// Downstream returns every module execution affected by v's output.
func Downstream(r *Run, v VertexID) []VertexID { return lineage.Downstream(r, v) }

// UpstreamByLabels computes the upstream cone from stored labels alone
// (one constant-time label comparison per run vertex; no graph needed).
func UpstreamByLabels(l *Labeling, v VertexID) []VertexID {
	return lineage.UpstreamByLabels(l, v)
}

// DownstreamByLabels is the forward counterpart of UpstreamByLabels.
func DownstreamByLabels(l *Labeling, v VertexID) []VertexID {
	return lineage.DownstreamByLabels(l, v)
}

// Explain returns a concrete dependency path from u to v as evidence for
// a positive reachability answer, or nil if v does not depend on u.
func Explain(r *Run, u, v VertexID) []VertexID { return lineage.Explain(r, u, v) }

// EmitEvents renders a run and its execution plan as a workflow-engine
// event log (copy starts + module executions).
func EmitEvents(r *Run, p *Plan) []EngineEvent { return events.Emit(r, p) }

// WriteEventLog and ReadEventLog serialize engine event logs as text.
func WriteEventLog(w io.Writer, evs []EngineEvent) error { return events.WriteLog(w, evs) }

// ReadEventLog parses an engine event log.
func ReadEventLog(r io.Reader) ([]EngineEvent, error) { return events.ReadLog(r) }

// ReplayEvents drives an online labeler from an engine event log,
// labeling each module execution the moment its event arrives.
func ReplayEvents(s *Spec, skeleton SpecLabeling, evs []EngineEvent) (*OnlineLabeler, error) {
	return events.Replay(s, skeleton, evs)
}

// NewEngine returns a simulated workflow engine for the specification.
func NewEngine(s *Spec, policy EnginePolicy, rng *rand.Rand) *Engine {
	return engine.New(s, policy, rng)
}

// DefaultEnginePolicy returns a moderate random execution policy.
func DefaultEnginePolicy() RandomEnginePolicy { return engine.DefaultPolicy() }

// WriteSpecDOT renders the specification as Graphviz DOT, with fork
// clusters and loop back-edges as in the paper's figures.
func WriteSpecDOT(w io.Writer, s *Spec, name string) error { return export.SpecDOT(w, s, name) }

// WriteRunDOT renders a run as DOT; pass a plan to color vertices by the
// kind of their fork/loop context, or nil for a plain rendering.
func WriteRunDOT(w io.Writer, r *Run, p *Plan, name string) error {
	return export.RunDOT(w, r, p, name)
}

// WritePlanDOT renders an execution plan tree as DOT.
func WritePlanDOT(w io.Writer, p *Plan, name string) error { return export.PlanDOT(w, p, name) }

// NewNamer indexes a run's vertex display names (b1, b2, ...) for O(1)
// lookup in both directions.
func NewNamer(r *Run) *Namer { return run.NewNamer(r) }

// NewDataStream registers data items against any module reachability
// (e.g. an OnlineLabeler) and answers dependency queries immediately.
func NewDataStream(reach provdata.ModuleReachability) *DataStream {
	return provdata.NewStream(reach)
}

// CreateStore initializes an fs-backed provenance store directory for a
// specification.
func CreateStore(dir string, s *Spec, name string) (*Store, error) {
	return store.Create(dir, s, name)
}

// OpenStore loads an existing fs-backed provenance store.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// OpenStoreURL opens an existing store from a URL picking the backend:
// "fs://dir" (a bare path means the same), "mem://dir" (preload the fs
// store at dir into RAM and serve from memory), or "shard://a,b,..."
// (a store sharded across the listed directories, as created by
// NewShardedStore with the same list).
func OpenStoreURL(url string) (*Store, error) { return store.OpenURL(url) }

// NewMemStore returns a store over a fresh in-memory backend — the
// fastest substrate for tests, examples and ephemeral serving.
func NewMemStore(s *Spec, name string) (*Store, error) { return store.NewMem(s, name) }

// NewShardedStore initializes a store sharded across fs-backed child
// directories: runs are routed to children by hash of the run name, and
// the spec is replicated so each child is independently openable.
func NewShardedStore(dirs []string, s *Spec, name string) (*Store, error) {
	return store.CreateSharded(dirs, s, name)
}

// NewStoreOverBackend initializes a store over any StoreBackend
// implementation, persisting the spec through it. Custom backends should
// pass the conformance suite in internal/store/backendtest.
func NewStoreOverBackend(b StoreBackend, s *Spec, name string) (*Store, error) {
	return store.New(b, s, name)
}

// OpenStoreOverBackend loads an existing store from any StoreBackend.
func OpenStoreOverBackend(b StoreBackend) (*Store, error) { return store.OpenBackend(b) }

// WithRetryBackend wraps a backend so transient failures (see
// IsTransientStoreError) are retried with jittered exponential backoff
// before the caller ever sees them. The zero policy means 4 attempts
// from 2ms up to 250ms. Non-transient errors and exhausted budgets pass
// through unchanged; cmd/provserve's -retry flag is this wrapper.
func WithRetryBackend(b StoreBackend, p StoreRetryPolicy) StoreBackend {
	return store.WithRetry(b, p)
}

// IsTransientStoreError reports whether a store error is transient —
// safe to retry by the backend failure contract (no partial side effect
// on the failed call). See the failure model on StoreBackend.
func IsTransientStoreError(err error) bool { return store.IsTransient(err) }

// NewServer builds a provenance query server (an http.Handler) over an
// opened store. See cmd/provserve for the standalone daemon.
func NewServer(cfg ServerConfig) (*QueryServer, error) { return server.New(cfg) }

// Serve answers provenance queries over HTTP on addr until the listener
// fails; it is NewServer plus http.Server plumbing.
func Serve(addr string, cfg ServerConfig) error { return server.ListenAndServe(addr, cfg) }

// NewQueryHTTPServer wraps a handler (typically a QueryServer) in the
// http.Server configuration the service ships with — read/idle timeouts
// so slow or idle clients cannot pin connections forever. Use it when
// you need the *http.Server (graceful Shutdown, custom listeners)
// instead of the one-call Serve; cmd/provserve does.
func NewQueryHTTPServer(addr string, h http.Handler) *http.Server {
	return server.NewHTTPServer(addr, h)
}
