# The targets CI runs (see .github/workflows/ci.yml) — run the same
# commands locally with `make ci`.

GO ?= go
STORE ?= ./provstore
ADDR ?= :8080

.PHONY: build test race bench bench-store bench-json fmt vet serve ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Store-backend benchmarks (fs + mem) at a few iterations, so a
# regression in either substrate shows up in the perf trajectory.
bench-store:
	$(GO) test -run='^$$' -bench='BenchmarkStore|BenchmarkServerBatchReachable' -benchtime=3x ./internal/store/ .

# Serving-path benchmarks (snapshot codecs, /batch, the PR-4 ingest
# write path, and the PR-5 delete path), rendered to BENCH_5.json with
# the pre-PR5 baseline embedded, so the perf trajectory is tracked as a
# CI artifact. BenchmarkServerDelete is new in PR 5 and therefore absent
# from the baseline. Each go test runs as its own command so a failing
# bench fails the target instead of emitting a silently incomplete
# BENCH_5.json.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSnapshotDecode|BenchmarkSnapshotEncode' -benchtime=100x -count=3 ./internal/core/ > bench-json.out
	$(GO) test -run='^$$' -bench='BenchmarkServerBatchReachable' -benchtime=50x -count=3 . >> bench-json.out
	$(GO) test -run='^$$' -bench='BenchmarkServerIngest|BenchmarkServerDelete' -benchtime=20x -count=3 . >> bench-json.out
	$(GO) run ./cmd/benchjson -baseline bench/BASELINE_5.json -o BENCH_5.json < bench-json.out
	@rm -f bench-json.out

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

serve:
	$(GO) run ./cmd/provserve -store $(STORE) -addr $(ADDR)

ci: fmt vet build race bench bench-store
