# The targets CI runs (see .github/workflows/ci.yml) — run the same
# commands locally with `make ci`.

GO ?= go
STORE ?= ./provstore
ADDR ?= :8080

.PHONY: build test race bench bench-store fmt vet serve ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Store-backend benchmarks (fs + mem) at a few iterations, so a
# regression in either substrate shows up in the perf trajectory.
bench-store:
	$(GO) test -run='^$$' -bench='BenchmarkStore|BenchmarkServerBatchReachable' -benchtime=3x ./internal/store/ .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

serve:
	$(GO) run ./cmd/provserve -store $(STORE) -addr $(ADDR)

ci: fmt vet build race bench bench-store
