# The targets CI runs (see .github/workflows/ci.yml) — run the same
# commands locally with `make ci`.

GO ?= go
STORE ?= ./provstore
ADDR ?= :8080

# The current PR number: bench-json emits BENCH_$(PR).json against the
# checked-in pre-PR measurement bench/BASELINE_$(PR).json, extending the
# perf lineage cmd/benchtrend renders and gates on. Bump it (and check
# in a fresh baseline: `make bench-json` with the old number, then move
# the "benches" map into bench/BASELINE_<new>.json) once per PR.
PR ?= 10

.PHONY: build test race bench bench-store bench-json trend load-smoke chaos-smoke rpq-smoke lint fmt vet serve ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Store-backend (fs + mem) and server /batch benchmarks at a few
# iterations, so a regression in either substrate or the serving hot
# path shows up even in the quick CI smoke.
bench-store:
	$(GO) test -run='^$$' -bench='BenchmarkStore|BenchmarkServerBatchReachable' -benchtime=3x ./internal/store/ .

# Serving-path benchmarks — snapshot codecs (SKL1/SKL2 encode+decode),
# /batch reachability over fs and mem stores, and the ingest and delete
# write paths — rendered to BENCH_$(PR).json with the pre-PR baseline
# embedded, the per-PR artifact `make trend` diffs and gates on. Each
# go test runs as its own command so a failing bench fails the target
# instead of emitting a silently incomplete BENCH_$(PR).json.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSnapshotDecode|BenchmarkSnapshotEncode' -benchtime=100x -count=3 ./internal/core/ > bench-json.out
	$(GO) test -run='^$$' -bench='BenchmarkServerBatchReachable' -benchtime=50x -count=3 . >> bench-json.out
	$(GO) test -run='^$$' -bench='BenchmarkServerIngest|BenchmarkServerDelete|BenchmarkServerAppendEvents|BenchmarkServerRPQ' -benchtime=20x -count=3 . >> bench-json.out
	$(GO) run ./cmd/benchjson -baseline bench/BASELINE_$(PR).json -o BENCH_$(PR).json < bench-json.out
	@rm -f bench-json.out

# Cross-PR perf trajectory + regression gate over the BASELINE lineage
# and the current bench-json artifact (exits nonzero on a regression
# beyond tolerance; see cmd/benchtrend for the tolerance knobs).
trend: bench-json
	$(GO) run ./cmd/benchtrend -dir bench -current BENCH_$(PR).json -o TREND.md

# Short open-loop load run against an in-process mem-store server:
# mixed reachable/batch/lineage/put/delete/stream traffic, zipfian
# popularity, SLO verdicts logged and enforced (see cmd/provload for
# the knobs).
load-smoke:
	$(GO) run ./cmd/provload -store mem: -runs 24 -run-size 300 -clients 8 \
		-mix reachable=55,batch=15,lineage=5,put=8,delete=2,stream=15 \
		-rate 400 -duration 3s -slo-read-p99 250ms -slo-write-p99 1s \
		-slo-error-rate 0 -fail-on-slo -quiet -report PROVLOAD.json
	@echo "load-smoke: report in PROVLOAD.json"

# Chaos smoke: the in-process chaos suite (concurrent traffic over a
# fault-injected backend, then a differential check against a
# fault-free twin) plus a short provload run over a fault:// store with
# retries — asserting the read SLO and a zero error rate survive ~5%
# injected transient faults.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos' .
	$(GO) run ./cmd/provload -store 'fault://rate=0.05,seed=1/mem:' -retry 4 \
		-runs 16 -run-size 250 -clients 6 \
		-mix reachable=55,batch=15,lineage=5,put=8,delete=2,stream=15 \
		-rate 250 -duration 3s -slo-read-p99 500ms -slo-write-p99 2s \
		-slo-error-rate 0 -fail-on-slo -quiet -report CHAOS_LOAD.json
	@echo "chaos-smoke: report in CHAOS_LOAD.json"

# RPQ smoke: the regular-path-query differential + over-the-wire e2e
# battery under -race, then a short provload run with rpq traffic in
# the mix — asserting path queries hold the read SLO alongside the
# usual traffic.
rpq-smoke:
	$(GO) test -race -count=1 -run 'TestRPQ' .
	$(GO) run ./cmd/provload -store mem: -runs 16 -run-size 250 -clients 6 \
		-mix reachable=40,batch=10,lineage=5,rpq=30,put=8,delete=2 \
		-rate 300 -duration 3s -slo-read-p99 250ms -slo-write-p99 1s \
		-slo-error-rate 0 -fail-on-slo -quiet -report RPQ_LOAD.json
	@echo "rpq-smoke: report in RPQ_LOAD.json"

# Static analysis: cmd/provlint runs the repo-specific analyzer suite
# (internal/lint — %w wrapping in the store, documented lock discipline,
# route/counter registration, seeded randomness, never-dropped storage
# errors) over the whole module, fails on unsuppressed findings, and
# writes the provlint.v1 report CI uploads as an artifact.
lint:
	$(GO) run ./cmd/provlint -o LINT.json

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

serve:
	$(GO) run ./cmd/provserve -store $(STORE) -addr $(ADDR)

ci: fmt vet lint build race bench bench-store load-smoke chaos-smoke rpq-smoke
