package repro_test

import (
	"math/rand"
	"testing"

	"repro"
	"repro/internal/rpq"
)

// specModuleNames collects every module name of a specification, the
// symbol alphabet RandomPattern draws from.
func specModuleNames(s *repro.Spec) []string {
	names := make([]string, 0, s.NumVertices())
	for v := 0; v < s.NumVertices(); v++ {
		names = append(names, string(s.NameOf(repro.VertexID(v))))
	}
	return names
}

// TestRPQDifferential is the regular-path-query capstone: for random
// runs over random series-parallel/fork specifications and random
// label regexes, three independent evaluators must agree on every
// sampled (pattern, pair) case:
//
//  1. the naive oracle — plain BFS over (vertex, NFA-state) product
//     pairs with no labels involved (dag.MatchAutomaton),
//  2. the production engine — lazy DFA over the same NFA, product walk
//     pruned by skeleton-label reachability,
//  3. the same engine with pruning disabled (reach = nil), isolating
//     the determinization from the pruning.
//
// The oracle's only moving parts are the Thompson NFA itself, so any
// divergence pins the bug to determinization or to an unsound prune.
func TestRPQDifferential(t *testing.T) {
	total := 0
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		var s *repro.Spec
		if trial%3 == 0 {
			s = repro.PaperSpec()
		} else {
			var err error
			s, err = repro.SynthesizeSpec(rng, 15+rng.Intn(25), 25+rng.Intn(25), 4, 3)
			if err != nil {
				continue // infeasible draw
			}
		}
		r, _ := repro.GenerateRun(s, rng, 60+rng.Intn(140))
		l, err := repro.LabelRun(r, repro.TCM)
		if err != nil {
			t.Fatalf("trial %d: labeling: %v", trial, err)
		}
		names := specModuleNames(s)
		lookup := func(name string) (repro.VertexID, bool) {
			return s.VertexOf(repro.ModuleName(name))
		}
		n := r.NumVertices()
		for p := 0; p < 6; p++ {
			pat := rpq.RandomPattern(rng, names, 3)
			prog, err := rpq.Compile(pat, lookup)
			if err != nil {
				t.Fatalf("trial %d: generated pattern %q does not compile: %v", trial, pat, err)
			}
			// One matcher per pattern, reused across pairs: the DFA
			// cache persisting between Eval calls is part of what is
			// under test.
			pruned := rpq.NewMatcher(prog, 0)
			plain := rpq.NewMatcher(prog, 0)
			for q := 0; q < 8; q++ {
				u := repro.VertexID(rng.Intn(n))
				v := repro.VertexID(rng.Intn(n))
				want := r.Graph.MatchAutomaton(u, v, r.Origin, prog)
				got, err := pruned.Eval(r.Graph, r.Origin, l.Reachable, u, v)
				if err != nil {
					t.Fatalf("trial %d: pruned eval %q (%d,%d): %v", trial, pat, u, v, err)
				}
				unp, err := plain.Eval(r.Graph, r.Origin, nil, u, v)
				if err != nil {
					t.Fatalf("trial %d: unpruned eval %q (%d,%d): %v", trial, pat, u, v, err)
				}
				if got != want || unp != want {
					t.Fatalf("trial %d: divergence on %q over run of %d vertices at (%d,%d): oracle=%v pruned=%v unpruned=%v",
						trial, pat, n, u, v, want, got, unp)
				}
				total++
			}
		}
	}
	if total < 1000 {
		t.Fatalf("only %d (pattern, pair) cases exercised, want >= 1000", total)
	}
	t.Logf("%d (pattern, pair) cases agreed across oracle, pruned and unpruned evaluators", total)
}
