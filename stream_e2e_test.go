package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// postEvents streams one append batch to a live provserve and returns
// the decoded response.
func postEvents(t *testing.T, base, name string, offset int, body []byte) (status int, resp map[string]any) {
	t.Helper()
	url := fmt.Sprintf("%s/runs/%s/events?offset=%d", base, name, offset)
	r, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	resp = map[string]any{}
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatalf("POST %s: status %d, unreadable body: %v", url, r.StatusCode, err)
	}
	return r.StatusCode, resp
}

// getRaw fetches a URL and returns the exact response body, for
// byte-level differential comparison.
func getRaw(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStreamEndToEnd is the over-the-wire streaming differential test:
// one provserve is populated by streaming a run's engine event log —
// event by event at first, then resumed by provquery -append and sealed
// by provquery -finish — while a second provserve ingests the same run
// whole via PUT /runs/{name}. After the seal, /reachable, /batch and
// /lineage must answer byte-identically on both servers: streaming is
// an ingest transport, not a different engine.
func TestStreamEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	s := repro.PaperSpec()
	if _, err := repro.CreateStore(filepath.Join(dir, "seed"), s, "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	streamed := startProvserve(t, bin, "-store", "mem://"+filepath.Join(dir, "seed"), "-stream")
	direct := startProvserve(t, bin, "-store", "mem://"+filepath.Join(dir, "seed"), "-ingest")

	rng := rand.New(rand.NewSource(99))
	r, p := repro.GenerateRun(s, rng, 140)
	evs := repro.EmitEvents(r, p)

	// The reference: the same run PUT whole on the direct server.
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if status, body := putRunDoc(t, direct.base, "r", doc.String()); status != 200 {
		t.Fatalf("PUT /runs/r: %d %v", status, body)
	}

	// Stream the first two thirds event by event, each append carrying
	// its explicit offset.
	mid := 2 * len(evs) / 3
	for i := 0; i < mid; i++ {
		var buf bytes.Buffer
		if err := repro.WriteEventLog(&buf, evs[i:i+1]); err != nil {
			t.Fatal(err)
		}
		status, resp := postEvents(t, streamed.base, "r", i, buf.Bytes())
		if status != 200 || resp["applied"] != float64(1) || resp["seq"] != float64(i+1) {
			t.Fatalf("append event %d: %d %v", i, status, resp)
		}
	}

	// Mid-stream, the run is live and queryable on the streamed server.
	var st struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	getJSON(t, streamed.base+"/runs/r", &st)
	if st.Status != "live" || st.Events != mid {
		t.Fatalf("mid-stream status = %+v, want live with %d events", st, mid)
	}
	getRaw(t, streamed.base+"/reachable?run=r&from=0&to=1") // must answer, not 404

	// provquery -append resumes from the server's cursor (the full log
	// is on disk; the tool must skip the mid already-streamed events),
	// then -finish seals the run into a stored SKL2 snapshot.
	logPath := filepath.Join(dir, "r.events")
	var full bytes.Buffer
	if err := repro.WriteEventLog(&full, evs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, full.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "provquery", "-append", streamed.base, "-run", logPath, "-as", "r")
	want := fmt.Sprintf("%d events applied", len(evs)-mid)
	if !strings.Contains(out, want) {
		t.Fatalf("provquery -append should resume past %d streamed events (want %q):\n%s", mid, want, out)
	}
	out = runTool(t, "provquery", "-finish", streamed.base, "-run", "r")
	if !strings.Contains(out, "SKL2") || !strings.Contains(out, fmt.Sprintf("%d vertices", r.NumVertices())) {
		t.Fatalf("provquery -finish output unexpected:\n%s", out)
	}
	getJSON(t, streamed.base+"/runs/r", &st)
	if st.Status != "finished" {
		t.Fatalf("status after finish = %+v", st)
	}

	// Byte-identical answers across both servers, on all three read
	// endpoints.
	n := r.NumVertices()
	for u := 0; u < n; u += 7 {
		for v := 0; v < n; v += 5 {
			path := fmt.Sprintf("/reachable?run=r&from=%d&to=%d", u, v)
			if got, ref := getRaw(t, streamed.base+path), getRaw(t, direct.base+path); got != ref {
				t.Fatalf("%s differs:\nstreamed: %s\ndirect:   %s", path, got, ref)
			}
		}
	}
	for v := 0; v < n; v += 9 {
		for _, d := range []string{"up", "down"} {
			path := fmt.Sprintf("/lineage?run=r&vertex=%d&dir=%s", v, d)
			if got, ref := getRaw(t, streamed.base+path), getRaw(t, direct.base+path); got != ref {
				t.Fatalf("%s differs", path)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(`{"run":"r","pairs":[`)
	for i := 0; i+1 < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d]", i, i+1)
	}
	sb.WriteString(`]}`)
	post := func(base string) string {
		resp, err := http.Post(base+"/batch", "application/json", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/batch: status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, ref := post(streamed.base), post(direct.base); got != ref {
		t.Fatalf("/batch differs:\nstreamed: %s\ndirect:   %s", got, ref)
	}
}

// TestStreamCrashRecoveryEndToEnd SIGKILLs provserve mid-stream and
// restarts it on the same fs store: every acknowledged append must
// survive (recovered from the last checkpoint plus the durable event
// log tail), the stream must resume from the server's cursor, and the
// sealed run must match the generated one. This is the crash-safety
// contract of the acknowledged-write path with the real binary and real
// disk state.
func TestStreamCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	if _, err := repro.CreateStore(storeDir, repro.PaperSpec(), "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	p := startProvserve(t, bin, "-store", storeDir, "-stream", "-checkpoint-every", "16")

	rng := rand.New(rand.NewSource(100))
	r, pl := repro.GenerateRun(repro.PaperSpec(), rng, 160)
	evs := repro.EmitEvents(r, pl)

	// Stream two thirds in small batches. The batch size is coprime to
	// -checkpoint-every, so the kill lands with a checkpoint behind the
	// cursor and acknowledged events after it — recovery must combine
	// both, not just reload a checkpoint that happens to be current.
	mid := 2 * len(evs) / 3
	acked := 0
	for acked < mid {
		j := min(acked+7, mid)
		var buf bytes.Buffer
		if err := repro.WriteEventLog(&buf, evs[acked:j]); err != nil {
			t.Fatal(err)
		}
		status, resp := postEvents(t, p.base, "crash", acked, buf.Bytes())
		if status != 200 {
			t.Fatalf("append at %d: %d %v", acked, status, resp)
		}
		acked = j
	}

	// SIGKILL: no shutdown hooks, no final checkpoint — only what the
	// durable append path already wrote survives.
	p.cmd.Process.Kill()
	<-p.exited

	p2 := startProvserve(t, bin, "-store", storeDir, "-stream", "-checkpoint-every", "16")
	var st struct {
		Status        string `json:"status"`
		Events        int    `json:"events"`
		CheckpointSeq int    `json:"checkpoint_seq"`
	}
	getJSON(t, p2.base+"/runs/crash", &st)
	if st.Status != "live" || st.Events != acked {
		t.Fatalf("after SIGKILL+restart: %+v, want live with all %d acknowledged events", st, acked)
	}
	if st.CheckpointSeq == 0 || st.CheckpointSeq >= acked {
		t.Fatalf("recovery should combine a checkpoint with a log tail, got checkpoint_seq=%d of %d events", st.CheckpointSeq, acked)
	}

	// Resume from the server's cursor and seal.
	for acked < len(evs) {
		j := min(acked+8, len(evs))
		var buf bytes.Buffer
		if err := repro.WriteEventLog(&buf, evs[acked:j]); err != nil {
			t.Fatal(err)
		}
		if status, resp := postEvents(t, p2.base, "crash", acked, buf.Bytes()); status != 200 {
			t.Fatalf("resumed append at %d: %d %v", acked, status, resp)
		}
		acked = j
	}
	fin, err := http.Post(p2.base+"/runs/crash/finish", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sealed struct {
		Vertices int `json:"vertices"`
		Events   int `json:"events"`
	}
	if err := json.NewDecoder(fin.Body).Decode(&sealed); err != nil {
		t.Fatal(err)
	}
	fin.Body.Close()
	if fin.StatusCode != 200 || sealed.Vertices != r.NumVertices() || sealed.Events != len(evs) {
		t.Fatalf("finish after recovery: %d %+v, want %d vertices from %d events", fin.StatusCode, sealed, r.NumVertices(), len(evs))
	}

	// The sealed run answers like the in-process engine on the original.
	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		t.Fatal(err)
	}
	n := r.NumVertices()
	for q := 0; q < 40; q++ {
		u, v := repro.VertexID(rng.Intn(n)), repro.VertexID(rng.Intn(n))
		var reach struct {
			Reachable bool `json:"reachable"`
		}
		getJSON(t, fmt.Sprintf("%s/reachable?run=crash&from=%d&to=%d", p2.base, u, v), &reach)
		if want := l.Reachable(u, v); reach.Reachable != want {
			t.Fatalf("after crash recovery, (%d,%d) = %v, in-process engine says %v", u, v, reach.Reachable, want)
		}
	}
}
