package repro_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	s := repro.PaperSpec()
	rng := rand.New(rand.NewSource(1))
	r, truth := repro.GenerateRun(s, rng, 500)
	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against search on the raw graph for sampled pairs.
	for q := 0; q < 2000; q++ {
		u := repro.VertexID(rng.Intn(r.NumVertices()))
		v := repro.VertexID(rng.Intn(r.NumVertices()))
		if l.Reachable(u, v) != r.Graph.ReachableBFS(u, v) {
			t.Fatalf("mismatch at (%d,%d)", u, v)
		}
	}
	// Plan reconstruction and plan-given labeling agree.
	p, err := repro.ConstructPlan(r)
	if err != nil {
		t.Fatal(err)
	}
	skel, err := repro.BFS.Build(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := repro.LabelWithPlan(r, p, skel)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := repro.LabelWithPlan(r, truth, skel)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 500; q++ {
		u := repro.VertexID(rng.Intn(r.NumVertices()))
		v := repro.VertexID(rng.Intn(r.NumVertices()))
		if lp.Reachable(u, v) != lt.Reachable(u, v) {
			t.Fatal("plan-given labelings disagree")
		}
	}
}

func TestFacadeMinimalRunAndSchemes(t *testing.T) {
	s := repro.PaperSpec()
	r, _ := repro.MinimalRun(s)
	if r.NumVertices() != s.NumVertices() {
		t.Fatal("minimal run shape wrong")
	}
	if len(repro.SpecSchemes()) != 7 {
		t.Fatal("expected 7 schemes")
	}
	for _, name := range []string{"TCM", "BFS", "DFS", "Interval", "Chain", "2-Hop", "Dual"} {
		if _, err := repro.SpecSchemeByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFacadeDataAndXML(t *testing.T) {
	s := repro.PaperSpec()
	rng := rand.New(rand.NewSource(2))
	r, _ := repro.GenerateRun(s, rng, 200)
	ann := repro.RandomData(r, rng, 1.5, 0.5)
	l, err := repro.LabelRun(r, repro.Interval)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := repro.LabelData(ann, l)
	if err != nil {
		t.Fatal(err)
	}
	if dl.NumItems() == 0 {
		t.Fatal("no data items")
	}
	var specBuf, runBuf bytes.Buffer
	if err := repro.WriteSpecXML(&specBuf, s, "paper"); err != nil {
		t.Fatal(err)
	}
	s2, name, err := repro.ReadSpecXML(&specBuf)
	if err != nil || name != "paper" {
		t.Fatalf("spec xml: %v", err)
	}
	if err := repro.WriteRunXML(&runBuf, r, ann, "paper"); err != nil {
		t.Fatal(err)
	}
	r2, ann2, err := repro.ReadRunXML(&runBuf, s2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumVertices() != r.NumVertices() || ann2 == nil || len(ann2.Items) != len(ann.Items) {
		t.Fatal("run xml round trip lost data")
	}
}

func TestFacadeSynthesizeAndOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := repro.SynthesizeSpec(rng, 40, 60, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() != 40 || s.NumEdges() != 60 {
		t.Fatal("synthesis parameters not met")
	}
	qb, err := repro.StandInSpec("QBLAST", 1)
	if err != nil || qb.NumVertices() != 58 {
		t.Fatalf("QBLAST stand-in: %v", err)
	}
	skel, err := repro.TCM.Build(qb.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ol := repro.NewOnline(qb, skel)
	if ol.NumVertices() != 0 {
		t.Fatal("fresh online labeler should be empty")
	}
	if _, err := ol.AddExec(ol.Root(), qb.Source); err != nil {
		t.Fatal(err)
	}
}
