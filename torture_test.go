package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

// tortureSpecs builds adversarial specifications: deeply nested
// alternating fork/loop chains, loops of loops sharing terminals with
// the run boundary, and wide flat fans.
func tortureSpecs(t *testing.T) map[string]*repro.Spec {
	t.Helper()
	out := make(map[string]*repro.Spec)

	{ // Deep alternation: fork(loop(fork(loop(...)))) six levels down.
		b := repro.NewSpecBuilder()
		b.Chain("s", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "t")
		b.Fork("s", "t", "a1", "a2", "a3", "a4", "a5", "a6", "a7")
		b.Loop("a1", "a7", "a2", "a3", "a4", "a5", "a6")
		b.Fork("a1", "a7", "a2", "a3", "a4", "a5", "a6")
		b.Loop("a2", "a6", "a3", "a4", "a5")
		b.Fork("a2", "a6", "a3", "a4", "a5")
		b.Loop("a3", "a5", "a4")
		s, err := b.Build()
		if err != nil {
			t.Fatalf("deep alternation: %v", err)
		}
		out["deep-alternation"] = s
	}

	{ // Boundary-sharing loop chain: loops hugging source and sink.
		b := repro.NewSpecBuilder()
		b.Chain("s", "x", "y", "z", "t")
		b.Loop("s", "x")
		b.Loop("y", "z")
		s, err := b.Build()
		if err != nil {
			t.Fatalf("boundary loops: %v", err)
		}
		out["boundary-loops"] = s
	}

	{ // Wide fan: eight parallel single-module forks between s and t.
		b := repro.NewSpecBuilder()
		names := []repro.ModuleName{"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"}
		for _, n := range names {
			b.Chain("s", n, "t")
		}
		for _, n := range names {
			b.Fork("s", "t", n)
		}
		s, err := b.Build()
		if err != nil {
			t.Fatalf("wide fan: %v", err)
		}
		out["wide-fan"] = s
	}

	{ // Equal-edge fork/loop stack (the paper's F2/L2 pattern, doubled).
		b := repro.NewSpecBuilder()
		b.Chain("s", "u", "m", "v", "t")
		b.Loop("u", "v", "m")
		b.Fork("u", "v", "m")
		b.Loop("s", "t", "u", "m", "v")
		s, err := b.Build()
		if err != nil {
			t.Fatalf("equal-edge stack: %v", err)
		}
		out["equal-edge-stack"] = s
	}
	return out
}

// TestTortureWorkloads runs the full pipeline on adversarial
// specifications at moderate scale: generation, plan reconstruction,
// labeling under two schemes, and oracle agreement.
func TestTortureWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for name, s := range tortureSpecs(t) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			for _, target := range []int{50, 500, 5000} {
				r, truth := repro.GenerateRun(s, rng, target)
				p, err := repro.ConstructPlan(r)
				if err != nil {
					t.Fatalf("target %d: construct: %v", target, err)
				}
				if p.Canonical() != truth.Canonical() {
					t.Fatalf("target %d: plan mismatch", target)
				}
				skelA, _ := repro.TCM.Build(s.Graph)
				skelB, _ := repro.TwoHop.Build(s.Graph)
				la, err := repro.LabelWithSkeleton(r, skelA)
				if err != nil {
					t.Fatal(err)
				}
				lb, err := repro.LabelWithSkeleton(r, skelB)
				if err != nil {
					t.Fatal(err)
				}
				n := r.NumVertices()
				for q := 0; q < 2000; q++ {
					u := repro.VertexID(rng.Intn(n))
					v := repro.VertexID(rng.Intn(n))
					want := r.Graph.ReachableBFS(u, v)
					if la.Reachable(u, v) != want || lb.Reachable(u, v) != want {
						t.Fatalf("target %d: mismatch at (%d,%d)", target, u, v)
					}
				}
			}
		})
	}
}

// TestTortureDeepNesting verifies plan depth and label bounds on a run
// dominated by one hot loop iterated hundreds of times.
func TestTortureDeepNesting(t *testing.T) {
	// A single loop over one module pair, iterated hard.
	b2 := repro.NewSpecBuilder()
	b2.Chain("s", "x", "y", "t")
	b2.Loop("x", "y")
	s, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	r, _ := repro.GenerateRun(s, rng, 2000)
	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		t.Fatal(err)
	}
	// A run that is one long chain: every query is decidable, most by
	// context alone, and labels stay logarithmic.
	if l.MaxLabelBits() > 3*16+3 {
		t.Errorf("labels too long for a chain run: %d bits", l.MaxLabelBits())
	}
	n := r.NumVertices()
	for q := 0; q < 3000; q++ {
		u := repro.VertexID(rng.Intn(n))
		v := repro.VertexID(rng.Intn(n))
		if l.Reachable(u, v) != r.Graph.ReachableBFS(u, v) {
			t.Fatalf("chain run mismatch at (%d,%d)", u, v)
		}
	}
}
