package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
)

// provserveProc is one running provserve binary under test.
type provserveProc struct {
	base   string // http://host:port
	cmd    *exec.Cmd
	exited chan struct{}
	log    *bytes.Buffer
}

// startProvserve builds (once) and launches provserve with the given
// extra flags on a fresh port, waiting until /healthz answers. The
// listen-then-close port reservation races with other processes, so the
// whole launch retries on a fresh port if the daemon dies early.
func startProvserve(t *testing.T, bin string, extra ...string) *provserveProc {
	t.Helper()
	for attempt := 0; ; attempt++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()

		var logBuf bytes.Buffer
		cmd := exec.Command(bin, append([]string{"-addr", addr}, extra...)...)
		cmd.Stdout, cmd.Stderr = &logBuf, &logBuf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan struct{})
		go func(c *exec.Cmd) { c.Wait(); close(exited) }(cmd)
		isDead := func() bool {
			select {
			case <-exited:
				return true
			default:
				return false
			}
		}
		p := &provserveProc{base: "http://" + addr, cmd: cmd, exited: exited, log: &logBuf}
		healthy := false
		for deadline := time.Now().Add(10 * time.Second); !healthy && !isDead() && time.Now().Before(deadline); {
			if resp, err := http.Get(p.base + "/healthz"); err == nil {
				resp.Body.Close()
				healthy = true
			} else {
				time.Sleep(25 * time.Millisecond)
			}
		}
		if healthy {
			t.Cleanup(func() {
				cmd.Process.Kill()
				<-exited
			})
			return p
		}
		cmd.Process.Kill()
		<-exited
		if attempt >= 2 {
			t.Fatalf("provserve never became healthy after %d attempts\nlog: %s", attempt+1, logBuf.String())
		}
	}
}

// shutdown sends SIGTERM (the graceful path that saves the hot list)
// and waits for the process to exit.
func (p *provserveProc) shutdown(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.exited:
	case <-time.After(15 * time.Second):
		t.Fatalf("provserve did not exit after SIGTERM\nlog: %s", p.log.String())
	}
}

func buildProvserve(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "provserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/provserve").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func putRunDoc(t *testing.T, base, name, doc string) (status int, body map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/runs/"+name, strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body = map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("PUT %s: status %d, unreadable body: %v", name, resp.StatusCode, err)
	}
	return resp.StatusCode, body
}

// TestIngestEndToEnd is the over-the-wire differential test: a
// mem-backed provserve starts holding nothing but the specification, is
// populated entirely through PUT /runs/{name}, and must then answer
// /reachable, /batch and /lineage exactly like the in-process core
// engine labeling the same run — extending differential_test.go's
// labeling-paths-agree property across the HTTP boundary.
func TestIngestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	s := repro.PaperSpec()
	// An fs store holding only the spec; mem:// preloads it, so the
	// served store is RAM-only with zero runs.
	if _, err := repro.CreateStore(filepath.Join(dir, "seed"), s, "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	p := startProvserve(t, bin, "-store", "mem://"+filepath.Join(dir, "seed"), "-ingest")

	var runs struct {
		Runs []string `json:"runs"`
	}
	getJSON(t, p.base+"/runs", &runs)
	if len(runs.Runs) != 0 {
		t.Fatalf("server should start empty, has runs %v", runs.Runs)
	}

	// Ingest a generated run (with data items) over the wire.
	rng := rand.New(rand.NewSource(77))
	r, _ := repro.GenerateRun(s, rng, 250)
	ann := repro.RandomData(r, rng, 1.1, 0.3)
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, ann, "paper"); err != nil {
		t.Fatal(err)
	}
	status, put := putRunDoc(t, p.base, "r1", doc.String())
	if status != 200 {
		t.Fatalf("PUT /runs/r1: %d %v", status, put)
	}
	if put["snapshot_version"] != "SKL2" || put["vertices"] != float64(r.NumVertices()) {
		t.Fatalf("PUT response = %v, want SKL2 snapshot of %d vertices", put, r.NumVertices())
	}

	// The in-process reference: the same run labeled by the core engine.
	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		t.Fatal(err)
	}
	n := r.NumVertices()

	// /reachable, one query at a time.
	for q := 0; q < 30; q++ {
		u, v := repro.VertexID(rng.Intn(n)), repro.VertexID(rng.Intn(n))
		var reach struct {
			Reachable bool `json:"reachable"`
		}
		getJSON(t, fmt.Sprintf("%s/reachable?run=r1&from=%d&to=%d", p.base, u, v), &reach)
		if want := l.Reachable(u, v); reach.Reachable != want {
			t.Fatalf("/reachable(%d,%d) = %v, in-process engine says %v", u, v, reach.Reachable, want)
		}
	}

	// /batch, 300 pairs in one request.
	var sb strings.Builder
	sb.WriteString(`{"run":"r1","pairs":[`)
	pairs := make([][2]repro.VertexID, 300)
	for i := range pairs {
		pairs[i] = [2]repro.VertexID{repro.VertexID(rng.Intn(n)), repro.VertexID(rng.Intn(n))}
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d]", pairs[i][0], pairs[i][1])
	}
	sb.WriteString(`]}`)
	resp, err := http.Post(p.base+"/batch", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Count   int    `json:"count"`
		Results []bool `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if batch.Count != len(pairs) {
		t.Fatalf("/batch count = %d, want %d", batch.Count, len(pairs))
	}
	for i, pr := range pairs {
		if want := l.Reachable(pr[0], pr[1]); batch.Results[i] != want {
			t.Fatalf("/batch pair %d (%d,%d) = %v, in-process engine says %v", i, pr[0], pr[1], batch.Results[i], want)
		}
	}

	// /lineage in both directions against the label-based cones.
	nm := repro.NewNamer(r)
	for _, v := range []repro.VertexID{0, repro.VertexID(n / 2), repro.VertexID(n - 1)} {
		for _, dir := range []string{"up", "down"} {
			var lin struct {
				Count int `json:"count"`
			}
			getJSON(t, fmt.Sprintf("%s/lineage?run=r1&vertex=%s&dir=%s", p.base, nm.Name(v), dir), &lin)
			want := len(repro.UpstreamByLabels(l, v))
			if dir == "down" {
				want = len(repro.DownstreamByLabels(l, v))
			}
			if lin.Count != want {
				t.Fatalf("/lineage(%s,%s) = %d, in-process engine says %d", nm.Name(v), dir, lin.Count, want)
			}
		}
	}

	// Overwrite over the wire: the replacement run answers immediately.
	r2, _ := repro.GenerateRun(s, rng, 120)
	doc.Reset()
	if err := repro.WriteRunXML(&doc, r2, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if status, _ := putRunDoc(t, p.base, "r1", doc.String()); status != 200 {
		t.Fatalf("overwriting PUT: %d", status)
	}
	var detail struct {
		Vertices int `json:"vertices"`
	}
	getJSON(t, p.base+"/runs?run=r1", &detail)
	if detail.Vertices != r2.NumVertices() {
		t.Fatalf("after over-the-wire overwrite: %d vertices, want %d", detail.Vertices, r2.NumVertices())
	}
}

// deleteRunReq issues DELETE /runs/{name} against a live provserve.
func deleteRunReq(t *testing.T, base, name string) (status int, body map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/runs/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body = map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("DELETE %s: status %d, unreadable body: %v", name, resp.StatusCode, err)
	}
	return resp.StatusCode, body
}

// TestDeleteEndToEnd is the over-the-wire run-lifecycle differential
// test: PUT -> query -> DELETE -> 404 -> re-PUT -> query, with the
// queries after the round trip matching the in-process core engine on
// the replacement run — the full CRUD cycle of one name across the HTTP
// boundary.
func TestDeleteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	s := repro.PaperSpec()
	if _, err := repro.CreateStore(filepath.Join(dir, "seed"), s, "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	p := startProvserve(t, bin, "-store", "mem://"+filepath.Join(dir, "seed"), "-ingest")

	rng := rand.New(rand.NewSource(55))
	r1, _ := repro.GenerateRun(s, rng, 180)
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r1, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if status, body := putRunDoc(t, p.base, "cycle", doc.String()); status != 200 {
		t.Fatalf("PUT: %d %v", status, body)
	}
	var reach struct {
		Reachable bool `json:"reachable"`
	}
	getJSON(t, p.base+"/reachable?run=cycle&from=0&to=1", &reach) // run serves (and is now hot)

	// DELETE on a read path: deleting is refused without -ingest; that
	// variant is covered in-process. Here the ingest server deletes.
	status, body := deleteRunReq(t, p.base, "cycle")
	if status != 200 || body["deleted"] != true {
		t.Fatalf("DELETE: %d %v", status, body)
	}
	// Gone on every surface, and a second DELETE is 404.
	resp, err := http.Get(p.base + "/reachable?run=cycle&from=0&to=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("query after delete = %d, want 404", resp.StatusCode)
	}
	if status, _ := deleteRunReq(t, p.base, "cycle"); status != 404 {
		t.Fatalf("second DELETE = %d, want 404", status)
	}
	var runs struct {
		Runs []string `json:"runs"`
	}
	getJSON(t, p.base+"/runs", &runs)
	if len(runs.Runs) != 0 {
		t.Fatalf("/runs after delete = %v", runs.Runs)
	}

	// Re-PUT under the same name: the replacement must answer exactly
	// like the in-process engine labeling the same run.
	r2, _ := repro.GenerateRun(s, rng, 120)
	doc.Reset()
	if err := repro.WriteRunXML(&doc, r2, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if status, _ := putRunDoc(t, p.base, "cycle", doc.String()); status != 200 {
		t.Fatalf("re-PUT: %d", status)
	}
	l, err := repro.LabelRun(r2, repro.TCM)
	if err != nil {
		t.Fatal(err)
	}
	n := r2.NumVertices()
	for q := 0; q < 40; q++ {
		u, v := repro.VertexID(rng.Intn(n)), repro.VertexID(rng.Intn(n))
		getJSON(t, fmt.Sprintf("%s/reachable?run=cycle&from=%d&to=%d", p.base, u, v), &reach)
		if want := l.Reachable(u, v); reach.Reachable != want {
			t.Fatalf("after delete+re-PUT, (%d,%d) = %v, in-process engine says %v", u, v, reach.Reachable, want)
		}
	}
}

// TestDeleteWarmRestartEndToEnd is the satellite regression with the
// real binary: make two runs hot, delete one, SIGTERM (saves the hot
// list), restart -warm — the restart must preload the surviving run and
// serve it warm, and the deleted run must answer 404, with nothing
// wedged by the .hot entry that named it.
func TestDeleteWarmRestartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	if _, err := repro.CreateStore(storeDir, repro.PaperSpec(), "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	p := startProvserve(t, bin, "-store", storeDir, "-ingest", "-warm")

	rng := rand.New(rand.NewSource(66))
	for _, name := range []string{"keeper", "victim"} {
		r, _ := repro.GenerateRun(repro.PaperSpec(), rng, 120)
		var doc bytes.Buffer
		if err := repro.WriteRunXML(&doc, r, nil, "paper"); err != nil {
			t.Fatal(err)
		}
		if status, _ := putRunDoc(t, p.base, name, doc.String()); status != 200 {
			t.Fatalf("ingest %s failed", name)
		}
		var reach struct {
			Reachable bool `json:"reachable"`
		}
		getJSON(t, p.base+"/reachable?run="+name+"&from=0&to=1", &reach) // hot now
	}
	if status, _ := deleteRunReq(t, p.base, "victim"); status != 200 {
		t.Fatal("delete failed")
	}
	p.shutdown(t)

	p2 := startProvserve(t, bin, "-store", storeDir, "-warm")
	type health struct {
		Cache struct {
			Cached int   `json:"cached"`
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	var h health
	getJSON(t, p2.base+"/healthz", &h)
	if h.Cache.Cached != 1 {
		t.Fatalf("cache after warm restart = %+v, want exactly the surviving session\nlog: %s", h.Cache, p2.log.String())
	}
	var reach struct {
		Reachable bool `json:"reachable"`
	}
	getJSON(t, p2.base+"/reachable?run=keeper&from=0&to=1", &reach)
	getJSON(t, p2.base+"/healthz", &h)
	if h.Cache.Hits < 1 {
		t.Fatalf("surviving run's first query was a cold load: %+v", h.Cache)
	}
	resp, err := http.Get(p2.base + "/reachable?run=victim&from=0&to=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("deleted run after warm restart = %d, want 404", resp.StatusCode)
	}
}

// TestIngestRateLimit429 checks the admission layer over a real
// connection: a client that bursts past its rate answers 429 with a
// Retry-After the client can actually honor.
func TestIngestRateLimit429(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	if _, err := repro.CreateStore(filepath.Join(dir, "seed"), repro.PaperSpec(), "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	p := startProvserve(t, bin,
		"-store", "mem://"+filepath.Join(dir, "seed"), "-ingest", "-rate", "1", "-burst", "1")

	get := func() *http.Response {
		req, _ := http.NewRequest("GET", p.base+"/runs", nil)
		req.Header.Set("X-Client-ID", "e2e")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := get()
	first.Body.Close()
	if first.StatusCode != 200 {
		t.Fatalf("first request: %d", first.StatusCode)
	}
	// The burst is one token; a 429 must arrive within a few rapid
	// retries (the bucket refills at 1/s, far slower than this loop).
	var limited *http.Response
	for i := 0; i < 10 && limited == nil; i++ {
		if resp := get(); resp.StatusCode == 429 {
			limited = resp
		} else {
			resp.Body.Close()
		}
	}
	if limited == nil {
		t.Fatal("burst of 11 requests never answered 429")
	}
	defer limited.Body.Close()
	if ra := limited.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(limited.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("429 body not a JSON error: %v %q", err, e.Error)
	}
}

// TestWarmRestartEndToEnd exercises the full warm-restart workflow with
// the real binary over an fs store: ingest + query makes a session hot,
// SIGTERM saves the hot list, and a fresh -warm process serves the run
// as a cache hit before any query arrives.
func TestWarmRestartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	if _, err := repro.CreateStore(storeDir, repro.PaperSpec(), "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	p := startProvserve(t, bin, "-store", storeDir, "-ingest", "-warm")

	r, _ := repro.GenerateRun(repro.PaperSpec(), rand.New(rand.NewSource(8)), 150)
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if status, _ := putRunDoc(t, p.base, "hotrun", doc.String()); status != 200 {
		t.Fatal("ingest failed")
	}
	var reach struct {
		Reachable bool `json:"reachable"`
	}
	getJSON(t, p.base+"/reachable?run=hotrun&from=0&to=1", &reach) // hot now
	p.shutdown(t)

	// Restart warm: before any query, the session is already resident.
	p2 := startProvserve(t, bin, "-store", storeDir, "-warm")
	type health struct {
		Cache struct {
			Cached int   `json:"cached"`
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	var h health
	getJSON(t, p2.base+"/healthz", &h)
	if h.Cache.Cached != 1 || h.Cache.Misses != 1 {
		t.Fatalf("cache after warm start = %+v, want 1 preloaded session\nlog: %s", h.Cache, p2.log.String())
	}
	getJSON(t, p2.base+"/reachable?run=hotrun&from=0&to=1", &reach)
	getJSON(t, p2.base+"/healthz", &h)
	if h.Cache.Hits < 1 || h.Cache.Misses != 1 {
		t.Fatalf("first query after warm start was a cold load: %+v", h.Cache)
	}
}
