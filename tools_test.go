package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool executes one of the cmd/ tools via `go run` and returns its
// combined output. These are end-to-end integration tests of the
// binaries; skipped under -short.
func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test")
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func runToolExpectError(t *testing.T, tool string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test")
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", tool, args, out)
	}
	return string(out)
}

func TestToolPipeline(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")

	out := runTool(t, "provgen", "-paper", "-spec", specPath, "-run", runPath, "-size", "80", "-data", "-seed", "5")
	if !strings.Contains(out, "wrote specification") || !strings.Contains(out, "wrote run") {
		t.Fatalf("provgen output unexpected:\n%s", out)
	}
	if _, err := os.Stat(specPath); err != nil {
		t.Fatal(err)
	}

	out = runTool(t, "provquery", "-spec", specPath, "-run", runPath, "-stats", "-from", "a1", "-to", "h1", "-explain")
	for _, want := range []string{"labels: max", "a1 -> h1: reachable", "via: a1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("provquery output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, "provquery", "-spec", specPath, "-run", runPath, "-upstream", "h1", "-scheme", "Interval")
	if !strings.Contains(out, "was derived from") {
		t.Fatalf("provquery upstream output unexpected:\n%s", out)
	}

	out = runTool(t, "provquery", "-spec", specPath, "-run", runPath, "-affected", "x1")
	if !strings.Contains(out, "items depend on x1") {
		t.Fatalf("provquery affected output unexpected:\n%s", out)
	}
}

func TestToolProvbench(t *testing.T) {
	out := runTool(t, "provbench", "-list")
	for _, want := range []string{"table1", "fig12", "fig20", "online"} {
		if !strings.Contains(out, want) {
			t.Fatalf("provbench -list missing %q", want)
		}
	}
	csvDir := t.TempDir()
	out = runTool(t, "provbench", "-exp", "table1,fig12", "-quick",
		"-sizes", "100,400", "-queries", "2000", "-csv", csvDir)
	for _, want := range []string{"Table 1", "Figure 12", "QBLAST"} {
		if !strings.Contains(out, want) {
			t.Fatalf("provbench output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{"table1.csv", "fig12.csv"} {
		data, err := os.ReadFile(filepath.Join(csvDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Fatalf("%s has no data rows", f)
		}
	}
}

func TestToolErrors(t *testing.T) {
	out := runToolExpectError(t, "provbench", "-exp", "nope")
	if !strings.Contains(out, "unknown experiment") {
		t.Fatalf("provbench error message unexpected: %s", out)
	}
	out = runToolExpectError(t, "provgen")
	if !strings.Contains(out, "choose") {
		t.Fatalf("provgen error message unexpected: %s", out)
	}
	out = runToolExpectError(t, "provquery")
	if !strings.Contains(out, "required") {
		t.Fatalf("provquery error message unexpected: %s", out)
	}
}

func TestToolProvdot(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")
	runTool(t, "provgen", "-paper", "-spec", specPath, "-run", runPath, "-size", "40")
	out := runTool(t, "provdot", "-spec", specPath)
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "cluster_f") {
		t.Fatalf("spec DOT malformed:\n%s", out)
	}
	out = runTool(t, "provdot", "-spec", specPath, "-run", runPath, "-what", "run")
	if !strings.Contains(out, "fillcolor") {
		t.Fatalf("run DOT missing context coloring:\n%s", out)
	}
	out = runTool(t, "provdot", "-spec", specPath, "-run", runPath, "-what", "plan")
	if !strings.Contains(out, "shape=box") {
		t.Fatalf("plan DOT missing − boxes:\n%s", out)
	}
	out = runToolExpectError(t, "provdot", "-spec", specPath, "-what", "zzz")
	if !strings.Contains(out, "unknown -what") {
		t.Fatalf("provdot error unexpected: %s", out)
	}
}

func TestToolQueryInteractive(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")
	runTool(t, "provgen", "-paper", "-spec", specPath, "-run", runPath, "-size", "40")
	cmd := exec.Command("go", "run", "./cmd/provquery", "-spec", specPath, "-run", runPath, "-i")
	cmd.Stdin = strings.NewReader("a1 h1\nh1 a1\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("interactive mode failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "true") || !strings.Contains(string(out), "false") {
		t.Fatalf("interactive output unexpected:\n%s", out)
	}
}

func TestToolGenSynthetic(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "s.xml")
	out := runTool(t, "provgen", "-ng", "40", "-mg", "60", "-tgsize", "5", "-tgdepth", "3", "-spec", specPath)
	if !strings.Contains(out, "nG=40 mG=60 |TG|=5 [TG]=3") {
		t.Fatalf("synthetic parameters not reported:\n%s", out)
	}
	out = runTool(t, "provgen", "-standin", "EBI", "-spec", specPath)
	if !strings.Contains(out, "nG=29 mG=31") {
		t.Fatalf("EBI stand-in parameters wrong:\n%s", out)
	}
}
