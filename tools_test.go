package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
)

// runTool executes one of the cmd/ tools via `go run` and returns its
// combined output. These are end-to-end integration tests of the
// binaries; skipped under -short.
func runTool(t *testing.T, tool string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test")
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func runToolExpectError(t *testing.T, tool string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("integration test")
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", tool, args, out)
	}
	return string(out)
}

func TestToolPipeline(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")

	out := runTool(t, "provgen", "-paper", "-spec", specPath, "-run", runPath, "-size", "80", "-data", "-seed", "5")
	if !strings.Contains(out, "wrote specification") || !strings.Contains(out, "wrote run") {
		t.Fatalf("provgen output unexpected:\n%s", out)
	}
	if _, err := os.Stat(specPath); err != nil {
		t.Fatal(err)
	}

	out = runTool(t, "provquery", "-spec", specPath, "-run", runPath, "-stats", "-from", "a1", "-to", "h1", "-explain")
	for _, want := range []string{"labels: max", "a1 -> h1: reachable", "via: a1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("provquery output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, "provquery", "-spec", specPath, "-run", runPath, "-upstream", "h1", "-scheme", "Interval")
	if !strings.Contains(out, "was derived from") {
		t.Fatalf("provquery upstream output unexpected:\n%s", out)
	}

	out = runTool(t, "provquery", "-spec", specPath, "-run", runPath, "-affected", "x1")
	if !strings.Contains(out, "items depend on x1") {
		t.Fatalf("provquery affected output unexpected:\n%s", out)
	}
}

func TestToolProvbench(t *testing.T) {
	out := runTool(t, "provbench", "-list")
	for _, want := range []string{"table1", "fig12", "fig20", "online"} {
		if !strings.Contains(out, want) {
			t.Fatalf("provbench -list missing %q", want)
		}
	}
	csvDir := t.TempDir()
	out = runTool(t, "provbench", "-exp", "table1,fig12", "-quick",
		"-sizes", "100,400", "-queries", "2000", "-csv", csvDir)
	for _, want := range []string{"Table 1", "Figure 12", "QBLAST"} {
		if !strings.Contains(out, want) {
			t.Fatalf("provbench output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{"table1.csv", "fig12.csv"} {
		data, err := os.ReadFile(filepath.Join(csvDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Fatalf("%s has no data rows", f)
		}
	}
}

// TestToolProvserve builds the provserve binary, points it at a sharded
// store created through the public Store API (exercising the -store URL
// plumbing), and exercises the HTTP endpoints end to end.
func TestToolProvserve(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()

	// A real on-disk store, sharded across two directories, with one
	// labeled run.
	s := repro.PaperSpec()
	shardDirs := []string{filepath.Join(dir, "shardA"), filepath.Join(dir, "shardB")}
	storeURL := "shard://" + strings.Join(shardDirs, ",")
	st, err := repro.NewShardedStore(shardDirs, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(2)), 200)
	if err := st.PutRun("r1", r, nil, repro.TCM); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "provserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/provserve").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserving a port by listen-then-close races with other processes
	// grabbing it back, so retry the whole launch on a fresh port if the
	// daemon dies before becoming healthy.
	var base string
	var cmd *exec.Cmd
	var cmdExited chan struct{} // closed by the per-attempt Wait goroutine
	var logBuf bytes.Buffer
	for attempt := 0; ; attempt++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()

		logBuf.Reset()
		cmd = exec.Command(bin, "-store", storeURL, "-addr", addr)
		cmd.Stdout, cmd.Stderr = &logBuf, &logBuf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan struct{})
		cmdExited = exited
		go func(c *exec.Cmd) { c.Wait(); close(exited) }(cmd)
		isDead := func() bool {
			select {
			case <-exited:
				return true
			default:
				return false
			}
		}

		base = "http://" + addr
		healthy := false
		for deadline := time.Now().Add(10 * time.Second); !healthy && !isDead() && time.Now().Before(deadline); {
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				healthy = true
			} else {
				time.Sleep(50 * time.Millisecond)
			}
		}
		if healthy {
			break
		}
		cmd.Process.Kill()
		<-exited
		if attempt >= 2 {
			t.Fatalf("provserve never became healthy after %d attempts\nlog: %s", attempt+1, logBuf.String())
		}
	}
	defer func() {
		cmd.Process.Kill()
		<-cmdExited // the attempt's goroutine owns cmd.Wait
	}()

	var health struct {
		Store struct {
			Kind   string `json:"kind"`
			Shards []any  `json:"shards"`
		} `json:"store"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Store.Kind != "shard" || len(health.Store.Shards) != 2 {
		t.Fatalf("/healthz store = %+v, want shard with 2 children", health.Store)
	}

	var reach struct {
		Reachable bool `json:"reachable"`
	}
	getJSON(t, base+"/reachable?run=r1&from=a1&to=h1", &reach)
	if !reach.Reachable {
		t.Fatal("h1 should depend on a1 (source reaches sink)")
	}

	var batch struct {
		Count   int    `json:"count"`
		Results []bool `json:"results"`
	}
	body := `{"run":"r1","pairs":[["a1","h1"],["h1","a1"]]}`
	bResp, err := http.Post(base+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer bResp.Body.Close()
	if bResp.StatusCode != 200 {
		t.Fatalf("/batch: status %d", bResp.StatusCode)
	}
	if err := json.NewDecoder(bResp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if batch.Count != 2 || !batch.Results[0] || batch.Results[1] {
		t.Fatalf("/batch = %+v, want [true false]", batch)
	}

	var lin struct {
		Count int `json:"count"`
	}
	getJSON(t, fmt.Sprintf("%s/lineage?run=r1&vertex=h1&dir=up", base), &lin)
	h1, ok := repro.NewNamer(r).Vertex("h1")
	if !ok {
		t.Fatal("run has no vertex h1")
	}
	if want := len(repro.Upstream(r, h1)); lin.Count != want {
		t.Fatalf("lineage(h1, up) = %d vertices, want %d", lin.Count, want)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestToolQueryPut exercises provquery's -put mode end to end: PUT a
// generated run XML to a live ingest-enabled provserve, then smoke-test
// the ingested run with a /reachable query over the wire.
func TestToolQueryPut(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	s := repro.PaperSpec()
	seedDir := filepath.Join(dir, "seed")
	if _, err := repro.CreateStore(seedDir, s, "paper"); err != nil {
		t.Fatal(err)
	}
	runPath := filepath.Join(dir, "r.xml")
	r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(6)), 150)
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(runPath, doc.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := buildProvserve(t, dir)
	p := startProvserve(t, bin, "-store", "mem://"+seedDir, "-ingest")
	out := runTool(t, "provquery", "-put", p.base, "-run", runPath, "-as", "r9", "-from", "a1", "-to", "h1")
	for _, want := range []string{"stored r9", "SKL2 snapshot", "a1 -> h1: reachable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("provquery -put output missing %q:\n%s", want, out)
		}
	}
	out = runToolExpectError(t, "provquery", "-put", p.base, "-run", runPath, "-as", "..bad")
	if !strings.Contains(out, "invalid run name") {
		t.Fatalf("provquery -put invalid name error unexpected:\n%s", out)
	}
	out = runToolExpectError(t, "provquery", "-put", p.base)
	if !strings.Contains(out, "-run") {
		t.Fatalf("provquery -put without -run error unexpected:\n%s", out)
	}

	// -delete retires the run just ingested; a repeat delete reports the
	// 404 instead of pretending success.
	out = runTool(t, "provquery", "-delete", p.base, "-run", "r9")
	if !strings.Contains(out, "deleted r9") {
		t.Fatalf("provquery -delete output unexpected:\n%s", out)
	}
	out = runToolExpectError(t, "provquery", "-delete", p.base, "-run", "r9")
	if !strings.Contains(out, "404") {
		t.Fatalf("provquery -delete of a deleted run should report 404:\n%s", out)
	}
	out = runToolExpectError(t, "provquery", "-delete", p.base)
	if !strings.Contains(out, "-run") {
		t.Fatalf("provquery -delete without -run error unexpected:\n%s", out)
	}
}

// TestToolQueryStore exercises provquery's -store mode: queries answered
// from a store's persisted snapshot labels, across fs and mem store URLs.
func TestToolQueryStore(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	s := repro.PaperSpec()
	st, err := repro.CreateStore(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(3)), 120)
	rng := rand.New(rand.NewSource(4))
	if err := st.PutRun("r1", r, repro.RandomData(r, rng, 1.2, 0.3), repro.TCM); err != nil {
		t.Fatal(err)
	}

	for _, url := range []string{dir, "fs://" + dir, "mem://" + dir} {
		out := runTool(t, "provquery", "-store", url, "-run", "r1", "-stats", "-from", "a1", "-to", "h1")
		for _, want := range []string{"labels: max", "a1 -> h1: reachable"} {
			if !strings.Contains(out, want) {
				t.Fatalf("provquery -store %s output missing %q:\n%s", url, want, out)
			}
		}
	}

	out := runToolExpectError(t, "provquery", "-store", dir, "-run", "missing", "-from", "a1", "-to", "h1")
	if !strings.Contains(out, "missing") {
		t.Fatalf("provquery unknown stored run error unexpected:\n%s", out)
	}
	out = runToolExpectError(t, "provquery", "-store", dir)
	if !strings.Contains(out, "-run") {
		t.Fatalf("provquery -store without -run error unexpected:\n%s", out)
	}
}

func TestToolErrors(t *testing.T) {
	out := runToolExpectError(t, "provbench", "-exp", "nope")
	if !strings.Contains(out, "unknown experiment") {
		t.Fatalf("provbench error message unexpected: %s", out)
	}
	out = runToolExpectError(t, "provgen")
	if !strings.Contains(out, "choose") {
		t.Fatalf("provgen error message unexpected: %s", out)
	}
	out = runToolExpectError(t, "provquery")
	if !strings.Contains(out, "required") {
		t.Fatalf("provquery error message unexpected: %s", out)
	}
}

func TestToolProvdot(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")
	runTool(t, "provgen", "-paper", "-spec", specPath, "-run", runPath, "-size", "40")
	out := runTool(t, "provdot", "-spec", specPath)
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "cluster_f") {
		t.Fatalf("spec DOT malformed:\n%s", out)
	}
	out = runTool(t, "provdot", "-spec", specPath, "-run", runPath, "-what", "run")
	if !strings.Contains(out, "fillcolor") {
		t.Fatalf("run DOT missing context coloring:\n%s", out)
	}
	out = runTool(t, "provdot", "-spec", specPath, "-run", runPath, "-what", "plan")
	if !strings.Contains(out, "shape=box") {
		t.Fatalf("plan DOT missing − boxes:\n%s", out)
	}
	out = runToolExpectError(t, "provdot", "-spec", specPath, "-what", "zzz")
	if !strings.Contains(out, "unknown -what") {
		t.Fatalf("provdot error unexpected: %s", out)
	}
}

func TestToolQueryInteractive(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")
	runTool(t, "provgen", "-paper", "-spec", specPath, "-run", runPath, "-size", "40")
	cmd := exec.Command("go", "run", "./cmd/provquery", "-spec", specPath, "-run", runPath, "-i")
	cmd.Stdin = strings.NewReader("a1 h1\nh1 a1\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("interactive mode failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "true") || !strings.Contains(string(out), "false") {
		t.Fatalf("interactive output unexpected:\n%s", out)
	}
}

func TestToolGenSynthetic(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "s.xml")
	out := runTool(t, "provgen", "-ng", "40", "-mg", "60", "-tgsize", "5", "-tgdepth", "3", "-spec", specPath)
	if !strings.Contains(out, "nG=40 mG=60 |TG|=5 [TG]=3") {
		t.Fatalf("synthetic parameters not reported:\n%s", out)
	}
	out = runTool(t, "provgen", "-standin", "EBI", "-spec", specPath)
	if !strings.Contains(out, "nG=29 mG=31") {
		t.Fatalf("EBI stand-in parameters wrong:\n%s", out)
	}
}
