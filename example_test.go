package repro_test

import (
	"fmt"
	"math/rand"

	"repro"
)

// ExampleLabelRun labels the paper's Figure 3 run and answers the three
// provenance queries from the introduction.
func ExampleLabelRun() {
	s := repro.PaperSpec()
	r, _ := repro.PaperRun(s)
	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		panic(err)
	}
	find := func(name string) repro.VertexID {
		for v := 0; v < r.NumVertices(); v++ {
			if r.NameOf(repro.VertexID(v)) == name {
				return repro.VertexID(v)
			}
		}
		panic(name)
	}
	fmt.Println(l.Reachable(find("b1"), find("c3"))) // parallel fork copies
	fmt.Println(l.Reachable(find("c1"), find("b2"))) // successive loop iterations
	fmt.Println(l.Reachable(find("b1"), find("c1"))) // same copy, via skeleton
	// Output:
	// false
	// true
	// true
}

// ExampleNewSpecBuilder validates a small specification and reports its
// fork-and-loop hierarchy.
func ExampleNewSpecBuilder() {
	b := repro.NewSpecBuilder()
	b.Chain("start", "align", "score", "finish")
	b.Fork("start", "finish", "align", "score") // parallel alignment branch
	b.Loop("align", "score")                    // iterate until converged
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(s.NumVertices(), s.NumEdges(), len(s.Subgraphs), s.Hier.MaxDepth)
	// Output:
	// 4 3 2 3
}

// ExampleGenerateRun shows that runs can be arbitrarily larger than
// their specification while labels stay logarithmic.
func ExampleGenerateRun() {
	s := repro.PaperSpec()
	r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(7)), 50_000)
	l, err := repro.LabelRun(r, repro.BFS)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.NumVertices() > 10_000)
	fmt.Println(l.MaxLabelBits() < 64)
	// Output:
	// true
	// true
}
