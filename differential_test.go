package repro_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro"
)

// TestQuickAllLabelingPathsAgree is the capstone differential test: for
// random runs over random specifications, four independent labeling
// paths must give identical answers to every sampled query, and those
// answers must match direct graph search:
//
//  1. static labeling with the plan reconstructed from the graph,
//  2. static labeling with the materializer's ground-truth plan,
//  3. online labeling replayed from the engine event log,
//  4. a label snapshot serialized and restored.
func TestQuickAllLabelingPathsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s *repro.Spec
		if seed%2 == 0 {
			s = repro.PaperSpec()
		} else {
			var err error
			s, err = repro.SynthesizeSpec(rng, 20+rng.Intn(30), 30+rng.Intn(30), 4, 3)
			if err != nil {
				return true // infeasible draw
			}
		}
		r, truth := repro.GenerateRun(s, rng, 100+rng.Intn(400))
		schemes := repro.SpecSchemes()
		skel, err := schemes[rng.Intn(len(schemes))].Build(s.Graph)
		if err != nil {
			return false
		}

		static, err := repro.LabelWithSkeleton(r, skel)
		if err != nil {
			t.Logf("seed %d: static: %v", seed, err)
			return false
		}
		withPlan, err := repro.LabelWithPlan(r, truth, skel)
		if err != nil {
			return false
		}
		online, err := repro.ReplayEvents(s, skel, repro.EmitEvents(r, truth))
		if err != nil {
			t.Logf("seed %d: online: %v", seed, err)
			return false
		}
		var buf bytes.Buffer
		if _, err := static.WriteTo(&buf); err != nil {
			return false
		}
		snap, err := repro.ReadLabelSnapshot(&buf)
		if err != nil {
			return false
		}
		restored, err := snap.Bind(skel)
		if err != nil {
			return false
		}

		n := r.NumVertices()
		for q := 0; q < 400; q++ {
			u := repro.VertexID(rng.Intn(n))
			v := repro.VertexID(rng.Intn(n))
			want := r.Graph.ReachableBFS(u, v)
			if static.Reachable(u, v) != want ||
				withPlan.Reachable(u, v) != want ||
				online.Reachable(u, v) != want ||
				restored.Reachable(u, v) != want {
				t.Logf("seed %d: divergence at (%d,%d)", seed, u, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
