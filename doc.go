// Package repro is a production-quality Go implementation of the
// skeleton-based reachability labeling scheme for workflow provenance of
// Bao, Davidson, Khanna and Roy, "An Optimal Labeling Scheme for Workflow
// Provenance Using Skeleton Labels" (SIGMOD 2010).
//
// # Overview
//
// Scientific workflow systems answer provenance queries ("does this
// output depend on that input?") by reachability tests over the run DAG.
// General DAG reachability labels need linear-length labels, but workflow
// runs are not arbitrary DAGs: each run derives from a fixed
// specification by replicating fork subgraphs in parallel and loop
// subgraphs in series. This library exploits that structure. It labels
// the (small) specification once with any reachability scheme — the
// skeleton labels — and labels each run with three preorder positions of
// the vertex's fork/loop context in the run's execution plan plus a
// reference to the skeleton label. For a fixed specification the result
// is optimal: logarithmic-length labels built in linear time answering
// queries in constant time.
//
// # Quick start
//
//	b := repro.NewSpecBuilder()
//	b.Chain("a", "b", "c", "h")
//	b.Chain("a", "d", "e", "f", "g", "h")
//	b.Fork("a", "h", "b", "c")
//	b.Loop("b", "c")
//	spec, err := b.Build()
//	...
//	run, _ := repro.GenerateRun(spec, rand.New(rand.NewSource(1)), 10_000)
//	labeled, err := repro.LabelRun(run, repro.TCM)
//	reachable := labeled.Reachable(u, v)
//
// See examples/ for complete programs and cmd/provbench for the paper's
// full experimental suite.
package repro
