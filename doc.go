// Package repro is a production-quality Go implementation of the
// skeleton-based reachability labeling scheme for workflow provenance of
// Bao, Davidson, Khanna and Roy, "An Optimal Labeling Scheme for Workflow
// Provenance Using Skeleton Labels" (SIGMOD 2010).
//
// # Overview
//
// Scientific workflow systems answer provenance queries ("does this
// output depend on that input?") by reachability tests over the run DAG.
// General DAG reachability labels need linear-length labels, but workflow
// runs are not arbitrary DAGs: each run derives from a fixed
// specification by replicating fork subgraphs in parallel and loop
// subgraphs in series. This library exploits that structure. It labels
// the (small) specification once with any reachability scheme — the
// skeleton labels — and labels each run with three preorder positions of
// the vertex's fork/loop context in the run's execution plan plus a
// reference to the skeleton label. For a fixed specification the result
// is optimal: logarithmic-length labels built in linear time answering
// queries in constant time.
//
// # Quick start
//
//	b := repro.NewSpecBuilder()
//	b.Chain("a", "b", "c", "h")
//	b.Chain("a", "d", "e", "f", "g", "h")
//	b.Fork("a", "h", "b", "c")
//	b.Loop("b", "c")
//	spec, err := b.Build()
//	...
//	run, _ := repro.GenerateRun(spec, rand.New(rand.NewSource(1)), 10_000)
//	labeled, err := repro.LabelRun(run, repro.TCM)
//	reachable := labeled.Reachable(u, v)
//
// # Serving stored provenance
//
// Labels are computed once at ingest and then serve queries forever:
// persist labeled runs with a Store and answer reachability over HTTP
// with the concurrent query service (an LRU session cache keeps hot runs
// in memory, so cache-hit queries do zero disk I/O):
//
//	st, _ := repro.CreateStore("provstore", spec, "my-workflow")
//	_ = st.PutRun("r1", run, nil, repro.TCM)
//	log.Fatal(repro.Serve(":8080", repro.ServerConfig{Store: st}))
//
// or standalone: `provserve -store provstore`, then
//
//	curl 'localhost:8080/reachable?run=r1&from=b1&to=c3'
//	curl -d '{"run":"r1","pairs":[["b1","c3"],["c1","b2"]]}' localhost:8080/batch
//
// See examples/ for complete programs, cmd/provbench for the paper's
// full experimental suite, and cmd/provserve for the query daemon.
package repro
