// Package repro is a production-quality Go implementation of the
// skeleton-based reachability labeling scheme for workflow provenance of
// Bao, Davidson, Khanna and Roy, "An Optimal Labeling Scheme for Workflow
// Provenance Using Skeleton Labels" (SIGMOD 2010).
//
// # Overview
//
// Scientific workflow systems answer provenance queries ("does this
// output depend on that input?") by reachability tests over the run DAG.
// General DAG reachability labels need linear-length labels, but workflow
// runs are not arbitrary DAGs: each run derives from a fixed
// specification by replicating fork subgraphs in parallel and loop
// subgraphs in series. This library exploits that structure. It labels
// the (small) specification once with any reachability scheme — the
// skeleton labels — and labels each run with three preorder positions of
// the vertex's fork/loop context in the run's execution plan plus a
// reference to the skeleton label. For a fixed specification the result
// is optimal: logarithmic-length labels built in linear time answering
// queries in constant time.
//
// # Quick start
//
//	b := repro.NewSpecBuilder()
//	b.Chain("a", "b", "c", "h")
//	b.Chain("a", "d", "e", "f", "g", "h")
//	b.Fork("a", "h", "b", "c")
//	b.Loop("b", "c")
//	spec, err := b.Build()
//	...
//	run, _ := repro.GenerateRun(spec, rand.New(rand.NewSource(1)), 10_000)
//	labeled, err := repro.LabelRun(run, repro.TCM)
//	reachable := labeled.Reachable(u, v)
//
// # Serving stored provenance
//
// Labels are computed once at ingest and then serve queries forever:
// persist labeled runs with a Store and answer reachability over HTTP
// with the concurrent query service (an LRU session cache keeps hot runs
// in memory, so cache-hit queries do zero backend I/O):
//
//	st, _ := repro.CreateStore("provstore", spec, "my-workflow")
//	_ = st.PutRun("r1", run, nil, repro.TCM)
//	log.Fatal(repro.Serve(":8080", repro.ServerConfig{Store: st}))
//
// or standalone: `provserve -store provstore`, then
//
//	curl 'localhost:8080/reachable?run=r1&from=b1&to=c3'
//	curl -d '{"run":"r1","pairs":[["b1","c3"],["c1","b2"]]}' localhost:8080/batch
//
// # The write path: remote ingest
//
// With ServerConfig.EnableIngest (or `provserve -ingest`) the server
// also accepts new runs over HTTP — the paper's dynamic-capture setting,
// where runs of a fixed specification arrive continuously and must
// become queryable without relabeling anything already stored:
//
//	curl -X PUT --data-binary @run.xml localhost:8080/runs/r2
//	provquery -put http://localhost:8080 -run run.xml -as r2 -from b1 -to c3
//
// The body is the xmlio run document (data items inline). The server
// decodes and validates it against the store's specification, labels it
// under the serving scheme, persists it through store.PutRun, refreshes
// the session cache, and answers with the stored snapshot's version and
// size; the very next /reachable, /batch or /lineage query sees the new
// run. PUT of an existing name overwrites it: the server serializes
// same-name writes and loads on a per-name lock, so queries through
// this server see the complete old run or the complete new run, never a
// torn mix, while distinct names ingest in parallel. (Processes writing
// the same store name from outside the server are the deployment's to
// serialize, per the StoreBackend contract.)
//
// # Streaming ingest: live runs over an event log
//
// With ServerConfig.EnableStream (or `provserve -stream`) a run can be
// ingested while the workflow executes instead of as one post-hoc
// document. POST /runs/{name}/events appends a batch of engine events
// to a live run that answers /reachable, /batch and /lineage
// immediately, GET /runs/{name} reports its progress, and POST
// /runs/{name}/finish seals it into a stored run indistinguishable
// from a PUT ingest — the differential tests assert byte-identical
// query answers between the two paths.
//
// The wire format is the line-oriented engine event log (EmitEvents,
// WriteEventLog, ReadEventLog):
//
//	copy 3 parent 1 hnode 7    the plan expands hierarchy node 7 as copy 3
//	exec b copy 3              module b executes inside copy 3
//
// Each append carries the sequence number of its first event
// (?offset=N; omit it to append at the current cursor). The cursor
// makes retries idempotent: events the server already holds are
// deduplicated against history and only the surplus applies; a batch
// past the cursor is a gap and a batch contradicting history is a
// conflict, both answered 409 with the current cursor so a client
// resyncs with one status GET. `provquery -append <base-url> -run
// <log.events> -as <name>` implements that client loop, and `provquery
// -finish` seals the run.
//
// Durability is write-ahead: an accepted batch is appended to a
// per-run event-log blob (Backend.AppendEventLog) before it is
// acknowledged or applied, and every CheckpointEvery events
// (`-checkpoint-every`, default 256) the live labeler is checkpointed
// as an SKL2 snapshot, so crash recovery replays at most checkpoint +
// log tail and no acknowledged event is ever lost — a SIGKILL
// mid-stream followed by a restart resumes exactly at the acknowledged
// cursor. Live-session gauges (open sessions, events appended,
// renumbers, replays, checkpoints, checkpoint lag) ride on /healthz
// under "live".
//
// # Regular path queries
//
// POST /rpq generalizes /reachable from "is there a path" to "is
// there a path whose module labels spell this regular expression". A
// path v0 → … → vk spells the module labels of v1..vk — the start
// vertex contributes nothing — so the empty path from a vertex to
// itself spells the empty word, and a pattern matches the pair (u, v)
// iff some u→v path spells a word in its language. The pattern
// grammar (internal/rpq) has module names and the wildcard "." as
// atoms, whitespace concatenation, "|" alternation, "*"/"+"/"?"
// quantifiers and "()" grouping; an unknown module name parses but
// never matches.
//
// Evaluation compiles the pattern to a Thompson NFA and walks the
// (vertex, state) product graph breadth-first with two bounds. First,
// the NFA is determinized lazily into a DFA with a hard state budget
// (ServerConfig.RPQMaxDFAStates, default 4096): each graph step costs
// one memoized DFA transition, and a pattern whose subset construction
// would exceed the budget is rejected as a client error rather than
// growing without bound. Second — the label-pruning guarantee — a
// product state (y, q) is never expanded unless y == to or the
// skeleton labels certify Reachable(y, to): every vertex the evaluator
// touches lies on some u→v path, so the walk explores the subgraph
// between the endpoints instead of everything downstream of u, at one
// constant-time label probe per edge. Pruning never changes answers,
// only work: a deliberately naive automaton-times-BFS oracle
// (dag.MatchAutomaton, no labels involved) and the production engine
// are pinned to identical verdicts by TestRPQDifferential across
// randomized runs and patterns, and TestRPQEndToEnd extends the pin
// over the wire — including live streaming sessions, which answer
// /rpq as soon as the streamed prefix describes a complete run (409
// before that) and byte-identically before and after /finish.
//
// # Run lifecycle: create, overwrite, delete, retention
//
// With deletion the Backend interface covers the full CRUD cycle, and
// each edge carries an ordering guarantee:
//
//   - Create/overwrite (Store.PutRun, PUT /runs/{name}): the label
//     snapshot becomes readable no later than the run document
//     (labels-before-document), so a reader that can see a run can
//     always read its labels. On disk the .skl is durably renamed into
//     place before the .xml.
//   - Delete (Store.DeleteRun, DELETE /runs/{name}): the mirror — the
//     document becomes unreadable no earlier than the labels
//     (document-before-labels removal), so a still-visible run never
//     loses its snapshot mid-delete. On disk the .xml is durably
//     removed before the .skl.
//   - Crash debris: either ordering can strand an orphaned .skl with no
//     sibling .xml; the fs backend sweeps those on store open, on the
//     first run listing (which on a shard set reaches every child), and
//     on delete (throttled to once per second, so bulk retention sweeps
//     stay linear), so they never accumulate.
//   - Cache coherence: DELETE holds the same per-name write lock as
//     PUT across the backend delete and the session-cache invalidation,
//     and the cache fences in-flight loads by generation — a load that
//     overlapped a delete or overwrite can hand its (stale) session to
//     the requests that were already waiting on it, but can never land
//     it in the cache. The very next query after a DELETE answers 404.
//   - Deleting is gated with the write paths (EnableIngest / -ingest or
//     EnableStream / -stream): a read-only server answers 403; a
//     missing run answers 404. With streaming enabled, DELETE also
//     aborts a live stream under the name, clearing its event log and
//     checkpoint so the name can stream again from offset zero.
//
// Retention builds on deletion: `provserve -ingest -max-runs N` (or
// ServerConfig.MaxRuns / Server.EnforceMaxRuns in-process) sweeps after
// every ingest, deleting least-valuable runs until at most N remain —
// cold (never-queried) runs go first, then cached sessions in LRU
// order, and the just-ingested run is never its own victim. A
// long-lived ingesting server therefore holds a bounded working set
// instead of accumulating runs forever. `provquery -delete <base-url>
// -run <name>` is the command-line client for one-off deletion. The
// warm-restart hot list participates too: Store.WriteHotList prunes
// names the store no longer holds, and a stale .hot entry (deleted
// behind the store's back) costs a logged skip at warm preload, never a
// failed startup. store.Copy skips runs deleted mid-copy, so retention
// can run against a store that is concurrently being replicated.
//
// # Admission control
//
// Every endpoint but /healthz sits behind an admission layer: at most
// MaxInflight requests execute concurrently, up to QueueDepth more wait
// for a slot, and everything beyond that — or past an optional
// per-client token-bucket rate (RatePerClient/RateBurst, keyed by
// X-Client-ID or remote host) — is answered 429 with a Retry-After the
// client can honor. A cold-cache stampede or an ingest burst therefore
// degrades into queued-then-shed load with bounded memory instead of
// unbounded in-flight labelings. /healthz reports the gauges
// (inflight, queued, peak, rejects) alongside cache and store stats.
//
// # Warm restarts
//
// `provserve -warm` closes the loop between restarts: on graceful
// shutdown the server saves which sessions were resident in the cache
// (the hot list, a meta blob on the store written through the
// StoreBackend interface), and the next `-warm` start preloads exactly
// those sessions before accepting traffic — the busiest runs answer
// their first post-restart query as a cache hit, not a cold load.
// In-process, Server.SaveHotList and Server.WarmFromHotList expose the
// same steps.
//
// # Storage backends
//
// A Store is backend-agnostic logic (validation, labeling, snapshot
// binding) over the blob-level StoreBackend interface, so the same
// labeling and query layer runs on interchangeable substrates. Three
// backends ship with the library, openable by URL with OpenStoreURL and
// `provserve -store <url>`:
//
//	fs://dir          one directory on disk (a bare path means the same);
//	                  writes are atomic temp-file+rename
//	mem://dir         the fs store at dir preloaded into RAM: ephemeral
//	                  serving with zero disk I/O even on cache misses
//	shard://a,b,...   one store hash-routed across many directories (or
//	                  disks): `provserve -store 'shard://a,b'` fronts all
//	                  of them at once
//
// In-process, NewMemStore builds an ephemeral store for tests and demos,
// NewShardedStore creates a shard set, and NewStoreOverBackend accepts
// any custom StoreBackend (e.g. a future object-store layout) — the
// conformance suite in internal/store/backendtest defines the contract.
//
// # Failure model
//
// Backends distinguish transient faults from permanent ones with one
// sentinel: an error wrapping store.ErrTransient (test with
// IsTransientStoreError) says the operation may succeed if simply
// retried, and — the load-bearing half of the contract — that a
// transient failure of a non-idempotent operation left no partial side
// effect behind, so retrying is uniformly safe with no read-back.
// Two storage-specific failures calibrate the line:
//
//   - A torn event-log append (power cut mid-write) is NOT transient:
//     a prefix of the batch may have landed, so blind retry could
//     duplicate events. The backend surfaces it as a permanent error
//     and stream recovery — which replays only complete, parseable log
//     lines — owns the repair.
//   - A partial run write IS transient: run snapshots are written
//     whole-blob, so the overwrite on retry heals any debris.
//
// WithRetryBackend (store.WithRetry; `provserve -retry N`, `provload
// -retry N`) wraps any backend in that contract: transient errors are
// retried with jittered exponential backoff, permanent errors pass
// through untouched, and retry/giveup counters ride on Stat().
//
// Above retries sits the server's circuit breaker
// (ServerConfig.BreakerThreshold/BreakerCooldown, `provserve
// -breaker-threshold`): after N consecutive transient backend failures
// the server flips into degraded read-only mode — queries over
// cache-resident and live sessions keep answering, while writes and
// cache-miss reads answer 503 with a Retry-After instead of hammering
// a sick backend. A background probe re-tests the backend every
// cooldown and any non-transient outcome heals the breaker; /healthz
// reports "degraded" plus breaker state, consecutive-failure count and
// probe totals throughout.
//
// Streaming ingest adds two recovery knobs: `-recover-at-start`
// (Server.RecoverStreams) rebuilds every interrupted live stream
// before the listener opens — finished runs win over stale stream
// state, which is cleaned — instead of paying replay latency on first
// touch, and `-stream-ttl` (Server.SweepIdleStreams) expires live
// streams idle past the TTL, dropping their session, event log and
// checkpoint so abandoned streams cannot pin memory and names forever.
// The provquery -append client retries transient 503/network failures
// with capped backoff, honoring Retry-After and resyncing its cursor
// from the server's status GET, so an interrupted stream resumes
// without duplicating events.
//
// The whole stack is exercised by fault injection: the fault:// store
// URL (internal/store/faultinject; composable over any inner URL, e.g.
// `fault://rate=0.05,seed=1/mem://./provstore`) wraps a backend with a
// programmable fault plan — per-op transient error rates, injected
// latency, torn append tails, partial run writes, fail-N-then-succeed
// scripts, deterministically seeded. The chaos suite (TestChaos, `make
// chaos-smoke` in CI) drives a server over a faulty backend with
// concurrent reads, ingests, deletes and streams, then proves no
// acknowledged event was lost and query answers are byte-identical to
// a fault-free twin once the faults stop.
//
// # Snapshot wire format versioning
//
// Stored label snapshots carry a version magic. Writers emit SKL2, a
// columnar block format (the four label components are stored as
// independently compressed columns — constant, delta-varint or
// fixed-width per block) that bulk-decodes in a single pass; readers
// auto-detect the version, so stores written by pre-SKL2 versions keep
// loading byte-identically and store.Copy replicates either format
// untouched. The policy: new versions may only be added behind a new
// magic, readers accept every version ever shipped, and
// Labeling.WriteToVersion can pin SKL1 output for rollback
// compatibility. On the paper's Fig-13 run sizes SKL2 cuts snapshots
// from ~6.8 to ~4.0 bytes/label and decodes ~3.7x faster than the SKL1
// streaming reader (see BENCH_3.json; tracked by
// BenchmarkSnapshotDecode).
//
// # Benchmarks and the perf trend gate
//
// Serving-path performance is tracked across PRs as a lineage of JSON
// artifacts in the provbench.v1 schema:
//
//	{
//	  "schema": "provbench.v1",
//	  "go": "go1.24.x linux/amd64",
//	  "benches": {
//	    "ServerBatchReachable/pairs=1024": {
//	      "ns_op": 107131, "b_op": 10034, "allocs_op": 22, "mb_s": 0
//	    },
//	    ...
//	  },
//	  "baseline": { ...same shape, the pre-PR measurement, embedded... }
//	}
//
// Each bench name maps to the best (minimum ns/op) of -count=3 runs;
// mb_s is nonzero only for throughput-reporting benchmarks. bench/
// holds one checked-in BASELINE_<n>.json per PR — the measurement taken
// on the pre-PR tree — and `make bench-json` reproduces the current
// tree's numbers as BENCH_<n>.json with that baseline embedded
// verbatim, via cmd/benchjson parsing `go test -bench` output.
//
// cmd/benchtrend (and `make trend`) reads the whole lineage, renders
// per-metric trajectory tables (TREND.md), and gates: the current run
// fails if any benchmark regresses past BOTH a relative tolerance and
// an absolute noise floor — ns/op +50% and >50ns (wall time is noisy on
// shared runners), B/op +25% and >64B, allocs/op +10% and >2 allocs
// (deterministic, the real teeth). Benchmarks missing from either side
// (added, renamed, retired) are reported but never fail the gate, so
// refactors don't have to ship baseline edits in the same change. CI
// runs the gate on every push and uploads BENCH_<n>.json and TREND.md
// as artifacts; `make ci` mirrors the rest of the pipeline locally.
//
// # Static analysis: mechanically enforced invariants
//
// The conventions those guarantees rest on — %w wrapping inside the
// store (so errors.Is transient classification survives), documented
// mutex guards, route/counter registration on /healthz, seeded
// randomness, never-dropped storage errors — are enforced by a
// stdlib-only static-analysis suite: `make lint` / cmd/provlint, with
// TestLintRepoClean running the same analyzers as a tier-1 test.
// Exceptions are declared at the site as
// `//provlint:ignore <analyzer> <reason>` with a mandatory reason.
// internal/lint's package documentation ("# Enforced invariants")
// explains why each invariant is load-bearing.
//
// For macro numbers, cmd/provload drives a real server (or a
// self-served in-process one) with open-loop multi-tenant load —
// zipfian run popularity, configurable traffic mix — and emits latency
// percentiles, throughput and SLO verdicts (provload.v1 JSON);
// `make load-smoke` is the CI-sized run.
//
// See examples/ for complete programs, cmd/provbench for the paper's
// full experimental suite, cmd/provserve for the query daemon, and
// cmd/provload + cmd/benchtrend for the performance tooling.
package repro
