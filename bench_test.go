// Benchmarks mirroring the paper's evaluation, one per table/figure (see
// DESIGN.md's per-experiment index). The provbench command produces the
// full sweeps; these testing.B benches exercise each measurement kernel
// at a representative size so `go test -bench=.` validates every code
// path and reports per-operation costs.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro"
)

// benchRun builds a deterministic run of roughly the given size over the
// QBLAST stand-in.
func benchRun(b *testing.B, target int) *repro.Run {
	b.Helper()
	s, err := repro.StandInSpec("QBLAST", 1)
	if err != nil {
		b.Fatal(err)
	}
	r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(int64(target))), target)
	return r
}

// BenchmarkTable1SpecLabel labels each of the six Table-1 specifications
// with every skeleton scheme (Table 1 + Section 7).
func BenchmarkTable1SpecLabel(b *testing.B) {
	for _, name := range []string{"EBI", "PubMed", "QBLAST", "BioAID", "ProScan", "ProDisc"} {
		s, err := repro.StandInSpec(name, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := repro.TCM.Build(s.Graph); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12LabelLength measures the full labeling pipeline whose
// output Figure 12 reports (label bits are reported as metrics).
func BenchmarkFig12LabelLength(b *testing.B) {
	r := benchRun(b, 10_000)
	skel, err := repro.TCM.Build(r.Spec.Graph)
	if err != nil {
		b.Fatal(err)
	}
	var maxBits int
	var avgBits float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := repro.LabelWithSkeleton(r, skel)
		if err != nil {
			b.Fatal(err)
		}
		maxBits = l.MaxLabelBits()
		avgBits = l.AvgLabelBits()
	}
	b.ReportMetric(float64(maxBits), "maxbits")
	b.ReportMetric(avgBits, "avgbits")
}

// BenchmarkFig13Construction measures construction time in both settings
// of Figure 13, across run sizes (linear scaling).
func BenchmarkFig13Construction(b *testing.B) {
	s, err := repro.StandInSpec("QBLAST", 1)
	if err != nil {
		b.Fatal(err)
	}
	skel, err := repro.TCM.Build(s.Graph)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1000, 4000, 16000} {
		r, truth := repro.GenerateRun(s, rand.New(rand.NewSource(int64(size))), size)
		b.Run(fmt.Sprintf("default/n=%d", r.NumVertices()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := repro.LabelWithSkeleton(r, skel); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("withplan/n=%d", r.NumVertices()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := repro.LabelWithPlan(r, truth, skel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14Query measures TCM+SKL query time (constant in run size).
func BenchmarkFig14Query(b *testing.B) {
	for _, size := range []int{1000, 16000} {
		r := benchRun(b, size)
		l, err := repro.LabelRun(r, repro.TCM)
		if err != nil {
			b.Fatal(err)
		}
		n := r.NumVertices()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := repro.VertexID(i % n)
				v := repro.VertexID((i * 31) % n)
				benchSink = l.Reachable(u, v)
			}
		})
	}
}

var benchSink bool

// BenchmarkFig16TCMDirect measures the polynomial cost of applying TCM
// directly to the run — the approach the paper shows does not scale.
func BenchmarkFig16TCMDirect(b *testing.B) {
	r := benchRun(b, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Graph.TransitiveClosure(); !ok {
			b.Fatal("cyclic run")
		}
	}
}

// BenchmarkFig17Query compares the four schemes of Figure 17 at one size.
func BenchmarkFig17Query(b *testing.B) {
	r := benchRun(b, 8000)
	n := r.NumVertices()
	lt, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		b.Fatal(err)
	}
	lb, err := repro.LabelRun(r, repro.BFS)
	if err != nil {
		b.Fatal(err)
	}
	closure, _ := r.Graph.TransitiveClosure()
	b.Run("TCM+SKL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = lt.Reachable(repro.VertexID(i%n), repro.VertexID((i*31)%n))
		}
	})
	b.Run("BFS+SKL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = lb.Reachable(repro.VertexID(i%n), repro.VertexID((i*31)%n))
		}
	})
	b.Run("TCM-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = closure.Reachable(repro.VertexID(i%n), repro.VertexID((i*31)%n))
		}
	})
	b.Run("BFS-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = r.Graph.ReachableBFS(repro.VertexID(i%n), repro.VertexID((i*31)%n))
		}
	})
}

// BenchmarkFig20QueryBySpecSize measures BFS+SKL query cost against the
// specification size (Figures 18-20's sweep).
func BenchmarkFig20QueryBySpecSize(b *testing.B) {
	for i, nG := range []int{50, 100, 200} {
		s, err := repro.SynthesizeSpec(rand.New(rand.NewSource(int64(i))), nG, 2*nG, 10, 4)
		if err != nil {
			b.Fatal(err)
		}
		r, _ := repro.GenerateRun(s, rand.New(rand.NewSource(9)), 8000)
		l, err := repro.LabelRun(r, repro.BFS)
		if err != nil {
			b.Fatal(err)
		}
		n := r.NumVertices()
		b.Run(fmt.Sprintf("nG=%d", nG), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = l.Reachable(repro.VertexID(i%n), repro.VertexID((i*31)%n))
			}
		})
	}
}

// BenchmarkAblationSpecSchemes queries under every skeleton scheme (A1).
func BenchmarkAblationSpecSchemes(b *testing.B) {
	r := benchRun(b, 8000)
	n := r.NumVertices()
	for _, scheme := range repro.SpecSchemes() {
		l, err := repro.LabelRun(r, scheme)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%T", scheme), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = l.Reachable(repro.VertexID(i%n), repro.VertexID((i*31)%n))
			}
		})
	}
}

// BenchmarkDataProvenance measures Section 6 data-dependency queries.
func BenchmarkDataProvenance(b *testing.B) {
	r := benchRun(b, 8000)
	rng := rand.New(rand.NewSource(3))
	ann := repro.RandomData(r, rng, 1.3, 0.4)
	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		b.Fatal(err)
	}
	dl, err := repro.LabelData(ann, l)
	if err != nil {
		b.Fatal(err)
	}
	k := dl.NumItems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = dl.DependsOn(repro.DataItemID(i%k), repro.DataItemID((i*31)%k))
	}
}

// BenchmarkOnlineAppend measures Section 9 incremental labeling: one
// fork-copy start plus one module execution per op.
func BenchmarkOnlineAppend(b *testing.B) {
	s := repro.PaperSpec()
	skel, err := repro.TCM.Build(s.Graph)
	if err != nil {
		b.Fatal(err)
	}
	l := repro.NewOnline(s, skel)
	root := l.Root()
	var l2 int
	for i, sub := range s.Subgraphs {
		if sub.Kind.String() == "loop" && s.NameOf(sub.Source) == "e" {
			l2 = i + 1
		}
	}
	eOrig, _ := s.VertexOf("e")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := l.StartCopy(root, l2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.AddExec(c, eOrig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerIngest measures the write path end to end — XML
// decode, validation against the spec, skeleton labeling, SKL2 snapshot
// encode, backend write, and session-cache refresh — as PUT /runs
// overwrites of one run name over the in-memory backend. This is the
// per-run cost of remote ingest, the serving-layer counterpart of
// store.PutRun.
func BenchmarkServerIngest(b *testing.B) {
	r := benchRun(b, 1000)
	st, err := repro.NewMemStore(r.Spec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{Store: st, EnableIngest: true})
	if err != nil {
		b.Fatal(err)
	}
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, nil, "bench"); err != nil {
		b.Fatal(err)
	}
	body := doc.Bytes()
	// Ingest then query once so the run is cache-resident: each measured
	// PUT then exercises the full overwrite path including the
	// invalidate-and-refresh of the live session.
	warm := httptest.NewRecorder()
	srv.ServeHTTP(warm, httptest.NewRequest("PUT", "/runs/r1", bytes.NewReader(body)))
	if warm.Code != 200 {
		b.Fatalf("warmup PUT: status %d: %s", warm.Code, warm.Body.String())
	}
	warm = httptest.NewRecorder()
	srv.ServeHTTP(warm, httptest.NewRequest("GET", "/runs?run=r1", nil))
	if warm.Code != 200 {
		b.Fatalf("warmup GET: status %d", warm.Code)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("PUT", "/runs/r1", bytes.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerDelete measures the run-retirement path end to end —
// per-name write-lock acquisition, backend blob deletion, and session
// invalidation with the generation fence — as DELETE /runs of a
// cache-resident run over the in-memory backend. Each iteration re-PUTs
// and re-queries the run off the clock, so the measured op is the pure
// delete-side cost retention sweeps pay per evicted run.
func BenchmarkServerDelete(b *testing.B) {
	r := benchRun(b, 1000)
	st, err := repro.NewMemStore(r.Spec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{Store: st, EnableIngest: true})
	if err != nil {
		b.Fatal(err)
	}
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, nil, "bench"); err != nil {
		b.Fatal(err)
	}
	body := doc.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("PUT", "/runs/r1", bytes.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("PUT: status %d: %s", rec.Code, rec.Body.String())
		}
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/runs?run=r1", nil))
		if rec.Code != 200 {
			b.Fatalf("warm GET: status %d", rec.Code)
		}
		b.StartTimer()
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/runs/r1", nil))
		if rec.Code != 200 {
			b.Fatalf("DELETE: status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerAppendEvents measures the streaming write path end to
// end — event-log parse, append-protocol validation, durable event-log
// append, and incremental skeleton labeling — as POST /runs/{name}/events
// batches of 64 engine events against the in-memory backend. This is
// the per-batch cost of live ingest, the streaming counterpart of
// BenchmarkServerIngest. Checkpointing is disabled so every iteration
// measures the same work; the checkpoint itself is a snapshot encode,
// already covered by the snapshot benches.
func BenchmarkServerAppendEvents(b *testing.B) {
	s, err := repro.StandInSpec("QBLAST", 1)
	if err != nil {
		b.Fatal(err)
	}
	r, p := repro.GenerateRun(s, rand.New(rand.NewSource(1000)), 1000)
	evs := repro.EmitEvents(r, p)
	const per = 64
	var batches [][]byte
	var offsets []int
	var total int64
	for i := 0; i < len(evs); i += per {
		var buf bytes.Buffer
		if err := repro.WriteEventLog(&buf, evs[i:min(i+per, len(evs))]); err != nil {
			b.Fatal(err)
		}
		batches = append(batches, buf.Bytes())
		offsets = append(offsets, i)
		total += int64(len(buf.Bytes()))
	}
	st, err := repro.NewMemStore(s, "bench")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{Store: st, EnableStream: true, CheckpointEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(total / int64(len(batches)))
	b.ReportAllocs()
	b.ResetTimer()
	step := 0
	for i := 0; i < b.N; i++ {
		if step == len(batches) {
			// Log exhausted: retire the live run off the clock and
			// restart the stream from offset zero.
			b.StopTimer()
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/runs/r1", nil))
			if rec.Code != 200 {
				b.Fatalf("DELETE: status %d: %s", rec.Code, rec.Body.String())
			}
			step = 0
			b.StartTimer()
		}
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", fmt.Sprintf("/runs/r1/events?offset=%d", offsets[step]), bytes.NewReader(batches[step]))
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("append at %d: status %d: %s", offsets[step], rec.Code, rec.Body.String())
		}
		step++
	}
}

// BenchmarkServerBatchReachable measures the query server's batched
// reachability path end to end — JSON decode, cache-hit session lookup,
// the constant-time Reachable per pair, JSON encode — as the serving
// layer's perf baseline, over the fs store backend. Per-pair cost should
// approach the raw Labeling.Reachable cost as the batch grows.
func BenchmarkServerBatchReachable(b *testing.B) {
	r := benchRun(b, 5000)
	st, err := repro.CreateStore(b.TempDir(), r.Spec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	benchServerBatch(b, st, r)
}

// BenchmarkServerBatchReachableMem is the same serving path over the
// in-memory store backend; on cache hits the two must be
// indistinguishable (the session cache means neither touches its
// backend), so a gap here flags a regression in the store layer.
func BenchmarkServerBatchReachableMem(b *testing.B) {
	r := benchRun(b, 5000)
	st, err := repro.NewMemStore(r.Spec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	benchServerBatch(b, st, r)
}

func benchServerBatch(b *testing.B, st *repro.Store, r *repro.Run) {
	b.Helper()
	if err := st.PutRun("r1", r, nil, repro.TCM); err != nil {
		b.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := r.NumVertices()
	for _, size := range []int{1, 64, 1024} {
		pairs := make([][2]string, size)
		for i := range pairs {
			pairs[i] = [2]string{fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n))}
		}
		body, err := json.Marshal(map[string]any{"run": "r1", "pairs": pairs})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pairs=%d", size), func(b *testing.B) {
			// Warm the session cache so the loop measures pure cache-hit
			// serving (zero disk I/O).
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("POST", "/batch", bytes.NewReader(body)))
			if rec.Code != 200 {
				b.Fatalf("warmup: status %d body %s", rec.Code, rec.Body.String())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("POST", "/batch", bytes.NewReader(body)))
				if rec.Code != 200 {
					b.Fatalf("status %d", rec.Code)
				}
			}
		})
	}
}

// BenchmarkServerRPQ measures the regular-path-query serving path end
// to end — JSON decode, pattern compile, lazy DFA determinization, and
// the label-pruned product-graph walk — as POST /rpq over a
// cache-resident run on the in-memory backend. Three pattern shapes
// cover the cost spectrum: a bare wildcard star (pruning does all the
// work), an anchored middle label (typical lineage probe), and an
// alternation under a star (forces subset construction).
func BenchmarkServerRPQ(b *testing.B) {
	r := benchRun(b, 5000)
	st, err := repro.NewMemStore(r.Spec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := st.PutRun("r1", r, nil, repro.TCM); err != nil {
		b.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	n := r.NumVertices()
	mid := string(r.Spec.NameOf(r.Origin[n/2]))
	for _, bc := range []struct{ name, pattern string }{
		{"wildcard", ".*"},
		{"anchored", fmt.Sprintf(".* %s .*", mid)},
		{"altstar", fmt.Sprintf("(%s|.)* %s", mid, mid)},
	} {
		rng := rand.New(rand.NewSource(11))
		const pool = 64
		bodies := make([][]byte, pool)
		for i := range bodies {
			body, err := json.Marshal(map[string]string{
				"run":     "r1",
				"from":    fmt.Sprint(rng.Intn(n)),
				"to":      fmt.Sprint(rng.Intn(n)),
				"pattern": bc.pattern,
			})
			if err != nil {
				b.Fatal(err)
			}
			bodies[i] = body
		}
		b.Run(bc.name, func(b *testing.B) {
			// Warm the session cache so the loop measures pure
			// cache-hit serving (zero disk I/O).
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("POST", "/rpq", bytes.NewReader(bodies[0])))
			if rec.Code != 200 {
				b.Fatalf("warmup: status %d body %s", rec.Code, rec.Body.String())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("POST", "/rpq", bytes.NewReader(bodies[i%pool])))
				if rec.Code != 200 {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}

// BenchmarkConstructPlan isolates the Section 5 plan-extraction kernel.
func BenchmarkConstructPlan(b *testing.B) {
	for _, size := range []int{1000, 16000} {
		r := benchRun(b, size)
		b.Run(fmt.Sprintf("n=%d", r.NumVertices()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := repro.ConstructPlan(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
