// Command provload is the million-user load harness: an open-loop
// multi-tenant load generator that drives a provserve-compatible server
// with N simulated clients, zipfian run popularity and a configurable
// GET /reachable / POST /batch / lineage / POST /rpq / PUT / DELETE /
// streaming ingest traffic mix,
// then reports per-endpoint latency percentiles (p50/p95/p99/max),
// throughput, 429/admission outcomes and SLO verdicts as a
// machine-readable JSON report.
//
// Self-serve mode (the default) builds a corpus and serves it
// in-process, so one command measures the whole stack end to end over
// real HTTP sockets — against any store backend:
//
//	provload -store mem: -clients 16 -rate 500 -duration 10s
//	provload -store fs://./loadstore -runs 128 -run-size 1000
//	provload -store shard://a,b,c -mix reachable=60,batch=20,put=15,delete=5
//	provload -store mem: -mix reachable=60,rpq=10,batch=30   regular path
//	                                                    queries ride along
//	provload -store mem: -mix reachable=70,stream=30    streaming ingest:
//	                                                    each client cycles
//	                                                    append/finish/delete
//	                                                    on its own live run
//
// Target mode drives an already-running provserve instead, discovering
// the read corpus over GET /runs (PUT traffic needs -put-xml run
// documents matching the server's spec):
//
//	provload -target http://127.0.0.1:8080 -clients 64 -rate 2000
//	provload -target http://127.0.0.1:8080 -mix reachable=90,put=10 -put-xml r1.xml,r2.xml
//
// The generator is open-loop (Poisson arrivals at -rate regardless of
// server speed), so saturation shows up honestly as latency growth and
// 429s rather than the harness slowing down to match the server. SLO
// flags turn the report into a verdict; -fail-on-slo makes a FAIL the
// exit code, turning a load run into a gate:
//
//	provload -store mem: -slo-read-p99 50ms -slo-error-rate 0 -fail-on-slo
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/label"
	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		target  = flag.String("target", "", "base URL of a running provserve to drive (target mode); empty = self-serve mode")
		storeU  = flag.String("store", "mem:", "self-serve mode: store URL (fs://dir, bare path, mem:, shard://a,b); created and populated if missing")
		specN   = flag.String("spec", "QBLAST", "self-serve mode: stand-in workflow for a fresh corpus (EBI, PubMed, QBLAST, BioAID, ProScan, ProDisc)")
		runs    = flag.Int("runs", 64, "self-serve mode: corpus size in runs (fresh stores)")
		runSize = flag.Int("run-size", 400, "self-serve mode: target vertices per generated run")
		bodies  = flag.Int("put-bodies", 8, "self-serve mode: distinct run documents cycled by PUT traffic")
		putXML  = flag.String("put-xml", "", "target mode: comma-separated run XML files for PUT traffic")

		clients  = flag.Int("clients", 16, "simulated clients (each with its own X-Client-ID and arrival process)")
		rate     = flag.Float64("rate", 500, "total target arrival rate, requests/second (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		mixFlag  = flag.String("mix", "reachable=70,batch=15,lineage=5,put=8,delete=2", "traffic mix weights")
		pairs    = flag.Int("pairs", 16, "pairs per /batch request")
		sbatch   = flag.Int("stream-batch", 32, "events per streaming append (stream traffic)")
		theta    = flag.Float64("theta", 0.99, "zipfian skew of run popularity (0 = uniform)")
		seed     = flag.Int64("seed", 1, "deterministic schedule/query seed")
		maxOut   = flag.Int("max-outstanding", 0, "cap on in-flight requests (harness self-protection; 0 = 4*clients)")
		wnames   = flag.Int("write-names", 32, "writable name pool size for PUT/DELETE traffic")

		retry       = flag.Int("retry", 0, "self-serve mode: retry transient backend errors up to this many attempts (pairs with fault:// store URLs)")
		brkThresh   = flag.Int("breaker-threshold", 0, "self-serve mode: server circuit-breaker threshold (0 = default 5, negative disables)")
		cacheSize   = flag.Int("cache", 16, "self-serve mode: server session-cache size")
		maxInflight = flag.Int("max-inflight", 64, "self-serve mode: server admission bound")
		queueDepth  = flag.Int("queue-depth", 0, "self-serve mode: server admission queue (0 = 2*max-inflight)")
		rateLimit   = flag.Float64("rate-limit", 0, "self-serve mode: server per-client rate limit, req/s (0 = off)")

		sloReadP99  = flag.Duration("slo-read-p99", 100*time.Millisecond, "SLO: p99 bound on reachable/batch/lineage (0 = skip)")
		sloWriteP99 = flag.Duration("slo-write-p99", 500*time.Millisecond, "SLO: p99 bound on put/delete (0 = skip)")
		sloErrRate  = flag.Float64("slo-error-rate", 0.005, "SLO: max (5xx+transport errors)/requests (negative = skip)")
		sloThrough  = flag.Float64("slo-throughput", 0, "SLO: min achieved requests/second (0 = skip)")
		failOnSLO   = flag.Bool("fail-on-slo", false, "exit nonzero when the SLO verdict is FAIL")

		reportPath = flag.String("report", "", "write the JSON report here (default: stdout after the text summary)")
		quiet      = flag.Bool("quiet", false, "suppress server logs and the text summary")
	)
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fatalf("%v", err)
	}
	needWrite := mix.Put > 0 || mix.Delete > 0
	needStream := mix.Stream > 0

	cfg := loadgen.Config{
		Clients:        *clients,
		Rate:           *rate,
		Duration:       *duration,
		Mix:            mix,
		BatchPairs:     *pairs,
		Theta:          *theta,
		Seed:           *seed,
		MaxOutstanding: *maxOut,
		WriteNames:     *wnames,
		SLO: &loadgen.SLO{
			ReadP99:       *sloReadP99,
			WriteP99:      *sloWriteP99,
			MaxErrorRate:  *sloErrRate,
			MinThroughput: *sloThrough,
		},
	}

	ctx := context.Background()
	if *target != "" {
		if needStream {
			// Streaming appends must speak the target's workflow spec
			// (hierarchy-node IDs, module names); the harness can only
			// generate matching event logs for a store it opened itself.
			fatalf("stream traffic needs self-serve mode (drop stream= from -mix in target mode)")
		}
		cfg.BaseURL = strings.TrimRight(*target, "/")
		corpus, err := discoverCorpus(ctx, cfg.BaseURL)
		if err != nil {
			fatalf("discovering corpus from %s: %v", cfg.BaseURL, err)
		}
		cfg.Runs = corpus
		if mix.RPQ > 0 {
			// The target's module names are unknown, so the pool is
			// wildcard-only patterns (".", ".*", ...).
			cfg.RPQPatterns = loadgen.RPQPatternPool(nil, 24, *seed+3)
		}
		if mix.Put > 0 {
			if *putXML == "" {
				fatalf("target mode with put traffic needs -put-xml (run documents matching the server's spec)")
			}
			for _, path := range strings.Split(*putXML, ",") {
				b, err := os.ReadFile(strings.TrimSpace(path))
				if err != nil {
					fatalf("%v", err)
				}
				cfg.PutBodies = append(cfg.PutBodies, b)
			}
		}
	} else {
		sp, err := loadgen.StandInSpec(*specN, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		st, created, err := loadgen.OpenOrCreateStore(*storeU, sp, *specN)
		if err != nil {
			fatalf("opening store %s: %v", *storeU, err)
		}
		if *retry > 0 {
			// Wrap before corpus building so it, too, rides the retry
			// layer — a fault:// store injects from the moment it opens.
			st, err = store.OpenBackend(store.WithRetry(st.Backend(), store.RetryPolicy{MaxAttempts: *retry}))
			if err != nil {
				fatalf("reopening store with retry: %v", err)
			}
		}
		defer st.Close()
		var corpus *loadgen.Corpus
		if created {
			corpus, err = loadgen.BuildCorpus(st, *runs, *runSize, *bodies, *seed, label.TCM{})
		} else {
			corpus, err = loadgen.CorpusFromStore(st, label.TCM{})
			if err == nil && needWrite {
				corpus.PutBodies, err = loadgen.RenderPutBodies(st.Spec(), st.SpecName(), *bodies, *runSize, *seed+1)
			}
		}
		if err != nil {
			fatalf("building corpus: %v", err)
		}
		if len(corpus.Runs) == 0 {
			fatalf("store %s holds no runs (delete it or point -store elsewhere to regenerate)", *storeU)
		}
		if needStream {
			cfg.StreamBatches, err = loadgen.StreamEventBatches(st.Spec(), *runSize, *sbatch, *seed+2)
			if err != nil {
				fatalf("building stream batches: %v", err)
			}
		}
		if mix.RPQ > 0 {
			cfg.RPQPatterns = loadgen.RPQPatternPool(st.Spec(), 24, *seed+3)
		}
		logf := log.Printf
		if *quiet {
			logf = nil
		}
		srv, err := server.New(server.Config{
			Store:            st,
			CacheSize:        *cacheSize,
			EnableIngest:     needWrite,
			EnableStream:     needStream,
			MaxInflight:      *maxInflight,
			QueueDepth:       *queueDepth,
			RatePerClient:    *rateLimit,
			BreakerThreshold: *brkThresh,
			Logf:             logf,
		})
		if err != nil {
			fatalf("%v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("%v", err)
		}
		httpSrv := &http.Server{Handler: srv}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		cfg.BaseURL = "http://" + ln.Addr().String()
		cfg.Runs = corpus.Runs
		cfg.PutBodies = corpus.PutBodies
		if !*quiet {
			log.Printf("provload: self-serving %s (%d runs, spec %s) on %s", *storeU, len(corpus.Runs), st.SpecName(), cfg.BaseURL)
		}
	}

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if !*quiet {
		rep.WriteText(os.Stderr)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	enc = append(enc, '\n')
	if *reportPath == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*reportPath, enc, 0o644); err != nil {
		fatalf("%v", err)
	}
	if *failOnSLO && rep.SLO != nil && !rep.SLO.Pass {
		fatalf("SLO verdict FAIL")
	}
}

// discoverCorpus lists the target's runs and fetches each run's vertex
// count, so queries can address vertices by numeric ID.
func discoverCorpus(ctx context.Context, base string) ([]loadgen.RunInfo, error) {
	get := func(url string, v any) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}
	var list struct {
		Runs []string `json:"runs"`
	}
	if err := get(base+"/runs", &list); err != nil {
		return nil, err
	}
	if len(list.Runs) == 0 {
		return nil, errors.New("target serves no runs")
	}
	// Cap discovery so pointing the harness at a million-run store does
	// not serialize a million metadata fetches before the first load
	// arrives; the zipfian tail past 1024 ranks carries ~no traffic.
	const maxCorpus = 1024
	if len(list.Runs) > maxCorpus {
		list.Runs = list.Runs[:maxCorpus]
	}
	corpus := make([]loadgen.RunInfo, 0, len(list.Runs))
	for _, name := range list.Runs {
		var info struct {
			Vertices int `json:"vertices"`
		}
		if err := get(base+"/runs?run="+name, &info); err != nil {
			return nil, err
		}
		corpus = append(corpus, loadgen.RunInfo{Name: name, Vertices: info.Vertices})
	}
	return corpus, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provload: "+format+"\n", args...)
	os.Exit(1)
}
