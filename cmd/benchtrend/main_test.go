package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trend"
)

// fixtureDir copies the checked-in PR 3..5 baselines into a temp dir so
// these golden tests keep passing as later PRs extend bench/ with new
// BASELINE_<n>.json files.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, n := range []string{"BASELINE_3.json", "BASELINE_4.json", "BASELINE_5.json"} {
		b, err := os.ReadFile(filepath.Join("../../bench", n))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, n), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// writeBench renders a provbench.v1 file derived from the PR-5 baseline
// fixture with every metric scaled, embedding the unscaled fixture as
// its baseline — a synthetic "current run" for exit-code tests.
func writeBench(t *testing.T, path string, nsScale float64, allocDelta int64, rename string) {
	t.Helper()
	base, err := trend.ReadFile(filepath.Join("../../bench", "BASELINE_5.json"))
	if err != nil {
		t.Fatal(err)
	}
	benches := map[string]trend.Bench{}
	for name, b := range base.Benches {
		b.NsOp *= nsScale
		if b.AllocsOp > 0 {
			b.AllocsOp += allocDelta
		}
		if name == rename {
			name += "Renamed"
		}
		benches[name] = b
	}
	doc := trend.File{Schema: "provbench.v1", Go: "gotest", Benches: benches, Baseline: base}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func runTrend(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestTrajectoryOverFixtures(t *testing.T) {
	code, out, errOut := runTrend(t, "-dir", fixtureDir(t))
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{
		"| benchmark (ns/op) | PR 3 base | PR 4 base | PR 5 base | Δ |",
		"ServerBatchReachable/pairs=1024",
		"## allocs/op",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestGateImprovementExitsZero(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "BENCH_6.json")
	writeBench(t, cur, 0.8, 0, "")
	code, out, errOut := runTrend(t, "-dir", fixtureDir(t), "-current", cur)
	if code != 0 {
		t.Fatalf("improvement gated: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "PASS: no benchmark regressed") {
		t.Errorf("no PASS line:\n%s", out)
	}
}

func TestGateRegressionExitsNonzero(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "BENCH_6.json")
	writeBench(t, cur, 3.0, 100, "")
	code, out, _ := runTrend(t, "-dir", fixtureDir(t), "-current", cur)
	if code == 0 {
		t.Fatalf("3x ns/op + 100 allocs regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "**FAIL**") {
		t.Errorf("no FAIL lines:\n%s", out)
	}
}

func TestGateRenamedBenchTolerated(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "BENCH_6.json")
	writeBench(t, cur, 1.0, 0, "ServerIngest")
	code, out, errOut := runTrend(t, "-dir", fixtureDir(t), "-current", cur)
	if code != 0 {
		t.Fatalf("renamed benchmark wedged the gate: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, `"ServerIngest" is in the baseline but not the current run`) {
		t.Errorf("renamed bench not noted:\n%s", out)
	}
}

func TestNoGateNeverFails(t *testing.T) {
	cur := filepath.Join(t.TempDir(), "BENCH_6.json")
	writeBench(t, cur, 10.0, 1000, "")
	code, _, errOut := runTrend(t, "-dir", fixtureDir(t), "-current", cur, "-no-gate")
	if code != 0 {
		t.Fatalf("-no-gate exited %d: %s", code, errOut)
	}
}

func TestReportFileWritten(t *testing.T) {
	out := filepath.Join(t.TempDir(), "TREND.md")
	code, _, errOut := runTrend(t, "-dir", fixtureDir(t), "-o", out)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "# Benchmark trend") {
		t.Error("written report lacks header")
	}
}
