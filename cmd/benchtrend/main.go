// Command benchtrend renders the repo's cross-PR benchmark trajectory
// and gates CI on perf regressions.
//
// It reads the checked-in bench/BASELINE_<n>.json lineage (the
// measurement taken just before each PR's changes) plus the current
// BENCH_<n>.json from `make bench-json`, prints markdown trajectory
// tables for ns/op and allocs/op, and — unless -no-gate — compares the
// current run against its embedded pre-PR baseline, exiting nonzero
// when any benchmark regressed beyond tolerance:
//
//	benchtrend -dir bench -current BENCH_6.json -o TREND.md
//	benchtrend -dir bench                 # trajectory only, no gate
//	benchtrend -current BENCH_6.json -tol 0.3 -tol-allocs 0.05
//
// Tolerances are relative slack per metric (0.5 = +50%); wall time
// defaults loose because shared CI runners are noisy, while B/op and
// allocs/op — deterministic under Go's allocator — default tight and
// are the gate's real teeth. Benchmarks present in the baseline but
// missing from the current run (renamed or retired) are tolerated and
// listed, never failed, so refactoring a benchmark does not wedge CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/trend"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("dir", "bench", "directory holding the BASELINE_<n>.json lineage")
		current   = fs.String("current", "", "current BENCH_<n>.json from `make bench-json` (enables the gate)")
		tolNs     = fs.Float64("tol", trend.DefaultTolerance.NsOp, "ns/op regression tolerance (relative, 0.5 = +50%)")
		tolB      = fs.Float64("tol-b", trend.DefaultTolerance.BOp, "B/op regression tolerance")
		tolAllocs = fs.Float64("tol-allocs", trend.DefaultTolerance.AllocsOp, "allocs/op regression tolerance")
		out       = fs.String("o", "", "also write the markdown report here")
		noGate    = fs.Bool("no-gate", false, "render the trajectory only; never exit nonzero")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	points, err := trend.LoadLineage(*dir, *current)
	if err != nil {
		fmt.Fprintf(stderr, "benchtrend: %v\n", err)
		return 2
	}

	var b strings.Builder
	b.WriteString("# Benchmark trend\n\n")
	fmt.Fprintf(&b, "Lineage: %d point(s) from %s", len(points), *dir)
	if *current != "" {
		fmt.Fprintf(&b, " + current %s", *current)
	}
	b.WriteString(". Each BASELINE_<n> is the measurement taken just before PR n.\n\n")
	b.WriteString("## ns/op\n\n")
	b.WriteString(trend.Table(points, trend.MetricNsOp))
	b.WriteString("\n## allocs/op\n\n")
	b.WriteString(trend.Table(points, trend.MetricAllocsOp))
	b.WriteString("\n## B/op\n\n")
	b.WriteString(trend.Table(points, trend.MetricBOp))

	exit := 0
	if *current != "" && !*noGate {
		cur, err := trend.ReadFile(*current)
		if err != nil {
			fmt.Fprintf(stderr, "benchtrend: %v\n", err)
			return 2
		}
		baseline, baseLabel := gateBaseline(cur, points)
		b.WriteString("\n## Gate\n\n")
		if baseline == nil {
			b.WriteString("No baseline to gate against.\n")
		} else {
			tol := trend.Tolerance{NsOp: *tolNs, BOp: *tolB, AllocsOp: *tolAllocs}
			regs, missing := trend.Gate(baseline, cur.Benches, tol)
			fmt.Fprintf(&b, "Current vs %s, tolerance ns/op +%.0f%% · B/op +%.0f%% · allocs/op +%.0f%%.\n\n",
				baseLabel, tol.NsOp*100, tol.BOp*100, tol.AllocsOp*100)
			for _, name := range missing {
				fmt.Fprintf(&b, "- note: %q is in the baseline but not the current run (renamed or retired — tolerated)\n", name)
			}
			if len(regs) == 0 {
				b.WriteString("- PASS: no benchmark regressed beyond tolerance\n")
			} else {
				for _, r := range regs {
					fmt.Fprintf(&b, "- **FAIL** %s\n", r)
				}
				exit = 1
			}
		}
	}

	report := b.String()
	fmt.Fprint(stdout, report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchtrend: %v\n", err)
			return 2
		}
	}
	if exit != 0 {
		fmt.Fprintf(stderr, "benchtrend: FAIL — perf regression beyond tolerance (see report)\n")
	}
	return exit
}

// gateBaseline picks what the current run is gated against: the
// baseline embedded in the BENCH file itself (the measurement taken
// just before this PR, the most honest comparison) when present,
// otherwise the newest checked-in BASELINE point.
func gateBaseline(cur *trend.File, points []trend.Point) (map[string]trend.Bench, string) {
	if cur.Baseline != nil && len(cur.Baseline.Benches) > 0 {
		return cur.Baseline.Benches, "embedded pre-PR baseline"
	}
	// points has "current" appended last; scan backwards past it for
	// the newest baseline point.
	for i := len(points) - 1; i >= 0; i-- {
		if strings.HasSuffix(points[i].Label, "base") {
			return points[i].Benches, points[i].Label
		}
	}
	return nil, ""
}
