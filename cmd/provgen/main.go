// Command provgen generates workflow specifications and runs as XML.
//
// Usage:
//
//	provgen -standin QBLAST -spec qblast.xml
//	provgen -ng 100 -mg 200 -tgsize 10 -tgdepth 4 -spec s.xml
//	provgen -standin QBLAST -spec s.xml -run r.xml -size 10000 -data
//	provgen -paper -spec paper.xml -run run.xml -size 50
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
)

func main() {
	var (
		standin = flag.String("standin", "", "synthesize a Table-1 workflow by name (EBI, PubMed, QBLAST, BioAID, ProScan, ProDisc)")
		paper   = flag.Bool("paper", false, "use the paper's Figure-2 running example")
		ng      = flag.Int("ng", 0, "synthetic spec: number of vertices")
		mg      = flag.Int("mg", 0, "synthetic spec: number of edges")
		tgsize  = flag.Int("tgsize", 1, "synthetic spec: |TG| (forks+loops+1)")
		tgdepth = flag.Int("tgdepth", 1, "synthetic spec: [TG] (hierarchy depth)")
		seed    = flag.Int64("seed", 1, "random seed")
		specOut = flag.String("spec", "", "write the specification XML here")
		runOut  = flag.String("run", "", "also generate a run and write its XML here")
		size    = flag.Int("size", 1000, "target run size in vertices")
		data    = flag.Bool("data", false, "annotate the run with synthetic data items")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var s *repro.Spec
	var name string
	var err error
	switch {
	case *paper:
		s, name = repro.PaperSpec(), "paper-figure2"
	case *standin != "":
		s, err = repro.StandInSpec(*standin, *seed)
		name = *standin
	case *ng > 0:
		s, err = repro.SynthesizeSpec(rng, *ng, *mg, *tgsize, *tgdepth)
		name = fmt.Sprintf("synthetic-%d-%d-%d-%d", *ng, *mg, *tgsize, *tgdepth)
	default:
		fatalf("choose -paper, -standin NAME, or -ng/-mg/-tgsize/-tgdepth")
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *specOut != "" {
		writeTo(*specOut, func(f *os.File) error { return repro.WriteSpecXML(f, s, name) })
		fmt.Printf("wrote specification %s (nG=%d mG=%d |TG|=%d [TG]=%d) to %s\n",
			name, s.NumVertices(), s.NumEdges(), s.Hier.NumNodes(), s.Hier.MaxDepth, *specOut)
	}

	if *runOut != "" {
		r, _ := repro.GenerateRun(s, rng, *size)
		var ann *repro.DataAnnotation
		if *data {
			ann = repro.RandomData(r, rng, 1.5, 0.3)
		}
		writeTo(*runOut, func(f *os.File) error { return repro.WriteRunXML(f, r, ann, name) })
		items := 0
		if ann != nil {
			items = len(ann.Items)
		}
		fmt.Printf("wrote run (nR=%d mR=%d, %d data items) to %s\n",
			r.NumVertices(), r.NumEdges(), items, *runOut)
	}

	if *specOut == "" && *runOut == "" {
		fatalf("nothing to do: pass -spec and/or -run output paths")
	}
}

func writeTo(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("create %s: %v", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatalf("write %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("close %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provgen: "+format+"\n", args...)
	os.Exit(1)
}
