// Command provdot renders workflow artifacts as Graphviz DOT: the
// specification with its fork clusters and loop back-edges, a run with
// vertices colored by fork/loop context, or a run's execution plan tree.
//
// Usage:
//
//	provdot -spec s.xml > spec.dot
//	provdot -spec s.xml -run r.xml -what run > run.dot
//	provdot -spec s.xml -run r.xml -what plan | dot -Tsvg > plan.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		specPath = flag.String("spec", "", "specification XML (required)")
		runPath  = flag.String("run", "", "run XML (required for -what run/plan)")
		what     = flag.String("what", "spec", "what to render: spec, run, or plan")
		name     = flag.String("name", "", "graph name in the DOT output")
	)
	flag.Parse()
	if *specPath == "" {
		fatalf("-spec is required")
	}
	sf, err := os.Open(*specPath)
	if err != nil {
		fatalf("%v", err)
	}
	s, specName, err := repro.ReadSpecXML(sf)
	sf.Close()
	if err != nil {
		fatalf("spec: %v", err)
	}
	if *name == "" {
		*name = specName
	}

	switch *what {
	case "spec":
		if err := repro.WriteSpecDOT(os.Stdout, s, *name); err != nil {
			fatalf("%v", err)
		}
	case "run", "plan":
		if *runPath == "" {
			fatalf("-run is required for -what %s", *what)
		}
		rf, err := os.Open(*runPath)
		if err != nil {
			fatalf("%v", err)
		}
		r, _, err := repro.ReadRunXML(rf, s)
		rf.Close()
		if err != nil {
			fatalf("run: %v", err)
		}
		p, err := repro.ConstructPlan(r)
		if err != nil {
			fatalf("plan: %v", err)
		}
		if *what == "run" {
			err = repro.WriteRunDOT(os.Stdout, r, p, *name)
		} else {
			err = repro.WritePlanDOT(os.Stdout, p, *name)
		}
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown -what %q (spec, run, plan)", *what)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provdot: "+format+"\n", args...)
	os.Exit(1)
}
