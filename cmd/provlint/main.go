// Command provlint runs the repo's static-analysis suite
// (internal/lint) over the whole module and fails on findings. It is
// the mechanical enforcement of the cross-file conventions the system's
// guarantees rest on: %w error wrapping in the store (so transient
// classification survives), documented lock discipline, endpoint
// counter registration, seeded randomness, and never-dropped storage
// errors.
//
// Usage:
//
//	provlint [-json] [-only a,b] [-suppressed] [-list] [-o report.json] [dir]
//
// dir (default ".") is any directory inside the module; provlint walks
// up to go.mod and lints every package under the module root. Exit
// codes: 0 clean, 1 unsuppressed findings, 2 usage or load failure.
//
// Findings are suppressed line-by-line with
//
//	//provlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit the provlint.v1 JSON report on stdout instead of text")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	showSuppressed := flag.Bool("suppressed", false, "also print suppressed findings (text mode; JSON always carries them)")
	list := flag.Bool("list", false, "list analyzers and their invariants, then exit")
	outFile := flag.String("o", "", "also write the JSON report to this file")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	analyzers, err := lint.Select(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "provlint: at most one directory argument")
		return 2
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		return 2
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers, root)
	report := lint.NewReport(loader.Module(), analyzers, len(pkgs), diags)

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "provlint:", err)
			return 2
		}
		werr := report.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "provlint:", werr)
			return 2
		}
	}

	findings := lint.Unsuppressed(diags)
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "provlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if d.Suppressed && !*showSuppressed {
				continue
			}
			if d.Suppressed {
				fmt.Printf("%s (suppressed: %s)\n", d, d.Reason)
			} else {
				fmt.Println(d)
			}
		}
		fmt.Printf("provlint: %d packages, %d findings (%d suppressed)\n",
			len(pkgs), len(findings), len(diags)-len(findings))
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
