// Command provserve serves provenance queries over an on-disk store as a
// concurrent HTTP/JSON API.
//
// Usage:
//
//	provserve -store ./provstore
//	provserve -store ./provstore -addr :9090 -scheme BFS -cache 64 -max-batch 16384
//
// Endpoints (see internal/server):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/specs
//	curl localhost:8080/runs
//	curl 'localhost:8080/reachable?run=r1&from=b1&to=c3'
//	curl -d '{"run":"r1","pairs":[["b1","c3"],["c1","b2"]]}' localhost:8080/batch
//	curl 'localhost:8080/lineage?run=r1&vertex=h1&dir=up'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dir      = flag.String("store", "", "provenance store directory (required)")
		scheme   = flag.String("scheme", "TCM", "skeleton scheme for loaded sessions (TCM, BFS, DFS, Interval, Chain, 2-Hop, Dual)")
		cache    = flag.Int("cache", 16, "maximum cached run sessions (LRU)")
		maxBatch = flag.Int("max-batch", 8192, "maximum pairs per /batch request")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "provserve: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	st, err := repro.OpenStore(*dir)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	sch, err := repro.SpecSchemeByName(*scheme)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	log.Printf("provserve: serving store %q (spec %q, scheme %s) on %s", *dir, st.SpecName(), sch.Name(), *addr)
	err = repro.Serve(*addr, repro.ServerConfig{
		Store:     st,
		Scheme:    sch,
		CacheSize: *cache,
		MaxBatch:  *maxBatch,
	})
	log.Fatalf("provserve: %v", err)
}
