// Command provserve serves provenance queries over a stored provenance
// database as a concurrent HTTP/JSON API, optionally accepting new runs
// over the same connection (the write path).
//
// The -store flag takes a URL picking the storage backend (a bare
// directory path means fs://):
//
//	provserve -store ./provstore                  one directory
//	provserve -store fs:///var/prov               same, explicit
//	provserve -store 'mem://./provstore'          preload into RAM, serve
//	                                              with zero disk I/O
//	provserve -store 'shard://diskA/p,diskB/p'    one store sharded
//	                                              across directories
//	provserve -store ./provstore -addr :9090 -scheme BFS -cache 64
//	provserve -store ./provstore -ingest -warm    accept PUT/DELETE /runs
//	                                              and warm-restart the cache
//	provserve -store ./provstore -ingest -max-runs 1000
//	                                              retention: keep at most
//	                                              1000 runs, evicting
//	                                              least-recently-used
//	provserve -store ./provstore -stream          accept streaming ingest:
//	                                              POST /runs/{name}/events
//	                                              appends engine events to
//	                                              a live run, /finish seals
//	                                              it (-checkpoint-every
//	                                              bounds crash replay)
//
// Fault tolerance (see the failure model on the store backend and
// internal/server's breaker):
//
//	provserve -store ./provstore -retry 4         retry transient backend
//	                                              errors with jittered
//	                                              exponential backoff
//	provserve -store ./provstore -breaker-threshold 5
//	                                              after 5 consecutive
//	                                              transient failures flip
//	                                              into degraded read-only
//	                                              mode: cache-hit reads
//	                                              serve, everything else
//	                                              503 + Retry-After until
//	                                              a backend probe heals
//	provserve -store ./provstore -stream -recover-at-start
//	                                              rebuild interrupted live
//	                                              streams before listening
//	                                              instead of on first touch
//	provserve -store ./provstore -stream -stream-ttl 1h
//	                                              expire live streams idle
//	                                              past the TTL (session,
//	                                              event log, checkpoint)
//	provserve -store 'fault://rate=0.05,seed=1/mem://./provstore'
//	                                              chaos-test: 5%% injected
//	                                              transient faults on every
//	                                              backend op
//
// Endpoints (see internal/server):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/specs
//	curl localhost:8080/runs
//	curl -X PUT --data-binary @run.xml localhost:8080/runs/r2
//	curl -X DELETE localhost:8080/runs/r2
//	curl localhost:8080/runs/r3
//	curl -X POST --data-binary @batch.events 'localhost:8080/runs/r3/events?offset=0'
//	curl -X POST localhost:8080/runs/r3/finish
//	curl 'localhost:8080/reachable?run=r1&from=b1&to=c3'
//	curl -d '{"run":"r1","pairs":[["b1","c3"],[12,34]]}' localhost:8080/batch
//	curl 'localhost:8080/lineage?run=r1&vertex=h1&dir=up'
//
// /batch pair elements may be occurrence names or vertex IDs, as JSON
// strings or bare integers; -batch-parallelism fans large batches out
// across CPUs.
//
// Admission control: at most -max-inflight requests execute at once
// with up to -queue-depth more waiting; beyond that (or past a
// per-client -rate requests/second) the server answers 429 with
// Retry-After instead of building unbounded backlog. /healthz bypasses
// admission so monitoring works under load.
//
// With -warm, shutdown (SIGINT/SIGTERM) snapshots the list of hot
// sessions to the store and the next -warm start preloads them before
// accepting traffic, so a restart does not reintroduce cold-load
// latency on the busiest runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		storeURL    = flag.String("store", "", "store URL: fs://dir (or a bare path), mem://dir, shard://dirA,dirB,... (required)")
		scheme      = flag.String("scheme", "TCM", "skeleton scheme for loaded sessions (TCM, BFS, DFS, Interval, Chain, 2-Hop, Dual)")
		cache       = flag.Int("cache", 16, "maximum cached run sessions (LRU)")
		maxBatch    = flag.Int("max-batch", 8192, "maximum pairs per /batch request")
		batchPar    = flag.Int("batch-parallelism", 0, "CPUs fanning out one large /batch request (0 = all)")
		ingest      = flag.Bool("ingest", false, "accept PUT /runs/{name} run documents and DELETE /runs/{name} (the write path)")
		stream      = flag.Bool("stream", false, "accept streaming ingest: POST /runs/{name}/events and /finish (see internal/server)")
		ckptEvery   = flag.Int("checkpoint-every", 256, "events between live-session checkpoints (negative disables; needs -stream)")
		maxIngest   = flag.Int64("max-ingest-bytes", 16<<20, "maximum ingest request body size")
		maxRuns     = flag.Int("max-runs", 0, "retention bound: after each ingest, delete least-recently-used runs beyond this count (0 = unlimited; needs -ingest)")
		maxInflight = flag.Int("max-inflight", 64, "maximum concurrently executing requests")
		queueDepth  = flag.Int("queue-depth", 0, "requests allowed to wait for a slot before 429 (0 = 2*max-inflight)")
		rate        = flag.Float64("rate", 0, "per-client rate limit in requests/second (0 = unlimited)")
		burst       = flag.Float64("burst", 0, "per-client rate-limit burst, min 1 token (0 = 2*rate)")
		warm        = flag.Bool("warm", false, "preload the store's saved hot-session list on start and save it on shutdown")
		retry       = flag.Int("retry", 0, "retry transient backend errors up to this many attempts with jittered backoff (0 disables)")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive transient backend failures before degraded read-only mode (0 = default 5, negative disables)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "backend probe interval (and Retry-After) while degraded (0 = default 500ms)")
		recoverAll  = flag.Bool("recover-at-start", false, "eagerly rebuild interrupted live streams before listening (needs -stream)")
		streamTTL   = flag.Duration("stream-ttl", 0, "expire live streams idle past this duration, dropping their durable state (0 = never; needs -stream)")
	)
	flag.Parse()
	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "provserve: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	st, err := repro.OpenStoreURL(*storeURL)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	if *retry > 0 {
		// Re-open the store over the retry-wrapped backend so every
		// backend trip (loads, ingests, appends, checkpoints) absorbs
		// transient faults before the server's breaker ever sees them.
		st, err = repro.OpenStoreOverBackend(
			repro.WithRetryBackend(st.Backend(), repro.StoreRetryPolicy{MaxAttempts: *retry}))
		if err != nil {
			log.Fatalf("provserve: reopening store with retry: %v", err)
		}
	}
	sch, err := repro.SpecSchemeByName(*scheme)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{
		Store:            st,
		Scheme:           sch,
		CacheSize:        *cache,
		MaxBatch:         *maxBatch,
		BatchParallelism: *batchPar,
		EnableIngest:     *ingest,
		EnableStream:     *stream,
		CheckpointEvery:  *ckptEvery,
		MaxIngestBytes:   *maxIngest,
		MaxRuns:          *maxRuns,
		MaxInflight:      *maxInflight,
		QueueDepth:       *queueDepth,
		RatePerClient:    *rate,
		RateBurst:        *burst,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	if *recoverAll {
		// Recover before listening: the first append or query a client
		// can reach already finds its stream live, with no request-path
		// replay latency.
		recovered, cleaned, err := srv.RecoverStreams()
		if err != nil {
			log.Printf("provserve: startup stream recovery failed (streams recover lazily): %v", err)
		} else {
			log.Printf("provserve: startup recovery: %d stream(s) live, %d stale state(s) cleaned", recovered, cleaned)
		}
	}
	if *streamTTL > 0 {
		// Sweep a few times per TTL so a stream expires reasonably soon
		// after crossing it, with a floor so tiny TTLs don't busy-loop.
		interval := *streamTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
		go func() {
			for range time.Tick(interval) {
				if expired := srv.SweepIdleStreams(*streamTTL); len(expired) > 0 {
					log.Printf("provserve: expired %d idle stream(s): %v", len(expired), expired)
				}
			}
		}()
	}
	if *warm {
		// Warm before listening: the first request a client can reach
		// already hits a preloaded cache.
		n, err := srv.WarmFromHotList()
		if err != nil {
			log.Printf("provserve: warm preload failed (serving cold): %v", err)
		} else {
			log.Printf("provserve: warm preloaded %d session(s)", n)
		}
	}
	log.Printf("provserve: serving store %q (spec %q, backend %s, scheme %s, ingest %v, stream %v) on %s",
		*storeURL, st.SpecName(), st.Stat().Kind, sch.Name(), *ingest, *stream, *addr)

	httpSrv := repro.NewQueryHTTPServer(*addr, srv)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("provserve: %v", err)
	case sig := <-stop:
		log.Printf("provserve: %v: shutting down", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("provserve: shutdown: %v", err)
	}
	// Save the hot list only after the drain: requests completing during
	// shutdown still load, ingest and evict sessions, and the list
	// should record where the cache actually ended up.
	if *warm {
		if err := srv.SaveHotList(); err != nil {
			log.Printf("provserve: saving hot list: %v", err)
		} else {
			log.Printf("provserve: saved hot list (%d cached session(s))", srv.Stats().Cached)
		}
	}
}
