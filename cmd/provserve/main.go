// Command provserve serves provenance queries over a stored provenance
// database as a concurrent HTTP/JSON API, optionally accepting new runs
// over the same connection (the write path).
//
// The -store flag takes a URL picking the storage backend (a bare
// directory path means fs://):
//
//	provserve -store ./provstore                  one directory
//	provserve -store fs:///var/prov               same, explicit
//	provserve -store 'mem://./provstore'          preload into RAM, serve
//	                                              with zero disk I/O
//	provserve -store 'shard://diskA/p,diskB/p'    one store sharded
//	                                              across directories
//	provserve -store ./provstore -addr :9090 -scheme BFS -cache 64
//	provserve -store ./provstore -ingest -warm    accept PUT/DELETE /runs
//	                                              and warm-restart the cache
//	provserve -store ./provstore -ingest -max-runs 1000
//	                                              retention: keep at most
//	                                              1000 runs, evicting
//	                                              least-recently-used
//	provserve -store ./provstore -stream          accept streaming ingest:
//	                                              POST /runs/{name}/events
//	                                              appends engine events to
//	                                              a live run, /finish seals
//	                                              it (-checkpoint-every
//	                                              bounds crash replay)
//
// Endpoints (see internal/server):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/specs
//	curl localhost:8080/runs
//	curl -X PUT --data-binary @run.xml localhost:8080/runs/r2
//	curl -X DELETE localhost:8080/runs/r2
//	curl localhost:8080/runs/r3
//	curl -X POST --data-binary @batch.events 'localhost:8080/runs/r3/events?offset=0'
//	curl -X POST localhost:8080/runs/r3/finish
//	curl 'localhost:8080/reachable?run=r1&from=b1&to=c3'
//	curl -d '{"run":"r1","pairs":[["b1","c3"],[12,34]]}' localhost:8080/batch
//	curl 'localhost:8080/lineage?run=r1&vertex=h1&dir=up'
//
// /batch pair elements may be occurrence names or vertex IDs, as JSON
// strings or bare integers; -batch-parallelism fans large batches out
// across CPUs.
//
// Admission control: at most -max-inflight requests execute at once
// with up to -queue-depth more waiting; beyond that (or past a
// per-client -rate requests/second) the server answers 429 with
// Retry-After instead of building unbounded backlog. /healthz bypasses
// admission so monitoring works under load.
//
// With -warm, shutdown (SIGINT/SIGTERM) snapshots the list of hot
// sessions to the store and the next -warm start preloads them before
// accepting traffic, so a restart does not reintroduce cold-load
// latency on the busiest runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		storeURL    = flag.String("store", "", "store URL: fs://dir (or a bare path), mem://dir, shard://dirA,dirB,... (required)")
		scheme      = flag.String("scheme", "TCM", "skeleton scheme for loaded sessions (TCM, BFS, DFS, Interval, Chain, 2-Hop, Dual)")
		cache       = flag.Int("cache", 16, "maximum cached run sessions (LRU)")
		maxBatch    = flag.Int("max-batch", 8192, "maximum pairs per /batch request")
		batchPar    = flag.Int("batch-parallelism", 0, "CPUs fanning out one large /batch request (0 = all)")
		ingest      = flag.Bool("ingest", false, "accept PUT /runs/{name} run documents and DELETE /runs/{name} (the write path)")
		stream      = flag.Bool("stream", false, "accept streaming ingest: POST /runs/{name}/events and /finish (see internal/server)")
		ckptEvery   = flag.Int("checkpoint-every", 256, "events between live-session checkpoints (negative disables; needs -stream)")
		maxIngest   = flag.Int64("max-ingest-bytes", 16<<20, "maximum ingest request body size")
		maxRuns     = flag.Int("max-runs", 0, "retention bound: after each ingest, delete least-recently-used runs beyond this count (0 = unlimited; needs -ingest)")
		maxInflight = flag.Int("max-inflight", 64, "maximum concurrently executing requests")
		queueDepth  = flag.Int("queue-depth", 0, "requests allowed to wait for a slot before 429 (0 = 2*max-inflight)")
		rate        = flag.Float64("rate", 0, "per-client rate limit in requests/second (0 = unlimited)")
		burst       = flag.Float64("burst", 0, "per-client rate-limit burst, min 1 token (0 = 2*rate)")
		warm        = flag.Bool("warm", false, "preload the store's saved hot-session list on start and save it on shutdown")
	)
	flag.Parse()
	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "provserve: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	st, err := repro.OpenStoreURL(*storeURL)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	sch, err := repro.SpecSchemeByName(*scheme)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{
		Store:            st,
		Scheme:           sch,
		CacheSize:        *cache,
		MaxBatch:         *maxBatch,
		BatchParallelism: *batchPar,
		EnableIngest:     *ingest,
		EnableStream:     *stream,
		CheckpointEvery:  *ckptEvery,
		MaxIngestBytes:   *maxIngest,
		MaxRuns:          *maxRuns,
		MaxInflight:      *maxInflight,
		QueueDepth:       *queueDepth,
		RatePerClient:    *rate,
		RateBurst:        *burst,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	if *warm {
		// Warm before listening: the first request a client can reach
		// already hits a preloaded cache.
		n, err := srv.WarmFromHotList()
		if err != nil {
			log.Printf("provserve: warm preload failed (serving cold): %v", err)
		} else {
			log.Printf("provserve: warm preloaded %d session(s)", n)
		}
	}
	log.Printf("provserve: serving store %q (spec %q, backend %s, scheme %s, ingest %v, stream %v) on %s",
		*storeURL, st.SpecName(), st.Stat().Kind, sch.Name(), *ingest, *stream, *addr)

	httpSrv := repro.NewQueryHTTPServer(*addr, srv)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("provserve: %v", err)
	case sig := <-stop:
		log.Printf("provserve: %v: shutting down", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("provserve: shutdown: %v", err)
	}
	// Save the hot list only after the drain: requests completing during
	// shutdown still load, ingest and evict sessions, and the list
	// should record where the cache actually ended up.
	if *warm {
		if err := srv.SaveHotList(); err != nil {
			log.Printf("provserve: saving hot list: %v", err)
		} else {
			log.Printf("provserve: saved hot list (%d cached session(s))", srv.Stats().Cached)
		}
	}
}
