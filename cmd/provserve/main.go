// Command provserve serves provenance queries over a stored provenance
// database as a concurrent HTTP/JSON API.
//
// The -store flag takes a URL picking the storage backend (a bare
// directory path means fs://):
//
//	provserve -store ./provstore                  one directory
//	provserve -store fs:///var/prov               same, explicit
//	provserve -store 'mem://./provstore'          preload into RAM, serve
//	                                              with zero disk I/O
//	provserve -store 'shard://diskA/p,diskB/p'    one store sharded
//	                                              across directories
//	provserve -store ./provstore -addr :9090 -scheme BFS -cache 64
//
// Endpoints (see internal/server):
//
//	curl localhost:8080/healthz
//	curl localhost:8080/specs
//	curl localhost:8080/runs
//	curl 'localhost:8080/reachable?run=r1&from=b1&to=c3'
//	curl -d '{"run":"r1","pairs":[["b1","c3"],[12,34]]}' localhost:8080/batch
//	curl 'localhost:8080/lineage?run=r1&vertex=h1&dir=up'
//
// /batch pair elements may be occurrence names or vertex IDs, as JSON
// strings or bare integers; -batch-parallelism fans large batches out
// across CPUs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeURL = flag.String("store", "", "store URL: fs://dir (or a bare path), mem://dir, shard://dirA,dirB,... (required)")
		scheme   = flag.String("scheme", "TCM", "skeleton scheme for loaded sessions (TCM, BFS, DFS, Interval, Chain, 2-Hop, Dual)")
		cache    = flag.Int("cache", 16, "maximum cached run sessions (LRU)")
		maxBatch = flag.Int("max-batch", 8192, "maximum pairs per /batch request")
		batchPar = flag.Int("batch-parallelism", 0, "CPUs fanning out one large /batch request (0 = all)")
	)
	flag.Parse()
	if *storeURL == "" {
		fmt.Fprintln(os.Stderr, "provserve: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	st, err := repro.OpenStoreURL(*storeURL)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	sch, err := repro.SpecSchemeByName(*scheme)
	if err != nil {
		log.Fatalf("provserve: %v", err)
	}
	log.Printf("provserve: serving store %q (spec %q, backend %s, scheme %s) on %s",
		*storeURL, st.SpecName(), st.Stat().Kind, sch.Name(), *addr)
	err = repro.Serve(*addr, repro.ServerConfig{
		Store:            st,
		Scheme:           sch,
		CacheSize:        *cache,
		MaxBatch:         *maxBatch,
		BatchParallelism: *batchPar,
	})
	log.Fatalf("provserve: %v", err)
}
