// Command provbench regenerates the paper's tables and figures.
//
// Usage:
//
//	provbench -exp all                       # everything, paper-scale
//	provbench -exp fig17 -quick              # one figure, reduced scale
//	provbench -exp table1,fig12 -csv out/    # write CSV files too
//	provbench -list                          # list experiment names
//
// Paper-scale sweeps run 0.1K..102.4K-vertex runs with 10⁶ queries per
// point and can take several minutes per figure; -quick reduces both.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		listFlag  = flag.Bool("list", false, "list available experiments and exit")
		quickFlag = flag.Bool("quick", false, "reduced sizes and query counts")
		seedFlag  = flag.Int64("seed", 1, "random seed")
		sizesFlag = flag.String("sizes", "", "comma-separated run sizes (overrides defaults)")
		queryFlag = flag.Int("queries", 0, "queries per measurement point (default 1e6, quick 2e4)")
		csvFlag   = flag.String("csv", "", "directory to also write one CSV per experiment")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Println(e.Name)
		}
		return
	}

	cfg := experiments.Config{Seed: *seedFlag, Quick: *quickFlag, Queries: *queryFlag}
	if *sizesFlag != "" {
		for _, part := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 2 {
				fatalf("invalid size %q", part)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}

	var selected []experiments.Experiment
	if *expFlag == "all" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			e, err := experiments.ByName(strings.TrimSpace(name))
			if err != nil {
				fatalf("%v (use -list)", err)
			}
			selected = append(selected, e)
		}
	}

	if *csvFlag != "" {
		if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
			fatalf("create csv dir: %v", err)
		}
	}

	for _, e := range selected {
		res, err := e.Run(cfg)
		if err != nil {
			fatalf("%s: %v", e.Name, err)
		}
		if err := res.WriteText(os.Stdout); err != nil {
			fatalf("write: %v", err)
		}
		if *csvFlag != "" {
			path := filepath.Join(*csvFlag, e.Name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			if err := res.WriteCSV(f); err != nil {
				f.Close()
				fatalf("write %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provbench: "+format+"\n", args...)
	os.Exit(1)
}
