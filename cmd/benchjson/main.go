// Command benchjson converts `go test -bench` output into a small JSON
// document tracking the serving-path perf trajectory (see `make
// bench-json`, which emits BENCH_3.json and is uploaded as a CI
// artifact).
//
// Usage:
//
//	go test -run '^$' -bench ... ./... | benchjson -o BENCH_3.json -baseline bench/BASELINE_3.json
//
// Bench output lines are parsed for ns/op, B/op, allocs/op and MB/s;
// when -count ran a benchmark several times the fastest run (minimum
// ns/op) is kept, the conventional way to suppress scheduler noise.
// The optional -baseline file is embedded verbatim under "baseline" so
// one document carries both the pre-change and current numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// result is one benchmark's parsed measurements.
type result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	MBs      float64 `json:"mb_s,omitempty"`
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+\d+\s+([\d.]+) ns/op(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "JSON file to embed verbatim under \"baseline\"")
	flag.Parse()

	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Tee to stderr so the human-readable output stays visible
		// without corrupting the JSON document when it goes to stdout.
		fmt.Fprintln(os.Stderr, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := trimGOMAXPROCS(m[1])
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{NsOp: ns}
		for _, f := range strings.Split(m[3], "\t") {
			f = strings.TrimSpace(f)
			val, unit, ok := strings.Cut(f, " ")
			if !ok {
				continue
			}
			switch unit {
			case "B/op":
				r.BOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				r.AllocsOp, _ = strconv.ParseInt(val, 10, 64)
			case "MB/s":
				r.MBs, _ = strconv.ParseFloat(val, 64)
			}
		}
		if prev, ok := results[name]; !ok || r.NsOp < prev.NsOp {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmark lines found on stdin")
	}

	doc := map[string]any{
		"schema":  "provbench.v1",
		"go":      runtime.Version(),
		"benches": results,
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatalf("reading baseline: %v", err)
		}
		var b any
		if err := json.Unmarshal(raw, &b); err != nil {
			fatalf("baseline %s is not valid JSON: %v", *baseline, err)
		}
		doc["baseline"] = b
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benches to %s\n", len(results), *out)
}

// trimGOMAXPROCS drops the "-8" CPU suffix go test appends to
// benchmark names.
func trimGOMAXPROCS(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
