// Command provquery answers provenance queries, either by labeling a
// run from XML files or straight from a provenance store's persisted
// labels.
//
// Usage:
//
//	provquery -spec s.xml -run r.xml -from b1 -to c3
//	provquery -spec s.xml -run r.xml -scheme BFS -stats
//	provquery -spec s.xml -run r.xml -affected x1     # data provenance
//
// With -store, queries hit a stored run's snapshot labels (nothing is
// relabeled) and -run names the stored run instead of an XML file. The
// store URL picks the backend: fs://dir (or a bare path), mem://dir,
// shard://dirA,dirB,...
//
//	provquery -store ./provstore -run r1 -from b1 -to c3
//	provquery -store 'shard://a,b' -run r1 -stats
//
// With -put, provquery becomes an ingest smoke-test client: it PUTs the
// run XML at -run to a running provserve (started with -ingest) under
// the name given by -as (default: the file's base name), prints the
// stored snapshot's version and size, and — when -from/-to are also
// given — immediately queries /reachable over the wire to prove the
// just-ingested run answers:
//
//	provquery -put http://localhost:8080 -run r.xml -as r2 -from b1 -to c3
//
// With -delete, provquery is the deletion smoke-test client: it sends
// DELETE /runs/{name} for the stored run named by -run to a running
// provserve (started with -ingest) and confirms the run is gone — the
// command-line face of the server's run-retirement path:
//
//	provquery -delete http://localhost:8080 -run r2
//
// With -append, provquery is a streaming ingest client: it reads the
// engine event log at -run (the events.WriteLog text format) and
// appends it to a provserve (started with -stream) in batches of
// -batch events, resuming idempotently from the server's applied
// sequence — rerunning the same command after a crash or lost response
// never double-applies an event. -finish then seals the live run into
// a stored, queryable one:
//
//	provquery -append http://localhost:8080 -run r3.events -as r3
//	provquery -finish http://localhost:8080 -run r3
//
// With -rpq, provquery asks a running provserve a regular path query:
// does some dependency path from -from to -to spell a word matching
// -pattern, a regular expression over module names (alternation `|`,
// concatenation, quantifiers `* + ?`, wildcard `.`, grouping)? Live
// streamed runs answer too:
//
//	provquery -rpq http://localhost:8080 -run r1 -from a1 -to h1 -pattern '(b|c)* d .*'
//
// Vertices are addressed by occurrence name (module name plus occurrence
// index, e.g. "b2" for the second execution of module b), data items by
// their item name from the run XML.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "specification XML (required unless -store is given)")
		runPath     = flag.String("run", "", "run XML, or the stored run name with -store (required)")
		storeURL    = flag.String("store", "", "provenance store URL (fs://dir, bare path, mem://dir, shard://a,b); queries use stored labels")
		scheme      = flag.String("scheme", "TCM", "specification labeling scheme (TCM, BFS, DFS, Interval, Chain)")
		from        = flag.String("from", "", "source vertex occurrence name (e.g. b1)")
		to          = flag.String("to", "", "target vertex occurrence name (e.g. c3)")
		affected    = flag.String("affected", "", "list data items depending on this item")
		explain     = flag.Bool("explain", false, "with -from/-to: print a concrete dependency path as evidence")
		upstream    = flag.String("upstream", "", "list every module execution this vertex was derived from")
		stats       = flag.Bool("stats", false, "print labeling statistics")
		interactive = flag.Bool("i", false, "read queries from stdin: lines of \"<from> <to>\"")
		putURL      = flag.String("put", "", "provserve base URL: PUT the run XML at -run to the server (ingest smoke test)")
		putAs       = flag.String("as", "", "stored run name for -put (default: the run file's base name)")
		deleteURL   = flag.String("delete", "", "provserve base URL: DELETE the stored run named by -run from the server")
		appendURL   = flag.String("append", "", "provserve base URL: stream the event log at -run to the server (POST /runs/{name}/events)")
		appendBatch = flag.Int("batch", 64, "events per request for -append")
		appendRetry = flag.Int("retries", 8, "transient failures (503/429/network) tolerated across one -append, with capped backoff and cursor resync")
		finishURL   = flag.String("finish", "", "provserve base URL: seal the live run named by -run (POST /runs/{name}/finish)")
		rpqURL      = flag.String("rpq", "", "provserve base URL: evaluate -pattern between -from and -to on the run named by -run (POST /rpq)")
		pattern     = flag.String("pattern", "", "regular path query pattern over module names, for -rpq")
	)
	flag.Parse()
	if *rpqURL != "" {
		if *runPath == "" || *from == "" || *to == "" || *pattern == "" {
			fatalf("-rpq needs -run <stored run name>, -from, -to and -pattern")
		}
		rpqQuery(*rpqURL, *runPath, *from, *to, *pattern)
		return
	}
	if *putURL != "" {
		if *runPath == "" {
			fatalf("-put needs -run <run XML file>")
		}
		putRun(*putURL, *runPath, *putAs, *from, *to)
		return
	}
	if *deleteURL != "" {
		if *runPath == "" {
			fatalf("-delete needs -run <stored run name>")
		}
		deleteRun(*deleteURL, *runPath)
		return
	}
	if *appendURL != "" {
		if *runPath == "" {
			fatalf("-append needs -run <event log file>")
		}
		appendEvents(*appendURL, *runPath, *putAs, *appendBatch, *appendRetry)
		return
	}
	if *finishURL != "" {
		if *runPath == "" {
			fatalf("-finish needs -run <live run name>")
		}
		finishRun(*finishURL, *runPath)
		return
	}
	if *storeURL == "" && (*specPath == "" || *runPath == "") {
		fatalf("-spec and -run are required (or -store with -run)")
	}
	if *storeURL != "" && *runPath == "" {
		fatalf("-store needs -run <stored run name>")
	}

	sch, err := repro.SpecSchemeByName(*scheme)
	if err != nil {
		fatalf("%v", err)
	}

	var (
		s    *repro.Spec
		r    *repro.Run
		ann  *repro.DataAnnotation
		l    *repro.Labeling
		sess *repro.StoreSession
	)
	if *storeURL != "" {
		// Store mode: the run was labeled at ingest; bind its stored
		// snapshot to the scheme's skeleton labels and query directly.
		st, err := repro.OpenStoreURL(*storeURL)
		if err != nil {
			fatalf("%v", err)
		}
		sess, err = st.OpenRun(*runPath, sch)
		if err != nil {
			fatalf("%v", err)
		}
		s, r, ann, l = st.Spec(), sess.Run, sess.Data, sess.Labels
	} else {
		sf, err := os.Open(*specPath)
		if err != nil {
			fatalf("%v", err)
		}
		var specErr error
		s, _, specErr = repro.ReadSpecXML(sf)
		sf.Close()
		if specErr != nil {
			fatalf("spec: %v", specErr)
		}
		rf, err := os.Open(*runPath)
		if err != nil {
			fatalf("%v", err)
		}
		var runErr error
		r, ann, runErr = repro.ReadRunXML(rf, s)
		rf.Close()
		if runErr != nil {
			fatalf("run: %v", runErr)
		}
		l, err = repro.LabelRun(r, sch)
		if err != nil {
			fatalf("label: %v", err)
		}
	}

	if *stats {
		fmt.Printf("run: %d vertices, %d edges\n", r.NumVertices(), r.NumEdges())
		fmt.Printf("spec: %d vertices, %d edges, |TG|=%d [TG]=%d\n",
			s.NumVertices(), s.NumEdges(), s.Hier.NumNodes(), s.Hier.MaxDepth)
		fmt.Printf("labels: max %d bits, avg %.2f bits, n+T=%d\n",
			l.MaxLabelBits(), l.AvgLabelBits(), l.NumPositioned())
		fmt.Printf("skeleton: %s, %d index bits\n", *scheme, l.Skeleton().IndexBits())
		if sess != nil {
			fmt.Printf("snapshot: %s codec, %d bytes (%.2f bytes/label)\n",
				sess.SnapshotVersion, sess.SnapshotBytes,
				float64(sess.SnapshotBytes)/float64(r.NumVertices()))
		}
	}

	if *from != "" || *to != "" {
		if *from == "" || *to == "" {
			fatalf("-from and -to must be given together")
		}
		u, err := findVertex(r, *from)
		if err != nil {
			fatalf("%v", err)
		}
		v, err := findVertex(r, *to)
		if err != nil {
			fatalf("%v", err)
		}
		if l.Reachable(u, v) {
			fmt.Printf("%s -> %s: reachable (%s depends on %s)\n", *from, *to, *to, *from)
			if *explain {
				path := repro.Explain(r, u, v)
				fmt.Print("  via:")
				for _, p := range path {
					fmt.Printf(" %s", r.NameOf(p))
				}
				fmt.Println()
			}
		} else {
			fmt.Printf("%s -> %s: NOT reachable\n", *from, *to)
		}
	}

	if *upstream != "" {
		v, err := findVertex(r, *upstream)
		if err != nil {
			fatalf("%v", err)
		}
		cone := repro.UpstreamByLabels(l, v)
		fmt.Printf("%s was derived from %d module executions:", *upstream, len(cone))
		for _, u := range cone {
			fmt.Printf(" %s", r.NameOf(u))
		}
		fmt.Println()
	}

	if *interactive {
		nm := repro.NewNamer(r)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) == 0 {
				continue
			}
			if len(fields) != 2 {
				fmt.Println("? expected: <from> <to>")
				continue
			}
			u, okU := nm.Vertex(fields[0])
			v, okV := nm.Vertex(fields[1])
			if !okU || !okV {
				fmt.Println("? unknown vertex")
				continue
			}
			fmt.Println(l.Reachable(u, v))
		}
		if err := sc.Err(); err != nil {
			fatalf("stdin: %v", err)
		}
	}

	if *affected != "" {
		if ann == nil {
			fatalf("run XML carries no data items")
		}
		dl, err := repro.LabelData(ann, l)
		if err != nil {
			fatalf("%v", err)
		}
		x, err := findItem(ann, *affected)
		if err != nil {
			fatalf("%v", err)
		}
		deps := dl.AffectedItems(x)
		fmt.Printf("%d items depend on %s:", len(deps), *affected)
		for _, d := range deps {
			fmt.Printf(" %s", ann.Items[d].Name)
		}
		fmt.Println()
	}
}

// putRun PUTs the run XML at path to a provserve under name (default:
// the file's base name without .xml), then optionally smoke-tests the
// ingested run with one /reachable query over the wire.
func putRun(baseURL, path, name, from, to string) {
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), ".xml")
	}
	doc, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	base := strings.TrimSuffix(baseURL, "/")
	req, err := http.NewRequest(http.MethodPut, base+"/runs/"+url.PathEscape(name), bytes.NewReader(doc))
	if err != nil {
		fatalf("%v", err)
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	var put struct {
		Run             string `json:"run"`
		Vertices        int    `json:"vertices"`
		Edges           int    `json:"edges"`
		DataItems       int    `json:"data_items"`
		SnapshotVersion string `json:"snapshot_version"`
		SnapshotBytes   int    `json:"snapshot_bytes"`
		Error           string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&put); err != nil {
		fatalf("PUT %s: status %d, unreadable body: %v", name, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("PUT %s: status %d: %s", name, resp.StatusCode, put.Error)
	}
	fmt.Printf("stored %s: %d vertices, %d edges, %d data items, %s snapshot (%d bytes)\n",
		put.Run, put.Vertices, put.Edges, put.DataItems, put.SnapshotVersion, put.SnapshotBytes)
	if from == "" || to == "" {
		return
	}
	q := url.Values{"run": {name}, "from": {from}, "to": {to}}
	qresp, err := http.Get(base + "/reachable?" + q.Encode())
	if err != nil {
		fatalf("%v", err)
	}
	defer qresp.Body.Close()
	var reach struct {
		Reachable bool   `json:"reachable"`
		Error     string `json:"error"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&reach); err != nil {
		fatalf("reachable: status %d, unreadable body: %v", qresp.StatusCode, err)
	}
	if qresp.StatusCode != http.StatusOK {
		fatalf("reachable: status %d: %s", qresp.StatusCode, reach.Error)
	}
	if reach.Reachable {
		fmt.Printf("%s -> %s: reachable (%s depends on %s)\n", from, to, to, from)
	} else {
		fmt.Printf("%s -> %s: NOT reachable\n", from, to)
	}
}

// appendEvents streams the event log at path to a provserve under name
// (default: the file's base name without .events), in batches with an
// offset cursor. It first asks the server where the stream stands
// (GET /runs/{name}), so rerunning after a crash or lost response
// resumes from the applied sequence instead of re-sending everything.
// liveStatus asks the server where the named run stands: (seq, true)
// for a live stream, (0, false) for an unknown run, and an error for
// anything else — a finished run, an unreachable server. It seeds the
// append cursor and resyncs it after a retried outage.
func liveStatus(base, name string) (int, bool, error) {
	resp, err := http.Get(base + "/runs/" + url.PathEscape(name))
	if err != nil {
		return 0, false, err
	}
	var status struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK && err == nil && status.Status == "live":
		return status.Events, true, nil
	case resp.StatusCode == http.StatusOK && err == nil:
		return 0, false, fmt.Errorf("run %q is already finished", name)
	case resp.StatusCode == http.StatusNotFound:
		return 0, false, nil
	default:
		return 0, false, fmt.Errorf("GET /runs/%s: status %d", name, resp.StatusCode)
	}
}

// transientAppend classifies one failed POST as retryable: a network
// error, or the server shedding load (503 degraded mode, 429 admission
// control) — exactly the failures where backing off and resending the
// same offsets is safe, because an unacknowledged append applied
// nothing (the store's transient contract) and an acknowledged one is
// idempotent to resend.
func transientAppend(err error, statusCode int) bool {
	return err != nil ||
		statusCode == http.StatusServiceUnavailable ||
		statusCode == http.StatusTooManyRequests
}

func appendEvents(baseURL, path, name string, batch, retries int) {
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), ".events")
	}
	if batch < 1 {
		batch = 1
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	evs, err := repro.ReadEventLog(f)
	f.Close()
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	base := strings.TrimSuffix(baseURL, "/")
	seq, _, err := liveStatus(base, name)
	if err != nil {
		fatalf("%v", err)
	}
	if seq > 0 {
		fmt.Printf("resuming %s at sequence %d\n", name, seq)
	}
	if seq > len(evs) {
		fatalf("server has %d events applied but %s holds only %d", seq, path, len(evs))
	}
	var last struct {
		Applied  int    `json:"applied"`
		Seq      int    `json:"seq"`
		Vertices int    `json:"vertices"`
		Copies   int    `json:"copies"`
		Error    string `json:"error"`
	}
	applied := 0
	if seq == len(evs) {
		fmt.Printf("%s already holds all %d events, nothing to apply\n", name, seq)
		return
	}
	backoff := 200 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for seq < len(evs) {
		end := seq + batch
		if end > len(evs) {
			end = len(evs)
		}
		var body bytes.Buffer
		if err := repro.WriteEventLog(&body, evs[seq:end]); err != nil {
			fatalf("%v", err)
		}
		target := fmt.Sprintf("%s/runs/%s/events?offset=%d", base, url.PathEscape(name), seq)
		resp, err := http.Post(target, "text/plain", &body)
		statusCode := 0
		if resp != nil {
			statusCode = resp.StatusCode
		}
		if transientAppend(err, statusCode) {
			// The server is briefly down (restarting, degraded, shedding
			// load): honor its Retry-After if it gave one, back off, resync
			// the cursor from its status (a restarted server may have
			// recovered at an earlier sequence than we believe), and resend.
			wait := backoff
			if resp != nil {
				if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
					if ra := time.Duration(secs) * time.Second; ra > wait {
						wait = ra
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if retries <= 0 {
				if err != nil {
					fatalf("POST events at offset %d: %v (retries exhausted)", seq, err)
				}
				fatalf("POST events at offset %d: status %d (retries exhausted)", seq, statusCode)
			}
			retries--
			if wait > maxBackoff {
				wait = maxBackoff
			}
			fmt.Fprintf(os.Stderr, "provquery: append at offset %d unavailable, retrying in %v (%d retries left)\n", seq, wait, retries)
			time.Sleep(wait)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			if cur, live, serr := liveStatus(base, name); serr == nil && live && cur < seq {
				seq = cur
			}
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&last)
		resp.Body.Close()
		if err != nil {
			fatalf("POST events: status %d, unreadable body: %v", resp.StatusCode, err)
		}
		if resp.StatusCode != http.StatusOK {
			fatalf("POST events at offset %d: status %d: %s", seq, resp.StatusCode, last.Error)
		}
		backoff = 200 * time.Millisecond
		seq = last.Seq
		applied += last.Applied
	}
	fmt.Printf("streamed %s: %d events applied, %d module executions in %d copies\n",
		name, applied, last.Vertices, last.Copies)
}

// finishRun seals a live streamed run into a stored one and reports the
// persisted snapshot.
func finishRun(baseURL, name string) {
	base := strings.TrimSuffix(baseURL, "/")
	resp, err := http.Post(base+"/runs/"+url.PathEscape(name)+"/finish", "text/plain", nil)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	var fin struct {
		Run             string `json:"run"`
		Vertices        int    `json:"vertices"`
		Edges           int    `json:"edges"`
		Events          int    `json:"events"`
		SnapshotVersion string `json:"snapshot_version"`
		SnapshotBytes   int    `json:"snapshot_bytes"`
		Error           string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fin); err != nil {
		fatalf("finish %s: status %d, unreadable body: %v", name, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("finish %s: status %d: %s", name, resp.StatusCode, fin.Error)
	}
	fmt.Printf("finished %s: %d events -> %d vertices, %d edges, %s snapshot (%d bytes)\n",
		fin.Run, fin.Events, fin.Vertices, fin.Edges, fin.SnapshotVersion, fin.SnapshotBytes)
}

// rpqQuery sends one POST /rpq to a provserve and reports whether any
// dependency path from 'from' to 'to' matches the pattern, exiting
// nonzero on any server refusal (bad pattern, unknown run or vertex).
func rpqQuery(baseURL, name, from, to, pattern string) {
	base := strings.TrimSuffix(baseURL, "/")
	body, err := json.Marshal(map[string]string{
		"run": name, "from": from, "to": to, "pattern": pattern,
	})
	if err != nil {
		fatalf("%v", err)
	}
	resp, err := http.Post(base+"/rpq", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	var ans struct {
		Match bool   `json:"match"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		fatalf("rpq %s: status %d, unreadable body: %v", name, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("rpq %s: status %d: %s", name, resp.StatusCode, ans.Error)
	}
	if ans.Match {
		fmt.Printf("%s -> %s: some path matches %q\n", from, to, pattern)
	} else {
		fmt.Printf("%s -> %s: no path matches %q\n", from, to, pattern)
	}
}

// deleteRun sends DELETE /runs/{name} to a provserve and reports the
// outcome, exiting nonzero when the server refuses (read-only server,
// unknown run) so scripts can rely on the status.
func deleteRun(baseURL, name string) {
	base := strings.TrimSuffix(baseURL, "/")
	req, err := http.NewRequest(http.MethodDelete, base+"/runs/"+url.PathEscape(name), nil)
	if err != nil {
		fatalf("%v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	var del struct {
		Run     string `json:"run"`
		Deleted bool   `json:"deleted"`
		Error   string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&del); err != nil {
		fatalf("DELETE %s: status %d, unreadable body: %v", name, resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK || !del.Deleted {
		fatalf("DELETE %s: status %d: %s", name, resp.StatusCode, del.Error)
	}
	fmt.Printf("deleted %s\n", del.Run)
}

func findVertex(r *repro.Run, name string) (repro.VertexID, error) {
	if v, ok := repro.NewNamer(r).Vertex(name); ok {
		return v, nil
	}
	return 0, fmt.Errorf("no vertex named %q in the run", name)
}

func findItem(ann *repro.DataAnnotation, name string) (repro.DataItemID, error) {
	for _, it := range ann.Items {
		if it.Name == name {
			return it.ID, nil
		}
	}
	return 0, fmt.Errorf("no data item named %q", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provquery: "+format+"\n", args...)
	os.Exit(1)
}
