// Command provquery labels a run and answers provenance queries.
//
// Usage:
//
//	provquery -spec s.xml -run r.xml -from b1 -to c3
//	provquery -spec s.xml -run r.xml -scheme BFS -stats
//	provquery -spec s.xml -run r.xml -affected x1     # data provenance
//
// Vertices are addressed by occurrence name (module name plus occurrence
// index, e.g. "b2" for the second execution of module b), data items by
// their item name from the run XML.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "specification XML (required)")
		runPath     = flag.String("run", "", "run XML (required)")
		scheme      = flag.String("scheme", "TCM", "specification labeling scheme (TCM, BFS, DFS, Interval, Chain)")
		from        = flag.String("from", "", "source vertex occurrence name (e.g. b1)")
		to          = flag.String("to", "", "target vertex occurrence name (e.g. c3)")
		affected    = flag.String("affected", "", "list data items depending on this item")
		explain     = flag.Bool("explain", false, "with -from/-to: print a concrete dependency path as evidence")
		upstream    = flag.String("upstream", "", "list every module execution this vertex was derived from")
		stats       = flag.Bool("stats", false, "print labeling statistics")
		interactive = flag.Bool("i", false, "read queries from stdin: lines of \"<from> <to>\"")
	)
	flag.Parse()
	if *specPath == "" || *runPath == "" {
		fatalf("-spec and -run are required")
	}

	sf, err := os.Open(*specPath)
	if err != nil {
		fatalf("%v", err)
	}
	s, _, err := repro.ReadSpecXML(sf)
	sf.Close()
	if err != nil {
		fatalf("spec: %v", err)
	}
	rf, err := os.Open(*runPath)
	if err != nil {
		fatalf("%v", err)
	}
	r, ann, err := repro.ReadRunXML(rf, s)
	rf.Close()
	if err != nil {
		fatalf("run: %v", err)
	}

	sch, err := repro.SpecSchemeByName(*scheme)
	if err != nil {
		fatalf("%v", err)
	}
	l, err := repro.LabelRun(r, sch)
	if err != nil {
		fatalf("label: %v", err)
	}

	if *stats {
		fmt.Printf("run: %d vertices, %d edges\n", r.NumVertices(), r.NumEdges())
		fmt.Printf("spec: %d vertices, %d edges, |TG|=%d [TG]=%d\n",
			s.NumVertices(), s.NumEdges(), s.Hier.NumNodes(), s.Hier.MaxDepth)
		fmt.Printf("labels: max %d bits, avg %.2f bits, n+T=%d\n",
			l.MaxLabelBits(), l.AvgLabelBits(), l.NumPositioned())
		fmt.Printf("skeleton: %s, %d index bits\n", *scheme, l.Skeleton().IndexBits())
	}

	if *from != "" || *to != "" {
		if *from == "" || *to == "" {
			fatalf("-from and -to must be given together")
		}
		u, err := findVertex(r, *from)
		if err != nil {
			fatalf("%v", err)
		}
		v, err := findVertex(r, *to)
		if err != nil {
			fatalf("%v", err)
		}
		if l.Reachable(u, v) {
			fmt.Printf("%s -> %s: reachable (%s depends on %s)\n", *from, *to, *to, *from)
			if *explain {
				path := repro.Explain(r, u, v)
				fmt.Print("  via:")
				for _, p := range path {
					fmt.Printf(" %s", r.NameOf(p))
				}
				fmt.Println()
			}
		} else {
			fmt.Printf("%s -> %s: NOT reachable\n", *from, *to)
		}
	}

	if *upstream != "" {
		v, err := findVertex(r, *upstream)
		if err != nil {
			fatalf("%v", err)
		}
		cone := repro.UpstreamByLabels(l, v)
		fmt.Printf("%s was derived from %d module executions:", *upstream, len(cone))
		for _, u := range cone {
			fmt.Printf(" %s", r.NameOf(u))
		}
		fmt.Println()
	}

	if *interactive {
		nm := repro.NewNamer(r)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) == 0 {
				continue
			}
			if len(fields) != 2 {
				fmt.Println("? expected: <from> <to>")
				continue
			}
			u, okU := nm.Vertex(fields[0])
			v, okV := nm.Vertex(fields[1])
			if !okU || !okV {
				fmt.Println("? unknown vertex")
				continue
			}
			fmt.Println(l.Reachable(u, v))
		}
		if err := sc.Err(); err != nil {
			fatalf("stdin: %v", err)
		}
	}

	if *affected != "" {
		if ann == nil {
			fatalf("run XML carries no data items")
		}
		dl, err := repro.LabelData(ann, l)
		if err != nil {
			fatalf("%v", err)
		}
		x, err := findItem(ann, *affected)
		if err != nil {
			fatalf("%v", err)
		}
		deps := dl.AffectedItems(x)
		fmt.Printf("%d items depend on %s:", len(deps), *affected)
		for _, d := range deps {
			fmt.Printf(" %s", ann.Items[d].Name)
		}
		fmt.Println()
	}
}

func findVertex(r *repro.Run, name string) (repro.VertexID, error) {
	if v, ok := repro.NewNamer(r).Vertex(name); ok {
		return v, nil
	}
	return 0, fmt.Errorf("no vertex named %q in the run", name)
}

func findItem(ann *repro.DataAnnotation, name string) (repro.DataItemID, error) {
	for _, it := range ann.Items {
		if it.Name == name {
			return it.ID, nil
		}
	}
	return 0, fmt.Errorf("no data item named %q", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "provquery: "+format+"\n", args...)
	os.Exit(1)
}
