package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/store/faultinject"
)

// chaos_test.go is the resilience layer's acceptance suite: a provserve
// stack (retry wrapper + circuit breaker + streaming recovery) is
// driven concurrently — PUTs, streaming appends, finishes, deletes and
// reads — over a fault-injecting backend that fails ~5% of operations,
// tears append tails and loses run-document halves. The assertions are
// the failure model's promises, not "it mostly works":
//
//   - Reads of a resident run never fail — not 500, not 503 — no
//     matter what the backend does (cache hits and live sessions need
//     no I/O, and degraded mode preserves exactly that).
//   - No read ever maps an injected fault to a 500: the transient
//     contract surfaces as 503 + Retry-After or not at all.
//   - No acknowledged event is ever lost: a session's reported
//     sequence never moves backwards past what a client was told, and
//     appends never hit ErrConflict (a torn session would).
//   - Once faults stop, every stream seals and answers byte-identically
//     to the same run ingested whole on a fault-free twin server.

// chaosClient wraps the battery of HTTP calls the workers share.
type chaosClient struct {
	t    *testing.T
	base string
}

func (c *chaosClient) get(path string) (int, string) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Errorf("GET %s: %v", path, err)
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (c *chaosClient) req(method, path, body string) (int, string) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Errorf("%s %s: %v", method, path, err)
		return 0, ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// streamState is one chaos streamer's view of its run: the events it
// intends to stream and the highest sequence the server acknowledged.
type streamState struct {
	name  string
	text  []string // batches in wire format
	sizes []int    // events per batch
	total int
	acked int // highest acknowledged sequence
}

// eventBatches renders a run's engine events into wire-format batches.
func eventBatches(t *testing.T, s *repro.Spec, seed int64, size, batch int) ([]string, []int, int) {
	t.Helper()
	r, p := repro.GenerateRun(s, rand.New(rand.NewSource(seed)), size)
	evs := repro.EmitEvents(r, p)
	var texts []string
	var sizes []int
	for start := 0; start < len(evs); start += batch {
		end := start + batch
		if end > len(evs) {
			end = len(evs)
		}
		var buf bytes.Buffer
		if err := repro.WriteEventLog(&buf, evs[start:end]); err != nil {
			t.Fatal(err)
		}
		texts = append(texts, buf.String())
		sizes = append(sizes, end-start)
	}
	return texts, sizes, len(evs)
}

// seqOf decodes the "seq" field from an append/status response body.
func seqOf(t *testing.T, body string) (int, bool) {
	var resp struct {
		Seq    *int   `json:"seq"`
		Events *int   `json:"events"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		return 0, false
	}
	if resp.Seq != nil {
		return *resp.Seq, true
	}
	if resp.Events != nil && resp.Status == "live" {
		return *resp.Events, true
	}
	return 0, false
}

// TestChaos is the torture run. Run it under -race: the fault injector
// exercises every error path concurrently with the happy paths, which
// is exactly where lock ordering and session lifecycle bugs hide.
func TestChaos(t *testing.T) {
	sp := repro.PaperSpec()

	// The system under test: mem backend, wrapped in the fault injector,
	// wrapped in the retry layer, with the breaker armed. No faults yet —
	// the plan is flipped on after setup.
	base, err := repro.NewMemStore(sp, "paper")
	if err != nil {
		t.Fatal(err)
	}
	fb := faultinject.Wrap(base.Backend(), faultinject.Plan{})
	st, err := repro.OpenStoreOverBackend(repro.WithRetryBackend(fb, repro.StoreRetryPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{
		Store:            st,
		Scheme:           repro.TCM,
		CacheSize:        16,
		EnableIngest:     true,
		EnableStream:     true,
		CheckpointEvery:  16,
		BreakerThreshold: 5,
		BreakerCooldown:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &chaosClient{t: t, base: hs.URL}

	// The fault-free twin for the final differential: same spec, plain
	// mem store, no faults, no breaker.
	twinStore, err := repro.NewMemStore(sp, "paper")
	if err != nil {
		t.Fatal(err)
	}
	twinSrv, err := repro.NewServer(repro.ServerConfig{
		Store: twinStore, Scheme: repro.TCM, CacheSize: 16, EnableIngest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	twin := httptest.NewServer(twinSrv)
	defer twin.Close()
	tc := &chaosClient{t: t, base: twin.URL}

	// Pre-fault setup: a "hot" run PUT and queried once, so it is
	// resident — the read the whole outage story promises never fails.
	renderRun := func(seed int64, size int) string {
		r, _ := repro.GenerateRun(sp, rand.New(rand.NewSource(seed)), size)
		var buf bytes.Buffer
		if err := repro.WriteRunXML(&buf, r, nil, "paper"); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	hotXML := renderRun(7, 120)
	if code, body := c.req("PUT", "/runs/hot", hotXML); code != 200 {
		t.Fatalf("PUT hot: %d %s", code, body)
	}
	if code, _ := c.get("/reachable?run=hot&from=0&to=1"); code != 200 {
		t.Fatal("warming hot run failed")
	}
	putXMLs := make([]string, 3)
	for i := range putXMLs {
		putXMLs[i] = renderRun(int64(200+i), 100)
	}

	// Streamers get deterministic event batch sequences.
	streams := make([]*streamState, 2)
	for i := range streams {
		texts, sizes, total := eventBatches(t, sp, int64(300+i), 100, 8)
		streams[i] = &streamState{name: fmt.Sprintf("chaos-stream-%d", i), text: texts, sizes: sizes, total: total}
	}

	// Faults on: 5% transient errors everywhere, plus torn append tails
	// and partial run writes at 2% — the two corruptions with a
	// distinguished recovery story.
	fb.SetPlan(faultinject.Plan{
		Seed:    42,
		Default: faultinject.Rule{ErrRate: 0.05},
		PerOp: map[faultinject.Op]faultinject.Rule{
			faultinject.OpAppendEventLog: {ErrRate: 0.05, TornRate: 0.02},
			faultinject.OpWriteRun:       {ErrRate: 0.05, PartialRate: 0.02},
		},
	})

	var wg sync.WaitGroup

	// Readers: the hot run must answer 200 forever; random cold reads
	// may miss (404) or shed (503) but must never 500 — an injected
	// fault surfacing as a server error breaks the transient contract.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			targets := []string{
				"/reachable?run=hot&from=0&to=5",
				"/lineage?run=hot&vertex=2&dir=up",
				"/runs/hot",
			}
			for i := 0; i < 250; i++ {
				if code, body := c.get(targets[i%len(targets)]); code != 200 {
					t.Errorf("reader %d: hot read %q: %d %s", w, targets[i%len(targets)], code, body)
					return
				}
				if code, body := c.get(fmt.Sprintf("/reachable?run=chaos-put-%d&from=0&to=1", i%3)); code != 200 && code != 404 && code != 503 {
					t.Errorf("reader %d: cold read: %d %s", w, code, body)
					return
				}
			}
		}(w)
	}

	// Writers: PUT and DELETE under faults. Acceptable outcomes only —
	// 200, 404 (deleting a run that lost the race), 503 (shed or
	// retry-exhausted transient). 500 means a fault was misclassified.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lr := rand.New(rand.NewSource(int64(500 + w)))
			for i := 0; i < 60; i++ {
				name := fmt.Sprintf("chaos-put-%d", lr.Intn(3))
				if lr.Intn(4) == 0 {
					if code, body := c.req("DELETE", "/runs/"+name, ""); code != 200 && code != 404 && code != 503 {
						t.Errorf("writer %d: DELETE %s: %d %s", w, name, code, body)
						return
					}
					continue
				}
				if code, body := c.req("PUT", "/runs/"+name, putXMLs[lr.Intn(len(putXMLs))]); code != 200 && code != 503 {
					t.Errorf("writer %d: PUT %s: %d %s", w, name, code, body)
					return
				}
			}
		}(w)
	}

	// Streamers: append batches with a resuming cursor, exactly like a
	// real engine client. 503 → retry; 500 (a torn tail broke the
	// session) → resync the cursor from status and retry, which drives
	// the server's recovery path; 409 → a torn session survived into
	// the history, the one thing that must never happen.
	for _, ss := range streams {
		wg.Add(1)
		go func(ss *streamState) {
			defer wg.Done()
			batch, failures := 0, 0
			for batch < len(ss.text) && failures < 200 {
				code, body := c.req("POST", fmt.Sprintf("/runs/%s/events?offset=%d", ss.name, ss.acked), ss.text[batch])
				switch {
				case code == 200:
					seq, ok := seqOf(t, body)
					if !ok {
						t.Errorf("stream %s: 200 without seq: %s", ss.name, body)
						return
					}
					if seq < ss.acked {
						t.Errorf("stream %s: acknowledged sequence moved backwards: %d -> %d (acked-event loss)", ss.name, ss.acked, seq)
						return
					}
					ss.acked = seq
					batch++
				case code == 503 || code == 500:
					// Transient shed or torn-tail 500: back off a hair, then
					// resync the cursor — recovery may have replayed complete
					// lines from the torn batch, moving the sequence forward
					// past our last ack (never backwards).
					failures++
					time.Sleep(2 * time.Millisecond)
					if gcode, gbody := c.get("/runs/" + ss.name); gcode == 200 {
						if seq, ok := seqOf(t, gbody); ok {
							if seq < ss.acked {
								t.Errorf("stream %s: recovery lost acknowledged events: had %d, server reports %d", ss.name, ss.acked, seq)
								return
							}
							ss.acked = seq
							for batch < len(ss.text) && sumTo(ss.sizes, batch) < seq {
								batch++
							}
						}
					}
				case code == 409:
					t.Errorf("stream %s: conflict at offset %d — torn session in the applied history: %s", ss.name, ss.acked, body)
					return
				default:
					t.Errorf("stream %s: append: %d %s", ss.name, code, body)
					return
				}
			}
			if batch < len(ss.text) {
				t.Errorf("stream %s: gave up after %d transient failures at batch %d/%d", ss.name, failures, batch, len(ss.text))
			}
		}(ss)
	}

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	inj := fb.Injected()
	var injTotal int64
	for _, n := range inj {
		injTotal += n
	}
	if injTotal == 0 {
		t.Fatal("chaos run injected zero faults — the suite proved nothing")
	}
	t.Logf("injected %d faults: %v", injTotal, inj)

	// Faults off. Whatever state the chaos left — possibly a breaker
	// mid-open — must heal on its own.
	fb.SetPlan(faultinject.Plan{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h struct {
			Degraded bool `json:"degraded"`
		}
		code, body := c.get("/healthz")
		if code != 200 {
			t.Fatalf("healthz after heal: %d", code)
		}
		if json.Unmarshal([]byte(body), &h); !h.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after faults stopped: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Differential close-out: finish every stream and compare against
	// the same runs ingested whole on the fault-free twin —
	// byte-identical answers on every query endpoint.
	for i, ss := range streams {
		// Top the stream up to its full event sequence, fault-free.
		for batch := 0; ss.acked < ss.total && batch < len(ss.text); batch++ {
			if sumTo(ss.sizes, batch+1) <= ss.acked {
				continue
			}
			code, body := c.req("POST", fmt.Sprintf("/runs/%s/events?offset=%d", ss.name, ss.acked), ss.text[batch])
			if code != 200 {
				t.Fatalf("stream %s: fault-free append: %d %s", ss.name, code, body)
			}
			seq, _ := seqOf(t, body)
			ss.acked = seq
		}
		if ss.acked != ss.total {
			t.Fatalf("stream %s: ends at %d of %d events", ss.name, ss.acked, ss.total)
		}
		if code, body := c.req("POST", "/runs/"+ss.name+"/finish", ""); code != 200 {
			t.Fatalf("finish %s: %d %s", ss.name, code, body)
		}

		// The twin ingests the identical run as one document.
		r, _ := repro.GenerateRun(sp, rand.New(rand.NewSource(int64(300+i))), 100)
		var doc bytes.Buffer
		if err := repro.WriteRunXML(&doc, r, nil, "paper"); err != nil {
			t.Fatal(err)
		}
		if code, body := tc.req("PUT", "/runs/"+ss.name, doc.String()); code != 200 {
			t.Fatalf("twin PUT %s: %d %s", ss.name, code, body)
		}

		n := r.NumVertices()
		var queries []string
		for u := 0; u < n; u += 5 {
			for v := 0; v < n; v += 7 {
				queries = append(queries, fmt.Sprintf("/reachable?run=%s&from=%d&to=%d", ss.name, u, v))
			}
		}
		for v := 0; v < n; v += 9 {
			queries = append(queries, fmt.Sprintf("/lineage?run=%s&vertex=%d&dir=up", ss.name, v))
			queries = append(queries, fmt.Sprintf("/lineage?run=%s&vertex=%d&dir=down", ss.name, v))
		}
		for _, q := range queries {
			ccode, cbody := c.get(q)
			tcode, tbody := tc.get(q)
			if ccode != 200 || tcode != 200 {
				t.Fatalf("differential %s: chaos %d, twin %d", q, ccode, tcode)
			}
			if cbody != tbody {
				t.Fatalf("differential %s:\nchaos: %s\ntwin:  %s", q, cbody, tbody)
			}
		}
		pairs := fmt.Sprintf(`{"run":%q,"pairs":[[0,1],[1,2],[2,%d]]}`, ss.name, n-1)
		_, cbody := c.req("POST", "/batch", pairs)
		_, tbody := tc.req("POST", "/batch", pairs)
		if cbody != tbody {
			t.Fatalf("differential /batch:\nchaos: %s\ntwin:  %s", cbody, tbody)
		}

		// Path queries answer byte-identically after healing, too: the
		// sealed stream and the whole-document ingest drive the same
		// RPQ engine over the same labels.
		midName := sp.NameOf(r.Origin[n/2])
		for _, pat := range []string{".*", "()", fmt.Sprintf(".* %s .*", midName)} {
			for _, pr := range [][2]int{{0, 1}, {0, n - 1}, {n / 2, n - 1}} {
				body := fmt.Sprintf(`{"run":%q,"from":"%d","to":"%d","pattern":%q}`, ss.name, pr[0], pr[1], pat)
				ccode, cbody := c.req("POST", "/rpq", body)
				tcode, tbody := tc.req("POST", "/rpq", body)
				if ccode != 200 || tcode != 200 {
					t.Fatalf("differential /rpq %q (%d,%d): chaos %d %s, twin %d %s", pat, pr[0], pr[1], ccode, cbody, tcode, tbody)
				}
				if cbody != tbody {
					t.Fatalf("differential /rpq %q:\nchaos: %s\ntwin:  %s", pat, cbody, tbody)
				}
			}
		}
	}

	// And the hot run is still exactly what was put before the storm.
	if code, _ := c.get("/reachable?run=hot&from=0&to=5"); code != 200 {
		t.Fatal("hot run lost after chaos")
	}
}

// sumTo sums the first n batch sizes — the sequence number the nth
// batch starts at.
func sumTo(sizes []int, n int) int {
	total := 0
	for _, s := range sizes[:n] {
		total += s
	}
	return total
}
