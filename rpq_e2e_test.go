package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/rpq"
)

// postRPQ sends one POST /rpq and returns the status plus the exact
// response body, for byte-level differential comparison.
func postRPQ(t *testing.T, base, run, from, to, pattern string) (int, string) {
	t.Helper()
	body, err := json.Marshal(map[string]string{
		"run": run, "from": from, "to": to, "pattern": pattern,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/rpq", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRPQEndToEnd is the over-the-wire RPQ differential test: one
// provserve is populated by streaming a run's engine event log while a
// second ingests the same run whole via PUT /runs/{name}. POST /rpq
// must answer byte-identically on both servers — and on the streaming
// server the answers over the still-live (but fully streamed) session
// must be byte-identical to the answers after /finish seals it. Every
// decoded verdict is also checked against the in-process engine, so
// the HTTP layer is compared against the differential battery's
// ground truth, not just against itself.
func TestRPQEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	s := repro.PaperSpec()
	if _, err := repro.CreateStore(filepath.Join(dir, "seed"), s, "paper"); err != nil {
		t.Fatal(err)
	}
	bin := buildProvserve(t, dir)
	streamed := startProvserve(t, bin, "-store", "mem://"+filepath.Join(dir, "seed"), "-stream")
	direct := startProvserve(t, bin, "-store", "mem://"+filepath.Join(dir, "seed"), "-ingest")

	rng := rand.New(rand.NewSource(41))
	r, p := repro.GenerateRun(s, rng, 120)
	evs := repro.EmitEvents(r, p)

	// The reference: the same run PUT whole on the direct server.
	var doc bytes.Buffer
	if err := repro.WriteRunXML(&doc, r, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if status, body := putRunDoc(t, direct.base, "r", doc.String()); status != 200 {
		t.Fatalf("PUT /runs/r: %d %v", status, body)
	}

	appendEvents := func(from, to int) {
		t.Helper()
		var buf bytes.Buffer
		if err := repro.WriteEventLog(&buf, evs[from:to]); err != nil {
			t.Fatal(err)
		}
		if status, resp := postEvents(t, streamed.base, "r", from, buf.Bytes()); status != 200 {
			t.Fatalf("append [%d,%d): %d %v", from, to, status, resp)
		}
	}

	// Mid-stream the event prefix usually does not describe a complete
	// run yet; /rpq must then refuse with 409 — never a 5xx — and when
	// the prefix happens to be complete it must answer 200.
	mid := 2 * len(evs) / 3
	appendEvents(0, mid)
	status, body := postRPQ(t, streamed.base, "r", "0", "1", ".*")
	if status != 200 && status != 409 {
		t.Fatalf("mid-stream /rpq: status %d (want 200 or 409): %s", status, body)
	}

	// Stream the rest: the run is now live AND complete, so /rpq must
	// answer — the session's online labels prune the product walk.
	appendEvents(mid, len(evs))

	names := specModuleNames(s)
	patterns := []string{
		".*",
		".",
		"()",
		names[0],
		fmt.Sprintf(".* %s .*", names[len(names)/2]),
		fmt.Sprintf("(%s|%s)* .*", names[0], names[1%len(names)]),
		rpq.RandomPattern(rng, names, 2),
		rpq.RandomPattern(rng, names, 3),
	}
	n := r.NumVertices()
	var pairs [][2]int
	for u := 0; u < n; u += 17 {
		for v := 0; v < n; v += 13 {
			pairs = append(pairs, [2]int{u, v})
		}
	}

	sweep := func(base string) []string {
		t.Helper()
		var out []string
		for _, pat := range patterns {
			for _, pr := range pairs {
				status, body := postRPQ(t, base, "r", fmt.Sprint(pr[0]), fmt.Sprint(pr[1]), pat)
				if status != 200 {
					t.Fatalf("POST /rpq %q (%d,%d) on %s: status %d: %s", pat, pr[0], pr[1], base, status, body)
				}
				out = append(out, body)
			}
		}
		return out
	}

	liveAnswers := sweep(streamed.base)

	// Seal the run; the same sweep must answer byte-identically — the
	// live and stored paths are one engine behind two resolutions.
	fin, err := http.Post(streamed.base+"/runs/r/finish", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	fin.Body.Close()
	if fin.StatusCode != 200 {
		t.Fatalf("finish: status %d", fin.StatusCode)
	}
	finishedAnswers := sweep(streamed.base)
	directAnswers := sweep(direct.base)

	l, err := repro.LabelRun(r, repro.TCM)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (repro.VertexID, bool) {
		return s.VertexOf(repro.ModuleName(name))
	}
	i := 0
	for _, pat := range patterns {
		prog, err := rpq.Compile(pat, lookup)
		if err != nil {
			t.Fatalf("pattern %q: %v", pat, err)
		}
		m := rpq.NewMatcher(prog, 0)
		for _, pr := range pairs {
			if liveAnswers[i] != finishedAnswers[i] {
				t.Fatalf("%q (%d,%d): live %s != finished %s", pat, pr[0], pr[1], liveAnswers[i], finishedAnswers[i])
			}
			if finishedAnswers[i] != directAnswers[i] {
				t.Fatalf("%q (%d,%d): streamed %s != direct %s", pat, pr[0], pr[1], finishedAnswers[i], directAnswers[i])
			}
			want, err := m.Eval(r.Graph, r.Origin, l.Reachable, repro.VertexID(pr[0]), repro.VertexID(pr[1]))
			if err != nil {
				t.Fatal(err)
			}
			var decoded struct {
				Match bool `json:"match"`
			}
			if err := json.Unmarshal([]byte(directAnswers[i]), &decoded); err != nil {
				t.Fatalf("%q (%d,%d): undecodable body %s: %v", pat, pr[0], pr[1], directAnswers[i], err)
			}
			if decoded.Match != want {
				t.Fatalf("%q (%d,%d): server says %v, in-process engine says %v", pat, pr[0], pr[1], decoded.Match, want)
			}
			i++
		}
	}

	// The CLI speaks the same protocol.
	out := runTool(t, "provquery", "-rpq", direct.base, "-run", "r", "-from", "0", "-to", fmt.Sprint(n-1), "-pattern", ".*")
	if !strings.Contains(out, "path matches") {
		t.Fatalf("provquery -rpq output unexpected:\n%s", out)
	}

	// Hostile inputs over the wire are client errors, never engine
	// failures.
	for _, bad := range []struct{ pattern string }{
		{"(a"}, {"[a-z]"}, {"a{3}"}, {strings.Repeat("x", rpq.MaxPatternLen+1)},
	} {
		status, body := postRPQ(t, direct.base, "r", "0", "1", bad.pattern)
		if status != 400 {
			t.Fatalf("bad pattern %.20q: status %d (want 400): %s", bad.pattern, status, body)
		}
	}
}
