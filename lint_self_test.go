package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/lint"
)

// TestLintRepoClean runs every provlint analyzer over the real module
// and fails on any unsuppressed finding. This is the tier-1 teeth
// behind the invariants in internal/lint/doc.go: a regression that
// flattens a store error with %v, draws from the global rand source,
// drops a Backend error, touches a guarded field unlocked, or adds a
// route without a counter fails `go test ./...`, not just `make lint`.
func TestLintRepoClean(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(pkgs))
	}
	diags := lint.Run(pkgs, lint.All(), ".")
	var failures []string
	for _, d := range lint.Unsuppressed(diags) {
		failures = append(failures, fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			t.Error(f)
		}
		t.Fatalf("provlint found %d unsuppressed findings; fix them or add //provlint:ignore <analyzer> <reason>", len(failures))
	}
}
