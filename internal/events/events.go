// Package events models workflow-engine execution logs: a stream of
// copy-start and module-execution events, like the logs the paper notes
// Taverna produces ("the execution plan and context can be directly
// extracted from the system log"). It provides an emitter that renders an
// execution tree as a valid event stream, a text serialization for
// log files, and a consumer that drives the online labeler — so a run can
// be labeled straight from an engine log with no graph reconstruction.
package events

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/label"
	"repro/internal/online"
	"repro/internal/plan"
	"repro/internal/run"
	"repro/internal/spec"
)

// Kind is the event type.
type Kind uint8

const (
	// CopyStart begins a new fork copy or loop iteration.
	CopyStart Kind = iota
	// ModuleExec records one module execution inside a copy.
	ModuleExec
)

// Event is one log record. Copies are numbered by the engine in starting
// order; copy 0 is the run itself and needs no CopyStart.
type Event struct {
	Kind Kind
	// Copy is the subject copy: the started copy for CopyStart, the
	// context copy for ModuleExec.
	Copy int
	// Parent is the enclosing copy (CopyStart only).
	Parent int
	// HNode is the specification hierarchy node of the copy (CopyStart).
	HNode int
	// Module is the executed module (ModuleExec only).
	Module spec.ModuleName
}

// Emit renders a materialized run's ground-truth plan as an event
// stream: copies start in plan order (serial order for loop chains) and
// every module execution appears after its context copy started.
func Emit(r *run.Run, p *plan.Plan) []Event {
	// Assign copy numbers in a DFS over the plan's + nodes.
	copyID := make(map[*plan.Node]int, len(p.Nodes))
	var events []Event
	next := 0
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		copyID[n] = next
		if next > 0 {
			events = append(events, Event{
				Kind:   CopyStart,
				Copy:   next,
				Parent: copyID[plusParent(n)],
				HNode:  n.HNode,
			})
		}
		next++
		for _, minus := range n.Children {
			for _, c := range minus.Children {
				walk(c)
			}
		}
	}
	walk(p.Root)
	for v, ctx := range p.Context {
		events = append(events, Event{
			Kind:   ModuleExec,
			Copy:   copyID[ctx],
			Module: r.Spec.NameOf(r.Origin[v]),
		})
	}
	return events
}

// plusParent returns the + node enclosing n (skipping the − node).
func plusParent(n *plan.Node) *plan.Node {
	if n.Parent == nil {
		return n
	}
	return n.Parent.Parent
}

// Replay feeds an event stream into an online labeler. It returns the
// labeler and the run vertex IDs in event order. Copy numbering must
// follow the Emit convention (0 = the run, parents before children, loop
// iterations in serial order).
func Replay(s *spec.Spec, skeleton label.Labeling, events []Event) (*online.Labeler, error) {
	l := online.New(s, skeleton)
	copies := map[int]*online.Copy{0: l.Root()}
	for i, e := range events {
		switch e.Kind {
		case CopyStart:
			parent, ok := copies[e.Parent]
			if !ok {
				return nil, fmt.Errorf("events: event %d starts copy %d under unknown parent %d", i, e.Copy, e.Parent)
			}
			if _, dup := copies[e.Copy]; dup {
				return nil, fmt.Errorf("events: event %d restarts copy %d", i, e.Copy)
			}
			c, err := l.StartCopy(parent, e.HNode)
			if err != nil {
				return nil, fmt.Errorf("events: event %d: %w", i, err)
			}
			copies[e.Copy] = c
		case ModuleExec:
			c, ok := copies[e.Copy]
			if !ok {
				return nil, fmt.Errorf("events: event %d executes in unknown copy %d", i, e.Copy)
			}
			orig, ok := s.VertexOf(e.Module)
			if !ok {
				return nil, fmt.Errorf("events: event %d references unknown module %q", i, e.Module)
			}
			if _, err := l.AddExec(c, orig); err != nil {
				return nil, fmt.Errorf("events: event %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("events: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return l, nil
}

// WriteLog serializes events as a line-oriented log:
//
//	copy <id> parent <id> hnode <n>
//	exec <module> copy <id>
func WriteLog(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		var err error
		switch e.Kind {
		case CopyStart:
			_, err = fmt.Fprintf(bw, "copy %d parent %d hnode %d\n", e.Copy, e.Parent, e.HNode)
		case ModuleExec:
			_, err = fmt.Fprintf(bw, "exec %s copy %d\n", e.Module, e.Copy)
		default:
			err = fmt.Errorf("events: unknown kind %d", e.Kind)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a log written by WriteLog. Lines are capped at
// bufio.Scanner's default 64KiB and the event count is unbounded; use
// ReadLogLimits when the reader is fed from the wire.
func ReadLog(r io.Reader) ([]Event, error) {
	return ReadLogLimits(r, 0, 0)
}

// ReadLogLimits parses a log written by WriteLog, rejecting lines longer
// than maxLine bytes and streams of more than maxEvents events — the
// bounds a server applies to wire input so a hostile body can neither
// balloon a single token nor an event slice past what the request-size
// cap implies. Zero (or negative) disables either limit, leaving the
// scanner's default 64KiB line cap.
func ReadLogLimits(r io.Reader, maxLine, maxEvents int) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	if maxLine > 0 {
		sc.Buffer(make([]byte, 0, min(maxLine, 64*1024)), maxLine)
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if maxEvents > 0 && len(events) >= maxEvents {
			return nil, fmt.Errorf("events: line %d: more than %d events in one log", lineNo, maxEvents)
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "copy" && len(fields) == 6 && fields[2] == "parent" && fields[4] == "hnode":
			var e Event
			e.Kind = CopyStart
			if _, err := fmt.Sscanf(line, "copy %d parent %d hnode %d", &e.Copy, &e.Parent, &e.HNode); err != nil {
				return nil, fmt.Errorf("events: line %d: %w", lineNo, err)
			}
			events = append(events, e)
		case fields[0] == "exec" && len(fields) == 4 && fields[2] == "copy":
			var e Event
			e.Kind = ModuleExec
			e.Module = spec.ModuleName(fields[1])
			if _, err := fmt.Sscanf(fields[3], "%d", &e.Copy); err != nil {
				return nil, fmt.Errorf("events: line %d: %w", lineNo, err)
			}
			events = append(events, e)
		default:
			return nil, fmt.Errorf("events: line %d: unrecognized record %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	return events, nil
}
