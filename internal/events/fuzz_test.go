package events_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
)

// FuzzReadLog ensures the log parser never panics and that whatever it
// parses either replays cleanly or is rejected by Replay — never a
// crash.
func FuzzReadLog(f *testing.F) {
	s := spec.PaperSpec()
	r, p := run.Figure3Run(s)
	var seed bytes.Buffer
	if err := events.WriteLog(&seed, events.Emit(r, p)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("copy 1 parent 0 hnode 1\nexec a copy 0\n")
	f.Add("# comment only\n")
	f.Add("garbage\n")
	skel, err := label.BFS{}.Build(s.Graph)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input string) {
		evs, err := events.ReadLog(strings.NewReader(input))
		if err != nil {
			return
		}
		// Parsed logs must round-trip.
		var buf bytes.Buffer
		if err := events.WriteLog(&buf, evs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := events.ReadLog(&buf)
		if err != nil || len(again) != len(evs) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(again), len(evs))
		}
		// Replay must either succeed or error — never panic.
		_, _ = events.Replay(s, skel, evs)
	})
}
