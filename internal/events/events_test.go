package events_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/events"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
)

func TestEmitReplayMatchesOracle(t *testing.T) {
	s := spec.PaperSpec()
	r, p := run.Figure3Run(s)
	evs := events.Emit(r, p)
	// One CopyStart per non-root + node (10) plus one ModuleExec per
	// vertex (16).
	starts, execs := 0, 0
	for _, e := range evs {
		switch e.Kind {
		case events.CopyStart:
			starts++
		case events.ModuleExec:
			execs++
		}
	}
	if starts != 10 || execs != 16 {
		t.Fatalf("starts/execs = %d/%d, want 10/16", starts, execs)
	}
	skel, _ := label.TCM{}.Build(s.Graph)
	l, err := events.Replay(s, skel, evs)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumVertices() != r.NumVertices() {
		t.Fatalf("replay has %d vertices, want %d", l.NumVertices(), r.NumVertices())
	}
	// Emit orders ModuleExec events by run vertex ID, so IDs align.
	closure, _ := r.Graph.TransitiveClosure()
	n := r.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if l.Reachable(dag.VertexID(u), dag.VertexID(v)) != closure.Reachable(dag.VertexID(u), dag.VertexID(v)) {
				t.Fatalf("event-replayed labels disagree at (%s,%s)", r.NameOf(dag.VertexID(u)), r.NameOf(dag.VertexID(v)))
			}
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	s := spec.PaperSpec()
	r, p := run.Figure3Run(s)
	evs := events.Emit(r, p)
	var buf bytes.Buffer
	if err := events.WriteLog(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := events.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("round trip lost events: %d -> %d", len(evs), len(got))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d changed: %+v -> %+v", i, evs[i], got[i])
		}
	}
}

func TestReadLogTolerant(t *testing.T) {
	log := `
# engine log
copy 1 parent 0 hnode 1

exec a copy 0
`
	evs, err := events.ReadLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
}

func TestReadLogErrors(t *testing.T) {
	for _, bad := range []string{
		"bogus line",
		"copy x parent 0 hnode 1",
		"exec a copy x",
		"copy 1 parent 0",
	} {
		if _, err := events.ReadLog(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestReplayErrors(t *testing.T) {
	s := spec.PaperSpec()
	skel, _ := label.BFS{}.Build(s.Graph)
	cases := []struct {
		name string
		evs  []events.Event
	}{
		{"unknown parent", []events.Event{{Kind: events.CopyStart, Copy: 1, Parent: 9, HNode: 1}}},
		{"duplicate copy", []events.Event{
			{Kind: events.CopyStart, Copy: 1, Parent: 0, HNode: 1},
			{Kind: events.CopyStart, Copy: 1, Parent: 0, HNode: 1},
		}},
		{"unknown exec copy", []events.Event{{Kind: events.ModuleExec, Copy: 5, Module: "a"}}},
		{"unknown module", []events.Event{{Kind: events.ModuleExec, Copy: 0, Module: "zz"}}},
		{"bad kind", []events.Event{{Kind: 99}}},
	}
	for _, c := range cases {
		if _, err := events.Replay(s, skel, c.evs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Property: emit→log→parse→replay agrees with direct reachability for
// random runs.
func TestQuickLogPipeline(t *testing.T) {
	s := spec.PaperSpec()
	skel, _ := label.TCM{}.Build(s.Graph)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecSteps(s, rng, rng.Intn(40))
		r, p := run.MustMaterialize(s, et)
		evs := events.Emit(r, p)
		var buf bytes.Buffer
		if err := events.WriteLog(&buf, evs); err != nil {
			return false
		}
		parsed, err := events.ReadLog(&buf)
		if err != nil {
			return false
		}
		l, err := events.Replay(s, skel, parsed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		searcher := dag.NewSearcher(r.Graph)
		n := r.NumVertices()
		for q := 0; q < 200; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if l.Reachable(u, v) != searcher.ReachableBFS(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
