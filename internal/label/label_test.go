package label

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func buildAll(t *testing.T, g *dag.Graph) []Labeling {
	t.Helper()
	var out []Labeling
	for _, s := range All() {
		l, err := s.Build(g)
		if err != nil {
			t.Fatalf("%s.Build: %v", s.Name(), err)
		}
		if l.Scheme() != s.Name() {
			t.Fatalf("labeling reports scheme %q, want %q", l.Scheme(), s.Name())
		}
		out = append(out, l)
	}
	return out
}

func TestSchemesOnDiamond(t *testing.T) {
	g := dag.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	cases := []struct {
		u, v dag.VertexID
		want bool
	}{
		{0, 3, true}, {3, 0, false}, {1, 2, false}, {2, 1, false},
		{0, 0, true}, {1, 3, true}, {2, 3, true}, {3, 3, true},
	}
	for _, l := range buildAll(t, g) {
		for _, c := range cases {
			if got := l.Reachable(c.u, c.v); got != c.want {
				t.Errorf("%s.Reachable(%d,%d) = %v, want %v", l.Scheme(), c.u, c.v, got, c.want)
			}
		}
	}
}

func TestSchemesRejectCycles(t *testing.T) {
	g := dag.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	for _, s := range []Scheme{TCM{}, Interval{}, Chain{}} {
		if _, err := s.Build(g); err == nil {
			t.Errorf("%s accepted a cyclic graph", s.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"TCM", "BFS", "DFS", "Interval", "Chain"} {
		s, err := ByName(name)
		if err != nil || s.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestIndexBitsAccounting(t *testing.T) {
	g := dag.RandomDAG(rand.New(rand.NewSource(1)), 50, 120)
	for _, l := range buildAll(t, g) {
		bits := l.IndexBits()
		switch l.Scheme() {
		case "BFS", "DFS":
			if bits != 0 {
				t.Errorf("%s should report 0 index bits, got %d", l.Scheme(), bits)
			}
		case "TCM":
			if bits != 50*50 {
				t.Errorf("TCM bits = %d, want 2500", bits)
			}
		default:
			if bits <= 0 {
				t.Errorf("%s reports nonpositive index bits", l.Scheme())
			}
		}
	}
}

func TestIntervalNormalize(t *testing.T) {
	// Over integer postorder numbers adjacent intervals merge exactly:
	// {1,2}∪{3,4}∪{5,7}∪{6,9}∪{10,12} covers every integer in 1..12.
	got := normalize([]ival{{5, 7}, {1, 2}, {3, 4}, {10, 12}, {6, 9}})
	want := []ival{{1, 12}}
	if len(got) != len(want) {
		t.Fatalf("normalize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalize = %v, want %v", got, want)
		}
	}
	if out := normalize(nil); len(out) != 0 {
		t.Error("normalize(nil) should be empty")
	}
}

// Property: every scheme agrees with the transitive closure on random DAGs.
func TestQuickAllSchemesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := dag.RandomDAG(rng, n, 3*n)
		closure, _ := g.TransitiveClosure()
		var labelings []Labeling
		for _, s := range All() {
			l, err := s.Build(g)
			if err != nil {
				return false
			}
			labelings = append(labelings, l)
		}
		for q := 0; q < 300; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			want := closure.Reachable(u, v)
			for _, l := range labelings {
				if l.Reachable(u, v) != want {
					t.Logf("seed %d: %s disagrees on (%d,%d)", seed, l.Scheme(), u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: schemes agree on flow networks too (the shape specifications
// actually take).
func TestQuickSchemesOnFlowNetworks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		g := dag.RandomFlowNetwork(rng, n, 2*n)
		closure, _ := g.TransitiveClosure()
		for _, s := range All() {
			l, err := s.Build(g)
			if err != nil {
				return false
			}
			for q := 0; q < 100; q++ {
				u := dag.VertexID(rng.Intn(n))
				v := dag.VertexID(rng.Intn(n))
				if l.Reachable(u, v) != closure.Reachable(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	g := dag.RandomFlowNetwork(rand.New(rand.NewSource(3)), 200, 400)
	for _, s := range All() {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Build(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkQuery(b *testing.B) {
	g := dag.RandomFlowNetwork(rand.New(rand.NewSource(4)), 200, 400)
	n := g.NumVertices()
	for _, s := range All() {
		l, err := s.Build(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := dag.VertexID(i % n)
				v := dag.VertexID((i * 13) % n)
				l.Reachable(u, v)
			}
		})
	}
}
