// Package label defines the reachability labeling scheme interface
// (Definition 7) and the schemes used to label specifications: the two the
// paper evaluates — TCM (precomputed transitive closure matrix) and
// BFS/DFS (search at query time) — plus two classic index families
// (interval tree cover and chain decomposition) used to substantiate the
// claim that the skeleton-based scheme is robust to the choice of
// specification labeling (Sections 7 and 8.2).
package label

import (
	"fmt"
	"sync"

	"repro/internal/dag"
)

// Labeling answers reachability queries over one fixed graph. Reachable
// must treat every vertex as reaching itself.
type Labeling interface {
	// Reachable reports whether v is reachable from u.
	Reachable(u, v dag.VertexID) bool
	// IndexBits is the total size of the labeling's stored labels in bits
	// (0 for schemes that answer queries by searching the graph).
	IndexBits() int64
	// Scheme names the scheme that produced this labeling.
	Scheme() string
}

// Scheme constructs Labelings for graphs (the labeling function φ of
// Definition 7).
type Scheme interface {
	// Name identifies the scheme (e.g. "TCM", "BFS").
	Name() string
	// Build labels the graph. The graph must be a DAG.
	Build(g *dag.Graph) (Labeling, error)
}

// ByName returns the scheme with the given name. Recognized names are
// "TCM", "BFS", "DFS", "Interval", "Chain", "2-Hop" and "Dual".
func ByName(name string) (Scheme, error) {
	switch name {
	case "TCM":
		return TCM{}, nil
	case "BFS":
		return BFS{}, nil
	case "DFS":
		return DFS{}, nil
	case "Interval":
		return Interval{}, nil
	case "Chain":
		return Chain{}, nil
	case "2-Hop", "TwoHop":
		return TwoHop{}, nil
	case "Dual":
		return Dual{}, nil
	}
	return nil, fmt.Errorf("label: unknown scheme %q", name)
}

// All returns every available scheme, in a fixed order.
func All() []Scheme {
	return []Scheme{TCM{}, BFS{}, DFS{}, Interval{}, Chain{}, TwoHop{}, Dual{}}
}

// TCM is the transitive-closure-matrix scheme of Section 7: the label of
// vertex i is row i of the closure matrix. Queries are O(1); labels total
// n² bits and construction costs O(n·m/64).
type TCM struct{}

// Name implements Scheme.
func (TCM) Name() string { return "TCM" }

// Build implements Scheme.
func (TCM) Build(g *dag.Graph) (Labeling, error) {
	c, ok := g.TransitiveClosure()
	if !ok {
		return nil, fmt.Errorf("label: TCM requires an acyclic graph")
	}
	return &tcmLabeling{c: c, n: g.NumVertices()}, nil
}

type tcmLabeling struct {
	c *dag.Closure
	n int
}

func (l *tcmLabeling) Reachable(u, v dag.VertexID) bool { return l.c.Reachable(u, v) }
func (l *tcmLabeling) IndexBits() int64                 { return int64(l.n) * int64(l.n) }
func (l *tcmLabeling) Scheme() string                   { return "TCM" }

// BFS is the search-at-query-time scheme of Section 7: no labels are
// stored and each query runs a breadth-first search over the graph.
type BFS struct{}

// Name implements Scheme.
func (BFS) Name() string { return "BFS" }

// Build implements Scheme.
func (BFS) Build(g *dag.Graph) (Labeling, error) {
	return newSearchLabeling(g, false), nil
}

// DFS is like BFS but searches depth-first.
type DFS struct{}

// Name implements Scheme.
func (DFS) Name() string { return "DFS" }

// Build implements Scheme.
func (DFS) Build(g *dag.Graph) (Labeling, error) {
	return newSearchLabeling(g, true), nil
}

// searchLabeling answers queries by graph search. Searchers carry
// per-query scratch state, so a pool hands each goroutine its own —
// labelings (like all Labelings in this package) are safe for concurrent
// queries.
type searchLabeling struct {
	g    *dag.Graph
	pool sync.Pool
	dfs  bool
}

func newSearchLabeling(g *dag.Graph, dfs bool) *searchLabeling {
	l := &searchLabeling{g: g, dfs: dfs}
	l.pool.New = func() any { return dag.NewSearcher(g) }
	return l
}

func (l *searchLabeling) Reachable(u, v dag.VertexID) bool {
	s := l.pool.Get().(*dag.Searcher)
	var ok bool
	if l.dfs {
		ok = s.ReachableDFS(u, v)
	} else {
		ok = s.ReachableBFS(u, v)
	}
	l.pool.Put(s)
	return ok
}
func (l *searchLabeling) IndexBits() int64 { return 0 }
func (l *searchLabeling) Scheme() string {
	if l.dfs {
		return "DFS"
	}
	return "BFS"
}
