package label

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Interval is the tree-cover interval scheme of Agrawal, Borgida and
// Jagadish (SIGMOD 1989), one of the classic DAG reachability indexes the
// paper surveys: a spanning forest is numbered in postorder, every vertex
// carries its subtree interval, and non-tree reachability is folded in by
// propagating interval sets in reverse topological order.
type Interval struct{}

// Name implements Scheme.
func (Interval) Name() string { return "Interval" }

// Build implements Scheme.
func (Interval) Build(g *dag.Graph) (Labeling, error) {
	topo, ok := g.TopoSort()
	if !ok {
		return nil, fmt.Errorf("label: Interval requires an acyclic graph")
	}
	n := g.NumVertices()
	// Spanning forest: the tree parent of v is its first predecessor in
	// topological order (any choice yields a valid cover).
	parent := make([]dag.VertexID, n)
	for i := range parent {
		parent[i] = -1
	}
	children := make([][]dag.VertexID, n)
	for _, v := range topo {
		if ins := g.In(v); len(ins) > 0 {
			parent[v] = ins[0]
			children[ins[0]] = append(children[ins[0]], v)
		}
	}
	// Postorder numbering over the forest (roots in topo order).
	post := make([]int32, n)
	counter := int32(0)
	var number func(v dag.VertexID)
	number = func(v dag.VertexID) {
		for _, c := range children[v] {
			number(c)
		}
		counter++
		post[v] = counter
	}
	for _, v := range topo {
		if parent[v] == -1 {
			number(v)
		}
	}
	// low[v] = smallest postorder in v's subtree; the tree interval of v
	// is [low[v], post[v]].
	low := make([]int32, n)
	var computeLow func(v dag.VertexID) int32
	computeLow = func(v dag.VertexID) int32 {
		lo := post[v]
		for _, c := range children[v] {
			if l := computeLow(c); l < lo {
				lo = l
			}
		}
		low[v] = lo
		return lo
	}
	for _, v := range topo {
		if parent[v] == -1 {
			computeLow(v)
		}
	}
	// Propagate interval sets in reverse topological order.
	ivs := make([][]ival, n)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		set := []ival{{low[v], post[v]}}
		for _, w := range g.Out(v) {
			set = append(set, ivs[w]...)
		}
		ivs[v] = normalize(set)
	}
	bits := int64(0)
	for _, set := range ivs {
		bits += int64(len(set)) * 64 // two 32-bit endpoints per interval
	}
	return &intervalLabeling{post: post, ivs: ivs, bits: bits}, nil
}

// ival is a closed interval of postorder numbers.
type ival struct{ lo, hi int32 }

// normalize sorts and merges overlapping or adjacent intervals.
func normalize(set []ival) []ival {
	if len(set) <= 1 {
		return set
	}
	sort.Slice(set, func(i, j int) bool { return set[i].lo < set[j].lo })
	out := set[:1]
	for _, iv := range set[1:] {
		lastIdx := len(out) - 1
		if iv.lo <= out[lastIdx].hi+1 {
			if iv.hi > out[lastIdx].hi {
				out[lastIdx].hi = iv.hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return append([]ival(nil), out...)
}

type intervalLabeling struct {
	post []int32
	ivs  [][]ival
	bits int64
}

func (l *intervalLabeling) Reachable(u, v dag.VertexID) bool {
	p := l.post[v]
	set := l.ivs[u]
	// Binary search for the interval containing p.
	i := sort.Search(len(set), func(i int) bool { return set[i].hi >= p })
	return i < len(set) && set[i].lo <= p
}

func (l *intervalLabeling) IndexBits() int64 { return l.bits }
func (l *intervalLabeling) Scheme() string   { return "Interval" }
