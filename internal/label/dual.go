package label

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dag"
)

// Dual is a tree+link index in the spirit of Dual Labeling (Wang, He,
// Yang, Yu and Yu, ICDE 2006), the remaining Tree-Cover variant the paper
// surveys: reachability through a spanning tree is answered by interval
// containment, and reachability through the (hopefully few) non-tree
// edges by a precomputed transitive closure over the non-tree "links".
//
// This implementation keeps the paper-level structure (tree intervals +
// t×t link closure) but answers the link part by intersecting per-vertex
// link bitsets rather than with the original's O(1) interval trick, so a
// query costs O(t/64) for t non-tree edges — an excellent fit for the
// tree-like specification graphs this library labels.
type Dual struct{}

// Name implements Scheme.
func (Dual) Name() string { return "Dual" }

// Build implements Scheme.
func (Dual) Build(g *dag.Graph) (Labeling, error) {
	topo, ok := g.TopoSort()
	if !ok {
		return nil, fmt.Errorf("label: Dual requires an acyclic graph")
	}
	n := g.NumVertices()
	// Spanning forest as in Interval: tree parent = first predecessor.
	parent := make([]dag.VertexID, n)
	for i := range parent {
		parent[i] = -1
	}
	children := make([][]dag.VertexID, n)
	treeEdge := make(map[dag.Edge]bool, n)
	for _, v := range topo {
		if ins := g.In(v); len(ins) > 0 {
			parent[v] = ins[0]
			children[ins[0]] = append(children[ins[0]], v)
			treeEdge[dag.Edge{Tail: ins[0], Head: v}] = true
		}
	}
	// Preorder intervals [start, end) per vertex.
	start := make([]int32, n)
	end := make([]int32, n)
	counter := int32(0)
	var number func(v dag.VertexID)
	number = func(v dag.VertexID) {
		start[v] = counter
		counter++
		for _, c := range children[v] {
			number(c)
		}
		end[v] = counter
	}
	for _, v := range topo {
		if parent[v] == -1 {
			number(v)
		}
	}
	inTree := func(u, v dag.VertexID) bool {
		return start[u] <= start[v] && start[v] < end[u]
	}
	// Non-tree links. Duplicate tree edges (multi-edges) also land here.
	var links []dag.Edge
	seenTree := make(map[dag.Edge]bool, len(treeEdge))
	for _, e := range g.Edges() {
		if treeEdge[e] && !seenTree[e] {
			seenTree[e] = true
			continue
		}
		links = append(links, e)
	}
	t := len(links)
	// outLinks[u] = links whose tail is tree-reachable from u.
	// inLinks[v] = links whose head tree-reaches v.
	outLinks := make([]*bitset.Set, n)
	inLinks := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		outLinks[v] = bitset.New(t)
		inLinks[v] = bitset.New(t)
	}
	for i, e := range links {
		for v := 0; v < n; v++ {
			if inTree(dag.VertexID(v), e.Tail) {
				outLinks[v].Set(i)
			}
			if inTree(e.Head, dag.VertexID(v)) {
				inLinks[v].Set(i)
			}
		}
	}
	// Link closure: linkReach[i] = set of links j such that a path from
	// links[i].Head to links[j].Tail exists (including via other links).
	// Computed from the full graph closure — construction-time cost only.
	closure, _ := g.TransitiveClosure()
	linkReach := make([]*bitset.Set, t)
	for i := range links {
		row := bitset.New(t)
		for j := range links {
			if closure.Reachable(links[i].Head, links[j].Tail) || links[i].Head == links[j].Tail {
				row.Set(j)
			}
		}
		// A link reaches "itself" in the sense of being usable directly.
		row.Set(i)
		linkReach[i] = row
	}
	bits := int64(n) * 64 // two 32-bit interval endpoints
	for v := 0; v < n; v++ {
		bits += int64(outLinks[v].Count()+inLinks[v].Count()) * 32
	}
	return &dualLabeling{
		start: start, end: end,
		outLinks: outLinks, inLinks: inLinks,
		linkReach: linkReach,
		t:         t,
	}, nil
}

type dualLabeling struct {
	start, end []int32
	outLinks   []*bitset.Set
	inLinks    []*bitset.Set
	linkReach  []*bitset.Set
	t          int
}

func (l *dualLabeling) Reachable(u, v dag.VertexID) bool {
	if l.start[u] <= l.start[v] && l.start[v] < l.end[u] {
		return true // pure tree path
	}
	if l.t == 0 {
		return false
	}
	// Exists i ∈ outLinks(u), j ∈ inLinks(v) with linkReach[i][j].
	target := l.inLinks[v]
	found := false
	l.outLinks[u].ForEach(func(i int) {
		if !found && l.linkReach[i].Intersects(target) {
			found = true
		}
	})
	return found
}

func (l *dualLabeling) IndexBits() int64 {
	bits := int64(len(l.start)) * 64
	for v := range l.outLinks {
		bits += int64(l.outLinks[v].Count()+l.inLinks[v].Count()) * 32
	}
	bits += int64(l.t) * int64(l.t)
	return bits
}

func (l *dualLabeling) Scheme() string { return "Dual" }
