package label

import (
	"fmt"

	"repro/internal/dag"
)

// Chain is the chain-decomposition scheme of Jagadish (TODS 1990): the DAG
// is covered by a set of chains (paths), and each vertex stores, per
// chain, the earliest chain position it can reach. A query then compares
// one stored position against the target's position in its own chain.
//
// The decomposition here is greedy rather than minimum (the paper's survey
// point stands either way): each vertex extends an existing chain whose
// current tail is one of its predecessors, if any, else starts a new chain.
type Chain struct{}

// Name implements Scheme.
func (Chain) Name() string { return "Chain" }

// Build implements Scheme.
func (Chain) Build(g *dag.Graph) (Labeling, error) {
	topo, ok := g.TopoSort()
	if !ok {
		return nil, fmt.Errorf("label: Chain requires an acyclic graph")
	}
	n := g.NumVertices()
	chainOf := make([]int32, n)
	posIn := make([]int32, n)
	tailOf := []dag.VertexID{} // current tail vertex per chain
	isTail := make([]bool, n)
	for i := range chainOf {
		chainOf[i] = -1
	}
	for _, v := range topo {
		extended := false
		for _, u := range g.In(v) {
			if isTail[u] {
				c := chainOf[u]
				chainOf[v] = c
				posIn[v] = posIn[u] + 1
				isTail[u] = false
				isTail[v] = true
				tailOf[c] = v
				extended = true
				break
			}
		}
		if !extended {
			c := int32(len(tailOf))
			chainOf[v] = c
			posIn[v] = 0
			tailOf = append(tailOf, v)
			isTail[v] = true
		}
	}
	k := len(tailOf)
	const inf = int32(1<<31 - 1)
	// reach[v*k+c] = earliest position on chain c reachable from v.
	reach := make([]int32, n*k)
	for i := range reach {
		reach[i] = inf
	}
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		row := reach[int(v)*k : int(v)*k+k]
		row[chainOf[v]] = posIn[v]
		for _, w := range g.Out(v) {
			wrow := reach[int(w)*k : int(w)*k+k]
			for c := 0; c < k; c++ {
				if wrow[c] < row[c] {
					row[c] = wrow[c]
				}
			}
		}
	}
	return &chainLabeling{k: k, chainOf: chainOf, posIn: posIn, reach: reach}, nil
}

type chainLabeling struct {
	k       int
	chainOf []int32
	posIn   []int32
	reach   []int32
}

func (l *chainLabeling) Reachable(u, v dag.VertexID) bool {
	return l.reach[int(u)*l.k+int(l.chainOf[v])] <= l.posIn[v]
}

func (l *chainLabeling) IndexBits() int64 {
	// One 32-bit position per (vertex, chain) pair plus the per-vertex
	// chain id and position.
	return int64(len(l.reach))*32 + int64(len(l.chainOf))*64
}

func (l *chainLabeling) Scheme() string { return "Chain" }
