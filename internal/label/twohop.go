package label

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dag"
)

// TwoHop is the 2-hop cover scheme of Cohen, Halperin, Kaplan and Zwick
// (SODA 2002), the third index family the paper surveys: each vertex u
// stores an out-hop set Lout(u) ⊆ descendants(u) and an in-hop set
// Lin(u) ⊆ ancestors(u) such that u reaches v iff Lout(u) ∩ Lin(v) ≠ ∅.
//
// The cover is built with the classic greedy set-cover heuristic: pick
// the hop vertex whose ancestor×descendant star covers the most not-yet-
// covered reachable pairs, charge it to the labels, repeat until every
// reachable pair is covered. Specifications are small, so the O(n³/64)
// greedy is perfectly affordable.
type TwoHop struct{}

// Name implements Scheme.
func (TwoHop) Name() string { return "2-Hop" }

// Build implements Scheme.
func (TwoHop) Build(g *dag.Graph) (Labeling, error) {
	closure, ok := g.TransitiveClosure()
	if !ok {
		return nil, fmt.Errorf("label: 2-Hop requires an acyclic graph")
	}
	n := g.NumVertices()
	// desc[w] includes w; anc[w] includes w (reflexive star centers).
	desc := make([]*bitset.Set, n)
	anc := make([]*bitset.Set, n)
	for w := 0; w < n; w++ {
		desc[w] = closure.Row(dag.VertexID(w))
		anc[w] = bitset.New(n)
	}
	for u := 0; u < n; u++ {
		desc[u].ForEach(func(v int) { anc[v].Set(u) })
	}
	// uncovered[u] = strict descendants of u not yet covered by any hop.
	uncovered := make([]*bitset.Set, n)
	remaining := 0
	for u := 0; u < n; u++ {
		uncovered[u] = desc[u].Clone()
		uncovered[u].Clear(u)
		remaining += uncovered[u].Count()
	}
	lout := make([][]int32, n)
	lin := make([][]int32, n)
	for remaining > 0 {
		// Greedy: hop w maximizing newly covered pairs in anc(w)×desc(w).
		bestW, bestGain := -1, 0
		for w := 0; w < n; w++ {
			gain := 0
			anc[w].ForEach(func(u int) {
				tmp := uncovered[u].Clone()
				tmp.And(desc[w])
				gain += tmp.Count()
			})
			if gain > bestGain {
				bestW, bestGain = w, gain
			}
		}
		if bestW < 0 {
			return nil, fmt.Errorf("label: 2-Hop greedy stalled with %d pairs uncovered", remaining)
		}
		w := bestW
		anc[w].ForEach(func(u int) {
			tmp := uncovered[u].Clone()
			tmp.And(desc[w])
			if c := tmp.Count(); c > 0 {
				lout[u] = append(lout[u], int32(w))
				remaining -= c
				negAnd(uncovered[u], desc[w]) // mark anc(w)×desc(w) pairs covered
			}
		})
		desc[w].ForEach(func(v int) {
			lin[v] = append(lin[v], int32(w))
		})
	}
	// Guarantee reflexivity and sort hop lists for merge-intersection.
	bits := int64(0)
	for u := 0; u < n; u++ {
		lout[u] = append(lout[u], int32(u))
		lin[u] = append(lin[u], int32(u))
		lout[u] = dedupSort(lout[u])
		lin[u] = dedupSort(lin[u])
		bits += int64(len(lout[u])+len(lin[u])) * 32
	}
	return &twoHopLabeling{lout: lout, lin: lin, bits: bits}, nil
}

// negAnd clears from a every bit set in b (a &^= b).
func negAnd(a, b *bitset.Set) {
	b.ForEach(func(i int) {
		if a.Test(i) {
			a.Clear(i)
		}
	})
}

func dedupSort(s []int32) []int32 {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

type twoHopLabeling struct {
	lout, lin [][]int32
	bits      int64
}

func (l *twoHopLabeling) Reachable(u, v dag.VertexID) bool {
	a, b := l.lout[u], l.lin[v]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func (l *twoHopLabeling) IndexBits() int64 { return l.bits }
func (l *twoHopLabeling) Scheme() string   { return "2-Hop" }
