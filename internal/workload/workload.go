// Package workload generates the evaluation workloads of Section 8:
// synthetic workflow specifications with exact structural parameters
// (number of vertices n_G, number of edges m_G, hierarchy size |T_G| and
// hierarchy depth [T_G]), stand-ins for the six real myExperiment
// workflows of Table 1, and query workloads.
//
// Substitution note (see DESIGN.md): the paper's real specifications come
// from the myExperiment repository, which we cannot access. The labeling
// algorithms observe only the graph structure (G, F, L), and the paper's
// own analysis identifies exactly the four published parameters as the
// performance-relevant quantities, so we synthesize specifications that
// match those parameters exactly.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/spec"
)

// Params are the structural parameters of a synthetic specification.
type Params struct {
	// NG is the number of vertices of G.
	NG int
	// MG is the number of edges of G.
	MG int
	// TGSize is |T_G|: the number of forks and loops plus one.
	TGSize int
	// TGDepth is [T_G]: the depth of the fork-and-loop hierarchy
	// (the root alone has depth 1).
	TGDepth int
	// ForkFraction is the fraction of subgraphs generated as forks
	// (the rest are loops). Zero means 0.5.
	ForkFraction float64
}

func (p Params) String() string {
	return fmt.Sprintf("nG=%d mG=%d |TG|=%d [TG]=%d", p.NG, p.MG, p.TGSize, p.TGDepth)
}

// region is a node of the construction tree: the root or one subgraph.
type region struct {
	kind     spec.Kind // meaningful for non-root
	root     bool
	children []*region
	// plain is the number of padding vertices in this region's own chain.
	plain int
	// chain is the emitted order of elements: -1 for a plain vertex,
	// otherwise an index into children.
	chain []int
}

// Synthesize generates a specification with exactly the given parameters.
// It returns an error when the parameters are infeasible (too few vertices
// for the requested hierarchy, too few edges for a connected flow network,
// or too many edges for the available skip-edge slots).
func Synthesize(rng *rand.Rand, p Params) (*spec.Spec, error) {
	if p.TGSize < 1 || p.TGDepth < 1 {
		return nil, fmt.Errorf("workload: |TG| and [TG] must be at least 1 (%v)", p)
	}
	k := p.TGSize - 1
	if k == 0 && p.TGDepth != 1 {
		return nil, fmt.Errorf("workload: no subgraphs requires depth 1 (%v)", p)
	}
	if k > 0 && (p.TGDepth < 2 || k < p.TGDepth-1) {
		return nil, fmt.Errorf("workload: %d subgraphs cannot realize depth %d (%v)", k, p.TGDepth, p)
	}
	if p.MG < p.NG-1 {
		return nil, fmt.Errorf("workload: need at least nG-1 edges (%v)", p)
	}
	ff := p.ForkFraction
	if ff == 0 {
		ff = 0.5
	}

	// 1. Hierarchy shape with exact depth: a chain of TGDepth-1 subgraphs
	// pins the depth; remaining subgraphs attach to random nodes whose
	// depth stays within bounds.
	root := &region{root: true}
	nodes := []*region{root}          // all regions, root first
	depth := map[*region]int{root: 1} // root depth 1
	prev := root
	for d := 2; d <= p.TGDepth; d++ {
		r := &region{}
		prev.children = append(prev.children, r)
		depth[r] = d
		nodes = append(nodes, r)
		prev = r
	}
	for len(nodes) < p.TGSize {
		parent := nodes[rng.Intn(len(nodes))]
		if depth[parent] >= p.TGDepth {
			continue
		}
		r := &region{}
		parent.children = append(parent.children, r)
		depth[r] = depth[parent] + 1
		nodes = append(nodes, r)
	}

	// 2. Kinds. A fork whose entire body is one child loop region is
	// still atomic, so kinds are unconstrained; only leaf forks need one
	// plain internal vertex (added below).
	for _, r := range nodes[1:] {
		if rng.Float64() < ff {
			r.kind = spec.Fork
		} else {
			r.kind = spec.Loop
		}
	}

	// 3. Minimum vertex cost: root terminals (2), loop terminals (2 per
	// loop), fork terminals (2 per fork, owned by the parent chain) and
	// one internal for childless forks.
	minCost := 2
	for _, r := range nodes[1:] {
		minCost += 2
		if r.kind == spec.Fork && len(r.children) == 0 {
			r.plain = 1
			minCost++
		}
	}
	if p.NG < minCost {
		return nil, fmt.Errorf("workload: nG=%d below structural minimum %d (%v)", p.NG, minCost, p)
	}
	// Distribute the padding vertices over random regions.
	for extra := p.NG - minCost; extra > 0; extra-- {
		nodes[rng.Intn(len(nodes))].plain++
	}
	// Fix each region's chain order (children and plain vertices shuffled).
	for _, r := range nodes {
		r.chain = r.chain[:0]
		for i := range r.children {
			r.chain = append(r.chain, i)
		}
		for i := 0; i < r.plain; i++ {
			r.chain = append(r.chain, -1)
		}
		rng.Shuffle(len(r.chain), func(i, j int) { r.chain[i], r.chain[j] = r.chain[j], r.chain[i] })
	}

	// 4. Emit the base path and record skip anchors per region.
	b := spec.NewBuilder()
	next := 0
	fresh := func() spec.ModuleName {
		n := spec.ModuleName(fmt.Sprintf("v%d", next))
		next++
		b.Module(n)
		return n
	}
	type anchor struct {
		name  spec.ModuleName
		outOK bool // may start a skip edge
		inOK  bool // may end a skip edge
	}
	anchorsOf := make(map[*region][]anchor)
	membersOf := make(map[*region][]spec.ModuleName)
	type declared struct {
		r        *region
		src, snk spec.ModuleName
		internal []spec.ModuleName
	}
	var decls []declared

	// emit renders the region body between entry and exit module names,
	// connecting prev -> ... -> exit, and returns all module names that
	// belong to the region (for the subgraph declaration).
	var emit func(r *region, entry, exit spec.ModuleName) []spec.ModuleName
	emit = func(r *region, entry, exit spec.ModuleName) []spec.ModuleName {
		members := []spec.ModuleName{entry, exit}
		anchors := []anchor{{entry, true, true}}
		prev := entry
		for _, el := range r.chain {
			if el == -1 {
				v := fresh()
				members = append(members, v)
				b.Edge(prev, v)
				anchors = append(anchors, anchor{v, true, true})
				prev = v
				continue
			}
			child := r.children[el]
			switch child.kind {
			case spec.Loop:
				ls := fresh()
				lt := fresh()
				b.Edge(prev, ls)
				sub := emit(child, ls, lt)
				members = append(members, sub...)
				decls = append(decls, declared{child, ls, lt, sub})
				// Into a loop source is fine; out of a loop sink is fine.
				anchors = append(anchors, anchor{ls, false, true}, anchor{lt, true, false})
				prev = lt
			case spec.Fork:
				u := fresh()
				w := fresh()
				b.Edge(prev, u)
				sub := emit(child, u, w) // includes u and w
				members = append(members, sub...)
				decls = append(decls, declared{child, u, w, sub})
				// u and w are plain parent vertices.
				anchors = append(anchors, anchor{u, true, true}, anchor{w, true, true})
				prev = w
			}
		}
		b.Edge(prev, exit)
		anchors = append(anchors, anchor{exit, true, true})
		anchorsOf[r] = anchors
		membersOf[r] = members
		// The members of the region body exclude entry/exit for forks
		// (their terminals are parent vertices handled by the caller).
		return members
	}
	src := fresh()
	bSink := fresh()
	emit(root, src, bSink)

	// 5. Skip edges: random anchor pairs (a before b in chain order,
	// a.outOK, b.inOK), within a single region, not duplicating the chain.
	type pair struct{ u, v spec.ModuleName }
	seen := make(map[pair]bool)
	// The base path edges:
	var slots []pair
	for _, r := range nodes {
		as := anchorsOf[r]
		for i := 0; i < len(as); i++ {
			if !as[i].outOK {
				continue
			}
			for j := i + 1; j < len(as); j++ {
				if as[j].inOK {
					slots = append(slots, pair{as[i].name, as[j].name})
				}
			}
		}
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	// Count base edges: exactly nG - 1 + number of chain connections?
	// The emitted base graph is a single path over all NG vertices, so it
	// has NG-1 edges; consume slots until MG is reached.
	needed := p.MG - (p.NG - 1)
	added := 0
	baseEdges := make(map[pair]bool)
	for _, e := range collectBuilderEdges(b) {
		baseEdges[pair{e[0], e[1]}] = true
	}
	for _, s := range slots {
		if added == needed {
			break
		}
		if baseEdges[s] || seen[s] {
			continue
		}
		seen[s] = true
		b.Edge(s.u, s.v)
		added++
	}
	if added < needed {
		return nil, fmt.Errorf("workload: only %d of %d skip edges placeable; increase nG or lower mG (%v)",
			added, needed, p)
	}

	// 6. Declare subgraphs.
	for _, d := range decls {
		internal := make([]spec.ModuleName, 0, len(d.internal))
		for _, m := range d.internal {
			if m != d.src && m != d.snk {
				internal = append(internal, m)
			}
		}
		if d.r.kind == spec.Fork {
			b.Fork(d.src, d.snk, internal...)
		} else {
			b.Loop(d.src, d.snk, internal...)
		}
	}
	s, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: generated spec invalid: %w (%v)", err, p)
	}
	// Exactness checks.
	if s.NumVertices() != p.NG || s.NumEdges() != p.MG {
		return nil, fmt.Errorf("workload: generated %dv/%de, wanted %dv/%de",
			s.NumVertices(), s.NumEdges(), p.NG, p.MG)
	}
	if s.Hier.NumNodes() != p.TGSize || s.Hier.MaxDepth != p.TGDepth {
		return nil, fmt.Errorf("workload: generated |TG|=%d [TG]=%d, wanted %d/%d",
			s.Hier.NumNodes(), s.Hier.MaxDepth, p.TGSize, p.TGDepth)
	}
	return s, nil
}

// collectBuilderEdges is a small helper to retrieve edges declared so far.
func collectBuilderEdges(b *spec.Builder) [][2]spec.ModuleName {
	return b.DeclaredEdges()
}

// MustSynthesize panics on error, for tests and benchmarks.
func MustSynthesize(rng *rand.Rand, p Params) *spec.Spec {
	s, err := Synthesize(rng, p)
	if err != nil {
		panic(err)
	}
	return s
}
