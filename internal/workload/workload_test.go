package workload_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/workload"
)

func TestSynthesizeExactParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []workload.Params{
		{NG: 20, MG: 19, TGSize: 1, TGDepth: 1},
		{NG: 20, MG: 25, TGSize: 3, TGDepth: 2},
		{NG: 50, MG: 100, TGSize: 10, TGDepth: 4},
		{NG: 100, MG: 200, TGSize: 10, TGDepth: 4}, // the Fig 15-17 workload
		{NG: 50, MG: 100, TGSize: 10, TGDepth: 4},  // Fig 18-20 small
		{NG: 200, MG: 400, TGSize: 10, TGDepth: 4}, // Fig 18-20 large
		{NG: 30, MG: 40, TGSize: 6, TGDepth: 5, ForkFraction: 0.8},
		{NG: 30, MG: 40, TGSize: 6, TGDepth: 5, ForkFraction: 0.2},
	}
	for _, p := range cases {
		for trial := 0; trial < 3; trial++ {
			s, err := workload.Synthesize(rng, p)
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			if s.NumVertices() != p.NG || s.NumEdges() != p.MG {
				t.Errorf("%v: got %dv/%de", p, s.NumVertices(), s.NumEdges())
			}
			if s.Hier.NumNodes() != p.TGSize || s.Hier.MaxDepth != p.TGDepth {
				t.Errorf("%v: got |TG|=%d [TG]=%d", p, s.Hier.NumNodes(), s.Hier.MaxDepth)
			}
		}
	}
}

func TestSynthesizeInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []workload.Params{
		{NG: 5, MG: 4, TGSize: 0, TGDepth: 1},    // TGSize < 1
		{NG: 5, MG: 4, TGSize: 1, TGDepth: 2},    // depth without subgraphs
		{NG: 5, MG: 4, TGSize: 2, TGDepth: 1},    // subgraphs need depth >= 2
		{NG: 5, MG: 4, TGSize: 3, TGDepth: 4},    // 2 subgraphs cannot reach depth 4
		{NG: 4, MG: 10, TGSize: 3, TGDepth: 2},   // below structural minimum
		{NG: 10, MG: 5, TGSize: 1, TGDepth: 1},   // fewer than nG-1 edges
		{NG: 10, MG: 500, TGSize: 1, TGDepth: 1}, // more edges than slots
	}
	for _, p := range cases {
		if _, err := workload.Synthesize(rng, p); err == nil {
			t.Errorf("%v: infeasible parameters accepted", p)
		}
	}
}

func TestRealWorkflowStandIns(t *testing.T) {
	for _, w := range workload.RealWorkflows() {
		s, err := workload.StandIn(w.Name, 7)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if s.NumVertices() != w.Params.NG || s.NumEdges() != w.Params.MG ||
			s.Hier.NumNodes() != w.Params.TGSize || s.Hier.MaxDepth != w.Params.TGDepth {
			t.Errorf("%s: parameters not matched exactly: got %d/%d/%d/%d want %v",
				w.Name, s.NumVertices(), s.NumEdges(), s.Hier.NumNodes(), s.Hier.MaxDepth, w.Params)
		}
	}
	if _, err := workload.StandIn("nope", 1); err == nil {
		t.Error("unknown workflow accepted")
	}
}

func TestStandInDeterministic(t *testing.T) {
	a := workload.MustStandIn("QBLAST", 3)
	b := workload.MustStandIn("QBLAST", 3)
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different specs")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestRunSizes(t *testing.T) {
	sizes := workload.RunSizes()
	if len(sizes) != 11 || sizes[0] != 100 || sizes[10] != 102_400 {
		t.Fatalf("RunSizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Fatal("sizes must double")
		}
	}
}

func TestQueryPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	qs := workload.QueryPairs(rng, 50, 1000)
	if len(qs) != 1000 {
		t.Fatal("wrong query count")
	}
	for _, q := range qs {
		if q[0] < 0 || q[0] >= 50 || q[1] < 0 || q[1] >= 50 {
			t.Fatal("query out of range")
		}
	}
}

// Property: synthetic specs support the full pipeline — runs generate,
// plans reconstruct, and SKL answers match the BFS oracle.
func TestQuickSyntheticEndToEnd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Params{
			NG:      15 + rng.Intn(60),
			TGSize:  1 + rng.Intn(6),
			TGDepth: 1,
		}
		if p.TGSize > 1 {
			maxDepth := p.TGSize // depth-1 <= k
			if maxDepth > 4 {
				maxDepth = 4
			}
			p.TGDepth = 2 + rng.Intn(maxDepth-1)
		}
		p.MG = p.NG - 1 + rng.Intn(p.NG/2)
		s, err := workload.Synthesize(rng, p)
		if err != nil {
			// Structural minimum can exceed NG for unlucky draws; that is
			// a legitimate rejection, not a failure.
			return true
		}
		et := run.RandomExecSteps(s, rng, rng.Intn(40))
		r, truth := run.MustMaterialize(s, et)
		if err := r.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		skel, err := label.TCM{}.Build(s.Graph)
		if err != nil {
			return false
		}
		l, err := core.LabelRun(r, skel)
		if err != nil {
			t.Logf("seed %d: label: %v", seed, err)
			return false
		}
		lp, err := core.LabelRunWithPlan(r, truth, skel)
		if err != nil {
			return false
		}
		searcher := dag.NewSearcher(r.Graph)
		n := r.NumVertices()
		for q := 0; q < 300; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			want := searcher.ReachableBFS(u, v)
			if l.Reachable(u, v) != want || lp.Reachable(u, v) != want {
				t.Logf("seed %d: mismatch (%d,%d)", seed, u, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The six stand-ins drive the full pipeline at moderate scale.
func TestStandInsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range workload.RealWorkflows() {
		s := workload.MustStandIn(w.Name, 7)
		r, _ := run.GenerateSized(s, rng, 2000)
		skel, _ := label.TCM{}.Build(s.Graph)
		l, err := core.LabelRun(r, skel)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		searcher := dag.NewSearcher(r.Graph)
		n := r.NumVertices()
		for q := 0; q < 500; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if l.Reachable(u, v) != searcher.ReachableBFS(u, v) {
				t.Fatalf("%s: mismatch at (%d,%d)", w.Name, u, v)
			}
		}
	}
}

var sink *spec.Spec

func BenchmarkSynthesizeQBLAST(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := workload.Params{NG: 58, MG: 72, TGSize: 6, TGDepth: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := workload.Synthesize(rng, p)
		if err != nil {
			b.Fatal(err)
		}
		sink = s
	}
}
