package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/spec"
)

// RealWorkflow is one of the six real-life scientific workflows of
// Table 1, identified by name and by the four published structural
// parameters. The specifications themselves are synthesized to match the
// parameters exactly (see the package comment for the substitution
// rationale).
type RealWorkflow struct {
	Name   string
	Params Params
}

// RealWorkflows returns the six workflows of Table 1 in paper order.
func RealWorkflows() []RealWorkflow {
	return []RealWorkflow{
		{"EBI", Params{NG: 29, MG: 31, TGSize: 4, TGDepth: 2}},
		{"PubMed", Params{NG: 35, MG: 45, TGSize: 3, TGDepth: 3}},
		{"QBLAST", Params{NG: 58, MG: 72, TGSize: 6, TGDepth: 3}},
		{"BioAID", Params{NG: 71, MG: 87, TGSize: 10, TGDepth: 4}},
		{"ProScan", Params{NG: 89, MG: 119, TGSize: 9, TGDepth: 4}},
		{"ProDisc", Params{NG: 111, MG: 158, TGSize: 9, TGDepth: 3}},
	}
}

// StandIn synthesizes the named Table-1 workflow deterministically from
// the given seed.
func StandIn(name string, seed int64) (*spec.Spec, error) {
	for _, w := range RealWorkflows() {
		if w.Name == name {
			return Synthesize(rand.New(rand.NewSource(seed)), w.Params)
		}
	}
	return nil, fmt.Errorf("workload: unknown real workflow %q", name)
}

// MustStandIn panics on error, for tests and benchmarks.
func MustStandIn(name string, seed int64) *spec.Spec {
	s, err := StandIn(name, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// RunSizes returns the paper's run-size sweep: 0.1K to 102.4K vertices,
// doubling each step (Section 8's x-axis).
func RunSizes() []int {
	sizes := make([]int, 0, 11)
	for n := 100; n <= 102_400; n *= 2 {
		sizes = append(sizes, n)
	}
	return sizes
}

// QueryPairs generates q uniformly random vertex-pair queries over a run
// of n vertices, as in the paper's 10⁶-query samples.
func QueryPairs(rng *rand.Rand, n, q int) [][2]int32 {
	out := make([][2]int32, q)
	for i := range out {
		out[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return out
}
