package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLongestPathChain(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	w := []int64{5, 1, 7, 2}
	total, path, ok := g.LongestPath(func(v VertexID) int64 { return w[v] })
	if !ok || total != 15 {
		t.Fatalf("total = %d ok=%v, want 15", total, ok)
	}
	if len(path) != 4 || path[0] != 0 || path[3] != 3 {
		t.Fatalf("path = %v", path)
	}
}

func TestLongestPathPicksHeavyBranch(t *testing.T) {
	// 0 -> {1 (weight 100), 2 (weight 1)} -> 3
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	w := []int64{1, 100, 1, 1}
	total, path, ok := g.LongestPath(func(v VertexID) int64 { return w[v] })
	if !ok || total != 102 {
		t.Fatalf("total = %d, want 102", total)
	}
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path should go through vertex 1: %v", path)
	}
}

func TestLongestPathDegenerate(t *testing.T) {
	if _, _, ok := New(0).LongestPath(func(VertexID) int64 { return 1 }); ok {
		t.Error("empty graph should fail")
	}
	cyc := New(2)
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 0)
	if _, _, ok := cyc.LongestPath(func(VertexID) int64 { return 1 }); ok {
		t.Error("cyclic graph should fail")
	}
	// Single vertex: path of itself.
	one := New(1)
	total, path, ok := one.LongestPath(func(VertexID) int64 { return 9 })
	if !ok || total != 9 || len(path) != 1 {
		t.Errorf("singleton: total=%d path=%v", total, path)
	}
}

// Property: the returned weight equals the weight of the returned path,
// the path is a real path, and no single vertex beats it.
func TestQuickLongestPathConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := RandomDAG(rng, n, 2*n)
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(rng.Intn(100))
		}
		total, path, ok := g.LongestPath(func(v VertexID) int64 { return w[v] })
		if !ok || len(path) == 0 {
			return false
		}
		var sum int64
		for i, v := range path {
			sum += w[v]
			if i > 0 && !g.HasEdge(path[i-1], v) {
				return false
			}
		}
		if sum != total {
			return false
		}
		for v := 0; v < n; v++ {
			if w[v] > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
