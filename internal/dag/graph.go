// Package dag provides the directed-graph substrate used throughout the
// library: compact adjacency storage, topological sorting, reachability by
// graph search, transitive closure, and flow-network structure checks
// (single source / single sink, as required by the workflow model).
package dag

import "fmt"

// VertexID identifies a vertex within one Graph. IDs are dense: a graph
// with n vertices uses IDs 0..n-1.
type VertexID int32

// Edge is a directed edge from Tail to Head.
type Edge struct {
	Tail, Head VertexID
}

// Graph is a mutable directed multigraph with dense vertex IDs.
// It is not safe for concurrent mutation.
type Graph struct {
	out [][]VertexID
	in  [][]VertexID
	m   int
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{out: make([][]VertexID, n), in: make([][]VertexID, n)}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.out) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.m }

// AddVertex adds a new vertex and returns its ID.
func (g *Graph) AddVertex() VertexID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return VertexID(len(g.out) - 1)
}

// AddEdge adds the directed edge (u, v). It panics if either endpoint is
// out of range. Parallel edges and self loops are representable (the
// workflow validator rejects them at a higher level).
func (g *Graph) AddEdge(u, v VertexID) {
	g.checkVertex(u)
	g.checkVertex(v)
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
}

// Out returns the out-neighbors of v. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Out(v VertexID) []VertexID {
	g.checkVertex(v)
	return g.out[v]
}

// In returns the in-neighbors of v. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) In(v VertexID) []VertexID {
	g.checkVertex(v)
	return g.in[v]
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v VertexID) int { g.checkVertex(v); return len(g.out[v]) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v VertexID) int { g.checkVertex(v); return len(g.in[v]) }

// Edges returns all edges in an unspecified but deterministic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.out {
		for _, v := range g.out[u] {
			es = append(es, Edge{VertexID(u), v})
		}
	}
	return es
}

// HasEdge reports whether at least one edge (u, v) exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	g.checkVertex(u)
	g.checkVertex(v)
	// Scan the smaller adjacency list.
	if len(g.out[u]) <= len(g.in[v]) {
		for _, w := range g.out[u] {
			if w == v {
				return true
			}
		}
		return false
	}
	for _, w := range g.in[v] {
		if w == u {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out: make([][]VertexID, len(g.out)),
		in:  make([][]VertexID, len(g.in)),
		m:   g.m,
	}
	for i := range g.out {
		c.out[i] = append([]VertexID(nil), g.out[i]...)
		c.in[i] = append([]VertexID(nil), g.in[i]...)
	}
	return c
}

// Sources returns the vertices with in-degree zero, in increasing ID order.
func (g *Graph) Sources() []VertexID {
	var s []VertexID
	for v := range g.in {
		if len(g.in[v]) == 0 {
			s = append(s, VertexID(v))
		}
	}
	return s
}

// Sinks returns the vertices with out-degree zero, in increasing ID order.
func (g *Graph) Sinks() []VertexID {
	var s []VertexID
	for v := range g.out {
		if len(g.out[v]) == 0 {
			s = append(s, VertexID(v))
		}
	}
	return s
}

// FlowNetworkTerminals returns the unique source and sink of g if g is an
// acyclic flow network (single source, single sink, acyclic). Otherwise it
// returns an error describing the first violated condition.
func (g *Graph) FlowNetworkTerminals() (source, sink VertexID, err error) {
	if g.NumVertices() == 0 {
		return 0, 0, fmt.Errorf("dag: empty graph is not a flow network")
	}
	srcs := g.Sources()
	if len(srcs) != 1 {
		return 0, 0, fmt.Errorf("dag: flow network needs exactly 1 source, found %d", len(srcs))
	}
	snks := g.Sinks()
	if len(snks) != 1 {
		return 0, 0, fmt.Errorf("dag: flow network needs exactly 1 sink, found %d", len(snks))
	}
	if _, ok := g.TopoSort(); !ok {
		return 0, 0, fmt.Errorf("dag: graph contains a cycle")
	}
	return srcs[0], snks[0], nil
}

func (g *Graph) checkVertex(v VertexID) {
	if v < 0 || int(v) >= len(g.out) {
		panic(fmt.Sprintf("dag: vertex %d out of range [0,%d)", v, len(g.out)))
	}
}
