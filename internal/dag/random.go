package dag

import "math/rand"

// RandomDAG generates a random DAG with n vertices and approximately m
// edges, oriented along a random permutation so the result is acyclic by
// construction. Duplicate edges are suppressed, so the realized edge count
// can be slightly below m on dense requests.
func RandomDAG(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	perm := rng.Perm(n)
	seen := make(map[[2]VertexID]bool, m)
	for tries := 0; g.NumEdges() < m && tries < 20*m+100; tries++ {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		u, v := VertexID(perm[i]), VertexID(perm[j])
		key := [2]VertexID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddEdge(u, v)
	}
	return g
}

// RandomFlowNetwork generates a random acyclic flow network (single source,
// single sink, every vertex on a source→sink path) with n >= 2 vertices and
// approximately m edges.
func RandomFlowNetwork(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	// Vertex 0 is the source and n-1 the sink; interior vertices are ordered
	// by ID, giving acyclicity. First thread a random spanning structure so
	// every interior vertex has an in-edge from a smaller vertex and an
	// out-edge to a larger one.
	for v := 1; v < n-1; v++ {
		g.AddEdge(VertexID(rng.Intn(v)), VertexID(v))
	}
	for v := n - 2; v >= 1; v-- {
		w := v + 1 + rng.Intn(n-1-v)
		g.AddEdge(VertexID(v), VertexID(w))
	}
	if n == 2 {
		g.AddEdge(0, 1)
		return g
	}
	seen := make(map[[2]VertexID]bool, m)
	for _, e := range g.Edges() {
		seen[[2]VertexID{e.Tail, e.Head}] = true
	}
	for tries := 0; g.NumEdges() < m && tries < 20*m+100; tries++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-1-u)
		key := [2]VertexID{VertexID(u), VertexID(v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddEdge(VertexID(u), VertexID(v))
	}
	return g
}
