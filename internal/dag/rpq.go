package dag

// Automaton is the minimal nondeterministic finite automaton interface
// MatchAutomaton evaluates. internal/rpq's compiled patterns implement
// it; keeping the interface here lets the naive reference evaluator
// live beside the other graph traversals without importing the engine
// it is the oracle for.
type Automaton interface {
	// NumStates returns the state count; states are 0..NumStates()-1.
	NumStates() int
	// Start returns the initial state.
	Start() int
	// Accepting reports whether q accepts.
	Accepting(q int) bool
	// AppendEps appends q's epsilon-successors to dst and returns it.
	AppendEps(dst []int, q int) []int
	// AppendMove appends q's successors on symbol sym to dst and
	// returns it.
	AppendMove(dst []int, q int, sym VertexID) []int
}

// MatchAutomaton reports whether some directed path from u to v spells a
// word a accepts, where the word of a path is syms[x] for each vertex x
// strictly after u — so u == v matches the empty word iff a accepts
// from its start state through epsilon moves alone.
//
// This is the deliberately naive regular-path-query reference
// evaluator: a plain BFS over (vertex, NFA state) product pairs with no
// determinization, no label pruning and a dense visited table — the
// differential oracle the fast engine in internal/rpq is tested
// against. Keep it obvious, not fast.
func (g *Graph) MatchAutomaton(u, v VertexID, syms []VertexID, a Automaton) bool {
	n := g.NumVertices()
	ns := a.NumStates()
	if n == 0 || ns == 0 {
		return false
	}
	type pair struct {
		v VertexID
		q int
	}
	visited := make([]bool, n*ns)
	var queue []pair
	push := func(x VertexID, q int) {
		if idx := int(x)*ns + q; !visited[idx] {
			visited[idx] = true
			queue = append(queue, pair{x, q})
		}
	}
	push(u, a.Start())
	var buf []int
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p.v == v && a.Accepting(p.q) {
			return true
		}
		buf = a.AppendEps(buf[:0], p.q)
		for _, q2 := range buf {
			push(p.v, q2)
		}
		for _, y := range g.Out(p.v) {
			buf = a.AppendMove(buf[:0], p.q, syms[y])
			for _, q2 := range buf {
				push(y, q2)
			}
		}
	}
	return false
}
