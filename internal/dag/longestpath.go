package dag

// LongestPath returns the maximum total vertex weight over all directed
// paths in the DAG (the critical path / makespan when weights are
// durations), together with one witnessing path in order. It returns
// ok=false when the graph is cyclic or empty.
func (g *Graph) LongestPath(weight func(v VertexID) int64) (total int64, path []VertexID, ok bool) {
	order, sorted := g.TopoSort()
	if !sorted || len(order) == 0 {
		return 0, nil, false
	}
	n := g.NumVertices()
	best := make([]int64, n)
	pred := make([]VertexID, n)
	for v := 0; v < n; v++ {
		best[v] = weight(VertexID(v))
		pred[v] = -1
	}
	var endV VertexID
	var endBest int64
	first := true
	for _, v := range order {
		for _, w := range g.out[v] {
			if cand := best[v] + weight(w); cand > best[w] {
				best[w] = cand
				pred[w] = v
			}
		}
		if first || best[v] > endBest {
			// best[v] may still improve later; final maximum taken below.
			first = false
		}
	}
	for v := 0; v < n; v++ {
		if best[v] > endBest || v == 0 {
			endBest = best[v]
			endV = VertexID(v)
		}
	}
	for at := endV; at != -1; at = pred[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return endBest, path, true
}
