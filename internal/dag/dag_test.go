package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds 0 -> {1,2} -> 3.
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}

func TestAddAndDegrees(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices %d edges, want 4/4", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 {
		t.Fatalf("degrees wrong: out(0)=%d in(3)=%d", g.OutDegree(0), g.InDegree(3))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(1, 2) {
		t.Fatal("HasEdge gives wrong answers")
	}
	v := g.AddVertex()
	if v != 4 || g.NumVertices() != 5 {
		t.Fatalf("AddVertex returned %d", v)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := diamond()
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != 4 {
		t.Fatalf("Edges len = %d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Edges order not deterministic")
		}
	}
}

func TestVertexRangePanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("AddEdge out of range did not panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestTopoSort(t *testing.T) {
	g := diamond()
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("diamond reported cyclic")
	}
	pos := make(map[VertexID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Tail] >= pos[e.Head] {
			t.Fatalf("edge %v violates topo order %v", e, order)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic true for a cycle")
	}
}

func TestReachability(t *testing.T) {
	g := diamond()
	cases := []struct {
		u, v VertexID
		want bool
	}{
		{0, 3, true}, {0, 0, true}, {1, 2, false}, {2, 1, false},
		{3, 0, false}, {1, 3, true}, {0, 1, true},
	}
	s := NewSearcher(g)
	for _, c := range cases {
		if got := g.ReachableBFS(c.u, c.v); got != c.want {
			t.Errorf("ReachableBFS(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
		if got := g.ReachableDFS(c.u, c.v); got != c.want {
			t.Errorf("ReachableDFS(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
		if got := s.ReachableBFS(c.u, c.v); got != c.want {
			t.Errorf("Searcher.ReachableBFS(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestSearcherGenerationWrap(t *testing.T) {
	g := diamond()
	s := NewSearcher(g)
	s.gen = ^uint32(0) - 1 // force a wrap soon
	for i := 0; i < 5; i++ {
		if !s.ReachableBFS(0, 3) {
			t.Fatal("reachability lost across generation wrap")
		}
		if s.ReachableDFS(1, 2) {
			t.Fatal("false positive across generation wrap")
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := diamond()
	c, ok := g.TransitiveClosure()
	if !ok {
		t.Fatal("closure failed on DAG")
	}
	if !c.Reachable(0, 3) || c.Reachable(1, 2) || !c.Reachable(2, 2) {
		t.Fatal("closure answers wrong")
	}
	if c.CountReachable(0) != 4 {
		t.Fatalf("CountReachable(0) = %d, want 4", c.CountReachable(0))
	}
	if c.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", c.NumVertices())
	}
	cyc := New(2)
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 0)
	if _, ok := cyc.TransitiveClosure(); ok {
		t.Fatal("closure succeeded on cyclic graph")
	}
}

func TestFlowNetworkTerminals(t *testing.T) {
	g := diamond()
	s, k, err := g.FlowNetworkTerminals()
	if err != nil || s != 0 || k != 3 {
		t.Fatalf("terminals = %d,%d err %v", s, k, err)
	}
	twoSources := New(3)
	twoSources.AddEdge(0, 2)
	twoSources.AddEdge(1, 2)
	if _, _, err := twoSources.FlowNetworkTerminals(); err == nil {
		t.Fatal("two sources accepted")
	}
	if _, _, err := New(0).FlowNetworkTerminals(); err == nil {
		t.Fatal("empty graph accepted")
	}
	cyc := New(3)
	cyc.AddEdge(0, 1)
	cyc.AddEdge(1, 2)
	cyc.AddEdge(2, 1)
	if _, _, err := cyc.FlowNetworkTerminals(); err == nil {
		t.Fatal("cyclic graph accepted as flow network")
	}
}

func TestClone(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("clone mutation leaked")
	}
	if g.NumEdges() != 4 || c.NumEdges() != 5 {
		t.Fatal("edge counts wrong after clone mutation")
	}
}

func TestRandomDAGAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(60)
		g := RandomDAG(rng, n, 3*n)
		if !g.IsAcyclic() {
			t.Fatalf("RandomDAG produced a cycle (n=%d)", n)
		}
	}
}

func TestRandomFlowNetworkStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(80)
		g := RandomFlowNetwork(rng, n, 2*n)
		s, k, err := g.FlowNetworkTerminals()
		if err != nil {
			t.Fatalf("not a flow network (n=%d): %v", n, err)
		}
		// Every vertex lies on a source→sink path.
		c, _ := g.TransitiveClosure()
		for v := 0; v < n; v++ {
			if !c.Reachable(s, VertexID(v)) || !c.Reachable(VertexID(v), k) {
				t.Fatalf("vertex %d not on a source-sink path", v)
			}
		}
	}
}

// Property: BFS, DFS and the transitive closure agree on random DAGs.
func TestQuickReachabilityAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := RandomDAG(rng, n, 2*n)
		c, ok := g.TransitiveClosure()
		if !ok {
			return false
		}
		s := NewSearcher(g)
		for q := 0; q < 200; q++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			want := c.Reachable(u, v)
			if s.ReachableBFS(u, v) != want || s.ReachableDFS(u, v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: reachability is transitive and respects topological order.
func TestQuickClosureTransitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := RandomDAG(rng, n, 2*n)
		c, _ := g.TransitiveClosure()
		for q := 0; q < 100; q++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			w := VertexID(rng.Intn(n))
			if c.Reachable(u, v) && c.Reachable(v, w) && !c.Reachable(u, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransitiveClosure1000(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := RandomDAG(rng, 1000, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.TransitiveClosure(); !ok {
			b.Fatal("cycle")
		}
	}
}

func BenchmarkSearcherBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := RandomDAG(rng, 2000, 6000)
	s := NewSearcher(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := VertexID(i % 2000)
		v := VertexID((i * 7) % 2000)
		s.ReachableBFS(u, v)
	}
}
