package dag

import (
	"repro/internal/bitset"
)

// TopoSort returns a topological order of the vertices and true, or nil and
// false if the graph contains a cycle. The order is deterministic (Kahn's
// algorithm with a FIFO frontier seeded in increasing vertex order).
func (g *Graph) TopoSort() ([]VertexID, bool) {
	n := g.NumVertices()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.in[v])
	}
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	order := make([]VertexID, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, ok := g.TopoSort()
	return ok
}

// ReachableBFS reports whether v is reachable from u by a breadth-first
// search. It allocates a visited set per call; use a Searcher to reuse state
// across many queries.
func (g *Graph) ReachableBFS(u, v VertexID) bool {
	s := NewSearcher(g)
	return s.ReachableBFS(u, v)
}

// ReachableDFS reports whether v is reachable from u by an iterative
// depth-first search.
func (g *Graph) ReachableDFS(u, v VertexID) bool {
	s := NewSearcher(g)
	return s.ReachableDFS(u, v)
}

// Searcher answers reachability queries by graph search, reusing its
// visited set and frontier between calls. It corresponds to the paper's
// BFS/DFS "labeling scheme" where labels are empty and all work happens at
// query time. A Searcher is not safe for concurrent use.
type Searcher struct {
	g       *Graph
	visited []uint32 // generation-stamped visited marks
	gen     uint32
	stack   []VertexID
}

// NewSearcher returns a Searcher over g.
func NewSearcher(g *Graph) *Searcher {
	return &Searcher{g: g, visited: make([]uint32, g.NumVertices())}
}

func (s *Searcher) begin() {
	s.gen++
	if s.gen == 0 { // wrapped: reset stamps
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.gen = 1
	}
	s.stack = s.stack[:0]
}

// ReachableBFS reports whether v is reachable from u.
func (s *Searcher) ReachableBFS(u, v VertexID) bool {
	if u == v {
		return true
	}
	s.begin()
	s.visited[u] = s.gen
	queue := s.stack
	queue = append(queue, u)
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range s.g.out[x] {
			if w == v {
				s.stack = queue[:0]
				return true
			}
			if s.visited[w] != s.gen {
				s.visited[w] = s.gen
				queue = append(queue, w)
			}
		}
	}
	s.stack = queue[:0]
	return false
}

// ReachableDFS reports whether v is reachable from u.
func (s *Searcher) ReachableDFS(u, v VertexID) bool {
	if u == v {
		return true
	}
	s.begin()
	s.visited[u] = s.gen
	stack := s.stack
	stack = append(stack, u)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range s.g.out[x] {
			if w == v {
				s.stack = stack[:0]
				return true
			}
			if s.visited[w] != s.gen {
				s.visited[w] = s.gen
				stack = append(stack, w)
			}
		}
	}
	s.stack = stack[:0]
	return false
}

// Closure is a precomputed transitive closure: row i is the set of vertices
// reachable from i (including i itself).
type Closure struct {
	rows []*bitset.Set
}

// TransitiveClosure computes the full transitive closure of g. The graph
// must be acyclic. Cost is O(n*m/64) time and O(n²/8) bytes — this is the
// paper's TCM approach and is deliberately expensive for large graphs.
func (g *Graph) TransitiveClosure() (*Closure, bool) {
	order, ok := g.TopoSort()
	if !ok {
		return nil, false
	}
	n := g.NumVertices()
	rows := make([]*bitset.Set, n)
	// Process in reverse topological order: row(v) = {v} ∪ ⋃ row(w) for (v,w).
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		row := bitset.New(n)
		row.Set(int(v))
		for _, w := range g.out[v] {
			row.Or(rows[w])
		}
		rows[v] = row
	}
	return &Closure{rows: rows}, true
}

// Reachable reports whether v is reachable from u (u reaches itself).
func (c *Closure) Reachable(u, v VertexID) bool {
	return c.rows[u].Test(int(v))
}

// CountReachable returns the number of vertices reachable from u, including u.
func (c *Closure) CountReachable(u VertexID) int {
	return c.rows[u].Count()
}

// NumVertices returns the number of rows in the closure.
func (c *Closure) NumVertices() int { return len(c.rows) }

// Row returns the reachability row of u. The caller must not modify it.
func (c *Closure) Row(u VertexID) *bitset.Set { return c.rows[u] }
