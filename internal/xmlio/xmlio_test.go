package xmlio_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/workload"
	"repro/internal/xmlio"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []*spec.Spec{spec.PaperSpec(), spec.IntroSpec(), spec.LinearSpec(4)} {
		var buf bytes.Buffer
		if err := xmlio.EncodeSpec(&buf, s, "test"); err != nil {
			t.Fatal(err)
		}
		got, name, err := xmlio.DecodeSpec(&buf)
		if err != nil {
			t.Fatalf("decode: %v\nxml:\n%s", err, buf.String())
		}
		if name != "test" {
			t.Errorf("name = %q", name)
		}
		if got.NumVertices() != s.NumVertices() || got.NumEdges() != s.NumEdges() {
			t.Errorf("shape changed: %d/%d -> %d/%d",
				s.NumVertices(), s.NumEdges(), got.NumVertices(), got.NumEdges())
		}
		if len(got.Subgraphs) != len(s.Subgraphs) {
			t.Errorf("subgraph count changed")
		}
		if got.Hier.NumNodes() != s.Hier.NumNodes() || got.Hier.MaxDepth != s.Hier.MaxDepth {
			t.Errorf("hierarchy changed")
		}
		// Same module names in same vertex order.
		for v := 0; v < s.NumVertices(); v++ {
			if got.Names[v] != s.Names[v] {
				t.Errorf("vertex %d renamed %q -> %q", v, s.Names[v], got.Names[v])
			}
		}
	}
}

func TestRunRoundTripWithData(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(3))
	et := run.RandomExecSteps(s, rng, 12)
	r, _ := run.MustMaterialize(s, et)
	ann := provdata.RandomItems(r, rng, 1.5, 0.5)
	var buf bytes.Buffer
	if err := xmlio.EncodeRun(&buf, r, ann, "paper"); err != nil {
		t.Fatal(err)
	}
	got, gotAnn, err := xmlio.DecodeRun(&buf, s)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.NumVertices() != r.NumVertices() || got.NumEdges() != r.NumEdges() {
		t.Error("run shape changed")
	}
	for v := 0; v < r.NumVertices(); v++ {
		if got.Origin[v] != r.Origin[v] {
			t.Fatalf("origin changed at %d", v)
		}
	}
	if gotAnn == nil {
		t.Fatal("annotation lost")
	}
	if len(gotAnn.Items) != len(ann.Items) {
		t.Fatalf("item count %d -> %d", len(ann.Items), len(gotAnn.Items))
	}
	// Items match by (producer, name) with equal consumer multisets.
	type key struct {
		p    int32
		name string
	}
	want := make(map[key]int)
	for _, it := range ann.Items {
		want[key{int32(it.Producer), it.Name}] = len(it.Consumers)
	}
	for _, it := range gotAnn.Items {
		if want[key{int32(it.Producer), it.Name}] != len(it.Consumers) {
			t.Fatalf("item %s consumers changed", it.Name)
		}
	}
}

func TestRunRoundTripWithoutData(t *testing.T) {
	s := spec.IntroSpec()
	r, _ := run.MustMaterialize(s, run.SingleExec(s))
	var buf bytes.Buffer
	if err := xmlio.EncodeRun(&buf, r, nil, ""); err != nil {
		t.Fatal(err)
	}
	got, ann, err := xmlio.DecodeRun(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if ann != nil {
		t.Error("expected nil annotation")
	}
	if got.NumEdges() != r.NumEdges() {
		t.Error("edges changed")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := spec.IntroSpec()
	cases := []struct {
		name, xml string
	}{
		{"garbage", "<run><nope"},
		{"unknown module", `<run><vertices><vertex id="0" module="zz"/></vertices><edges></edges></run>`},
		{"non-dense ids", `<run><vertices><vertex id="5" module="a"/></vertices><edges></edges></run>`},
		{"edge out of range", `<run><vertices><vertex id="0" module="a"/></vertices><edges><edge from="0" to="9"/></edges></run>`},
	}
	for _, c := range cases {
		if _, _, err := xmlio.DecodeRun(strings.NewReader(c.xml), s); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	specCases := []struct {
		name, xml string
	}{
		{"garbage", "<workflow"},
		{"bad kind", `<workflow><modules><module name="a"/><module name="b"/></modules><edges><edge from="a" to="b"/></edges><subgraphs><subgraph kind="zig"><edge from="a" to="b"/></subgraph></subgraphs></workflow>`},
		{"unknown edge module", `<workflow><modules><module name="a"/></modules><edges><edge from="a" to="zz"/></edges></workflow>`},
		{"unknown subgraph module", `<workflow><modules><module name="a"/><module name="b"/></modules><edges><edge from="a" to="b"/></edges><subgraphs><subgraph kind="loop"><edge from="a" to="qq"/></subgraph></subgraphs></workflow>`},
	}
	for _, c := range specCases {
		if _, _, err := xmlio.DecodeSpec(strings.NewReader(c.xml)); err == nil {
			t.Errorf("spec %s: accepted", c.name)
		}
	}
}

// Property: synthetic specs round-trip exactly.
func TestQuickSyntheticSpecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.Params{NG: 20 + rng.Intn(40), TGSize: 1 + rng.Intn(5), TGDepth: 1}
		if p.TGSize > 1 {
			p.TGDepth = 2
		}
		p.MG = p.NG + rng.Intn(20)
		s, err := workload.Synthesize(rng, p)
		if err != nil {
			return true // infeasible draw
		}
		var buf bytes.Buffer
		if err := xmlio.EncodeSpec(&buf, s, "w"); err != nil {
			return false
		}
		got, _, err := xmlio.DecodeSpec(&buf)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return got.NumVertices() == s.NumVertices() &&
			got.NumEdges() == s.NumEdges() &&
			got.Hier.NumNodes() == s.Hier.NumNodes() &&
			got.Hier.MaxDepth == s.Hier.MaxDepth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
