// Package xmlio serializes workflow specifications, runs and data
// annotations as XML, mirroring the paper's storage format ("both the
// specification and runs are stored as XML files"). Parsing time is
// excluded from all measurements, as in the paper.
package xmlio

import (
	"encoding/xml"
	"fmt"
	"io"

	"repro/internal/dag"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
)

// xmlSpec is the on-disk form of a specification.
type xmlSpec struct {
	XMLName   xml.Name      `xml:"workflow"`
	Name      string        `xml:"name,attr,omitempty"`
	Modules   []xmlModule   `xml:"modules>module"`
	Edges     []xmlSpecEdge `xml:"edges>edge"`
	Subgraphs []xmlSubgraph `xml:"subgraphs>subgraph"`
}

type xmlModule struct {
	Name string `xml:"name,attr"`
}

type xmlSpecEdge struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

type xmlSubgraph struct {
	Kind  string        `xml:"kind,attr"` // "fork" or "loop"
	Edges []xmlSpecEdge `xml:"edge"`
}

// EncodeSpec writes the specification as XML.
func EncodeSpec(w io.Writer, s *spec.Spec, name string) error {
	x := xmlSpec{Name: name}
	for v := 0; v < s.NumVertices(); v++ {
		x.Modules = append(x.Modules, xmlModule{Name: string(s.Names[v])})
	}
	for _, e := range s.Graph.Edges() {
		x.Edges = append(x.Edges, xmlSpecEdge{From: string(s.Names[e.Tail]), To: string(s.Names[e.Head])})
	}
	for _, sub := range s.Subgraphs {
		xs := xmlSubgraph{Kind: sub.Kind.String()}
		for _, e := range sub.Edges {
			xs.Edges = append(xs.Edges, xmlSpecEdge{From: string(s.Names[e.Tail]), To: string(s.Names[e.Head])})
		}
		x.Subgraphs = append(x.Subgraphs, xs)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("xmlio: encode spec: %w", err)
	}
	enc.Flush()
	_, err := io.WriteString(w, "\n")
	return err
}

// DecodeSpec reads a specification from XML and validates it.
func DecodeSpec(r io.Reader) (*spec.Spec, string, error) {
	var x xmlSpec
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, "", fmt.Errorf("xmlio: decode spec: %w", err)
	}
	b := spec.NewBuilder()
	ids := make(map[string]dag.VertexID, len(x.Modules))
	for _, m := range x.Modules {
		ids[m.Name] = b.Module(spec.ModuleName(m.Name))
	}
	resolve := func(name string) (dag.VertexID, error) {
		id, ok := ids[name]
		if !ok {
			return 0, fmt.Errorf("xmlio: unknown module %q", name)
		}
		return id, nil
	}
	for _, e := range x.Edges {
		if _, err := resolve(e.From); err != nil {
			return nil, "", err
		}
		if _, err := resolve(e.To); err != nil {
			return nil, "", err
		}
		b.Edge(spec.ModuleName(e.From), spec.ModuleName(e.To))
	}
	for _, xs := range x.Subgraphs {
		var kind spec.Kind
		switch xs.Kind {
		case "fork":
			kind = spec.Fork
		case "loop":
			kind = spec.Loop
		default:
			return nil, "", fmt.Errorf("xmlio: unknown subgraph kind %q", xs.Kind)
		}
		edges := make([]dag.Edge, 0, len(xs.Edges))
		for _, e := range xs.Edges {
			u, err := resolve(e.From)
			if err != nil {
				return nil, "", err
			}
			v, err := resolve(e.To)
			if err != nil {
				return nil, "", err
			}
			edges = append(edges, dag.Edge{Tail: u, Head: v})
		}
		b.SubgraphEdges(kind, edges)
	}
	s, err := b.Build()
	if err != nil {
		return nil, "", err
	}
	return s, x.Name, nil
}

// xmlRun is the on-disk form of a run, optionally with data items.
type xmlRun struct {
	XMLName  xml.Name     `xml:"run"`
	Workflow string       `xml:"workflow,attr,omitempty"`
	Vertices []xmlVertex  `xml:"vertices>vertex"`
	Edges    []xmlRunEdge `xml:"edges>edge"`
}

type xmlVertex struct {
	ID     int    `xml:"id,attr"`
	Module string `xml:"module,attr"`
}

type xmlRunEdge struct {
	From  int      `xml:"from,attr"`
	To    int      `xml:"to,attr"`
	Items []string `xml:"data,omitempty"`
}

// EncodeRun writes the run (and, when ann is non-nil, its data items) as
// XML. Items shared across channels appear on every channel they flow
// over, identified by name, like x1 in Figure 11.
func EncodeRun(w io.Writer, r *run.Run, ann *provdata.Annotation, workflowName string) error {
	x := xmlRun{Workflow: workflowName}
	for v := 0; v < r.NumVertices(); v++ {
		x.Vertices = append(x.Vertices, xmlVertex{ID: v, Module: string(r.Spec.NameOf(r.Origin[v]))})
	}
	itemsOn := make(map[dag.Edge][]string)
	if ann != nil {
		for _, it := range ann.Items {
			for _, c := range it.Consumers {
				e := dag.Edge{Tail: it.Producer, Head: c}
				itemsOn[e] = append(itemsOn[e], it.Name)
			}
		}
	}
	for _, e := range r.Graph.Edges() {
		x.Edges = append(x.Edges, xmlRunEdge{
			From:  int(e.Tail),
			To:    int(e.Head),
			Items: itemsOn[e],
		})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return fmt.Errorf("xmlio: encode run: %w", err)
	}
	enc.Flush()
	_, err := io.WriteString(w, "\n")
	return err
}

// DecodeRun reads a run (and its data annotation, if any items are
// present) against the given specification and validates it.
func DecodeRun(rd io.Reader, s *spec.Spec) (*run.Run, *provdata.Annotation, error) {
	var x xmlRun
	if err := xml.NewDecoder(rd).Decode(&x); err != nil {
		return nil, nil, fmt.Errorf("xmlio: decode run: %w", err)
	}
	names := make([]spec.ModuleName, len(x.Vertices))
	for i, v := range x.Vertices {
		if v.ID != i {
			return nil, nil, fmt.Errorf("xmlio: run vertex %d declared with id %d (ids must be dense and ordered)", i, v.ID)
		}
		names[i] = spec.ModuleName(v.Module)
	}
	origin, err := run.OriginByName(s, names)
	if err != nil {
		return nil, nil, err
	}
	g := dag.New(len(names))
	type itemKey struct {
		producer dag.VertexID
		name     string
	}
	consumers := make(map[itemKey][]dag.VertexID)
	var order []itemKey
	for _, e := range x.Edges {
		if e.From < 0 || e.From >= len(names) || e.To < 0 || e.To >= len(names) {
			return nil, nil, fmt.Errorf("xmlio: run edge %d->%d out of range", e.From, e.To)
		}
		g.AddEdge(dag.VertexID(e.From), dag.VertexID(e.To))
		for _, item := range e.Items {
			k := itemKey{dag.VertexID(e.From), item}
			if _, ok := consumers[k]; !ok {
				order = append(order, k)
			}
			consumers[k] = append(consumers[k], dag.VertexID(e.To))
		}
	}
	r := &run.Run{Spec: s, Graph: g, Origin: origin}
	if err := r.Validate(); err != nil {
		return nil, nil, err
	}
	if len(order) == 0 {
		return r, nil, nil
	}
	ann := &provdata.Annotation{Run: r}
	for i, k := range order {
		ann.Items = append(ann.Items, provdata.Item{
			ID:        provdata.ItemID(i),
			Name:      k.name,
			Producer:  k.producer,
			Consumers: consumers[k],
		})
	}
	if err := ann.Validate(); err != nil {
		return nil, nil, err
	}
	return r, ann, nil
}
