package xmlio_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/xmlio"
)

// FuzzDecodeSpec ensures arbitrary XML never panics the spec decoder and
// that anything it accepts is a valid specification.
func FuzzDecodeSpec(f *testing.F) {
	var seed bytes.Buffer
	if err := xmlio.EncodeSpec(&seed, spec.PaperSpec(), "paper"); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`<workflow><modules><module name="a"/><module name="b"/></modules><edges><edge from="a" to="b"/></edges></workflow>`)
	f.Add(`<workflow>`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		s, _, err := xmlio.DecodeSpec(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the full model validation.
		if err := spec.Validate(s); err != nil {
			t.Fatalf("decoder accepted invalid spec: %v", err)
		}
	})
}

// FuzzDecodeRun ensures arbitrary XML never panics the run decoder and
// that accepted runs pass validation against the paper specification.
func FuzzDecodeRun(f *testing.F) {
	s := spec.PaperSpec()
	r, _ := run.Figure3Run(s)
	var seed bytes.Buffer
	if err := xmlio.EncodeRun(&seed, r, nil, "paper"); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`<run><vertices><vertex id="0" module="a"/></vertices><edges/></run>`)
	f.Add(`<run>`)
	f.Fuzz(func(t *testing.T, input string) {
		decoded, ann, err := xmlio.DecodeRun(strings.NewReader(input), s)
		if err != nil {
			return
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid run: %v", err)
		}
		if ann != nil {
			if err := ann.Validate(); err != nil {
				t.Fatalf("decoder accepted invalid annotation: %v", err)
			}
		}
	})
}
