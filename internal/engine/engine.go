// Package engine simulates a scientific workflow system executing a
// specification: control-flow decisions (how many parallel fork copies,
// whether a loop iterates again) are made per copy by a pluggable policy,
// modules consume simulated wall-clock time, and every execution produces
// data items on its outgoing channels. Each simulated execution yields
// the run graph, its ground-truth execution plan, an engine event log,
// the data annotation and timing statistics — everything the labeling
// pipeline and the experiments consume.
//
// This is the substrate standing in for Taverna/Kepler/Triana (the
// systems behind the paper's real workloads): it produces runs the same
// way real engines do — by deciding fork widths and loop continuations
// at run time.
package engine

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dag"
	"repro/internal/events"
	"repro/internal/plan"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
)

// Policy makes the engine's dynamic choices.
type Policy interface {
	// ForkWidth returns how many parallel copies of the fork to launch at
	// one site (>= 1).
	ForkWidth(hnode int, depth int, rng *rand.Rand) int
	// LoopContinue reports whether the loop should run another iteration
	// after completing iteration iter (1-based).
	LoopContinue(hnode int, iter int, rng *rand.Rand) bool
	// Duration returns the simulated execution time of one module.
	Duration(module spec.ModuleName, rng *rand.Rand) time.Duration
}

// RandomPolicy draws fork widths and loop continuations from geometric
// distributions and module durations uniformly from a range.
type RandomPolicy struct {
	// MeanForkWidth is the expected number of parallel fork copies (>=1).
	MeanForkWidth float64
	// MeanLoopIterations is the expected number of loop iterations (>=1).
	MeanLoopIterations float64
	// MinDuration and MaxDuration bound module execution times.
	MinDuration, MaxDuration time.Duration
	// MaxCopies caps both decisions to keep simulations finite.
	MaxCopies int
}

// DefaultPolicy returns a moderate random policy.
func DefaultPolicy() RandomPolicy {
	return RandomPolicy{
		MeanForkWidth:      2,
		MeanLoopIterations: 3,
		MinDuration:        10 * time.Millisecond,
		MaxDuration:        2 * time.Second,
		MaxCopies:          64,
	}
}

// ForkWidth implements Policy.
func (p RandomPolicy) ForkWidth(_ int, _ int, rng *rand.Rand) int {
	return geometricAtLeastOne(rng, p.MeanForkWidth, p.cap())
}

// LoopContinue implements Policy.
func (p RandomPolicy) LoopContinue(_ int, iter int, rng *rand.Rand) bool {
	if iter >= p.cap() {
		return false
	}
	mean := p.MeanLoopIterations
	if mean <= 1 {
		return false
	}
	return rng.Float64() < (mean-1)/mean
}

// Duration implements Policy.
func (p RandomPolicy) Duration(_ spec.ModuleName, rng *rand.Rand) time.Duration {
	lo, hi := p.MinDuration, p.MaxDuration
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

func (p RandomPolicy) cap() int {
	if p.MaxCopies > 0 {
		return p.MaxCopies
	}
	return 64
}

func geometricAtLeastOne(rng *rand.Rand, mean float64, max int) int {
	if mean <= 1 {
		return 1
	}
	prob := (mean - 1) / mean
	k := 1
	for rng.Float64() < prob && k < max {
		k++
	}
	return k
}

// Trace is the complete record of one simulated execution.
type Trace struct {
	// Run is the executed run graph with origins.
	Run *run.Run
	// Plan is the ground-truth execution plan.
	Plan *plan.Plan
	// Events is the engine's execution log.
	Events []events.Event
	// Data annotates every channel with the items that flowed over it.
	Data *provdata.Annotation
	// Durations holds each module execution's simulated time.
	Durations []time.Duration
	// Makespan is the critical-path length: the simulated wall-clock time
	// of the whole run under unlimited parallelism.
	Makespan time.Duration
	// CriticalPath is one longest chain of module executions.
	CriticalPath []dag.VertexID
	// TotalWork is the sum of all module durations (sequential time).
	TotalWork time.Duration
	// ExecCounts counts executions per specification module.
	ExecCounts map[spec.ModuleName]int
}

// Engine executes specifications under a policy.
type Engine struct {
	spec   *spec.Spec
	policy Policy
	rng    *rand.Rand
}

// New returns an engine for the specification.
func New(s *spec.Spec, policy Policy, rng *rand.Rand) *Engine {
	return &Engine{spec: s, policy: policy, rng: rng}
}

// Execute simulates one run.
func (e *Engine) Execute() (*Trace, error) {
	et := e.decide()
	r, p, err := run.Materialize(e.spec, et)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	tr := &Trace{
		Run:        r,
		Plan:       p,
		Events:     events.Emit(r, p),
		Data:       e.produceData(r),
		Durations:  make([]time.Duration, r.NumVertices()),
		ExecCounts: make(map[spec.ModuleName]int),
	}
	for v := 0; v < r.NumVertices(); v++ {
		d := e.policy.Duration(e.spec.NameOf(r.Origin[v]), e.rng)
		tr.Durations[v] = d
		tr.TotalWork += d
		tr.ExecCounts[e.spec.NameOf(r.Origin[v])]++
	}
	total, path, ok := r.Graph.LongestPath(func(v dag.VertexID) int64 {
		return int64(tr.Durations[v])
	})
	if !ok {
		return nil, fmt.Errorf("engine: run graph unexpectedly cyclic")
	}
	tr.Makespan = time.Duration(total)
	tr.CriticalPath = path
	return tr, nil
}

// decide builds the execution tree by interrogating the policy per site
// and per copy, exactly as an engine decides at run time.
func (e *Engine) decide() *run.ExecTree {
	var buildSite func(hnode, depth int) *run.ExecTree
	var buildCopy func(hnode, depth int) *run.ExecCopy
	buildCopy = func(hnode, depth int) *run.ExecCopy {
		c := &run.ExecCopy{}
		for _, child := range e.spec.Hier.Children[hnode] {
			c.Sites = append(c.Sites, buildSite(child, depth+1))
		}
		return c
	}
	buildSite = func(hnode, depth int) *run.ExecTree {
		t := &run.ExecTree{HNode: hnode}
		if e.spec.KindOf(hnode) == spec.Fork {
			width := e.policy.ForkWidth(hnode, depth, e.rng)
			if width < 1 {
				width = 1
			}
			for i := 0; i < width; i++ {
				t.Copies = append(t.Copies, buildCopy(hnode, depth))
			}
			return t
		}
		iter := 1
		t.Copies = append(t.Copies, buildCopy(hnode, depth))
		for e.policy.LoopContinue(hnode, iter, e.rng) {
			iter++
			t.Copies = append(t.Copies, buildCopy(hnode, depth))
		}
		return t
	}
	return &run.ExecTree{HNode: 0, Copies: []*run.ExecCopy{buildCopy(0, 1)}}
}

// produceData emits one item per channel plus, for branching modules, a
// shared item read by all successors (mirroring x1 in Figure 11).
func (e *Engine) produceData(r *run.Run) *provdata.Annotation {
	a := &provdata.Annotation{Run: r}
	add := func(producer dag.VertexID, consumers ...dag.VertexID) {
		id := provdata.ItemID(len(a.Items))
		a.Items = append(a.Items, provdata.Item{
			ID:        id,
			Name:      fmt.Sprintf("x%d", id+1),
			Producer:  producer,
			Consumers: consumers,
		})
	}
	for v := 0; v < r.NumVertices(); v++ {
		outs := r.Graph.Out(dag.VertexID(v))
		if len(outs) == 0 {
			continue
		}
		if len(outs) > 1 {
			add(dag.VertexID(v), append([]dag.VertexID(nil), outs...)...)
		}
		for _, w := range outs {
			add(dag.VertexID(v), w)
		}
	}
	return a
}
