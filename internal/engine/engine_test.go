package engine_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/label"
	"repro/internal/spec"
	"repro/internal/workload"
)

func policy() engine.RandomPolicy {
	p := engine.DefaultPolicy()
	p.MaxCopies = 8
	return p
}

func TestExecuteProducesConsistentTrace(t *testing.T) {
	s := spec.PaperSpec()
	e := engine.New(s, policy(), rand.New(rand.NewSource(1)))
	tr, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run.Validate(); err != nil {
		t.Fatalf("engine produced invalid run: %v", err)
	}
	if err := tr.Plan.Validate(tr.Run.Graph); err != nil {
		t.Fatalf("engine produced invalid plan: %v", err)
	}
	if err := tr.Data.Validate(); err != nil {
		t.Fatalf("engine produced invalid data annotation: %v", err)
	}
	if len(tr.Durations) != tr.Run.NumVertices() {
		t.Fatal("durations not per-vertex")
	}
	if tr.Makespan <= 0 || tr.TotalWork < tr.Makespan {
		t.Fatalf("makespan %v vs total work %v inconsistent", tr.Makespan, tr.TotalWork)
	}
	// Critical path is a real path and its weight equals the makespan.
	var sum time.Duration
	for i, v := range tr.CriticalPath {
		sum += tr.Durations[v]
		if i > 0 && !tr.Run.Graph.HasEdge(tr.CriticalPath[i-1], v) {
			t.Fatal("critical path is not a path")
		}
	}
	if sum != tr.Makespan {
		t.Fatalf("critical path weight %v != makespan %v", sum, tr.Makespan)
	}
	// Exec counts total the run size.
	total := 0
	for _, c := range tr.ExecCounts {
		total += c
	}
	if total != tr.Run.NumVertices() {
		t.Fatalf("exec counts total %d, want %d", total, tr.Run.NumVertices())
	}
	// Source and sink execute exactly once.
	if tr.ExecCounts[s.NameOf(s.Source)] != 1 || tr.ExecCounts[s.NameOf(s.Sink)] != 1 {
		t.Fatal("terminals should execute exactly once")
	}
}

func TestEngineEventLogReplays(t *testing.T) {
	s := workload.MustStandIn("EBI", 3)
	e := engine.New(s, policy(), rand.New(rand.NewSource(2)))
	tr, err := e.Execute()
	if err != nil {
		t.Fatal(err)
	}
	skel, _ := label.TCM{}.Build(s.Graph)
	ol, err := events.Replay(s, skel, tr.Events)
	if err != nil {
		t.Fatal(err)
	}
	if ol.NumVertices() != tr.Run.NumVertices() {
		t.Fatal("event replay lost executions")
	}
	offline, err := core.LabelRunWithPlan(tr.Run, tr.Plan, skel)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := tr.Run.NumVertices()
	for q := 0; q < 2000; q++ {
		u := dag.VertexID(rng.Intn(n))
		v := dag.VertexID(rng.Intn(n))
		if ol.Reachable(u, v) != offline.Reachable(u, v) {
			t.Fatalf("online/offline disagree at (%d,%d)", u, v)
		}
	}
}

func TestPolicyBounds(t *testing.T) {
	p := policy()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if w := p.ForkWidth(1, 1, rng); w < 1 || w > p.MaxCopies {
			t.Fatalf("fork width %d out of bounds", w)
		}
		if d := p.Duration("m", rng); d < p.MinDuration || d >= p.MaxDuration {
			t.Fatalf("duration %v out of bounds", d)
		}
	}
	// LoopContinue must terminate within MaxCopies.
	iters := 1
	for p.LoopContinue(1, iters, rng) {
		iters++
		if iters > p.MaxCopies {
			t.Fatal("loop ran past the cap")
		}
	}
	// Degenerate policies clamp sanely.
	var zero engine.RandomPolicy
	if w := zero.ForkWidth(1, 1, rng); w != 1 {
		t.Fatalf("zero policy width = %d", w)
	}
	if zero.LoopContinue(1, 1, rng) {
		t.Fatal("zero policy should never loop")
	}
	if d := zero.Duration("m", rng); d != 0 {
		t.Fatalf("zero policy duration = %v", d)
	}
}

// Property: every simulated trace is internally consistent and the whole
// labeling pipeline works on engine-produced runs.
func TestQuickEngineTraces(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), workload.MustStandIn("PubMed", 1)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		p := policy()
		p.MeanForkWidth = 1 + rng.Float64()*2
		p.MeanLoopIterations = 1 + rng.Float64()*3
		tr, err := engine.New(s, p, rng).Execute()
		if err != nil {
			return false
		}
		if tr.Run.Validate() != nil || tr.Plan.Validate(tr.Run.Graph) != nil || tr.Data.Validate() != nil {
			return false
		}
		skel, err := label.Interval{}.Build(s.Graph)
		if err != nil {
			return false
		}
		l, err := core.LabelRun(tr.Run, skel)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		searcher := dag.NewSearcher(tr.Run.Graph)
		n := tr.Run.NumVertices()
		for q := 0; q < 200; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if l.Reachable(u, v) != searcher.ReachableBFS(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
