package loadgen

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(50, 0.99)
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if x, y := z.Next(a), z.Next(b); x != y {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, x, y)
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	const (
		n     = 100
		draws = 200_000
		theta = 1.0
	)
	z := NewZipf(n, theta)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.Next(rng)
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	// At theta=1 the head's share is 1/H(n); H(100) ~ 5.187, so rank 0
	// should take ~19.3% of all draws.
	want := 1 / harmonic(n, theta)
	got := float64(counts[0]) / draws
	if math.Abs(got-want) > 0.02 {
		t.Errorf("rank-0 share = %.3f, want %.3f +/- 0.02", got, want)
	}
	// Popularity must fall off with rank (sampled at a stride so
	// statistical wobble between neighbors doesn't flake).
	if !(counts[0] > counts[5] && counts[5] > counts[20] && counts[20] > counts[80]) {
		t.Errorf("popularity not decreasing: c0=%d c5=%d c20=%d c80=%d",
			counts[0], counts[5], counts[20], counts[80])
	}
	// Every rank must be reachable at this draw count.
	for r, c := range counts {
		if c == 0 {
			t.Errorf("rank %d never drawn", r)
		}
	}
}

func TestZipfUniformAtThetaZero(t *testing.T) {
	const n, draws = 10, 100_000
	z := NewZipf(n, 0)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next(rng)]++
	}
	for r, c := range counts {
		share := float64(c) / draws
		if math.Abs(share-0.1) > 0.01 {
			t.Errorf("theta=0 rank %d share = %.3f, want 0.1 +/- 0.01", r, share)
		}
	}
}

func harmonic(n int, theta float64) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(3))
	// 1..100000 ns, shuffled: true quantile q is q*100000.
	perm := rng.Perm(100_000)
	for _, v := range perm {
		h.Record(int64(v + 1))
	}
	if h.Count() != 100_000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50_000}, {0.95, 95_000}, {0.99, 99_000}} {
		got := float64(h.Quantile(tc.q))
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.06 {
			t.Errorf("q%.2f = %.0f, want %.0f +/- 6%% (off by %.1f%%)", tc.q, got, tc.want, rel*100)
		}
	}
	if h.Max() != 100_000 {
		t.Errorf("max = %d, want exact 100000", h.Max())
	}
	if h.Min() != 1 {
		t.Errorf("min = %d, want exact 1", h.Min())
	}
	if got := h.Quantile(1); got != 100_000 {
		t.Errorf("q1 = %d, want clamped to exact max", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %d, want clamped to exact min", got)
	}
	if mean := h.Mean(); math.Abs(mean-50_000.5) > 0.01 {
		t.Errorf("mean = %f, want exact 50000.5", mean)
	}
}

func TestHistMergeMatchesSingle(t *testing.T) {
	var whole, a, b Hist
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50_000; i++ {
		v := int64(rng.Intn(10_000_000) + 1)
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Min() != whole.Min() {
		t.Fatalf("merge lost samples: count %d/%d max %d/%d min %d/%d",
			a.Count(), whole.Count(), a.Max(), whole.Max(), a.Min(), whole.Min())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q%.2f: merged %d != whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("reachable=80,batch=15,put=4,delete=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Reachable != 80 || m.Batch != 15 || m.Lineage != 0 || m.Put != 4 || m.Delete != 1 {
		t.Errorf("parsed %+v", m)
	}
	for _, bad := range []string{"", "reachable=0", "bogus=5", "reachable", "reachable=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}
