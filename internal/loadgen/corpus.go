package loadgen

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dag"
	"repro/internal/events"
	"repro/internal/label"
	"repro/internal/rpq"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/faultinject"
	"repro/internal/workload"
	"repro/internal/xmlio"
)

// Corpus is what the driver needs to know about the store under test:
// the queryable runs (zipfian popularity follows slice order) and
// pre-rendered run XML bodies for PUT traffic.
type Corpus struct {
	Runs      []RunInfo
	PutBodies [][]byte
}

// BuildCorpus populates st with n generated runs of roughly size
// vertices each (names "run-0000"...) labeled with scheme, and renders
// putBodies extra run documents (over the store's own spec) for ingest
// traffic. It is deterministic given seed.
func BuildCorpus(st *store.Store, n, size, putBodies int, seed int64, scheme label.Scheme) (*Corpus, error) {
	if scheme == nil {
		scheme = label.TCM{}
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{}
	for i := 0; i < n; i++ {
		r, _ := run.GenerateSized(st.Spec(), rng, size)
		name := fmt.Sprintf("run-%04d", i)
		if err := st.PutRun(name, r, nil, scheme); err != nil {
			return nil, fmt.Errorf("corpus: put %s: %w", name, err)
		}
		c.Runs = append(c.Runs, RunInfo{Name: name, Vertices: r.NumVertices()})
	}
	bodies, err := RenderPutBodies(st.Spec(), st.SpecName(), putBodies, size, seed+1)
	if err != nil {
		return nil, err
	}
	c.PutBodies = bodies
	return c, nil
}

// RenderPutBodies generates n run XML documents over sp for PUT
// traffic, deterministic given seed.
func RenderPutBodies(sp *spec.Spec, specName string, n, size int, seed int64) ([][]byte, error) {
	rng := rand.New(rand.NewSource(seed))
	var bodies [][]byte
	for i := 0; i < n; i++ {
		r, _ := run.GenerateSized(sp, rng, size)
		var buf bytes.Buffer
		if err := xmlio.EncodeRun(&buf, r, nil, specName); err != nil {
			return nil, fmt.Errorf("corpus: render put body: %w", err)
		}
		bodies = append(bodies, buf.Bytes())
	}
	return bodies, nil
}

// StreamEventBatches generates one run of roughly size vertices over
// sp, emits its engine event log and splits it into per-event append
// batches for streaming-ingest traffic. Deterministic given seed.
func StreamEventBatches(sp *spec.Spec, size, per int, seed int64) ([]StreamBatch, error) {
	rng := rand.New(rand.NewSource(seed))
	r, p := run.GenerateSized(sp, rng, size)
	return SplitEventLog(events.Emit(r, p), per)
}

// CorpusFromStore builds the read corpus from an already-populated
// store (vertex counts come from opening each run once).
func CorpusFromStore(st *store.Store, scheme label.Scheme) (*Corpus, error) {
	if scheme == nil {
		scheme = label.TCM{}
	}
	names, err := st.Runs()
	if err != nil {
		return nil, err
	}
	c := &Corpus{}
	for _, name := range names {
		sess, err := st.OpenRun(name, scheme)
		if err != nil {
			return nil, fmt.Errorf("corpus: open %s: %w", name, err)
		}
		c.Runs = append(c.Runs, RunInfo{Name: name, Vertices: sess.Run.NumVertices()})
	}
	return c, nil
}

// StandInSpec resolves the named Table-1 stand-in workflow (the load
// harness's default corpus spec).
func StandInSpec(name string, seed int64) (*spec.Spec, error) {
	return workload.StandIn(name, seed)
}

// RPQPatternPool renders n random label-regex patterns for /rpq
// traffic, deterministic given seed. With a spec the pool draws module
// names from it, so most patterns reference labels that actually occur
// in the corpus; with a nil spec (target mode, where the server's
// module names are unknown) the pool is wildcard-only, which still
// drives the full parse/determinize/product-evaluate path.
func RPQPatternPool(sp *spec.Spec, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var names []string
	if sp != nil {
		for v := 0; v < sp.NumVertices(); v++ {
			names = append(names, string(sp.NameOf(dag.VertexID(v))))
		}
	}
	pats := make([]string, 0, n)
	for i := 0; i < n; i++ {
		pats = append(pats, rpq.RandomPattern(rng, names, 2))
	}
	return pats
}

// OpenOrCreateStore opens the store at a provserve-style URL
// (fs://dir, bare path, mem:, mem://, shard://a,b), creating it with
// the given spec when it does not exist yet. The second result reports
// whether the store was created (and therefore needs a corpus).
// A fault://opts/inner URL opens (or creates) the inner store and
// wraps its backend in the chaos fault injector — the plan is armed
// only after the store is open, so creating the store and persisting
// the spec are never the faults' victims. Everything after (corpus
// building, the load run) is; pair with provload -retry to absorb the
// injected transients.
func OpenOrCreateStore(url string, sp *spec.Spec, specName string) (*store.Store, bool, error) {
	switch {
	case strings.HasPrefix(url, "fault://"):
		opts, inner, ok := strings.Cut(strings.TrimPrefix(url, "fault://"), "/")
		if !ok {
			return nil, false, fmt.Errorf("loadgen: fault URL %q needs fault://opts/inner-url", url)
		}
		plan, err := faultinject.ParsePlan(opts)
		if err != nil {
			return nil, false, err
		}
		st, created, err := OpenOrCreateStore(inner, sp, specName)
		if err != nil {
			return nil, false, err
		}
		fb := faultinject.Wrap(st.Backend(), faultinject.Plan{})
		wrapped, err := store.OpenBackend(fb)
		if err != nil {
			return nil, false, err
		}
		fb.SetPlan(plan)
		return wrapped, created, nil
	case url == "mem:" || url == "mem://" || strings.HasPrefix(url, "mem://"):
		// A pure in-RAM store is always fresh; mem://dir preloading an
		// existing fs directory is store.OpenURL's job.
		if url == "mem:" || url == "mem://" {
			st, err := store.NewMem(sp, specName)
			return st, true, err
		}
		st, err := store.OpenURL(url)
		return st, false, err
	case strings.HasPrefix(url, "shard://"):
		dirs := strings.Split(strings.TrimPrefix(url, "shard://"), ",")
		if st, err := store.OpenSharded(dirs); err == nil {
			return st, false, nil
		}
		st, err := store.CreateSharded(dirs, sp, specName)
		return st, true, err
	default:
		dir := strings.TrimPrefix(url, "fs://")
		if st, err := store.Open(dir); err == nil {
			return st, false, nil
		}
		st, err := store.Create(dir, sp, specName)
		return st, true, err
	}
}
