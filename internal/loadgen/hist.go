package loadgen

import "math"

// histGrowth is the geometric bucket growth factor. Bucket i covers
// [histGrowth^i, histGrowth^(i+1)) nanoseconds, so any reported
// quantile is within ~5% relative error of the true value — plenty for
// latency SLO verdicts, at a fixed few-KB footprint per endpoint.
const histGrowth = 1.05

// histBuckets spans 1ns .. ~3.8e3 seconds: ceil(log(3.8e12)/log(1.05)).
const histBuckets = 594

// Hist is a fixed-size log-bucketed latency histogram (an HDR-histogram
// lite). It is NOT safe for concurrent use; the driver funnels every
// sample through one collector goroutine and merges per-endpoint
// histograms only after the run.
type Hist struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	max    int64
	min    int64
}

func histIndex(ns int64) int {
	if ns < 1 {
		return 0
	}
	i := int(math.Log(float64(ns)) / math.Log(histGrowth))
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Record adds one latency sample in nanoseconds.
func (h *Hist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(ns)]++
	h.n++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	if h.n == 1 || ns < h.min {
		h.min = ns
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Mean returns the exact arithmetic mean in nanoseconds (0 if empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the exact maximum sample in nanoseconds.
func (h *Hist) Max() int64 { return h.max }

// Min returns the exact minimum sample in nanoseconds.
func (h *Hist) Min() int64 { return h.min }

// Quantile returns the q-quantile (0 <= q <= 1) in nanoseconds: the
// geometric midpoint of the bucket holding the rank-q sample, clamped
// to the exact observed min/max so Quantile(0) and Quantile(1) are
// exact. Returns 0 when empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	// The rank-1 and rank-n samples are tracked exactly.
	if rank <= 1 {
		return h.min
	}
	if rank >= h.n {
		return h.max
	}
	seen := int64(0)
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := math.Pow(histGrowth, float64(i))
			v := int64(lo * math.Sqrt(histGrowth))
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}
