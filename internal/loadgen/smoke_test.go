package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/label"
	"repro/internal/server"
	"repro/internal/store"
)

// TestLoadSmoke drives a short mixed-traffic run against an in-process
// mem-store server — the whole harness end to end over real HTTP, and
// (under `go test -race`) a data-race check on the open-loop driver.
func TestLoadSmoke(t *testing.T) {
	sp, err := StandInSpec("QBLAST", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.NewMem(sp, "QBLAST")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	corpus, err := BuildCorpus(st, 4, 120, 2, 1, label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st, EnableIngest: true, EnableStream: true, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	batches, err := StreamEventBatches(sp, 80, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:       ts.URL,
		Clients:       4,
		Rate:          200,
		Duration:      1200 * time.Millisecond,
		Mix:           Mix{Reachable: 55, Batch: 15, Lineage: 5, Put: 8, Delete: 2, Stream: 15},
		Runs:          corpus.Runs,
		PutBodies:     corpus.PutBodies,
		StreamBatches: batches,
		BatchPairs:    8,
		Seed:          1,
		SLO:           &SLO{ReadP99: 5 * time.Second, WriteP99: 5 * time.Second, MaxErrorRate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Total.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Total.ServerErrors != 0 || rep.Total.NetErrors != 0 {
		t.Fatalf("errors against a healthy server: 5xx=%d net=%d", rep.Total.ServerErrors, rep.Total.NetErrors)
	}
	for _, op := range []string{"reachable", "batch", "stream"} {
		es := rep.Endpoints[op]
		if es == nil || es.Requests == 0 {
			t.Fatalf("%s saw no traffic under the default mix", op)
		}
		l := es.Latency
		if l == nil {
			t.Fatalf("%s has no latency summary", op)
		}
		if !(l.P50Us <= l.P95Us && l.P95Us <= l.P99Us && l.P99Us <= l.MaxUs) {
			t.Errorf("%s percentiles not monotone: %+v", op, l)
		}
	}
	if rep.Server == nil {
		t.Fatal("no server-side /healthz delta in the report")
	}
	if rep.Server.Admitted == 0 {
		t.Error("server admitted no requests")
	}
	if rep.Server.Served["reachable"] == 0 {
		t.Error("server-side served counter for /reachable is zero")
	}
	// Client-completed requests can never exceed what the server says
	// it dispatched plus harness-side sheds.
	var served int64
	for _, v := range rep.Server.Served {
		served += v
	}
	if rep.Total.Requests > served {
		t.Errorf("client completed %d requests but server only served %d", rep.Total.Requests, served)
	}
	if rep.SLO == nil || len(rep.SLO.Verdicts) == 0 {
		t.Fatal("no SLO verdicts")
	}
	if !rep.SLO.Pass {
		t.Errorf("generous SLO failed: %+v", rep.SLO.Verdicts)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}

// TestLoadSheddingUnderTightAdmission pins the harness's 429
// accounting: a server with a tiny admission gate and a rate limit must
// shed some of an aggressive open-loop schedule, and the report must
// show it.
func TestLoadSheddingUnderTightAdmission(t *testing.T) {
	sp, err := StandInSpec("QBLAST", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.NewMem(sp, "QBLAST")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	corpus, err := BuildCorpus(st, 2, 100, 0, 1, label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st, MaxInflight: 1, QueueDepth: 1, RatePerClient: 5, RateBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Clients:  4,
		Rate:     400,
		Duration: time.Second,
		Mix:      Mix{Reachable: 1},
		Runs:     corpus.Runs,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Endpoints["reachable"].Rejected429 == 0 {
		t.Error("tight admission gate never produced a 429")
	}
	if rep.Server != nil && rep.Server.RejectedQueue+rep.Server.RejectedRate == 0 {
		t.Error("server-side rejection counters did not move")
	}
}
