package loadgen

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^theta — the classic popularity skew (YCSB uses
// theta=0.99): rank 0 is the hottest run, the tail is long and cold.
// theta=0 degenerates to uniform. Sampling is a binary search over the
// precomputed CDF, so it is deterministic given the caller's *rand.Rand
// and costs O(log n) per draw with no mutable state of its own — one
// Zipf may be shared across clients as long as each draws from its own
// rng.
type Zipf struct {
	cdf []float64
}

// NewZipf builds the sampler for n ranks at skew theta. n must be >= 1;
// negative theta is clamped to 0.
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if theta < 0 {
		theta = 0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	// Guard against floating-point round-off leaving the last CDF entry
	// a hair under 1: rng.Float64() < 1 always lands in range anyway,
	// but make the invariant explicit.
	cdf[n-1] = 1
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws a rank using the given rng.
func (z *Zipf) Next(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
