// Package loadgen is the open-loop multi-tenant load harness behind
// cmd/provload: N simulated clients issue a configurable mix of
// /reachable, /batch, /lineage, /rpq, PUT, DELETE and streaming-ingest
// traffic against a provserve-compatible HTTP server, with zipfian run
// popularity, and
// the harness reports per-endpoint latency histograms, throughput,
// 429/admission outcomes and SLO verdicts as a machine-readable JSON
// document.
//
// The generator is open-loop: request start times follow a Poisson
// arrival process at the configured rate regardless of how fast the
// server answers, so a saturated server shows up as growing latency and
// 429s instead of the harness politely slowing down to match it (the
// closed-loop coordinated-omission trap). A bounded outstanding-request
// cap protects the harness itself; arrivals past the cap are counted as
// shed, never silently dropped.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/server"
)

// Op identifies one traffic class; the string is both the mix key and
// the report's endpoint key.
type Op string

const (
	OpReachable Op = "reachable"
	OpBatch     Op = "batch"
	OpLineage   Op = "lineage"
	OpRPQ       Op = "rpq"
	OpPut       Op = "put"
	OpDelete    Op = "delete"
	OpStream    Op = "stream"
)

var allOps = []Op{OpReachable, OpBatch, OpLineage, OpRPQ, OpPut, OpDelete, OpStream}

// Mix weights the traffic classes. Weights are relative; zero disables
// a class.
type Mix struct {
	Reachable int `json:"reachable"`
	Batch     int `json:"batch"`
	Lineage   int `json:"lineage"`
	RPQ       int `json:"rpq"`
	Put       int `json:"put"`
	Delete    int `json:"delete"`
	Stream    int `json:"stream"`
}

// DefaultMix is a read-heavy production-ish blend.
var DefaultMix = Mix{Reachable: 70, Batch: 15, Lineage: 5, Put: 8, Delete: 2}

func (m Mix) weight(op Op) int {
	switch op {
	case OpReachable:
		return m.Reachable
	case OpBatch:
		return m.Batch
	case OpLineage:
		return m.Lineage
	case OpRPQ:
		return m.RPQ
	case OpPut:
		return m.Put
	case OpDelete:
		return m.Delete
	case OpStream:
		return m.Stream
	}
	return 0
}

func (m Mix) total() int {
	t := 0
	for _, op := range allOps {
		t += m.weight(op)
	}
	return t
}

// ParseMix parses "reachable=70,batch=15,put=10,delete=5" (omitted
// classes get weight 0).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("mix: %q is not key=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix: bad weight %q", val)
		}
		switch Op(strings.TrimSpace(key)) {
		case OpReachable:
			m.Reachable = w
		case OpBatch:
			m.Batch = w
		case OpLineage:
			m.Lineage = w
		case OpRPQ:
			m.RPQ = w
		case OpPut:
			m.Put = w
		case OpDelete:
			m.Delete = w
		case OpStream:
			m.Stream = w
		default:
			return m, fmt.Errorf("mix: unknown class %q", key)
		}
	}
	if m.total() == 0 {
		return m, errors.New("mix: all weights are zero")
	}
	return m, nil
}

// RunInfo is one queryable run in the corpus: its stored name and
// vertex count (queries address vertices by numeric ID, which the
// server resolves without a name table lookup).
type RunInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
}

// Config configures one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client; nil builds one sized for Clients
	// concurrent connections.
	Client *http.Client
	// Clients is the number of simulated clients, each with its own
	// X-Client-ID, rng and arrival process. Default 8.
	Clients int
	// Rate is the total target arrival rate in requests/second across
	// all clients (open loop). Default 100.
	Rate float64
	// Duration bounds the run. Default 5s.
	Duration time.Duration
	// Mix weights the traffic classes. Zero-valued Mix means DefaultMix.
	Mix Mix
	// Runs is the read corpus; popularity over it is zipfian by slice
	// order (Runs[0] hottest). Required when any read class has weight.
	Runs []RunInfo
	// PutBodies are pre-rendered run XML documents cycled by PUT
	// traffic. Required when Put has weight.
	PutBodies [][]byte
	// WriteNames is the size of the writable name pool ("load-wNNN")
	// that PUT and DELETE target; DELETE of a name not currently stored
	// is counted as not_found, exercising the miss path. Default 32.
	WriteNames int
	// BatchPairs is the number of pairs per /batch request. Default 16.
	BatchPairs int
	// RPQPatterns is the pattern pool rpq traffic cycles through (each
	// request pairs a random pattern with random endpoints on a zipfian-
	// chosen run). Build one with rpq.RandomPattern over the spec's
	// module names. Required when RPQ has weight.
	RPQPatterns []string
	// StreamBatches is the pre-rendered event-batch script stream
	// traffic cycles through: each client drives its own live run
	// ("stream-<client>") by appending the batches in order, sealing the
	// run with finish, deleting it, and starting over. Build it with
	// SplitEventLog. Required when Stream has weight; the server must
	// run with streaming enabled.
	StreamBatches []StreamBatch
	// Theta is the zipfian skew over Runs. Default 0.99.
	Theta float64
	// Seed makes client schedules and query choices deterministic.
	Seed int64
	// MaxOutstanding caps requests in flight across all clients
	// (harness self-protection); arrivals past it are counted as shed.
	// Default 4*Clients.
	MaxOutstanding int
	// SLO, when non-nil, is evaluated into the report's verdicts.
	SLO *SLO
}

// SLO is the service-level objective the report is judged against.
type SLO struct {
	// ReadP99 bounds p99 latency on reachable/batch/lineage; 0 skips.
	ReadP99 time.Duration `json:"read_p99"`
	// WriteP99 bounds p99 latency on put/delete; 0 skips.
	WriteP99 time.Duration `json:"write_p99"`
	// MaxErrorRate bounds (server errors + transport errors) / requests
	// over all traffic. Negative skips; 0 means "none allowed".
	MaxErrorRate float64 `json:"max_error_rate"`
	// MinThroughput bounds achieved requests/second (completed, any
	// status) from below; 0 skips.
	MinThroughput float64 `json:"min_throughput"`
}

// Verdict is one SLO check's outcome.
type Verdict struct {
	Name   string  `json:"name"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// SLOReport is the evaluated SLO.
type SLOReport struct {
	Pass     bool      `json:"pass"`
	Verdicts []Verdict `json:"verdicts"`
}

// LatencyStats summarizes one endpoint's latency histogram, in
// microseconds.
type LatencyStats struct {
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
	MeanUs float64 `json:"mean_us"`
}

// EndpointStats is one traffic class's outcome counts and latency.
type EndpointStats struct {
	Requests      int64         `json:"requests"`
	OK            int64         `json:"ok"`
	NotFound      int64         `json:"not_found,omitempty"`
	Rejected429   int64         `json:"rejected_429,omitempty"`
	ClientErrors  int64         `json:"client_errors,omitempty"`
	ServerErrors  int64         `json:"server_errors,omitempty"`
	NetErrors     int64         `json:"net_errors,omitempty"`
	Shed          int64         `json:"shed,omitempty"`
	ThroughputRPS float64       `json:"throughput_rps"`
	Latency       *LatencyStats `json:"latency,omitempty"`

	hist Hist
}

// ServerDelta is the change in the server's own /healthz counters over
// the run — server-side truth to cross-check the client-side numbers
// (responses lost in transit under overload show up as a gap between
// served and completed).
type ServerDelta struct {
	Admitted      int64            `json:"admitted"`
	RejectedQueue int64            `json:"rejected_queue"`
	RejectedRate  int64            `json:"rejected_rate"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	CacheHitRate  float64          `json:"cache_hit_rate"`
	Evictions     int64            `json:"cache_evictions"`
	Served        map[string]int64 `json:"served,omitempty"`
}

// Report is the machine-readable result of one load run
// (schema "provload.v1").
type Report struct {
	Schema    string                    `json:"schema"`
	Target    string                    `json:"target"`
	Clients   int                       `json:"clients"`
	RateRPS   float64                   `json:"rate_rps"`
	Theta     float64                   `json:"theta"`
	Seed      int64                     `json:"seed"`
	Mix       Mix                       `json:"mix"`
	Corpus    int                       `json:"corpus_runs"`
	DurationS float64                   `json:"duration_s"`
	Endpoints map[string]*EndpointStats `json:"endpoints"`
	Total     *EndpointStats            `json:"total"`
	Server    *ServerDelta              `json:"server,omitempty"`
	SLO       *SLOReport                `json:"slo,omitempty"`
}

// outcome classes for the collector.
const (
	clsOK = iota
	clsNotFound
	cls429
	clsClientErr
	clsServerErr
	clsNetErr
	clsShed
)

type sample struct {
	op    Op
	ns    int64
	class int
}

// Run drives the configured load against cfg.BaseURL and returns the
// report. ctx cancellation stops the run early (the report covers what
// ran).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: Config.BaseURL is required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.WriteNames <= 0 {
		cfg.WriteNames = 32
	}
	if cfg.BatchPairs <= 0 {
		cfg.BatchPairs = 16
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4 * cfg.Clients
	}
	readWeight := cfg.Mix.Reachable + cfg.Mix.Batch + cfg.Mix.Lineage + cfg.Mix.RPQ
	if readWeight > 0 && len(cfg.Runs) == 0 {
		return nil, errors.New("loadgen: read traffic weighted but Config.Runs is empty")
	}
	if cfg.Mix.RPQ > 0 && len(cfg.RPQPatterns) == 0 {
		return nil, errors.New("loadgen: rpq traffic weighted but Config.RPQPatterns is empty")
	}
	if cfg.Mix.Put > 0 && len(cfg.PutBodies) == 0 {
		return nil, errors.New("loadgen: put traffic weighted but Config.PutBodies is empty")
	}
	if cfg.Mix.Stream > 0 && len(cfg.StreamBatches) == 0 {
		return nil, errors.New("loadgen: stream traffic weighted but Config.StreamBatches is empty")
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Clients + cfg.MaxOutstanding
		client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	base := strings.TrimRight(cfg.BaseURL, "/")

	before, beforeErr := fetchHealthz(ctx, client, base)

	var (
		zipf    = NewZipf(len(cfg.Runs), cfg.Theta)
		samples = make(chan sample, 4096)
		sem     = make(chan struct{}, cfg.MaxOutstanding)
		reqWG   sync.WaitGroup
		cliWG   sync.WaitGroup
	)

	stats := map[Op]*EndpointStats{}
	for _, op := range allOps {
		if cfg.Mix.weight(op) > 0 {
			stats[op] = &EndpointStats{}
		}
	}
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for s := range samples {
			es := stats[s.op]
			switch s.class {
			case clsShed:
				es.Shed++
				continue
			case clsOK:
				es.OK++
			case clsNotFound:
				es.NotFound++
			case cls429:
				es.Rejected429++
			case clsClientErr:
				es.ClientErrors++
			case clsServerErr:
				es.ServerErrors++
			case clsNetErr:
				es.NetErrors++
			}
			es.Requests++
			es.hist.Record(s.ns)
		}
	}()

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	perClientRate := cfg.Rate / float64(cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		cliWG.Add(1)
		go func(c int) {
			defer cliWG.Done()
			w := &worker{
				cfg:      &cfg,
				client:   client,
				base:     base,
				rng:      rand.New(rand.NewSource(cfg.Seed + int64(c)*7919)),
				zipf:     zipf,
				clientID: fmt.Sprintf("load-c%03d", c),
			}
			next := time.Now()
			for {
				// Poisson arrivals: exponential inter-arrival times at
				// the per-client rate, scheduled against absolute time
				// so server slowness never stretches the schedule.
				next = next.Add(time.Duration(w.rng.ExpFloat64() / perClientRate * float64(time.Second)))
				select {
				case <-runCtx.Done():
					return
				case <-time.After(time.Until(next)):
				}
				// Draw every random choice here, on the scheduling
				// goroutine, so the request goroutine never touches
				// the worker's rng.
				op := w.pickOp()
				req := w.buildRequest(op)
				select {
				case sem <- struct{}{}:
				default:
					samples <- sample{op: op, class: clsShed}
					continue
				}
				reqWG.Add(1)
				go func() {
					defer func() { <-sem; reqWG.Done() }()
					samples <- w.exec(ctx, op, req)
				}()
			}
		}(c)
	}
	cliWG.Wait()
	reqWG.Wait()
	elapsed := time.Since(start)
	close(samples)
	<-collectorDone

	rep := &Report{
		Schema:    "provload.v1",
		Target:    base,
		Clients:   cfg.Clients,
		RateRPS:   cfg.Rate,
		Theta:     cfg.Theta,
		Seed:      cfg.Seed,
		Mix:       cfg.Mix,
		Corpus:    len(cfg.Runs),
		DurationS: elapsed.Seconds(),
		Endpoints: map[string]*EndpointStats{},
		Total:     &EndpointStats{},
	}
	for op, es := range stats {
		es.finish(elapsed)
		rep.Endpoints[string(op)] = es
		rep.Total.add(es)
	}
	rep.Total.finish(elapsed)

	if after, err := fetchHealthz(ctx, client, base); err == nil && beforeErr == nil {
		rep.Server = delta(before, after)
	}
	if cfg.SLO != nil {
		rep.SLO = evaluateSLO(cfg.SLO, rep)
	}
	return rep, nil
}

func (es *EndpointStats) add(o *EndpointStats) {
	es.Requests += o.Requests
	es.OK += o.OK
	es.NotFound += o.NotFound
	es.Rejected429 += o.Rejected429
	es.ClientErrors += o.ClientErrors
	es.ServerErrors += o.ServerErrors
	es.NetErrors += o.NetErrors
	es.Shed += o.Shed
	es.hist.Merge(&o.hist)
}

func (es *EndpointStats) finish(elapsed time.Duration) {
	if elapsed > 0 {
		es.ThroughputRPS = float64(es.Requests) / elapsed.Seconds()
	}
	if es.hist.Count() > 0 {
		us := func(ns int64) float64 { return float64(ns) / 1e3 }
		es.Latency = &LatencyStats{
			P50Us:  us(es.hist.Quantile(0.50)),
			P95Us:  us(es.hist.Quantile(0.95)),
			P99Us:  us(es.hist.Quantile(0.99)),
			MaxUs:  us(es.hist.Max()),
			MeanUs: es.hist.Mean() / 1e3,
		}
	}
}

// StreamBatch is one pre-rendered POST /runs/{name}/events body with
// the offset it resumes at.
type StreamBatch struct {
	Offset int
	Body   []byte
}

// SplitEventLog renders an engine event stream into per-append wire
// bodies of per events each, carrying their resume offsets — the script
// stream traffic replays against its live run.
func SplitEventLog(evs []events.Event, per int) ([]StreamBatch, error) {
	if per < 1 {
		per = 1
	}
	var batches []StreamBatch
	for start := 0; start < len(evs); start += per {
		end := start + per
		if end > len(evs) {
			end = len(evs)
		}
		var buf bytes.Buffer
		if err := events.WriteLog(&buf, evs[start:end]); err != nil {
			return nil, err
		}
		batches = append(batches, StreamBatch{Offset: start, Body: buf.Bytes()})
	}
	return batches, nil
}

// worker is one simulated client.
type worker struct {
	cfg      *Config
	client   *http.Client
	base     string
	rng      *rand.Rand
	zipf     *Zipf
	clientID string
	putSeq   int

	// Stream traffic is a per-client state machine over one live run:
	// append the scripted batches in order, finish, delete, restart.
	// The protocol is ordered, so at most one state-advancing stream
	// request is in flight per client (streamBusy; extra arrivals read
	// the run's status instead), and any failed step resets the machine
	// to the delete step so the next cycle starts clean (streamFail).
	// streamStep is only touched on the scheduling goroutine; the flags
	// are shared with request goroutines, hence atomic.
	streamStep int
	streamBusy atomic.Bool
	streamFail atomic.Bool
}

// streamName is this client's live run name.
func (w *worker) streamName() string { return "stream-" + w.clientID }

func (w *worker) pickOp() Op {
	n := w.rng.Intn(w.cfg.Mix.total())
	for _, op := range allOps {
		if n -= w.cfg.Mix.weight(op); n < 0 {
			return op
		}
	}
	return OpReachable
}

func (w *worker) pickRun() RunInfo { return w.cfg.Runs[w.zipf.Next(w.rng)] }

func (w *worker) writeName() string {
	return fmt.Sprintf("load-w%03d", w.rng.Intn(w.cfg.WriteNames))
}

// request is one fully-determined request: all randomness was drawn by
// buildRequest on the scheduling goroutine, so exec is free to run
// concurrently.
type request struct {
	method      string
	url         string
	body        []byte
	contentType string
	// trackStream marks a state-advancing stream request: completion
	// clears the worker's in-flight flag, and a failed outcome flags the
	// state machine for reset.
	trackStream bool
}

// exec issues one request, measures latency from send to body fully
// read, and classifies the outcome.
func (w *worker) exec(ctx context.Context, op Op, r request) sample {
	var body io.Reader
	if r.body != nil {
		body = bytes.NewReader(r.body)
	}
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, r.method, r.url, body)
	if err != nil {
		return sample{op: op, ns: time.Since(t0).Nanoseconds(), class: clsNetErr}
	}
	req.Header.Set("X-Client-ID", w.clientID)
	if r.contentType != "" {
		req.Header.Set("Content-Type", r.contentType)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return sample{op: op, ns: time.Since(t0).Nanoseconds(), class: clsNetErr}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ns := time.Since(t0).Nanoseconds()
	class := clsOK
	switch {
	case resp.StatusCode == http.StatusOK:
		class = clsOK
	case resp.StatusCode == http.StatusNotFound:
		class = clsNotFound
	case resp.StatusCode == http.StatusTooManyRequests:
		class = cls429
	case resp.StatusCode >= 500:
		class = clsServerErr
	case resp.StatusCode >= 400:
		class = clsClientErr
	}
	if r.trackStream {
		// Not-found is a clean outcome for the machine's delete step
		// (nothing was streamed yet); anything else non-OK desyncs the
		// offset cursor and forces a reset.
		if class != clsOK && class != clsNotFound {
			w.streamFail.Store(true)
		}
		w.streamBusy.Store(false)
	}
	return sample{op: op, ns: ns, class: class}
}

// buildRequest draws all randomness for one request on the scheduling
// goroutine (the worker's rng is not otherwise synchronized).
func (w *worker) buildRequest(op Op) request {
	switch op {
	case OpReachable:
		r := w.pickRun()
		from, to := w.rng.Intn(r.Vertices), w.rng.Intn(r.Vertices)
		return request{method: http.MethodGet,
			url: fmt.Sprintf("%s/reachable?run=%s&from=%d&to=%d", w.base, r.Name, from, to)}
	case OpBatch:
		r := w.pickRun()
		var buf bytes.Buffer
		fmt.Fprintf(&buf, `{"run":%q,"pairs":[`, r.Name)
		for i := 0; i < w.cfg.BatchPairs; i++ {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "[%d,%d]", w.rng.Intn(r.Vertices), w.rng.Intn(r.Vertices))
		}
		buf.WriteString("]}")
		return request{method: http.MethodPost, url: w.base + "/batch",
			body: buf.Bytes(), contentType: "application/json"}
	case OpLineage:
		r := w.pickRun()
		dir := "up"
		if w.rng.Intn(2) == 0 {
			dir = "down"
		}
		return request{method: http.MethodGet,
			url: fmt.Sprintf("%s/lineage?run=%s&vertex=%d&dir=%s", w.base, r.Name, w.rng.Intn(r.Vertices), dir)}
	case OpRPQ:
		r := w.pickRun()
		pattern := w.cfg.RPQPatterns[w.rng.Intn(len(w.cfg.RPQPatterns))]
		body, _ := json.Marshal(map[string]string{
			"run":     r.Name,
			"from":    strconv.Itoa(w.rng.Intn(r.Vertices)),
			"to":      strconv.Itoa(w.rng.Intn(r.Vertices)),
			"pattern": pattern,
		})
		return request{method: http.MethodPost, url: w.base + "/rpq",
			body: body, contentType: "application/json"}
	case OpPut:
		body := w.cfg.PutBodies[w.putSeq%len(w.cfg.PutBodies)]
		w.putSeq++
		return request{method: http.MethodPut, url: w.base + "/runs/" + w.writeName(),
			body: body, contentType: "application/xml"}
	case OpDelete:
		return request{method: http.MethodDelete, url: w.base + "/runs/" + w.writeName()}
	case OpStream:
		name := w.streamName()
		if w.streamBusy.Load() {
			// The previous step is still in flight; ordered appends
			// cannot overlap, so this arrival reads the run's status.
			return request{method: http.MethodGet, url: w.base + "/runs/" + name}
		}
		if w.streamFail.Swap(false) {
			w.streamStep = len(w.cfg.StreamBatches) + 1 // reset: delete, then restart
		}
		step := w.streamStep
		w.streamStep = (step + 1) % (len(w.cfg.StreamBatches) + 2)
		w.streamBusy.Store(true)
		switch {
		case step < len(w.cfg.StreamBatches):
			b := w.cfg.StreamBatches[step]
			return request{method: http.MethodPost,
				url:  fmt.Sprintf("%s/runs/%s/events?offset=%d", w.base, name, b.Offset),
				body: b.Body, contentType: "text/plain", trackStream: true}
		case step == len(w.cfg.StreamBatches):
			return request{method: http.MethodPost, url: w.base + "/runs/" + name + "/finish",
				trackStream: true}
		default:
			return request{method: http.MethodDelete, url: w.base + "/runs/" + name,
				trackStream: true}
		}
	}
	panic("unreachable")
}

// healthzDoc is the slice of /healthz the harness consumes.
type healthzDoc struct {
	Cache     server.CacheStats     `json:"cache"`
	Admission server.AdmissionStats `json:"admission"`
	Served    map[string]int64      `json:"served"`
}

func fetchHealthz(ctx context.Context, client *http.Client, base string) (*healthzDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz: %s", resp.Status)
	}
	var doc healthzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func delta(before, after *healthzDoc) *ServerDelta {
	d := &ServerDelta{
		Admitted:      after.Admission.Admitted - before.Admission.Admitted,
		RejectedQueue: after.Admission.RejectedQueue - before.Admission.RejectedQueue,
		RejectedRate:  after.Admission.RejectedRate - before.Admission.RejectedRate,
		CacheHits:     after.Cache.Hits - before.Cache.Hits,
		CacheMisses:   after.Cache.Misses - before.Cache.Misses,
		Evictions:     after.Cache.Evictions - before.Cache.Evictions,
	}
	if t := d.CacheHits + d.CacheMisses; t > 0 {
		d.CacheHitRate = float64(d.CacheHits) / float64(t)
	}
	if len(after.Served) > 0 {
		d.Served = map[string]int64{}
		for k, v := range after.Served {
			if n := v - before.Served[k]; n != 0 {
				d.Served[k] = n
			}
		}
	}
	return d
}

func evaluateSLO(slo *SLO, rep *Report) *SLOReport {
	out := &SLOReport{Pass: true}
	check := func(name string, limit, actual float64, pass bool) {
		out.Verdicts = append(out.Verdicts, Verdict{Name: name, Limit: limit, Actual: actual, Pass: pass})
		if !pass {
			out.Pass = false
		}
	}
	p99 := func(op Op) (float64, bool) {
		es := rep.Endpoints[string(op)]
		if es == nil || es.Latency == nil {
			return 0, false
		}
		return es.Latency.P99Us, true
	}
	if slo.ReadP99 > 0 {
		limit := float64(slo.ReadP99.Microseconds())
		for _, op := range []Op{OpReachable, OpBatch, OpLineage, OpRPQ} {
			if actual, ok := p99(op); ok {
				check(string(op)+"_p99_us", limit, actual, actual <= limit)
			}
		}
	}
	if slo.WriteP99 > 0 {
		limit := float64(slo.WriteP99.Microseconds())
		for _, op := range []Op{OpPut, OpDelete, OpStream} {
			if actual, ok := p99(op); ok {
				check(string(op)+"_p99_us", limit, actual, actual <= limit)
			}
		}
	}
	if slo.MaxErrorRate >= 0 && rep.Total.Requests > 0 {
		rate := float64(rep.Total.ServerErrors+rep.Total.NetErrors) / float64(rep.Total.Requests)
		check("error_rate", slo.MaxErrorRate, rate, rate <= slo.MaxErrorRate)
	}
	if slo.MinThroughput > 0 {
		check("throughput_rps", slo.MinThroughput, rep.Total.ThroughputRPS, rep.Total.ThroughputRPS >= slo.MinThroughput)
	}
	return out
}

// WriteText renders the report as a compact human-readable table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "provload: %s  %d clients  %.0f req/s target  %.1fs  corpus=%d  theta=%.2f\n",
		r.Target, r.Clients, r.RateRPS, r.DurationS, r.Corpus, r.Theta)
	fmt.Fprintf(w, "%-10s %9s %9s %7s %7s %6s %10s %10s %10s %10s\n",
		"endpoint", "reqs", "rps", "429", "err", "shed", "p50", "p95", "p99", "max")
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	row := func(name string, es *EndpointStats) {
		lat := func(v float64) string {
			return time.Duration(v * float64(time.Microsecond)).Round(time.Microsecond).String()
		}
		p50, p95, p99, max := "-", "-", "-", "-"
		if es.Latency != nil {
			p50, p95, p99, max = lat(es.Latency.P50Us), lat(es.Latency.P95Us), lat(es.Latency.P99Us), lat(es.Latency.MaxUs)
		}
		fmt.Fprintf(w, "%-10s %9d %9.1f %7d %7d %6d %10s %10s %10s %10s\n",
			name, es.Requests, es.ThroughputRPS, es.Rejected429,
			es.ClientErrors+es.ServerErrors+es.NetErrors, es.Shed, p50, p95, p99, max)
	}
	for _, name := range names {
		row(name, r.Endpoints[name])
	}
	row("TOTAL", r.Total)
	if r.Server != nil {
		fmt.Fprintf(w, "server: admitted=%d rejected_queue=%d rejected_rate=%d cache_hit_rate=%.3f (hits=%d misses=%d evictions=%d)\n",
			r.Server.Admitted, r.Server.RejectedQueue, r.Server.RejectedRate,
			r.Server.CacheHitRate, r.Server.CacheHits, r.Server.CacheMisses, r.Server.Evictions)
	}
	if r.SLO != nil {
		for _, v := range r.SLO.Verdicts {
			status := "PASS"
			if !v.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(w, "slo: %-20s limit=%-12.6g actual=%-12.6g %s\n", v.Name, v.Limit, v.Actual, status)
		}
		verdict := "PASS"
		if !r.SLO.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "slo: verdict %s\n", verdict)
	}
}
