package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicSetClearTest(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Test(%d) did not panic", i)
				}
			}()
			s.Test(i)
		}()
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestOrAnd(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	u := a.Clone()
	u.Or(b)
	for _, i := range []int{3, 70, 99} {
		if !u.Test(i) {
			t.Errorf("union missing %d", i)
		}
	}
	if u.Count() != 3 {
		t.Errorf("union count = %d, want 3", u.Count())
	}
	x := a.Clone()
	x.And(b)
	if !x.Test(70) || x.Count() != 1 {
		t.Errorf("intersection wrong: %v", x)
	}
}

func TestOrCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Or with mismatched capacity did not panic")
		}
	}()
	New(10).Or(New(11))
}

func TestForEachOrderAndNextSet(t *testing.T) {
	s := New(200)
	want := []int{0, 5, 63, 64, 100, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	// NextSet walks the same sequence.
	idx := 0
	for i := s.NextSet(0); i != -1; i = s.NextSet(i + 1) {
		if i != want[idx] {
			t.Fatalf("NextSet sequence diverged at %d: got %d want %d", idx, i, want[idx])
		}
		idx++
	}
	if idx != len(want) {
		t.Fatalf("NextSet visited %d bits, want %d", idx, len(want))
	}
	if s.NextSet(200) != -1 {
		t.Error("NextSet past capacity should be -1")
	}
}

func TestCloneEqualReset(t *testing.T) {
	s := New(77)
	s.Set(5)
	s.Set(76)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(6)
	if s.Equal(c) {
		t.Fatal("clone mutation affected equality check unexpectedly")
	}
	if s.Test(6) {
		t.Fatal("clone mutation leaked into original")
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
	if s.Equal(New(78)) {
		t.Fatal("sets of different capacity compare equal")
	}
}

func TestString(t *testing.T) {
	s := New(20)
	s.Set(1)
	s.Set(3)
	s.Set(9)
	if got := s.String(); got != "{1 3 9}" {
		t.Errorf("String = %q, want {1 3 9}", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Errorf("empty String = %q, want {}", got)
	}
}

// Property: a Set behaves exactly like a map[int]bool under a random
// sequence of Set/Clear operations.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		model := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				model[i] = true
			case 1:
				s.Clear(i)
				delete(model, i)
			case 2:
				if s.Test(i) != model[i] {
					return false
				}
			}
		}
		if s.Count() != len(model) {
			return false
		}
		ok := true
		s.ForEach(func(i int) {
			if !model[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Or is commutative and And distributes as expected on random sets.
func TestQuickOrAndAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			return false
		}
		// a ⊆ a∪b and (a∩b) ⊆ a
		ia := a.Clone()
		ia.And(b)
		for i := 0; i < n; i++ {
			if a.Test(i) && !ab.Test(i) {
				return false
			}
			if ia.Test(i) && !a.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetAndCount(b *testing.B) {
	s := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<16 - 1))
		if i&1023 == 0 {
			_ = s.Count()
		}
	}
}
