// Package bitset provides a dense, fixed-capacity bitset used by the
// reachability substrates (transitive closure rows, visited sets).
//
// The zero value of Set is an empty set of capacity zero; use New to
// allocate a set that can hold indices [0, n).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over indices [0, n).
type Set struct {
	words []uint64
	n     int
}

// New returns a Set capable of holding indices in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set (the n passed to New).
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Or sets s to the union of s and t. The sets must have equal capacity.
func (s *Set) Or(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, t.n))
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And sets s to the intersection of s and t. The sets must have equal capacity.
func (s *Set) And(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, t.n))
	}
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Intersects reports whether s and t share any set bit. The sets must
// have equal capacity.
func (s *Set) Intersects(t *Set) bool {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, t.n))
	}
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	t := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(t.words, s.words)
	return t
}

// Equal reports whether s and t have the same capacity and contents.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit, in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// NextSet returns the smallest set index >= i, or -1 if none exists.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as a sorted list of indices, e.g. "{1 3 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}
