package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"sort"
)

// shardBackend fans one logical store out over N child backends, routing
// each run to the child picked by an FNV-1a hash of the run name. This
// is the ROADMAP's "shard stores across directories/disks": one serving
// process fronts many directories (or disks, or future remote stores)
// while the labeling/query layer above stays unchanged. The specification
// is replicated to every child so each shard is independently openable as
// a plain store.
//
// Routing is deterministic in the run name and the shard count, so a
// shard set must be opened with the same children in the same order it
// was written with.
type shardBackend struct {
	children []Backend
}

// NewShardBackend returns a backend routing runs across the given child
// backends by hash of the run name. At least one child is required.
func NewShardBackend(children ...Backend) (Backend, error) {
	if len(children) == 0 {
		return nil, errors.New("store: shard backend needs at least one child")
	}
	return &shardBackend{children: append([]Backend(nil), children...)}, nil
}

// shardIndex picks the child for a run name: FNV-1a, the cheap
// well-distributed hash Go ships for exactly this kind of keying.
func shardIndex(name string, n int) int {
	h := fnv.New32a()
	io.WriteString(h, name)
	return int(h.Sum32() % uint32(n))
}

func (b *shardBackend) child(name string) Backend {
	return b.children[shardIndex(name, len(b.children))]
}

func (b *shardBackend) ReadSpec() (io.ReadCloser, error) {
	return b.children[0].ReadSpec()
}

func (b *shardBackend) WriteSpec(data []byte) error {
	for i, c := range b.children {
		if err := c.WriteSpec(data); err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return nil
}

func (b *shardBackend) ReadRun(name string) (io.ReadCloser, error) {
	return b.child(name).ReadRun(name)
}

func (b *shardBackend) ReadLabels(name string) (io.ReadCloser, error) {
	return b.child(name).ReadLabels(name)
}

func (b *shardBackend) WriteRun(name string, runDoc, labels []byte) error {
	return b.child(name).WriteRun(name, runDoc, labels)
}

// DeleteRun routes by the same hash as WriteRun but then also asks the
// non-owning children, tolerating already-missing there: a child
// populated outside this shard set (the case ListRuns dedups for) may
// hold a copy under a name it does not own, and a delete must not leave
// such a copy behind to resurface in listings. The name is missing
// everywhere only when no child stored it — that is the one ErrNotExist
// case.
func (b *shardBackend) DeleteRun(name string) error {
	deleted := false
	owner := shardIndex(name, len(b.children))
	// Owning child first: the common case touches one child and the
	// listing shrinks as soon as the owner's copy is gone.
	for off := 0; off < len(b.children); off++ {
		i := (owner + off) % len(b.children)
		switch err := b.children[i].DeleteRun(name); {
		case err == nil:
			deleted = true
		case errors.Is(err, fs.ErrNotExist):
			// This child never had it; expected off the owning shard.
		default:
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	if !deleted {
		return fmt.Errorf("store: shard run %q: %w", name, fs.ErrNotExist)
	}
	return nil
}

// Event logs are keyed by run name like the run pair, so they route to
// the owning child — the log lands next to where the finished run's
// blobs will.
func (b *shardBackend) AppendEventLog(name string, data []byte) error {
	return b.child(name).AppendEventLog(name, data)
}

func (b *shardBackend) ReadEventLog(name string) (io.ReadCloser, error) {
	return b.child(name).ReadEventLog(name)
}

func (b *shardBackend) DeleteEventLog(name string) error {
	return b.child(name).DeleteEventLog(name)
}

// Meta blobs are store-wide (not keyed by run name), so they replicate
// to every child like the spec and read from the first — the same rule
// that keeps each shard independently openable.
func (b *shardBackend) ReadMeta(name string) (io.ReadCloser, error) {
	return b.children[0].ReadMeta(name)
}

func (b *shardBackend) WriteMeta(name string, data []byte) error {
	for i, c := range b.children {
		if err := c.WriteMeta(name, data); err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return nil
}

// ListEventLogs fans out like ListRuns: event logs route to the owning
// child, but a child populated outside this shard set may hold one it
// does not own, so the union is deduplicated the same way.
func (b *shardBackend) ListEventLogs() ([]string, error) {
	var out []string
	for i, c := range b.children {
		names, err := c.ListEventLogs()
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		out = append(out, names...)
	}
	sort.Strings(out)
	return dedupSorted(out), nil
}

func (b *shardBackend) ListRuns() ([]string, error) {
	var out []string
	for i, c := range b.children {
		names, err := c.ListRuns()
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		out = append(out, names...)
	}
	sort.Strings(out)
	// Routing is deterministic, so duplicates only appear when a child
	// was populated outside this shard set; drop them to keep ListRuns a
	// set.
	out = dedupSorted(out)
	return out, nil
}

func dedupSorted(names []string) []string {
	w := 0
	for i, n := range names {
		if i == 0 || n != names[w-1] {
			names[w] = n
			w++
		}
	}
	return names[:w]
}

func (b *shardBackend) Stat() Stats {
	st := Stats{Kind: "shard", Shards: make([]Stats, len(b.children))}
	for i, c := range b.children {
		st.Shards[i] = c.Stat()
	}
	return st
}

func (b *shardBackend) Close() error {
	var errs []error
	for i, c := range b.children {
		if err := c.Close(); err != nil {
			errs = append(errs, fmt.Errorf("store: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}
