// Package backendtest is the conformance suite for store.Backend
// implementations. Every backend — fs, mem, shard, and any future
// remote/object-store layout — must pass Run against a factory producing
// fresh, empty backends; the suite pins down the parts of the contract
// the Store and the serving layer rely on: blob round-trips, sorted and
// complete listings, fs.ErrNotExist on missing documents (the server's
// 404 path), overwrite semantics, and safety under concurrent readers
// and writers (meaningful under -race).
package backendtest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// Factory returns a fresh, empty backend for one subtest. The factory is
// called once per subtest, so implementations should root each backend
// in its own t.TempDir() or equivalent.
type Factory func(t *testing.T) store.Backend

// Run exercises the Backend contract against backends from the factory.
func Run(t *testing.T, newBackend Factory) {
	t.Run("MissingSpec", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		if rc, err := b.ReadSpec(); !errors.Is(err, fs.ErrNotExist) {
			if rc != nil {
				rc.Close()
			}
			t.Fatalf("ReadSpec on empty backend = %v, want fs.ErrNotExist", err)
		}
	})

	t.Run("SpecRoundTrip", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		doc := []byte("<spec v=1>")
		if err := b.WriteSpec(doc); err != nil {
			t.Fatal(err)
		}
		if got := read(t, b.ReadSpec); !bytes.Equal(got, doc) {
			t.Fatalf("ReadSpec = %q, want %q", got, doc)
		}
		// WriteSpec overwrites.
		doc2 := []byte("<spec v=2, longer than before>")
		if err := b.WriteSpec(doc2); err != nil {
			t.Fatal(err)
		}
		if got := read(t, b.ReadSpec); !bytes.Equal(got, doc2) {
			t.Fatalf("ReadSpec after overwrite = %q, want %q", got, doc2)
		}
	})

	t.Run("RunRoundTrip", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		doc, labels := []byte("<run alpha>"), []byte{1, 2, 3, 0, 255}
		if err := b.WriteRun("alpha", doc, labels); err != nil {
			t.Fatal(err)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadRun("alpha") }); !bytes.Equal(got, doc) {
			t.Fatalf("ReadRun = %q, want %q", got, doc)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadLabels("alpha") }); !bytes.Equal(got, labels) {
			t.Fatalf("ReadLabels = %v, want %v", got, labels)
		}
	})

	t.Run("WriteDoesNotRetainBuffers", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		doc, labels := []byte("stable-doc"), []byte("stable-skl")
		if err := b.WriteRun("r", doc, labels); err != nil {
			t.Fatal(err)
		}
		copy(doc, "XXXXXX")
		copy(labels, "XXXXXX")
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadRun("r") }); string(got) != "stable-doc" {
			t.Fatalf("ReadRun = %q after caller mutated its buffer", got)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadLabels("r") }); string(got) != "stable-skl" {
			t.Fatalf("ReadLabels = %q after caller mutated its buffer", got)
		}
	})

	t.Run("Overwrite", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		if err := b.WriteRun("r", []byte("old-doc-which-is-long"), []byte("old-labels")); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteRun("r", []byte("new"), []byte("nl")); err != nil {
			t.Fatal(err)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadRun("r") }); string(got) != "new" {
			t.Fatalf("ReadRun after overwrite = %q", got)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadLabels("r") }); string(got) != "nl" {
			t.Fatalf("ReadLabels after overwrite = %q", got)
		}
		names, err := b.ListRuns()
		if err != nil || len(names) != 1 {
			t.Fatalf("ListRuns after overwrite = %v, %v", names, err)
		}
	})

	t.Run("ListSortedComplete", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		if names, err := b.ListRuns(); err != nil || len(names) != 0 {
			t.Fatalf("ListRuns on empty backend = %v, %v", names, err)
		}
		// Written out of order; ListRuns must return them sorted.
		for _, name := range []string{"zulu", "alpha", "mike", "bravo-2", "bravo-10"} {
			if err := b.WriteRun(name, []byte("d:"+name), []byte("l:"+name)); err != nil {
				t.Fatal(err)
			}
		}
		names, err := b.ListRuns()
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"alpha", "bravo-10", "bravo-2", "mike", "zulu"}
		if fmt.Sprint(names) != fmt.Sprint(want) {
			t.Fatalf("ListRuns = %v, want %v", names, want)
		}
	})

	t.Run("MissingRun", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		if err := b.WriteRun("present", []byte("d"), []byte("l")); err != nil {
			t.Fatal(err)
		}
		for _, probe := range []struct {
			what string
			call func(string) (io.ReadCloser, error)
		}{
			{"ReadRun", b.ReadRun},
			{"ReadLabels", b.ReadLabels},
		} {
			rc, err := probe.call("absent")
			if rc != nil {
				rc.Close()
			}
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("%s(absent) = %v, want fs.ErrNotExist", probe.what, err)
			}
		}
	})

	t.Run("MetaRoundTrip", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		// Missing meta is ErrNotExist, like a missing run.
		if rc, err := b.ReadMeta(".probe"); !errors.Is(err, fs.ErrNotExist) {
			if rc != nil {
				rc.Close()
			}
			t.Fatalf("ReadMeta on empty backend = %v, want fs.ErrNotExist", err)
		}
		if err := b.WriteMeta(".probe", []byte("one\ntwo")); err != nil {
			t.Fatal(err)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadMeta(".probe") }); string(got) != "one\ntwo" {
			t.Fatalf("ReadMeta = %q", got)
		}
		// WriteMeta overwrites, and the buffer is not retained.
		doc := []byte("three")
		if err := b.WriteMeta(".probe", doc); err != nil {
			t.Fatal(err)
		}
		copy(doc, "XXXXX")
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadMeta(".probe") }); string(got) != "three" {
			t.Fatalf("ReadMeta after overwrite = %q", got)
		}
		// Meta names must be dot-prefixed and never path specials: a
		// run-shaped name (or "..", which would escape an fs root) is
		// rejected, never silently stored where it could shadow a run.
		for _, bad := range []string{"", ".", "..", "hot", "a/b", ".h t", "../x"} {
			if err := b.WriteMeta(bad, []byte("x")); err == nil {
				t.Fatalf("WriteMeta(%q) accepted an invalid meta name", bad)
			}
		}
		// Metas never leak into run listings.
		if err := b.WriteRun("r", []byte("d"), []byte("l")); err != nil {
			t.Fatal(err)
		}
		names, err := b.ListRuns()
		if err != nil || fmt.Sprint(names) != "[r]" {
			t.Fatalf("ListRuns with meta present = %v, %v", names, err)
		}
	})

	t.Run("WriteVisibilityOrdering", func(t *testing.T) {
		// The labels-before-XML invariant: the moment a reader can see a
		// run's document, its label snapshot must be readable too. The
		// serving layer loads doc-then-labels on every cache miss, so a
		// backend that exposed the document first would surface phantom
		// 500s for runs that are about to be complete.
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		const readers = 4
		start := make(chan struct{})
		errs := make(chan error, readers)
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					rc, err := b.ReadRun("v")
					if errors.Is(err, fs.ErrNotExist) {
						continue // not visible yet; poll
					}
					if err != nil {
						errs <- err
						return
					}
					rc.Close()
					// Document observed: labels must exist right now.
					skl, err := readErr(b.ReadLabels("v"))
					if err != nil || string(skl) != "skl-v" {
						//provlint:ignore errwrap assertion text for the conformance harness, err may be nil on content mismatch; never classified via errors.Is
						errs <- fmt.Errorf("run visible but labels = %q, %v", skl, err)
						return
					}
					errs <- nil
					return
				}
			}()
		}
		close(start)
		if err := b.WriteRun("v", []byte("doc-v"), []byte("skl-v")); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("StorePutRunConcurrentDistinct", func(t *testing.T) {
		// The full write path — validation, labeling, snapshot encode,
		// WriteRun — driven concurrently through store.Store for distinct
		// names, with OpenRun readers interleaved. Under -race this is
		// the backend's ingest-concurrency audit; it also checks
		// overwrite of an existing name through the Store layer.
		b := newBackend(t)
		defer b.Close()
		s := spec.PaperSpec()
		st, err := store.New(b, s, "paper")
		if err != nil {
			t.Fatal(err)
		}
		if err := st.PutRun("seed", genRun(t, s, 1, 80), nil, label.TCM{}); err != nil {
			t.Fatal(err)
		}
		const writers = 6
		var wg sync.WaitGroup
		errs := make(chan error, 2*writers)
		fail := func(err error) {
			select {
			case errs <- err:
			default:
			}
		}
		for g := 0; g < writers; g++ {
			g := g
			wg.Add(2)
			go func() {
				defer wg.Done()
				if err := st.PutRun(fmt.Sprintf("w-%d", g), genRun(t, s, int64(g+2), 100), nil, label.TCM{}); err != nil {
					fail(err)
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					sess, err := st.OpenRun("seed", label.TCM{})
					if err != nil {
						fail(fmt.Errorf("OpenRun(seed) during writes: %w", err))
						return
					}
					if sess.Run.NumVertices() == 0 {
						fail(errors.New("seed session is empty"))
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		names, err := st.Runs()
		if err != nil || len(names) != writers+1 {
			t.Fatalf("Runs after concurrent PutRun = %v, %v", names, err)
		}
		// Overwrite through the Store: the new run replaces the old and
		// sessions opened afterwards see the new graph.
		bigger := genRun(t, s, 99, 200)
		if err := st.PutRun("seed", bigger, nil, label.TCM{}); err != nil {
			t.Fatal(err)
		}
		sess, err := st.OpenRun("seed", label.TCM{})
		if err != nil {
			t.Fatal(err)
		}
		if sess.Run.NumVertices() != bigger.NumVertices() {
			t.Fatalf("after overwrite: session has %d vertices, want %d",
				sess.Run.NumVertices(), bigger.NumVertices())
		}
		if n, err := st.Runs(); err != nil || len(n) != writers+1 {
			t.Fatalf("Runs after overwrite = %v, %v", n, err)
		}
	})

	t.Run("HotListRoundTrip", func(t *testing.T) {
		// The warm-restart hot list rides the meta-blob API end to end
		// through store.Store: saved MRU-first for stored runs, read back
		// in order, absent on a store that never saved one, and pruned of
		// names the store no longer holds — a .hot blob must never keep
		// naming a deleted run.
		b := newBackend(t)
		defer b.Close()
		s := spec.PaperSpec()
		st, err := store.New(b, s, "paper")
		if err != nil {
			t.Fatal(err)
		}
		if names, err := st.ReadHotList(); err != nil || len(names) != 0 {
			t.Fatalf("ReadHotList on fresh store = %v, %v", names, err)
		}
		want := []string{"hot-1", "hot-2", "cold-9"}
		for i, n := range want {
			if err := st.PutRun(n, genRun(t, s, int64(i+1), 60), nil, label.TCM{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.WriteHotList(want); err != nil {
			t.Fatal(err)
		}
		got, err := st.ReadHotList()
		if err != nil || fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("ReadHotList = %v, %v; want %v", got, err, want)
		}
		if err := st.WriteHotList([]string{"../evil"}); err == nil {
			t.Fatal("WriteHotList accepted an invalid run name")
		}
		// Deleted (or never-stored) names are pruned at write time: after
		// hot-2 is deleted, re-saving the same list must not persist it.
		if err := st.DeleteRun("hot-2"); err != nil {
			t.Fatal(err)
		}
		if err := st.WriteHotList(append(want, "never-stored")); err != nil {
			t.Fatal(err)
		}
		got, err = st.ReadHotList()
		if err != nil || fmt.Sprint(got) != fmt.Sprint([]string{"hot-1", "cold-9"}) {
			t.Fatalf("ReadHotList after delete = %v, %v; want pruned [hot-1 cold-9]", got, err)
		}
	})

	t.Run("DeleteRun", func(t *testing.T) { DeleteRunConformance(t, newBackend) })

	t.Run("EventLog", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)

		// Never appended: reads miss with fs.ErrNotExist, deletes no-op.
		if _, err := readErr(b.ReadEventLog("live")); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("ReadEventLog(never-appended) = %v, want fs.ErrNotExist", err)
		}
		if err := b.DeleteEventLog("live"); err != nil {
			t.Fatalf("DeleteEventLog(never-appended) = %v, want nil no-op", err)
		}

		// Appends accumulate in order and do not retain the caller's buffer.
		first := []byte("exec a copy 0\n")
		if err := b.AppendEventLog("live", first); err != nil {
			t.Fatal(err)
		}
		copy(first, "XXXX")
		if err := b.AppendEventLog("live", []byte("exec b copy 0\n")); err != nil {
			t.Fatal(err)
		}
		want := "exec a copy 0\nexec b copy 0\n"
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadEventLog("live") }); string(got) != want {
			t.Fatalf("ReadEventLog after two appends = %q, want %q", got, want)
		}

		// Event logs are invisible to listings and independent of the run
		// pair: a log under a name with no stored run never lists, and
		// writing or deleting the pair leaves the log untouched.
		if names, err := b.ListRuns(); err != nil || len(names) != 0 {
			t.Fatalf("ListRuns with only an event log = %v, %v; want empty", names, err)
		}
		if err := b.WriteRun("live", []byte("doc"), []byte("skl")); err != nil {
			t.Fatal(err)
		}
		if err := b.DeleteRun("live"); err != nil {
			t.Fatal(err)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadEventLog("live") }); string(got) != want {
			t.Fatalf("ReadEventLog after run delete = %q, want %q (DeleteRun touched the log)", got, want)
		}

		// Delete removes the log; a second delete stays a no-op; a fresh
		// append restarts from empty.
		if err := b.DeleteEventLog("live"); err != nil {
			t.Fatal(err)
		}
		if _, err := readErr(b.ReadEventLog("live")); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("ReadEventLog after delete = %v, want fs.ErrNotExist", err)
		}
		if err := b.DeleteEventLog("live"); err != nil {
			t.Fatalf("second DeleteEventLog = %v, want nil no-op", err)
		}
		if err := b.AppendEventLog("live", []byte("fresh\n")); err != nil {
			t.Fatal(err)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadEventLog("live") }); string(got) != "fresh\n" {
			t.Fatalf("ReadEventLog after restart = %q, want %q", got, "fresh\n")
		}

		// Distinct names never interfere.
		if err := b.AppendEventLog("other", []byte("other-log\n")); err != nil {
			t.Fatal(err)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadEventLog("live") }); string(got) != "fresh\n" {
			t.Fatalf("ReadEventLog(live) after appending to other = %q", got)
		}
	})

	t.Run("EventLogList", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		// Empty store: an empty listing, not an error (the eager stream
		// recovery scan runs against stores with no live sessions).
		if names, err := b.ListEventLogs(); err != nil || len(names) != 0 {
			t.Fatalf("ListEventLogs on empty backend = %v, %v; want empty", names, err)
		}
		// Runs without logs never list; logs list sorted regardless of
		// append order and independent of whether a run pair exists.
		if err := b.WriteRun("stored-only", []byte("d"), []byte("l")); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"zeta", "alpha", "mid"} {
			if err := b.AppendEventLog(name, []byte("ev:"+name+"\n")); err != nil {
				t.Fatal(err)
			}
		}
		names, err := b.ListEventLogs()
		if err != nil || fmt.Sprint(names) != fmt.Sprint([]string{"alpha", "mid", "zeta"}) {
			t.Fatalf("ListEventLogs = %v, %v; want [alpha mid zeta]", names, err)
		}
		// Deleting a log removes it from the listing; deleting the run
		// pair does not.
		if err := b.DeleteEventLog("mid"); err != nil {
			t.Fatal(err)
		}
		if err := b.DeleteRun("stored-only"); err != nil {
			t.Fatal(err)
		}
		names, err = b.ListEventLogs()
		if err != nil || fmt.Sprint(names) != fmt.Sprint([]string{"alpha", "zeta"}) {
			t.Fatalf("ListEventLogs after deletes = %v, %v; want [alpha zeta]", names, err)
		}
	})

	t.Run("TransientClassification", func(t *testing.T) {
		// Missing-blob errors are the backend's 404 path and must never
		// look retryable: a retry wrapper that backed off on ErrNotExist
		// would turn every cold-cache miss into a full backoff ladder.
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		checks := []struct {
			what string
			err  error
		}{
			{"ReadRun", readOnlyErr(b.ReadRun("absent"))},
			{"ReadLabels", readOnlyErr(b.ReadLabels("absent"))},
			{"ReadEventLog", readOnlyErr(b.ReadEventLog("absent"))},
			{"ReadMeta", readOnlyErr(b.ReadMeta(".absent"))},
			{"DeleteRun", b.DeleteRun("absent")},
		}
		for _, c := range checks {
			if !errors.Is(c.err, fs.ErrNotExist) {
				t.Fatalf("%s(absent) = %v, want fs.ErrNotExist", c.what, c.err)
			}
			if store.IsTransient(c.err) {
				t.Fatalf("%s(absent) error %v classified transient; not-exist must be permanent", c.what, c.err)
			}
		}
		// Successful operations are not errors at all.
		if store.IsTransient(nil) {
			t.Fatal("IsTransient(nil) = true")
		}
	})

	t.Run("Stat", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		if st := b.Stat(); st.Kind == "" {
			t.Fatalf("Stat().Kind is empty: %+v", st)
		}
	})

	t.Run("Concurrent", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		// Seed half the runs, then concurrently write the other half while
		// readers hammer the seeded ones and list throughout: the contract
		// says distinct names never interfere and listings only ever show
		// complete runs.
		const seeded, writers = 8, 8
		for i := 0; i < seeded; i++ {
			name := fmt.Sprintf("seed-%d", i)
			if err := b.WriteRun(name, []byte("doc-"+name), []byte("skl-"+name)); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		errs := make(chan error, 2*writers)
		fail := func(err error) {
			select {
			case errs <- err:
			default:
			}
		}
		for g := 0; g < writers; g++ {
			g := g
			wg.Add(2)
			go func() {
				defer wg.Done()
				name := fmt.Sprintf("new-%d", g)
				if err := b.WriteRun(name, []byte("doc-"+name), []byte("skl-"+name)); err != nil {
					fail(err)
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					name := fmt.Sprintf("seed-%d", (g+i)%seeded)
					got, err := readErr(b.ReadRun(name))
					if err != nil || string(got) != "doc-"+name {
						//provlint:ignore errwrap assertion text for the conformance harness, err may be nil on content mismatch; never classified via errors.Is
						fail(fmt.Errorf("ReadRun(%s) = %q, %v", name, got, err))
						return
					}
					names, err := b.ListRuns()
					if err != nil || len(names) < seeded {
						//provlint:ignore errwrap assertion text for the conformance harness, err may be nil on content mismatch; never classified via errors.Is
						fail(fmt.Errorf("ListRuns = %d names, %v", len(names), err))
						return
					}
					for _, n := range names {
						if skl, err := readErr(b.ReadLabels(n)); err != nil || string(skl) != "skl-"+n {
							//provlint:ignore errwrap assertion text for the conformance harness, err may be nil on content mismatch; never classified via errors.Is
							fail(fmt.Errorf("listed run %q has labels %q, %v", n, skl, err))
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		names, err := b.ListRuns()
		if err != nil || len(names) != seeded+writers {
			t.Fatalf("final ListRuns = %v, %v", names, err)
		}
	})

	t.Run("CopyPreservesLabelCodecs", func(t *testing.T) {
		// Backends move label snapshots as opaque blobs, so store.Copy
		// must preserve them byte-for-byte whichever codec version wrote
		// them: a replicated store keeps serving SKL1 and SKL2 runs
		// identically.
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		labels := make([]core.Label, 300)
		for i := range labels {
			labels[i] = core.Label{Q1: uint32(i), Q2: uint32(2 * i), Q3: uint32(300 - i), Orig: dag.VertexID(i % 7)}
		}
		snap := &core.Snapshot{Labels: labels, NumPositioned: 600, NumSpec: 7}
		blobs := map[string][]byte{}
		for _, v := range []core.SnapshotVersion{core.SnapshotV1, core.SnapshotV2} {
			snap.Version = v
			var buf bytes.Buffer
			if _, err := snap.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			name := "run-" + v.String()
			blobs[name] = buf.Bytes()
			if err := b.WriteRun(name, []byte("<run "+name+">"), buf.Bytes()); err != nil {
				t.Fatal(err)
			}
		}
		dst := store.NewMemBackend()
		defer dst.Close()
		if err := store.Copy(dst, b); err != nil {
			t.Fatalf("Copy: %v", err)
		}
		for name, want := range blobs {
			got := read(t, func() (io.ReadCloser, error) { return dst.ReadLabels(name) })
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: copied snapshot is not byte-identical", name)
			}
			decoded, err := core.DecodeSnapshot(got)
			if err != nil {
				t.Fatalf("%s: copied snapshot does not decode: %v", name, err)
			}
			if len(decoded.Labels) != len(labels) {
				t.Fatalf("%s: %d labels after copy, want %d", name, len(decoded.Labels), len(labels))
			}
			for i := range labels {
				if decoded.Labels[i] != labels[i] {
					t.Fatalf("%s: label %d changed across Copy", name, i)
				}
			}
		}
	})

	t.Run("Close", func(t *testing.T) {
		b := newBackend(t)
		mustInit(t, b)
		if err := b.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

// DeleteRunConformance pins the Backend delete contract — the last CRUD
// edge: delete makes both blobs unreadable (fs.ErrNotExist, the
// server's 404) and shrinks ListRuns; deleting a missing name is
// ErrNotExist, not a success and not a 500-shaped error; a deleted name
// can be re-written and served again; and mid-delete visibility honors
// the document-before-labels ordering (a reader that can still see the
// document can still read the labels — the mirror of WriteRun's
// labels-before-document ordering). Run invokes it as the "DeleteRun"
// subtest; it is exported so future backends can be audited directly.
func DeleteRunConformance(t *testing.T, newBackend Factory) {
	t.Run("Lifecycle", func(t *testing.T) {
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		if err := b.DeleteRun("never-written"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("DeleteRun(never-written) = %v, want fs.ErrNotExist", err)
		}
		for _, name := range []string{"alpha", "beta", "gamma"} {
			if err := b.WriteRun(name, []byte("d:"+name), []byte("l:"+name)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.DeleteRun("beta"); err != nil {
			t.Fatalf("DeleteRun(beta) = %v", err)
		}
		for _, probe := range []struct {
			what string
			call func(string) (io.ReadCloser, error)
		}{
			{"ReadRun", b.ReadRun},
			{"ReadLabels", b.ReadLabels},
		} {
			rc, err := probe.call("beta")
			if rc != nil {
				rc.Close()
			}
			if !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("%s(beta) after delete = %v, want fs.ErrNotExist", probe.what, err)
			}
		}
		names, err := b.ListRuns()
		if err != nil || fmt.Sprint(names) != fmt.Sprint([]string{"alpha", "gamma"}) {
			t.Fatalf("ListRuns after delete = %v, %v; want [alpha gamma]", names, err)
		}
		// Delete is not idempotent-silent: the second delete reports the
		// name is gone, exactly like deleting a name never written.
		if err := b.DeleteRun("beta"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("second DeleteRun(beta) = %v, want fs.ErrNotExist", err)
		}
		// The name is free for reuse: re-put works and reads back whole.
		if err := b.WriteRun("beta", []byte("d2:beta"), []byte("l2:beta")); err != nil {
			t.Fatal(err)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadRun("beta") }); string(got) != "d2:beta" {
			t.Fatalf("ReadRun after re-put = %q", got)
		}
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadLabels("beta") }); string(got) != "l2:beta" {
			t.Fatalf("ReadLabels after re-put = %q", got)
		}
		if names, err := b.ListRuns(); err != nil || len(names) != 3 {
			t.Fatalf("ListRuns after re-put = %v, %v", names, err)
		}
		// Untouched runs are unaffected throughout.
		if got := read(t, func() (io.ReadCloser, error) { return b.ReadLabels("alpha") }); string(got) != "l:alpha" {
			t.Fatalf("ReadLabels(alpha) after unrelated delete = %q", got)
		}
	})

	t.Run("VisibilityOrdering", func(t *testing.T) {
		// The delete-side twin of WriteVisibilityOrdering: while the
		// document remains readable, the labels must be too — the pair
		// may only become unreadable document-first.
		b := newBackend(t)
		defer b.Close()
		mustInit(t, b)
		if err := b.WriteRun("v", []byte("doc-v"), []byte("skl-v")); err != nil {
			t.Fatal(err)
		}
		const readers = 4
		start := make(chan struct{})
		errs := make(chan error, readers)
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					rc, err := b.ReadRun("v")
					if errors.Is(err, fs.ErrNotExist) {
						errs <- nil // delete observed; run vanished whole
						return
					}
					if err != nil {
						errs <- err
						return
					}
					rc.Close()
					// Document was visible: labels must be readable — unless
					// the delete completed wholesale between the two reads,
					// which a re-probe of the document distinguishes (the
					// ordering is violated only if the document is *still*
					// readable while the labels are not).
					skl, err := readErr(b.ReadLabels("v"))
					if errors.Is(err, fs.ErrNotExist) {
						if rc2, err2 := b.ReadRun("v"); errors.Is(err2, fs.ErrNotExist) {
							errs <- nil // delete landed between the reads
							return
						} else if err2 == nil {
							rc2.Close()
							errs <- fmt.Errorf("document readable but labels already gone")
							return
						} else {
							errs <- err2
							return
						}
					}
					if err != nil || string(skl) != "skl-v" {
						//provlint:ignore errwrap assertion text for the conformance harness, err may be nil on content mismatch; never classified via errors.Is
						errs <- fmt.Errorf("run still visible but labels = %q, %v", skl, err)
						return
					}
				}
			}()
		}
		close(start)
		if err := b.DeleteRun("v"); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})

	t.Run("StoreDeleteRun", func(t *testing.T) {
		// The Store layer on top: validation up front, delete → open is
		// ErrNotExist → listing shrinks → re-put serves again, and a
		// store.Copy racing deletes skips vanished runs instead of
		// failing the whole replication.
		b := newBackend(t)
		defer b.Close()
		s := spec.PaperSpec()
		st, err := store.New(b, s, "paper")
		if err != nil {
			t.Fatal(err)
		}
		if err := st.DeleteRun("../evil"); err == nil {
			t.Fatal("Store.DeleteRun accepted an invalid run name")
		}
		for i, name := range []string{"keep", "drop"} {
			if err := st.PutRun(name, genRun(t, s, int64(i+1), 80), nil, label.TCM{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.DeleteRun("drop"); err != nil {
			t.Fatal(err)
		}
		if _, err := st.OpenRun("drop", label.TCM{}); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("OpenRun after delete = %v, want fs.ErrNotExist", err)
		}
		if names, err := st.Runs(); err != nil || fmt.Sprint(names) != "[keep]" {
			t.Fatalf("Runs after delete = %v, %v", names, err)
		}
		if err := st.DeleteRun("drop"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Store.DeleteRun of a deleted run = %v, want fs.ErrNotExist", err)
		}
		reput := genRun(t, s, 9, 120)
		if err := st.PutRun("drop", reput, nil, label.TCM{}); err != nil {
			t.Fatal(err)
		}
		sess, err := st.OpenRun("drop", label.TCM{})
		if err != nil {
			t.Fatal(err)
		}
		if sess.Run.NumVertices() != reput.NumVertices() {
			t.Fatalf("re-put session has %d vertices, want %d", sess.Run.NumVertices(), reput.NumVertices())
		}
		// Copy tolerates a run deleted between the listing and its read.
		dst := store.NewMemBackend()
		defer dst.Close()
		if err := store.Copy(dst, deleteDuringCopy{Backend: b, name: "drop"}); err != nil {
			t.Fatalf("Copy with mid-copy delete: %v", err)
		}
		names, err := dst.ListRuns()
		if err != nil || fmt.Sprint(names) != "[keep]" {
			t.Fatalf("copied runs = %v, %v; want [keep] (deleted run skipped)", names, err)
		}
	})
}

// deleteDuringCopy makes one run vanish the moment Copy tries to read
// it, simulating a retention sweep deleting a listed run mid-copy.
type deleteDuringCopy struct {
	store.Backend
	name string
}

func (d deleteDuringCopy) ReadRun(name string) (io.ReadCloser, error) {
	if name == d.name {
		d.Backend.DeleteRun(name)
	}
	return d.Backend.ReadRun(name)
}

// genRun generates a deterministic run of the spec for write-path tests.
func genRun(t *testing.T, s *spec.Spec, seed int64, size int) *run.Run {
	t.Helper()
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(seed)), size)
	return r
}

// mustInit writes a placeholder spec so run operations act on an
// initialized backend (fs backends create their layout in WriteSpec).
func mustInit(t *testing.T, b store.Backend) {
	t.Helper()
	if err := b.WriteSpec([]byte("<spec>")); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, open func() (io.ReadCloser, error)) []byte {
	t.Helper()
	data, err := readErr(open())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// readOnlyErr discards the reader and keeps the error, for probes that
// only care about classification.
func readOnlyErr(rc io.ReadCloser, err error) error {
	if rc != nil {
		rc.Close()
	}
	return err
}

func readErr(rc io.ReadCloser, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}
