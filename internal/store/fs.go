package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fsBackend stores blobs as files under one directory, the layout the
// package has always used:
//
//	<dir>/spec.xml          the specification
//	<dir>/runs/<name>.xml   one run (+ data items) per file
//	<dir>/runs/<name>.skl   the run's label snapshot
//
// Writes are crash-safe: every file is written to a hidden temp file in
// the same directory, fsynced, renamed into place, and the directory is
// fsynced, so readers only ever observe complete documents and a
// completed write survives power loss. WriteRun durably renames the
// .skl before the .xml — the .xml is what makes a run visible to
// ListRuns, so a crash between the two leaves an orphaned snapshot
// (overwritten on retry) rather than a visible run with no labels.
// Overwriting a run that is concurrently being read can pair new labels
// with the old document; per the Backend contract, same-name write/read
// races are the caller's to serialize.
type fsBackend struct {
	dir string
}

// NewFSBackend returns a filesystem backend rooted at dir. The directory
// need not exist yet: WriteSpec creates the layout. Opening semantics are
// lazy — ReadSpec on a directory that holds no store reports
// fs.ErrNotExist.
func NewFSBackend(dir string) Backend { return &fsBackend{dir: dir} }

func (b *fsBackend) ReadSpec() (io.ReadCloser, error) {
	f, err := os.Open(filepath.Join(b.dir, "spec.xml"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func (b *fsBackend) WriteSpec(data []byte) error {
	if err := os.MkdirAll(filepath.Join(b.dir, "runs"), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeFileAtomic(filepath.Join(b.dir, "spec.xml"), data)
}

func (b *fsBackend) ReadRun(name string) (io.ReadCloser, error) {
	return b.openBlob(name, ".xml")
}

func (b *fsBackend) ReadLabels(name string) (io.ReadCloser, error) {
	return b.openBlob(name, ".skl")
}

func (b *fsBackend) openBlob(name, ext string) (io.ReadCloser, error) {
	f, err := os.Open(b.runPath(name, ext))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func (b *fsBackend) WriteRun(name string, runDoc, labels []byte) error {
	if err := os.MkdirAll(filepath.Join(b.dir, "runs"), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(b.runPath(name, ".skl"), labels); err != nil {
		return err
	}
	return writeFileAtomic(b.runPath(name, ".xml"), runDoc)
}

// Meta blobs live as dot-prefixed files in the store's root directory
// (next to spec.xml), so they can never collide with run blobs under
// runs/ and never appear in ListRuns.
func (b *fsBackend) ReadMeta(name string) (io.ReadCloser, error) {
	if err := ValidMetaName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(b.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func (b *fsBackend) WriteMeta(name string, data []byte) error {
	if err := ValidMetaName(name); err != nil {
		return err
	}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeFileAtomic(filepath.Join(b.dir, name), data)
}

func (b *fsBackend) ListRuns() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(b.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		// Temp files are dot-prefixed, so they never collide with valid
		// run names even if one survives a crash.
		if strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if strings.HasSuffix(e.Name(), ".xml") {
			out = append(out, strings.TrimSuffix(e.Name(), ".xml"))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (b *fsBackend) Stat() Stats { return Stats{Kind: "fs", Path: b.dir} }

func (b *fsBackend) Close() error { return nil }

func (b *fsBackend) runPath(name, ext string) string {
	return filepath.Join(b.dir, "runs", name+ext)
}

// writeFileAtomic writes data to a dot-prefixed temp file next to path
// (so a crash can never leave a stray that collides with a valid run
// name — ValidRunName forbids the leading dot), fsyncs it, renames it
// into place, and fsyncs the directory so the rename itself is durable.
// A crash at any point leaves either the old content or the new content
// at path, never a truncated mix — and once the call returns, the new
// content survives power loss. The directory fsync is also what makes
// WriteRun's skl-before-xml ordering hold across a crash: the .skl
// rename is on stable storage before the .xml rename is attempted.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	// CreateTemp makes the file 0600; stored blobs keep the historical
	// os.Create permissions so stores stay shareable across processes
	// and users.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
