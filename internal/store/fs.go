package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// fsBackend stores blobs as files under one directory, the layout the
// package has always used:
//
//	<dir>/spec.xml          the specification
//	<dir>/runs/<name>.xml   one run (+ data items) per file
//	<dir>/runs/<name>.skl   the run's label snapshot
//
// Writes are crash-safe: every file is written to a hidden temp file in
// the same directory, fsynced, renamed into place, and the directory is
// fsynced, so readers only ever observe complete documents and a
// completed write survives power loss. WriteRun durably renames the
// .skl before the .xml — the .xml is what makes a run visible to
// ListRuns, so a crash between the two leaves an orphaned snapshot
// (overwritten on retry if the write is repeated, otherwise collected
// by the orphan sweep below) rather than a visible run with no labels.
// DeleteRun mirrors that ordering: the .xml is durably removed before
// the .skl, so a crash mid-delete leaves an invisible orphaned .skl,
// never a visible run whose labels are gone. Overwriting a run that is
// concurrently being read can pair new labels with the old document;
// per the Backend contract, same-name write/read races are the caller's
// to serialize.
//
// Orphaned .skl files (a crash landed between the two renames of a
// write or a delete) are swept once on the first ReadSpec or ListRuns —
// store open and the first listing, which on a shard set reaches every
// child — and again on DeleteRun (throttled, see there). The sweep
// serializes against
// in-process writes through sweepMu: WriteRun holds the read side
// across its rename pair so the sweep can never observe (and collect)
// the .skl of a write whose .xml rename is still in flight. Writers in
// other processes are outside this lock and remain the deployment's to
// serialize, as everywhere else in the contract.
type fsBackend struct {
	dir string

	// sweepMu orders the orphan sweep (write side) against WriteRun's
	// skl/xml rename pair (read side); see the type comment.
	sweepMu sync.RWMutex
	// sweepOnce runs the open-time orphan sweep exactly once, from the
	// first ReadSpec (OpenBackend's entry point into the layout) or
	// ListRuns (which reaches every child of a shard set).
	sweepOnce sync.Once
	// lastSweepNs throttles the delete-time sweep (unix nanos of the
	// last one): a bulk retention sweep deleting thousands of runs must
	// not rescan the directory per victim — each full scan is O(runs),
	// so unthrottled batch deletes would go quadratic.
	lastSweepNs atomic.Int64
}

// NewFSBackend returns a filesystem backend rooted at dir. The directory
// need not exist yet: WriteSpec creates the layout. Opening semantics are
// lazy — ReadSpec on a directory that holds no store reports
// fs.ErrNotExist.
func NewFSBackend(dir string) Backend { return &fsBackend{dir: dir} }

func (b *fsBackend) ReadSpec() (io.ReadCloser, error) {
	// Opening a store always starts here, so this is where a directory
	// gets its crash debris (orphaned .skl snapshots) collected.
	b.sweepOnce.Do(func() { b.sweepOrphans() })
	f, err := os.Open(filepath.Join(b.dir, "spec.xml"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func (b *fsBackend) WriteSpec(data []byte) error {
	if err := os.MkdirAll(filepath.Join(b.dir, "runs"), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeFileAtomic(filepath.Join(b.dir, "spec.xml"), data)
}

func (b *fsBackend) ReadRun(name string) (io.ReadCloser, error) {
	return b.openBlob(name, ".xml")
}

func (b *fsBackend) ReadLabels(name string) (io.ReadCloser, error) {
	return b.openBlob(name, ".skl")
}

func (b *fsBackend) openBlob(name, ext string) (io.ReadCloser, error) {
	f, err := os.Open(b.runPath(name, ext))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func (b *fsBackend) WriteRun(name string, runDoc, labels []byte) error {
	if err := os.MkdirAll(filepath.Join(b.dir, "runs"), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The read side of sweepMu spans the rename pair: between the .skl
	// and .xml renames this run is exactly the orphan shape the sweep
	// collects, and the sweep must not run until the .xml lands.
	b.sweepMu.RLock()
	defer b.sweepMu.RUnlock()
	if err := writeFileAtomic(b.runPath(name, ".skl"), labels); err != nil {
		return err
	}
	return writeFileAtomic(b.runPath(name, ".xml"), runDoc)
}

// DeleteRun removes the pair in the reverse of the write ordering: the
// .xml (what makes the run visible) is durably removed first, so at no
// point can a reader list or open a run whose labels are already gone —
// a crash between the two leaves only an invisible orphaned .skl, which
// the trailing sweep (or the next open) collects. The trailing sweep is
// a full runs/ scan (one ReadDir + stats, no fsync — small next to the
// two directory fsyncs the delete itself pays), throttled to once per
// second so a retention sweep deleting thousands of victims does one
// scan per second instead of one per victim; orphans are invisible
// garbage, so collecting them a little later costs nothing.
func (b *fsBackend) DeleteRun(name string) error {
	if err := b.deleteRunPair(name); err != nil {
		return err
	}
	now := time.Now().UnixNano()
	if last := b.lastSweepNs.Load(); now-last >= int64(time.Second) && b.lastSweepNs.CompareAndSwap(last, now) {
		b.sweepOrphans()
	}
	return nil
}

func (b *fsBackend) deleteRunPair(name string) error {
	b.sweepMu.RLock()
	defer b.sweepMu.RUnlock()
	if err := os.Remove(b.runPath(name, ".xml")); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	runsDir := filepath.Join(b.dir, "runs")
	if err := syncDir(runsDir); err != nil {
		return err
	}
	if err := os.Remove(b.runPath(name, ".skl")); err != nil && !errors.Is(err, fs.ErrNotExist) {
		// A missing .skl behind a present .xml should not happen, but the
		// run is already invisible — the delete succeeded.
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(runsDir)
}

// sweepOrphans removes label snapshots with no sibling .xml — the
// debris a crash between a write's (or delete's) two renames leaves
// behind. It holds the write side of sweepMu, so no in-process WriteRun
// can be mid-pair while it scans. Sweep failures are deliberately
// swallowed: an orphan is invisible garbage, never worth failing an
// open or a delete over.
func (b *fsBackend) sweepOrphans() {
	b.sweepMu.Lock()
	defer b.sweepMu.Unlock()
	runsDir := filepath.Join(b.dir, "runs")
	entries, err := os.ReadDir(runsDir)
	if err != nil {
		return // no runs directory, nothing to sweep
	}
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, ".") || !strings.HasSuffix(n, ".skl") {
			continue
		}
		xml := strings.TrimSuffix(n, ".skl") + ".xml"
		if _, err := os.Stat(filepath.Join(runsDir, xml)); errors.Is(err, fs.ErrNotExist) {
			os.Remove(filepath.Join(runsDir, n))
		}
	}
}

// Event logs live as runs/<name>.evlog, a suffix neither ListRuns
// (.xml) nor the orphan sweep (.skl) matches, so a live run's log can
// exist for as long as the stream does without being listed or swept.
// AppendEventLog is the streaming WAL write: open O_APPEND, write,
// fsync — the bytes are on stable storage before the batch is
// acknowledged. The containing directory is fsynced only when the
// append creates the log (file creation is a directory mutation;
// appends to an existing file are not), so steady-state appends cost
// one write + one file fsync.
func (b *fsBackend) AppendEventLog(name string, data []byte) error {
	if err := os.MkdirAll(filepath.Join(b.dir, "runs"), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := b.runPath(name, ".evlog")
	_, statErr := os.Stat(path)
	created := errors.Is(statErr, fs.ErrNotExist)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if created {
		return syncDir(filepath.Join(b.dir, "runs"))
	}
	return nil
}

func (b *fsBackend) ReadEventLog(name string) (io.ReadCloser, error) {
	return b.openBlob(name, ".evlog")
}

// ListEventLogs scans runs/ for .evlog files — the streams a crash may
// have left behind. A directory that was never written (no layout yet)
// simply holds no logs.
func (b *fsBackend) ListEventLogs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(b.dir, "runs"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if strings.HasSuffix(e.Name(), ".evlog") {
			out = append(out, strings.TrimSuffix(e.Name(), ".evlog"))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (b *fsBackend) DeleteEventLog(name string) error {
	if err := os.Remove(b.runPath(name, ".evlog")); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(filepath.Join(b.dir, "runs"))
}

// Meta blobs live as dot-prefixed files in the store's root directory
// (next to spec.xml), so they can never collide with run blobs under
// runs/ and never appear in ListRuns.
func (b *fsBackend) ReadMeta(name string) (io.ReadCloser, error) {
	if err := ValidMetaName(name); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(b.dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func (b *fsBackend) WriteMeta(name string, data []byte) error {
	if err := ValidMetaName(name); err != nil {
		return err
	}
	if err := os.MkdirAll(b.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeFileAtomic(filepath.Join(b.dir, name), data)
}

func (b *fsBackend) ListRuns() ([]string, error) {
	// The sweep also hooks the first listing: a shard set only reads the
	// spec from its first child, so for children 1..n this is the call
	// that collects their crash debris at startup (every shard ListRuns
	// fans out to all children; serving layers list before they sweep
	// retention).
	b.sweepOnce.Do(func() { b.sweepOrphans() })
	entries, err := os.ReadDir(filepath.Join(b.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		// Temp files are dot-prefixed, so they never collide with valid
		// run names even if one survives a crash.
		if strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if strings.HasSuffix(e.Name(), ".xml") {
			out = append(out, strings.TrimSuffix(e.Name(), ".xml"))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (b *fsBackend) Stat() Stats { return Stats{Kind: "fs", Path: b.dir} }

func (b *fsBackend) Close() error { return nil }

func (b *fsBackend) runPath(name, ext string) string {
	return filepath.Join(b.dir, "runs", name+ext)
}

// writeFileAtomic writes data to a dot-prefixed temp file next to path
// (so a crash can never leave a stray that collides with a valid run
// name — ValidRunName forbids the leading dot), fsyncs it, renames it
// into place, and fsyncs the directory so the rename itself is durable.
// A crash at any point leaves either the old content or the new content
// at path, never a truncated mix — and once the call returns, the new
// content survives power loss. The directory fsync is also what makes
// WriteRun's skl-before-xml ordering hold across a crash: the .skl
// rename is on stable storage before the .xml rename is attempted.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	// CreateTemp makes the file 0600; stored blobs keep the historical
	// os.Create permissions so stores stay shareable across processes
	// and users.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
