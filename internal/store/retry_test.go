package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"syscall"
	"testing"
	"time"
)

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{Transient(errors.New("disk hiccup")), true},
		{fmt.Errorf("wrapped: %w", Transient(errors.New("x"))), true},
		{fs.ErrNotExist, false},
		{fmt.Errorf("store: run %q: %w", "r", fs.ErrNotExist), false},
		{errors.New("corrupt snapshot"), false},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

// flakySpec fails ReadSpec with the scripted errors, then succeeds.
type flakySpec struct {
	Backend
	errs  []error
	calls int
}

func (f *flakySpec) ReadSpec() (io.ReadCloser, error) {
	f.calls++
	if len(f.errs) > 0 {
		err := f.errs[0]
		f.errs = f.errs[1:]
		return nil, err
	}
	return f.Backend.ReadSpec()
}

func TestWithRetryAbsorbsTransientStopsOnPermanent(t *testing.T) {
	mem := NewMemBackend()
	if err := mem.WriteSpec([]byte("<spec>")); err != nil {
		t.Fatal(err)
	}
	pol := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}

	// Two transient failures inside a 4-attempt budget: absorbed.
	f := &flakySpec{Backend: mem, errs: []error{Transient(errors.New("a")), Transient(errors.New("b"))}}
	rb := WithRetry(f, pol)
	if rc, err := rb.ReadSpec(); err != nil {
		t.Fatalf("ReadSpec = %v, want absorbed", err)
	} else {
		rc.Close()
	}
	if f.calls != 3 {
		t.Fatalf("inner calls = %d, want 3 (two failures + success)", f.calls)
	}
	if got := rb.Stat().Counters["retries"]; got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	// A permanent error returns immediately, no retries.
	perm := errors.New("corrupt")
	f = &flakySpec{Backend: mem, errs: []error{perm}}
	rb = WithRetry(f, pol)
	if _, err := rb.ReadSpec(); !errors.Is(err, perm) {
		t.Fatalf("ReadSpec = %v, want the permanent error", err)
	}
	if f.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (no retry on permanent)", f.calls)
	}

	// Budget exhaustion: the transient error surfaces and counts a give-up.
	f = &flakySpec{Backend: mem, errs: []error{
		Transient(errors.New("1")), Transient(errors.New("2")),
		Transient(errors.New("3")), Transient(errors.New("4")),
	}}
	rb = WithRetry(f, pol)
	if _, err := rb.ReadSpec(); !IsTransient(err) {
		t.Fatalf("ReadSpec after budget = %v, want transient", err)
	}
	if f.calls != 4 {
		t.Fatalf("inner calls = %d, want MaxAttempts=4", f.calls)
	}
	if got := rb.Stat().Counters["giveups"]; got != 1 {
		t.Fatalf("giveups = %d, want 1", got)
	}
}

func TestBackoffJitterAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	rb := WithRetry(nil, p).(*retryBackend)
	for attempt := 0; attempt < 20; attempt++ {
		d := rb.backoff(attempt)
		if d < 0 || d > p.MaxDelay {
			t.Fatalf("backoff(attempt=%d) = %v outside [0, %v]", attempt, d, p.MaxDelay)
		}
	}
	// Early attempts stay near the exponential ladder: attempt 1 doubles
	// the base, jittered down to at least half.
	if d := rb.backoff(1); d < 10*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("backoff(attempt=1) = %v, want in [10ms, 20ms]", d)
	}
	// Overflow-deep attempts clamp to the cap instead of going negative.
	if d := rb.backoff(62); d < p.MaxDelay/2 || d > p.MaxDelay {
		t.Fatalf("backoff(attempt=62) = %v, want in [%v, %v]", d, p.MaxDelay/2, p.MaxDelay)
	}
}
