package store

import "io"

// Backend is the blob-level storage substrate under a Store. It moves
// opaque documents — the specification XML, per-run XML, and per-run
// label snapshots — without interpreting them; all validation, labeling
// and snapshot binding happens in Store. Keeping the interface at the
// blob level is what lets one labeling/query layer sit on interchangeable
// substrates: a directory (fs), RAM (mem), a hash-routed fan-out over
// child backends (shard), or a future remote/object-store layout.
//
// # Contract
//
// All methods must be safe for concurrent use. WriteRun must be atomic
// with respect to run visibility: a half-written run must never become
// visible to ListRuns or readable through ReadRun/ReadLabels — a listed
// run always has both blobs intact, and the label snapshot must become
// readable no later than the run document (labels-before-XML ordering:
// a reader that observes the document can always read the labels).
// WriteRun on an existing name overwrites: the new pair replaces the
// old, each blob is replaced whole (never truncated or interleaved),
// and ListRuns keeps reporting the name exactly once. Overwrite is NOT
// atomic across the pair, though: a reader interleaving an overwrite
// may pair the old document with the new labels (or vice versa), which
// is why overwriting a name while other goroutines read or write that
// same name races (mirroring the Store contract) and must be serialized
// by the caller — the serving layer does so with a per-run-name
// reader/writer lock around its loads and ingests. Distinct names never
// interfere. Reading a run, spec or meta blob that was never written
// must return an error satisfying
// errors.Is(err, fs.ErrNotExist) — the serving layer relies on that to
// distinguish 404 from 500. ListRuns returns names sorted ascending and
// never includes meta blobs.
//
// DeleteRun is the mirror of WriteRun: it removes the pair with the
// document made unreadable no later than the labels (document-before-
// labels ordering, the reverse of the write side), so a reader that
// observes the document can still read the labels — a visible run never
// loses its label snapshot mid-delete. Deleting a name that is not
// stored returns fs.ErrNotExist (the server's 404), and deleting while
// other goroutines read or write that same name races like overwrite
// does: the caller serializes same-name delete/read/write; distinct
// names never interfere.
//
// Event logs are a third, independent per-run blob: an append-only
// record of the streaming events that built a live run, written batch
// by batch before each batch is acknowledged. AppendEventLog must make
// the appended bytes durable before returning (it is the streaming
// write-ahead log; crash recovery replays it), must never interleave
// two appends to the same name partially (same-name appends are
// caller-serialized like WriteRun, but a crashed append may leave a
// torn tail — readers must tolerate a final partial record), and must
// not retain the slice. ReadEventLog streams everything appended so
// far; a name never appended returns fs.ErrNotExist. DeleteEventLog
// removes the log; deleting a log that does not exist is a no-op (nil),
// because log deletion is cleanup — callers fire it after a finish or a
// run delete without caring whether streaming was ever used. Event logs
// are invisible to ListRuns and independent of the run/labels pair:
// writing or deleting one side never touches the other. ListEventLogs
// is their own listing — the names with a log present, sorted ascending
// — so a restarted serving layer can find interrupted streams without
// probing every possible name (eager stream recovery).
//
// # Failure model
//
// Errors are classified transient or permanent via ErrTransient (see
// IsTransient): a transient error means the same call may succeed if
// retried, a permanent one means it will not. Every backend must keep
// not-exist, validation and corruption errors unmarked (permanent), and
// may mark overload/flaky-substrate failures transient. Two operations
// carry a stricter rule because they are not idempotent: an
// AppendEventLog or DeleteRun error may only be transient when the
// operation had NO side effect (no bytes appended, nothing removed) —
// ambiguous failures stay permanent so a retry layer never duplicates
// appended bytes or mistakes a completed delete for a missing run. The
// retry wrapper (WithRetry) and the fault injector
// (internal/store/faultinject) are built on exactly this contract.
type Backend interface {
	// ReadSpec streams the stored specification document.
	ReadSpec() (io.ReadCloser, error)
	// WriteSpec persists the specification document, initializing the
	// backend's layout if needed. It overwrites any previous spec.
	WriteSpec(data []byte) error
	// ReadRun streams the named run's document.
	ReadRun(name string) (io.ReadCloser, error)
	// ReadLabels streams the named run's label snapshot.
	ReadLabels(name string) (io.ReadCloser, error)
	// WriteRun atomically persists a run document and its label snapshot
	// under name. Implementations must not retain the slices.
	WriteRun(name string, runDoc, labels []byte) error
	// DeleteRun removes the named run's document and label snapshot,
	// document first (see the contract above). Deleting a name that is
	// not stored returns an error satisfying errors.Is(err,
	// fs.ErrNotExist).
	DeleteRun(name string) error
	// ListRuns returns the stored run names, sorted ascending.
	ListRuns() ([]string, error)
	// AppendEventLog durably appends data to the named run's event log,
	// creating the log if needed (see the contract above).
	AppendEventLog(name string, data []byte) error
	// ReadEventLog streams the named run's event log. A log never
	// appended returns an error satisfying errors.Is(err, fs.ErrNotExist).
	ReadEventLog(name string) (io.ReadCloser, error)
	// DeleteEventLog removes the named run's event log; removing a
	// nonexistent log is a successful no-op.
	DeleteEventLog(name string) error
	// ListEventLogs returns the names that currently have an event log,
	// sorted ascending — the streams a crash may have interrupted. A
	// backend holding no logs returns an empty list, not an error.
	ListEventLogs() ([]string, error)
	// ReadMeta streams a small named metadata blob (e.g. the serving
	// layer's hot-session list). Meta names are dot-prefixed (see
	// ValidMetaName), which keeps them disjoint from run names on every
	// backend.
	ReadMeta(name string) (io.ReadCloser, error)
	// WriteMeta atomically persists a small metadata blob under name,
	// overwriting any previous value. Implementations must not retain
	// the slice. Sharded backends replicate meta to every child, like
	// the spec.
	WriteMeta(name string, data []byte) error
	// Stat cheaply describes the backend for monitoring (no I/O heavier
	// than constant-time bookkeeping).
	Stat() Stats
	// Close releases the backend's resources. The backend is unusable
	// afterwards.
	Close() error
}

// Stats describes a backend for monitoring endpoints (e.g. the query
// server's /healthz). Fields are populated where they are cheap: Path
// for fs backends, Runs for mem backends, Shards (one child entry each)
// for shard backends.
type Stats struct {
	// Kind identifies the backend implementation: "fs", "mem" or "shard".
	Kind string `json:"kind"`
	// Path is the fs backend's directory.
	Path string `json:"path,omitempty"`
	// Runs is the mem backend's resident run count.
	Runs int `json:"runs,omitempty"`
	// Shards holds one entry per child of a shard backend.
	Shards []Stats `json:"shards,omitempty"`
	// Wrapped is the inner backend's stats for wrapper backends (the
	// retry layer, the fault injector).
	Wrapped *Stats `json:"wrapped,omitempty"`
	// Counters holds wrapper-specific counters (retries performed,
	// faults injected), populated by wrapper backends.
	Counters map[string]int64 `json:"counters,omitempty"`
}
