package store

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"sync"
)

// memBackend keeps every blob in RAM. It serves three roles: the
// fastest substrate for tests and benchmarks, an ephemeral store for
// serving without touching disk (preload an fs store via "mem://<dir>"
// and every miss is a memory read), and the reference implementation of
// the Backend contract for the conformance suite.
type memBackend struct {
	mu     sync.RWMutex
	spec   []byte
	runs   map[string]memRun
	metas  map[string][]byte
	evlogs map[string][]byte
	closed bool
}

type memRun struct {
	doc, labels []byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() Backend {
	return &memBackend{
		runs:   make(map[string]memRun),
		metas:  make(map[string][]byte),
		evlogs: make(map[string][]byte),
	}
}

func (b *memBackend) ReadSpec() (io.ReadCloser, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.spec == nil {
		return nil, fmt.Errorf("store: mem spec: %w", fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(b.spec)), nil
}

func (b *memBackend) WriteSpec(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("store: mem backend is closed")
	}
	b.spec = append([]byte(nil), data...)
	return nil
}

func (b *memBackend) ReadRun(name string) (io.ReadCloser, error) {
	return b.readBlob(name, func(r memRun) []byte { return r.doc })
}

func (b *memBackend) ReadLabels(name string) (io.ReadCloser, error) {
	return b.readBlob(name, func(r memRun) []byte { return r.labels })
}

func (b *memBackend) readBlob(name string, pick func(memRun) []byte) (io.ReadCloser, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.runs[name]
	if !ok {
		return nil, fmt.Errorf("store: mem run %q: %w", name, fs.ErrNotExist)
	}
	// Stored blobs are never mutated after WriteRun, so readers can share
	// the slice without copying.
	return io.NopCloser(bytes.NewReader(pick(r))), nil
}

func (b *memBackend) WriteRun(name string, runDoc, labels []byte) error {
	// Copy both blobs before taking the lock: the caller may reuse its
	// buffers, and the map swap below is what makes the write atomic —
	// readers see the old pair or the new pair, never a mix.
	r := memRun{
		doc:    append([]byte(nil), runDoc...),
		labels: append([]byte(nil), labels...),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("store: mem backend is closed")
	}
	b.runs[name] = r
	return nil
}

// DeleteRun removes the pair in one map delete — atomic by
// construction, the mirror of WriteRun's map swap: readers see the
// complete pair or neither blob, never a document without labels.
func (b *memBackend) DeleteRun(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("store: mem backend is closed")
	}
	if _, ok := b.runs[name]; !ok {
		return fmt.Errorf("store: mem run %q: %w", name, fs.ErrNotExist)
	}
	delete(b.runs, name)
	return nil
}

// Meta blobs live in their own map: dot-prefixed names are invalid run
// names, so metas and runs stay disjoint like the fs layout's root-dir
// files versus runs/.
func (b *memBackend) ReadMeta(name string) (io.ReadCloser, error) {
	if err := ValidMetaName(name); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.metas[name]
	if !ok {
		return nil, fmt.Errorf("store: mem meta %q: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

func (b *memBackend) WriteMeta(name string, data []byte) error {
	if err := ValidMetaName(name); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("store: mem backend is closed")
	}
	b.metas[name] = cp
	return nil
}

// Event logs live in their own map, independent of the run pair and
// invisible to ListRuns. Appends grow the stored slice under the write
// lock; readers capture the slice at its current length, and growth
// either reallocates or writes past that length, so a reader never
// observes bytes from an append that started after its ReadEventLog.
func (b *memBackend) AppendEventLog(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("store: mem backend is closed")
	}
	b.evlogs[name] = append(b.evlogs[name], data...)
	return nil
}

func (b *memBackend) ReadEventLog(name string) (io.ReadCloser, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	log, ok := b.evlogs[name]
	if !ok {
		return nil, fmt.Errorf("store: mem event log %q: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(log)), nil
}

func (b *memBackend) ListEventLogs() ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.evlogs))
	for name := range b.evlogs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func (b *memBackend) DeleteEventLog(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("store: mem backend is closed")
	}
	delete(b.evlogs, name)
	return nil
}

func (b *memBackend) ListRuns() ([]string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.runs))
	for name := range b.runs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func (b *memBackend) Stat() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return Stats{Kind: "mem", Runs: len(b.runs)}
}

func (b *memBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.spec = nil
	b.runs = make(map[string]memRun)
	b.metas = make(map[string][]byte)
	b.evlogs = make(map[string][]byte)
	return nil
}
