package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"syscall"
)

// ErrTransient marks a backend error as transient: the operation failed
// for a reason that may clear on its own (an overloaded disk, a flaky
// network hop to a remote tier, an injected test fault), so retrying the
// same call may succeed. It is the error-classification half of the
// failure model (the retry wrapper and the serving layer's circuit
// breaker are the policy half): backends wrap transient failures so
// errors.Is(err, ErrTransient) holds, and leave permanent conditions —
// a missing blob (fs.ErrNotExist), a closed backend, corrupt content —
// unmarked.
//
// The contract has one sharp edge, the append path: AppendEventLog is
// not idempotent, so a backend must only classify an append error as
// transient when it can guarantee NO bytes were appended — an ambiguous
// failure (error from write or fsync, where a partial tail may have
// landed) must stay unmarked, leaving it to the streaming layer's
// broken-session recovery instead of a blind retry that would duplicate
// events. The same rule applies to DeleteRun: transient means
// side-effect-free, so a retry observes the same pre-state. WriteRun,
// WriteSpec and WriteMeta are whole-blob overwrites and therefore
// always safe to retry, partial effects or not.
var ErrTransient = errors.New("transient storage error")

// Transient wraps err so IsTransient reports true for it (and for
// anything wrapping the result). A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err is a transient backend error worth
// retrying: explicitly marked with ErrTransient, or an OS-level
// condition that clears on its own (timeouts, interrupted or
// would-block syscalls — the classes a loaded filesystem or network
// mount surfaces). Not-exist, permission and corruption errors are
// permanent: retrying them is pure added latency.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false
	}
	return os.IsTimeout(err) ||
		errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN)
}
