package store

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy configures the retry wrapper's jittered exponential
// backoff. The zero value of any field picks its default, so
// RetryPolicy{MaxAttempts: 5} is a complete policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, the first
	// included. <= 0 defaults to 4; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. <= 0 defaults to 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff. <= 0 defaults to 250ms.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// WithRetry wraps a backend so every operation retries transient errors
// (IsTransient) with jittered exponential backoff, up to the policy's
// attempt budget. Permanent errors — not-exist, validation, corruption —
// return immediately, so a 404 never waits out a backoff ladder.
//
// The wrapper leans on the failure-model contract (see the Backend
// docs): a transient error guarantees the failed call had no side
// effect on non-idempotent operations (AppendEventLog, DeleteRun), and
// every other operation is a whole-blob read or overwrite, so replaying
// it is always safe. Retrying therefore never duplicates appended bytes
// and never converts one delete into two.
//
// A retried call that ultimately succeeds is invisible to the caller
// apart from latency; the retry and give-up counts are surfaced through
// Stat() for the serving layer's health endpoint.
func WithRetry(b Backend, p RetryPolicy) Backend {
	return &retryBackend{
		inner:  b,
		pol:    p.withDefaults(),
		jitter: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

type retryBackend struct {
	inner Backend
	pol   RetryPolicy

	// jitter decorrelates this wrapper's backoff ladder from every
	// other process retrying the same fault. An explicitly seeded
	// source instead of math/rand's global one keeps the repo's
	// seeded-randomness invariant (provlint seededrand) uniform; the
	// wall-clock seed is deliberate — backoff spread wants to differ
	// across processes, not replay.
	jitterMu sync.Mutex
	jitter   *rand.Rand // guarded by jitterMu (rand.Rand is not concurrency-safe)

	retries atomic.Int64 // individual retried calls (attempts beyond the first)
	giveups atomic.Int64 // operations that exhausted the attempt budget
}

// do runs op under the retry policy.
func (b *retryBackend) do(op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || !IsTransient(err) || attempt+1 >= b.pol.MaxAttempts {
			if err != nil && IsTransient(err) {
				b.giveups.Add(1)
			}
			return err
		}
		b.retries.Add(1)
		time.Sleep(b.backoff(attempt))
	}
}

// backoff returns the jittered delay before retry number attempt
// (0-based): BaseDelay doubled per attempt, capped at MaxDelay, then
// scaled by a uniform factor in [0.5, 1.0) so a herd of callers hitting
// the same fault spreads out instead of retrying in lockstep.
func (b *retryBackend) backoff(attempt int) time.Duration {
	d := b.pol.BaseDelay << uint(attempt)
	if d <= 0 || d > b.pol.MaxDelay {
		d = b.pol.MaxDelay
	}
	b.jitterMu.Lock()
	f := b.jitter.Float64()
	b.jitterMu.Unlock()
	return time.Duration((0.5 + f/2) * float64(d))
}

func (b *retryBackend) readBlob(open func() (io.ReadCloser, error)) (io.ReadCloser, error) {
	var rc io.ReadCloser
	err := b.do(func() error {
		var err error
		rc, err = open()
		return err
	})
	return rc, err
}

func (b *retryBackend) ReadSpec() (io.ReadCloser, error) {
	return b.readBlob(b.inner.ReadSpec)
}

func (b *retryBackend) WriteSpec(data []byte) error {
	return b.do(func() error { return b.inner.WriteSpec(data) })
}

func (b *retryBackend) ReadRun(name string) (io.ReadCloser, error) {
	return b.readBlob(func() (io.ReadCloser, error) { return b.inner.ReadRun(name) })
}

func (b *retryBackend) ReadLabels(name string) (io.ReadCloser, error) {
	return b.readBlob(func() (io.ReadCloser, error) { return b.inner.ReadLabels(name) })
}

func (b *retryBackend) WriteRun(name string, runDoc, labels []byte) error {
	return b.do(func() error { return b.inner.WriteRun(name, runDoc, labels) })
}

func (b *retryBackend) DeleteRun(name string) error {
	return b.do(func() error { return b.inner.DeleteRun(name) })
}

func (b *retryBackend) ListRuns() ([]string, error) {
	var names []string
	err := b.do(func() error {
		var err error
		names, err = b.inner.ListRuns()
		return err
	})
	return names, err
}

func (b *retryBackend) AppendEventLog(name string, data []byte) error {
	// Safe to retry by contract: a transient append error means no bytes
	// landed (ambiguous append failures are never marked transient).
	return b.do(func() error { return b.inner.AppendEventLog(name, data) })
}

func (b *retryBackend) ReadEventLog(name string) (io.ReadCloser, error) {
	return b.readBlob(func() (io.ReadCloser, error) { return b.inner.ReadEventLog(name) })
}

func (b *retryBackend) DeleteEventLog(name string) error {
	return b.do(func() error { return b.inner.DeleteEventLog(name) })
}

func (b *retryBackend) ListEventLogs() ([]string, error) {
	var names []string
	err := b.do(func() error {
		var err error
		names, err = b.inner.ListEventLogs()
		return err
	})
	return names, err
}

func (b *retryBackend) ReadMeta(name string) (io.ReadCloser, error) {
	return b.readBlob(func() (io.ReadCloser, error) { return b.inner.ReadMeta(name) })
}

func (b *retryBackend) WriteMeta(name string, data []byte) error {
	return b.do(func() error { return b.inner.WriteMeta(name, data) })
}

func (b *retryBackend) Stat() Stats {
	inner := b.inner.Stat()
	return Stats{
		Kind:    "retry",
		Wrapped: &inner,
		Counters: map[string]int64{
			"retries": b.retries.Load(),
			"giveups": b.giveups.Load(),
		},
	}
}

func (b *retryBackend) Close() error { return b.inner.Close() }
