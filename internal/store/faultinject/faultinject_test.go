package faultinject_test

import (
	"errors"
	"io"
	"io/fs"
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/backendtest"
	"repro/internal/store/faultinject"
)

// A fault injector with an empty plan must be invisible: the full
// backend conformance suite over a wrapped mem backend.
func TestZeroFaultConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) store.Backend {
		return faultinject.Wrap(store.NewMemBackend(), faultinject.Plan{})
	})
}

// And composed the way the chaos stack runs it — retry around fault
// around mem — still fully conformant at zero faults.
func TestRetryOverFaultConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) store.Backend {
		return store.WithRetry(
			faultinject.Wrap(store.NewMemBackend(), faultinject.Plan{}),
			store.RetryPolicy{})
	})
}

func readAll(t *testing.T, open func() (io.ReadCloser, error)) []byte {
	t.Helper()
	rc, err := open()
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInjectedErrorsAreTransientAndSideEffectFree(t *testing.T) {
	inner := store.NewMemBackend()
	fb := faultinject.Wrap(inner, faultinject.Plan{
		Default: faultinject.Rule{FailFirst: 1},
	})
	if err := fb.WriteSpec([]byte("<spec>")); !store.IsTransient(err) {
		t.Fatalf("first WriteSpec = %v, want transient", err)
	}
	if err := fb.WriteSpec([]byte("<spec>")); err != nil {
		t.Fatalf("second WriteSpec = %v", err)
	}

	// Injected append failure left no bytes behind.
	if err := fb.AppendEventLog("live", []byte("a\n")); !store.IsTransient(err) {
		t.Fatalf("first AppendEventLog = %v, want transient", err)
	}
	if _, err := inner.ReadEventLog("live"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("inner log exists after failed append: err=%v", err)
	}
	if err := fb.AppendEventLog("live", []byte("a\n")); err != nil {
		t.Fatalf("retried AppendEventLog = %v", err)
	}
	if got := readAll(t, func() (io.ReadCloser, error) { return inner.ReadEventLog("live") }); string(got) != "a\n" {
		t.Fatalf("log after retry = %q", got)
	}

	// Injected delete failure removed nothing. (WriteRun burns its own
	// FailFirst script first — the Default rule applies per op.)
	if err := fb.WriteRun("r", []byte("d"), []byte("l")); !store.IsTransient(err) {
		t.Fatalf("first WriteRun = %v, want transient", err)
	}
	if err := fb.WriteRun("r", []byte("d"), []byte("l")); err != nil {
		t.Fatal(err)
	}
	if err := fb.DeleteRun("r"); !store.IsTransient(err) {
		t.Fatalf("first DeleteRun = %v, want transient", err)
	}
	if _, err := inner.ReadRun("r"); err != nil {
		t.Fatalf("run vanished after failed delete: %v", err)
	}
	if err := fb.DeleteRun("r"); err != nil {
		t.Fatalf("retried DeleteRun = %v", err)
	}

	counts := fb.Injected()
	for _, op := range []faultinject.Op{faultinject.OpWriteSpec, faultinject.OpAppendEventLog, faultinject.OpDeleteRun} {
		if counts[op] == 0 {
			t.Fatalf("no injected fault counted for %s: %v", op, counts)
		}
	}
}

func TestTornAppendWritesPrefixAndIsNotTransient(t *testing.T) {
	inner := store.NewMemBackend()
	mustInit(t, inner)
	fb := faultinject.Wrap(inner, faultinject.Plan{
		Seed: 42,
		PerOp: map[faultinject.Op]faultinject.Rule{
			faultinject.OpAppendEventLog: {TornRate: 1},
		},
	})
	batch := []byte("event-1\nevent-2\nevent-3\n")
	err := fb.AppendEventLog("live", batch)
	if !errors.Is(err, faultinject.ErrTorn) {
		t.Fatalf("torn append error = %v, want ErrTorn", err)
	}
	if store.IsTransient(err) {
		t.Fatal("torn append classified transient; a blind retry would duplicate the prefix")
	}
	// The prefix is really there: a strict prefix of the batch, visible
	// to a re-read — exactly what crash recovery must cope with.
	var got []byte
	if rc, rerr := inner.ReadEventLog("live"); rerr == nil {
		got, rerr = io.ReadAll(rc)
		rc.Close()
		if rerr != nil {
			t.Fatal(rerr)
		}
	} else if !errors.Is(rerr, fs.ErrNotExist) {
		t.Fatal(rerr)
	}
	if len(got) >= len(batch) {
		t.Fatalf("torn append wrote %d bytes, want a strict prefix of %d", len(got), len(batch))
	}
	if !strings.HasPrefix(string(batch), string(got)) {
		t.Fatalf("torn tail %q is not a prefix of the batch", got)
	}
}

func TestPartialWriteRunKeepsOldDocNewLabels(t *testing.T) {
	inner := store.NewMemBackend()
	mustInit(t, inner)
	if err := inner.WriteRun("r", []byte("old-doc"), []byte("old-labels")); err != nil {
		t.Fatal(err)
	}
	fb := faultinject.Wrap(inner, faultinject.Plan{
		Seed: 7,
		PerOp: map[faultinject.Op]faultinject.Rule{
			faultinject.OpWriteRun: {PartialRate: 1},
		},
	})
	err := fb.WriteRun("r", []byte("new-doc"), []byte("new-labels"))
	if !store.IsTransient(err) {
		t.Fatalf("partial WriteRun = %v, want transient (a retry's overwrite heals it)", err)
	}
	if got := readAll(t, func() (io.ReadCloser, error) { return inner.ReadRun("r") }); string(got) != "old-doc" {
		t.Fatalf("document after partial write = %q, want the old document", got)
	}
	if got := readAll(t, func() (io.ReadCloser, error) { return inner.ReadLabels("r") }); string(got) != "new-labels" {
		t.Fatalf("labels after partial write = %q, want the new labels", got)
	}
	// The heal: a fault-free retry overwrites the whole pair.
	fb.SetPlan(faultinject.Plan{})
	if err := fb.WriteRun("r", []byte("new-doc"), []byte("new-labels")); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, func() (io.ReadCloser, error) { return inner.ReadRun("r") }); string(got) != "new-doc" {
		t.Fatalf("document after heal = %q", got)
	}

	// A partial write of a brand-new run writes nothing at all (there is
	// no old document to pair the labels with).
	fb.SetPlan(faultinject.Plan{PerOp: map[faultinject.Op]faultinject.Rule{
		faultinject.OpWriteRun: {PartialRate: 1},
	}})
	if err := fb.WriteRun("fresh", []byte("d"), []byte("l")); !store.IsTransient(err) {
		t.Fatalf("partial WriteRun(fresh) = %v, want transient", err)
	}
	if _, err := inner.ReadRun("fresh"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("fresh run materialized after failed partial write: err=%v", err)
	}
}

func TestDeterministicSeeding(t *testing.T) {
	// The same plan over the same call sequence injects the same faults.
	trace := func(seed int64) string {
		fb := faultinject.Wrap(store.NewMemBackend(), faultinject.Plan{
			Seed:    seed,
			Default: faultinject.Rule{ErrRate: 0.5},
		})
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if err := fb.WriteMeta(".m", []byte("x")); err != nil {
				sb.WriteByte('F')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	if trace(3) != trace(3) {
		t.Fatal("same seed produced different fault sequences")
	}
	if trace(3) == trace(4) {
		t.Fatal("different seeds produced identical fault sequences (rate 0.5, 64 trials)")
	}
	if !strings.Contains(trace(3), "F") || !strings.Contains(trace(3), ".") {
		t.Fatalf("rate 0.5 trace has no mix of faults and successes: %q", trace(3))
	}
}

func TestFailFirstScriptAndSetPlanRestart(t *testing.T) {
	fb := faultinject.Wrap(store.NewMemBackend(), faultinject.Plan{
		Default: faultinject.Rule{FailFirst: 2},
	})
	for i := 0; i < 2; i++ {
		if err := fb.WriteSpec([]byte("s")); !store.IsTransient(err) {
			t.Fatalf("call %d = %v, want transient", i, err)
		}
	}
	if err := fb.WriteSpec([]byte("s")); err != nil {
		t.Fatalf("call after script = %v, want success", err)
	}
	// FailFirst counts per op, not globally: ListRuns runs its own
	// 2-failure script even though WriteSpec already burned through one.
	for i := 0; i < 2; i++ {
		if _, err := fb.ListRuns(); !store.IsTransient(err) {
			t.Fatalf("ListRuns call %d = %v, want transient", i, err)
		}
	}
	if _, err := fb.ListRuns(); err != nil {
		t.Fatalf("ListRuns after its script = %v", err)
	}
	// SetPlan restarts the script.
	fb.SetPlan(faultinject.Plan{Default: faultinject.Rule{FailFirst: 1}})
	if err := fb.WriteSpec([]byte("s")); !store.IsTransient(err) {
		t.Fatalf("WriteSpec after SetPlan = %v, want transient (script restarted)", err)
	}
	if err := fb.WriteSpec([]byte("s")); err != nil {
		t.Fatalf("second WriteSpec after SetPlan = %v", err)
	}
}

// WithRetry over fault-injection: the whole point of the pairing — a
// fail-twice script is fully absorbed by a 4-attempt retry budget, and
// a fail-forever plan surfaces a transient error after the budget.
func TestRetryAbsorbsScriptedFaults(t *testing.T) {
	fb := faultinject.Wrap(store.NewMemBackend(), faultinject.Plan{
		Default: faultinject.Rule{FailFirst: 2},
	})
	rb := store.WithRetry(fb, store.RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 1})
	if err := rb.WriteSpec([]byte("<spec>")); err != nil {
		t.Fatalf("WriteSpec through retry = %v, want absorbed", err)
	}
	st := rb.Stat()
	if st.Kind != "retry" || st.Counters["retries"] < 2 {
		t.Fatalf("retry stats = %+v, want >=2 retries", st)
	}
	if st.Wrapped == nil || st.Wrapped.Kind != "fault" {
		t.Fatalf("retry stats do not wrap fault stats: %+v", st)
	}

	fb.SetPlan(faultinject.Plan{Default: faultinject.Rule{ErrRate: 1}})
	err := rb.WriteSpec([]byte("<spec>"))
	if !store.IsTransient(err) {
		t.Fatalf("WriteSpec under 100%% faults = %v, want transient give-up", err)
	}
	if got := rb.Stat().Counters["giveups"]; got != 1 {
		t.Fatalf("giveups = %d, want 1", got)
	}
}

func TestParsePlan(t *testing.T) {
	plan, err := faultinject.ParsePlan("rate=0.25,seed=9,latency=3ms,failfirst=2")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 9 || plan.Default.ErrRate != 0.25 || plan.Default.FailFirst != 2 || plan.Default.Latency.Milliseconds() != 3 {
		t.Fatalf("ParsePlan = %+v", plan)
	}
	plan, err = faultinject.ParsePlan("reads=0.5,writes=0.125,torn=0.75,partial=0.0625")
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range faultinject.ReadOps {
		if plan.PerOp[op].ErrRate != 0.5 {
			t.Fatalf("read op %s rate = %v, want 0.5", op, plan.PerOp[op].ErrRate)
		}
	}
	if plan.PerOp[faultinject.OpWriteRun].ErrRate != 0.125 || plan.PerOp[faultinject.OpWriteRun].PartialRate != 0.0625 {
		t.Fatalf("WriteRun rule = %+v", plan.PerOp[faultinject.OpWriteRun])
	}
	if plan.PerOp[faultinject.OpAppendEventLog].TornRate != 0.75 || plan.PerOp[faultinject.OpAppendEventLog].ErrRate != 0.125 {
		t.Fatalf("AppendEventLog rule = %+v", plan.PerOp[faultinject.OpAppendEventLog])
	}
	if _, err := faultinject.ParsePlan("rate=2"); err == nil {
		t.Fatal("ParsePlan accepted rate=2")
	}
	if _, err := faultinject.ParsePlan("bogus=1"); err == nil {
		t.Fatal("ParsePlan accepted an unknown key")
	}
	if _, err := faultinject.ParsePlan("rate"); err == nil {
		t.Fatal("ParsePlan accepted a bare key")
	}
	if plan, err := faultinject.ParsePlan(""); err != nil || plan.Default != (faultinject.Rule{}) {
		t.Fatalf("ParsePlan(\"\") = %+v, %v; want a no-fault plan", plan, err)
	}
}

// fault:// composes through store.OpenURL around a real fs store.
func TestFaultURLOverFS(t *testing.T) {
	dir := t.TempDir()
	if st, err := store.Create(dir, spec.PaperSpec(), "paper"); err != nil {
		t.Fatal(err)
	} else {
		st.Close()
	}

	st, err := store.OpenURL("fault://seed=5/" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bst := st.Backend().Stat()
	if bst.Kind != "fault" || bst.Wrapped == nil || bst.Wrapped.Kind != "fs" {
		t.Fatalf("backend stats = %+v, want fault over fs", bst)
	}

	// failfirst=1 through the URL: the very first backend call (the
	// spec read during open) fails, so OpenURL itself reports transient.
	if _, err := store.OpenURL("fault://failfirst=1/fs://" + dir); !store.IsTransient(err) {
		t.Fatalf("OpenURL with failfirst=1 = %v, want transient spec-read failure", err)
	}

	for _, bad := range []string{"fault://", "fault://rate=0.5", "fault://rate=bogus/" + dir} {
		if _, err := store.OpenURL(bad); err == nil {
			t.Fatalf("OpenURL(%q) succeeded, want error", bad)
		}
	}
}

func mustInit(t *testing.T, b store.Backend) {
	t.Helper()
	if err := b.WriteSpec([]byte("<spec>")); err != nil {
		t.Fatal(err)
	}
}
