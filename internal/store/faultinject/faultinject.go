// Package faultinject wraps a store.Backend with a programmable fault
// plan, so the layers above can be tested against the storage failures
// that are hard to produce on demand: transient I/O errors, slow disks,
// torn event-log tails, and runs whose label write landed but whose
// document write did not.
//
// The wrapper composes around any backend — fs, mem, shard, or the
// retry wrapper itself — either in-process via Wrap, or from a store
// URL once this package is imported:
//
//	fault://rate=0.05,seed=7/mem://dir
//	fault://torn=0.1,latency=2ms/fs:///var/prov
//	fault://reads=0.2,writes=0.05,seed=1/shard://a,b
//
// Everything between "fault://" and the first "/" is a comma-separated
// option list (see ParsePlan); the remainder is the inner store URL,
// opened through store.OpenBackendURL.
//
// Injected faults obey the store failure-model contract, which is what
// makes the injector a valid stand-in for a real flaky disk rather
// than an arbitrary error generator:
//
//   - Plain injected errors are transient (store.IsTransient) and fire
//     before the inner call, so a failed non-idempotent operation
//     (AppendEventLog, DeleteRun) had no side effect and is safe to
//     retry.
//   - A torn append really does write a prefix of the batch to the
//     inner backend and returns ErrTorn, which is NOT transient: the
//     bytes are on disk, so a blind retry would duplicate events. The
//     live layer's broken-session → Recover path owns this case.
//   - A partial WriteRun overwrites the labels while keeping the old
//     document (the labels-before-XML write order interrupted between
//     the two steps) and returns a transient error: the operation is a
//     whole-pair overwrite, so a retry heals it.
//
// All randomness comes from one seeded source, so a failing chaos run
// reproduces from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
)

// ErrInjected is the base of every plain injected error. Callers see it
// wrapped by store.ErrTransient, so store.IsTransient reports true.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrTorn is returned by a torn AppendEventLog. A prefix of the batch
// WAS written, so the error is deliberately not transient: retrying the
// append verbatim would duplicate the prefix. Recovery belongs to the
// event-log reader, which tolerates torn tails.
var ErrTorn = errors.New("faultinject: torn append (prefix written)")

// Op names one Backend operation for per-op rules and counters.
type Op string

// The injectable operations — one per Backend method except Stat and
// Close, which never fail.
const (
	OpReadSpec       Op = "ReadSpec"
	OpWriteSpec      Op = "WriteSpec"
	OpReadRun        Op = "ReadRun"
	OpReadLabels     Op = "ReadLabels"
	OpWriteRun       Op = "WriteRun"
	OpDeleteRun      Op = "DeleteRun"
	OpListRuns       Op = "ListRuns"
	OpAppendEventLog Op = "AppendEventLog"
	OpReadEventLog   Op = "ReadEventLog"
	OpDeleteEventLog Op = "DeleteEventLog"
	OpListEventLogs  Op = "ListEventLogs"
	OpReadMeta       Op = "ReadMeta"
	OpWriteMeta      Op = "WriteMeta"
)

// ReadOps lists the operations that only observe the store; WriteOps
// the ones that mutate it. ParsePlan's reads=/writes= keys target these
// two sets.
var (
	ReadOps  = []Op{OpReadSpec, OpReadRun, OpReadLabels, OpListRuns, OpReadEventLog, OpListEventLogs, OpReadMeta}
	WriteOps = []Op{OpWriteSpec, OpWriteRun, OpDeleteRun, OpAppendEventLog, OpDeleteEventLog, OpWriteMeta}
)

// Rule says how one operation (or the default for all of them)
// misbehaves. The zero Rule injects nothing.
type Rule struct {
	// ErrRate is the probability in [0,1] that a call fails with a
	// transient injected error before reaching the inner backend.
	ErrRate float64
	// TornRate (AppendEventLog only) is the probability that a call
	// writes a strict prefix of the batch and returns ErrTorn.
	TornRate float64
	// PartialRate (WriteRun only) is the probability that a call
	// overwrites the labels, keeps the old document, and returns a
	// transient error — the labels-before-XML order interrupted.
	PartialRate float64
	// FailFirst fails the first N calls of the operation with a
	// transient error, then lets calls through to the probabilistic
	// rates. Deterministic, for scripting "down then back" scenarios.
	FailFirst int
	// Latency is added to every call of the operation, fault or not.
	Latency time.Duration
}

// Plan is a complete fault configuration: a default rule, per-op
// overrides (an op present in PerOp uses that rule INSTEAD of Default,
// zero fields included), and the seed feeding all randomness.
type Plan struct {
	Seed    int64
	Default Rule
	PerOp   map[Op]Rule
}

func (p Plan) rule(op Op) Rule {
	if r, ok := p.PerOp[op]; ok {
		return r
	}
	return p.Default
}

// Backend is the fault-injecting wrapper. Besides store.Backend it
// exposes SetPlan for runtime control (a chaos test turns faults on,
// tortures the system, turns them off, then differentially verifies)
// and Injected for per-op fault counts.
type Backend struct {
	inner store.Backend

	mu       sync.Mutex
	plan     Plan         // guarded by mu
	rng      *rand.Rand   // guarded by mu; reseeded by SetPlan for reproducible fault sequences
	calls    map[Op]int   // guarded by mu; calls since the last SetPlan, drives FailFirst
	injected map[Op]int64 // guarded by mu; injected faults per op, survives SetPlan
}

// Wrap returns inner behind a fault injector following plan.
func Wrap(inner store.Backend, plan Plan) *Backend {
	b := &Backend{inner: inner, injected: make(map[Op]int64)}
	b.SetPlan(plan)
	return b
}

// SetPlan replaces the fault plan atomically: the random source is
// re-seeded from plan.Seed and FailFirst scripts restart, so the same
// plan on the same call sequence reproduces the same faults. Fault
// counters are cumulative across plans. SetPlan(Plan{}) turns all
// faults off.
func (b *Backend) SetPlan(plan Plan) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.plan = plan
	b.rng = rand.New(rand.NewSource(plan.Seed))
	b.calls = make(map[Op]int)
}

// Injected returns a snapshot of the per-op injected-fault counts.
func (b *Backend) Injected() map[Op]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[Op]int64, len(b.injected))
	for op, n := range b.injected {
		out[op] = n
	}
	return out
}

// faultKind is what decide picked for one call.
type faultKind int

const (
	faultNone    faultKind = iota
	faultErr               // transient error, inner not called
	faultTorn              // AppendEventLog: prefix written, ErrTorn
	faultPartial           // WriteRun: labels land, document does not
)

// decide rolls the dice for one call: the latency to add and the fault
// to inject, plus the prefix fraction for a torn append. All state
// (rule lookup, FailFirst counting, the shared rng) lives under the
// mutex; the sleep itself happens in the caller, outside it.
func (b *Backend) decide(op Op) (faultKind, float64, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := b.plan.rule(op)
	n := b.calls[op]
	b.calls[op] = n + 1
	kind := faultNone
	frac := 0.0
	switch {
	case n < r.FailFirst:
		kind = faultErr
	case op == OpAppendEventLog && r.TornRate > 0 && b.rng.Float64() < r.TornRate:
		kind, frac = faultTorn, b.rng.Float64()
	case op == OpWriteRun && r.PartialRate > 0 && b.rng.Float64() < r.PartialRate:
		kind = faultPartial
	case r.ErrRate > 0 && b.rng.Float64() < r.ErrRate:
		kind = faultErr
	}
	if kind != faultNone {
		b.injected[op]++
	}
	return kind, frac, r.Latency
}

// injectErr is the transient error a faultErr decision surfaces.
func injectErr(op Op) error {
	return store.Transient(fmt.Errorf("%w: %s", ErrInjected, op))
}

// enter applies latency and the plain-error fault for ops that have no
// specialized fault mode. It returns a non-nil error when the call must
// fail without reaching the inner backend.
func (b *Backend) enter(op Op) error {
	kind, _, latency := b.decide(op)
	if latency > 0 {
		time.Sleep(latency)
	}
	if kind != faultNone {
		return injectErr(op)
	}
	return nil
}

func (b *Backend) readBlob(op Op, open func() (io.ReadCloser, error)) (io.ReadCloser, error) {
	if err := b.enter(op); err != nil {
		return nil, err
	}
	return open()
}

func (b *Backend) ReadSpec() (io.ReadCloser, error) {
	return b.readBlob(OpReadSpec, b.inner.ReadSpec)
}

func (b *Backend) WriteSpec(data []byte) error {
	if err := b.enter(OpWriteSpec); err != nil {
		return err
	}
	return b.inner.WriteSpec(data)
}

func (b *Backend) ReadRun(name string) (io.ReadCloser, error) {
	return b.readBlob(OpReadRun, func() (io.ReadCloser, error) { return b.inner.ReadRun(name) })
}

func (b *Backend) ReadLabels(name string) (io.ReadCloser, error) {
	return b.readBlob(OpReadLabels, func() (io.ReadCloser, error) { return b.inner.ReadLabels(name) })
}

// WriteRun injects either a plain transient error (nothing written) or
// a partial write: the new labels land next to the OLD document — the
// observable state of the labels-before-XML write order dying between
// its two steps — and a transient error reports the operation failed.
// For a run that does not exist yet there is no old document to keep,
// so the partial degrades to a plain error; either way a retry's full
// overwrite heals the run.
func (b *Backend) WriteRun(name string, runDoc, labels []byte) error {
	kind, _, latency := b.decide(OpWriteRun)
	if latency > 0 {
		time.Sleep(latency)
	}
	switch kind {
	case faultNone:
		return b.inner.WriteRun(name, runDoc, labels)
	case faultPartial:
		if old, err := readAll(b.inner.ReadRun(name)); err == nil {
			if werr := b.inner.WriteRun(name, old, labels); werr != nil {
				return werr
			}
		}
		return store.Transient(fmt.Errorf("%w: WriteRun partial (labels written, document lost)", ErrInjected))
	default:
		return injectErr(OpWriteRun)
	}
}

func (b *Backend) DeleteRun(name string) error {
	if err := b.enter(OpDeleteRun); err != nil {
		return err
	}
	return b.inner.DeleteRun(name)
}

func (b *Backend) ListRuns() ([]string, error) {
	if err := b.enter(OpListRuns); err != nil {
		return nil, err
	}
	return b.inner.ListRuns()
}

// AppendEventLog injects either a plain transient error (no bytes
// written — safe to retry) or a torn append: a strict prefix of the
// batch reaches the inner backend and ErrTorn comes back. Torn is not
// transient by design; the caller must re-read the log to learn what
// landed, exactly as after a real crash mid-append.
func (b *Backend) AppendEventLog(name string, data []byte) error {
	kind, frac, latency := b.decide(OpAppendEventLog)
	if latency > 0 {
		time.Sleep(latency)
	}
	switch kind {
	case faultNone:
		return b.inner.AppendEventLog(name, data)
	case faultTorn:
		cut := int(frac * float64(len(data)))
		if cut >= len(data) && len(data) > 0 {
			cut = len(data) - 1
		}
		if cut > 0 {
			if err := b.inner.AppendEventLog(name, data[:cut]); err != nil {
				return err
			}
		}
		return fmt.Errorf("%w: %d of %d bytes", ErrTorn, cut, len(data))
	default:
		return injectErr(OpAppendEventLog)
	}
}

func (b *Backend) ReadEventLog(name string) (io.ReadCloser, error) {
	return b.readBlob(OpReadEventLog, func() (io.ReadCloser, error) { return b.inner.ReadEventLog(name) })
}

func (b *Backend) DeleteEventLog(name string) error {
	if err := b.enter(OpDeleteEventLog); err != nil {
		return err
	}
	return b.inner.DeleteEventLog(name)
}

func (b *Backend) ListEventLogs() ([]string, error) {
	if err := b.enter(OpListEventLogs); err != nil {
		return nil, err
	}
	return b.inner.ListEventLogs()
}

func (b *Backend) ReadMeta(name string) (io.ReadCloser, error) {
	return b.readBlob(OpReadMeta, func() (io.ReadCloser, error) { return b.inner.ReadMeta(name) })
}

func (b *Backend) WriteMeta(name string, data []byte) error {
	if err := b.enter(OpWriteMeta); err != nil {
		return err
	}
	return b.inner.WriteMeta(name, data)
}

func (b *Backend) Stat() store.Stats {
	inner := b.inner.Stat()
	b.mu.Lock()
	counters := make(map[string]int64, len(b.injected)+1)
	var total int64
	for op, n := range b.injected {
		counters["injected_"+string(op)] = n
		total += n
	}
	counters["injected_total"] = total
	b.mu.Unlock()
	return store.Stats{Kind: "fault", Wrapped: &inner, Counters: counters}
}

func (b *Backend) Close() error { return b.inner.Close() }

func readAll(rc io.ReadCloser, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

// ParsePlan parses the option segment of a fault:// URL: comma-
// separated key=value pairs, all optional.
//
//	rate=0.05       default transient-error rate for every op
//	reads=0.1       transient-error rate for read ops (overrides rate)
//	writes=0.02     transient-error rate for write ops (overrides rate)
//	torn=0.1        torn-tail rate for AppendEventLog
//	partial=0.1     partial-write rate for WriteRun
//	failfirst=3     every op fails its first 3 calls, then recovers
//	latency=2ms     added to every call (Go duration syntax)
//	seed=7          random seed (default 1)
//
// An empty string is a valid no-fault plan.
func ParsePlan(opts string) (Plan, error) {
	plan := Plan{Seed: 1}
	if opts == "" {
		return plan, nil
	}
	var reads, writes, torn, partial float64
	var haveReads, haveWrites bool
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faultinject: option %q is not key=value", kv)
		}
		var err error
		switch key {
		case "rate":
			plan.Default.ErrRate, err = parseRate(val)
		case "reads":
			reads, err = parseRate(val)
			haveReads = true
		case "writes":
			writes, err = parseRate(val)
			haveWrites = true
		case "torn":
			torn, err = parseRate(val)
		case "partial":
			partial, err = parseRate(val)
		case "failfirst":
			plan.Default.FailFirst, err = strconv.Atoi(val)
			if err == nil && plan.Default.FailFirst < 0 {
				err = fmt.Errorf("negative")
			}
		case "latency":
			plan.Default.Latency, err = time.ParseDuration(val)
		case "seed":
			plan.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return Plan{}, fmt.Errorf("faultinject: unknown option %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faultinject: option %s=%q: %w", key, val, err)
		}
	}
	override := func(ops []Op, rate float64) {
		if plan.PerOp == nil {
			plan.PerOp = make(map[Op]Rule)
		}
		for _, op := range ops {
			r := plan.Default
			r.ErrRate = rate
			plan.PerOp[op] = r
		}
	}
	if haveReads {
		override(ReadOps, reads)
	}
	if haveWrites {
		override(WriteOps, writes)
	}
	if torn > 0 {
		r := plan.rule(OpAppendEventLog)
		r.TornRate = torn
		if plan.PerOp == nil {
			plan.PerOp = make(map[Op]Rule)
		}
		plan.PerOp[OpAppendEventLog] = r
	}
	if partial > 0 {
		r := plan.rule(OpWriteRun)
		r.PartialRate = partial
		if plan.PerOp == nil {
			plan.PerOp = make(map[Op]Rule)
		}
		plan.PerOp[OpWriteRun] = r
	}
	return plan, nil
}

func parseRate(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate outside [0,1]")
	}
	return f, nil
}

// init registers the fault:// scheme: everything up to the first "/" is
// the ParsePlan option list, the rest is the inner store URL.
func init() {
	store.RegisterURLScheme("fault", func(rest string) (store.Backend, error) {
		opts, innerURL, ok := strings.Cut(rest, "/")
		if !ok || innerURL == "" {
			return nil, fmt.Errorf("faultinject: fault:// needs an inner store URL: fault://<opts>/<url>")
		}
		plan, err := ParsePlan(opts)
		if err != nil {
			return nil, err
		}
		inner, err := store.OpenBackendURL(innerURL)
		if err != nil {
			return nil, err
		}
		return Wrap(inner, plan), nil
	})
}

// Ops returns every injectable op sorted by name — handy for tests
// that sweep the full surface.
func Ops() []Op {
	ops := append(append([]Op(nil), ReadOps...), WriteOps...)
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}
