package store_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

func TestValidRunName(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"r1", true},
		{"run-2024.01_final", true},
		{"A", true},
		{"0", true},
		{"a..b", true},
		{"r.", true},
		{"", false},
		{".", false},
		{"..", false},
		{"...", false},     // leading dot: reserved for fs temp files
		{".hidden", false}, // ditto — would be invisible to fs ListRuns
		{"a/b", false},
		{`a\b`, false},
		{" r1", false},
		{"r1 ", false},
		{"r 1", false},
		{"r1\n", false},
		{"r\x001", false},
		{"r\tb", false},
		{"run:1", false},
		{"run*", false},
		{"ünïcode", false},
	}
	for _, c := range cases {
		err := store.ValidRunName(c.name)
		if c.ok && err != nil {
			t.Errorf("ValidRunName(%q) = %v, want nil", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ValidRunName(%q) accepted", c.name)
		}
	}
}

// TestFSWriteRunAtomic pins the crash-safety mechanics of the fs
// backend: writes go through temp files that Runs() never lists, nothing
// stray survives a successful write, and the label snapshot is in place
// for every run the listing makes visible.
func TestFSWriteRunAtomic(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(3)), 100)
	if err := st.PutRun("r1", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("runs dir = %v, want exactly r1.xml and r1.skl", names)
	}
	// A leftover temp file from a crashed write must stay invisible.
	for _, stray := range []string{".r2.xml.tmp-123", ".r2.skl.tmp-123"} {
		if err := os.WriteFile(filepath.Join(dir, "runs", stray), []byte("truncated"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := st.Runs()
	if err != nil || len(runs) != 1 || runs[0] != "r1" {
		t.Fatalf("Runs() with stray temp files = %v, %v", runs, err)
	}
	// Every visible run must have its snapshot on disk (skl is renamed
	// into place before the xml that makes the run visible).
	if _, err := os.Stat(filepath.Join(dir, "runs", "r1.skl")); err != nil {
		t.Fatalf("visible run missing snapshot: %v", err)
	}
	if _, err := st.OpenRun("r1", label.TCM{}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStoreRoundTrip drives the full Store logic over a sharded
// backend: runs spread across children, every child is a valid store of
// its own, and reopening via both OpenSharded and OpenURL answers
// queries from stored labels.
func TestShardedStoreRoundTrip(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	s := spec.PaperSpec()
	st, err := store.CreateSharded(dirs, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	runs := make(map[string]*run.Run, len(names))
	for _, name := range names {
		r, _ := run.GenerateSized(s, rng, 120)
		if err := st.PutRun(name, r, nil, label.TCM{}); err != nil {
			t.Fatalf("PutRun(%s): %v", name, err)
		}
		runs[name] = r
	}
	got, err := st.Runs()
	if err != nil || len(got) != len(names) {
		t.Fatalf("Runs() = %v, %v", got, err)
	}
	// FNV routing should put at least one run in more than one shard, and
	// each child must be an openable store in its own right.
	populated := 0
	for _, d := range dirs {
		child, err := store.Open(d)
		if err != nil {
			t.Fatalf("child %s not independently openable: %v", d, err)
		}
		childRuns, err := child.Runs()
		if err != nil {
			t.Fatal(err)
		}
		if len(childRuns) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("10 runs landed in %d of 3 shards; routing is degenerate", populated)
	}
	for _, reopen := range []func() (*store.Store, error){
		func() (*store.Store, error) { return store.OpenSharded(dirs) },
		func() (*store.Store, error) { return store.OpenURL("shard://" + strings.Join(dirs, ",")) },
	} {
		st2, err := reopen()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			sess, err := st2.OpenRun(name, label.TCM{})
			if err != nil {
				t.Fatalf("OpenRun(%s): %v", name, err)
			}
			if sess.Run.NumVertices() != runs[name].NumVertices() {
				t.Fatalf("%s: stored run size changed", name)
			}
		}
		// Spot-check answers on one run against direct search.
		sess, err := st2.OpenRun("a", label.TCM{})
		if err != nil {
			t.Fatal(err)
		}
		searcher := dag.NewSearcher(sess.Run.Graph)
		n := sess.Run.NumVertices()
		for q := 0; q < 300; q++ {
			u, v := dag.VertexID(rng.Intn(n)), dag.VertexID(rng.Intn(n))
			if sess.Labels.Reachable(u, v) != searcher.ReachableBFS(u, v) {
				t.Fatalf("sharded store labels wrong at (%d,%d)", u, v)
			}
		}
	}
}

func TestOpenURL(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(4)), 100)
	if err := st.PutRun("r1", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}

	for _, url := range []string{dir, "fs://" + dir, "mem://" + dir} {
		st2, err := store.OpenURL(url)
		if err != nil {
			t.Fatalf("OpenURL(%q): %v", url, err)
		}
		if st2.SpecName() != "paper" {
			t.Fatalf("OpenURL(%q) spec = %q", url, st2.SpecName())
		}
		sess, err := st2.OpenRun("r1", label.TCM{})
		if err != nil || sess.Run.NumVertices() != r.NumVertices() {
			t.Fatalf("OpenURL(%q).OpenRun = %v", url, err)
		}
	}

	// The mem:// form is a RAM copy: writes there must not touch disk.
	memStore, err := store.OpenURL("mem://" + dir)
	if err != nil {
		t.Fatal(err)
	}
	if kind := memStore.Stat().Kind; kind != "mem" {
		t.Fatalf("mem:// backend kind = %q", kind)
	}
	r2, _ := run.GenerateSized(s, rand.New(rand.NewSource(5)), 80)
	if err := memStore.PutRun("ephemeral", r2, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	diskRuns, err := st.Runs()
	if err != nil || len(diskRuns) != 1 {
		t.Fatalf("mem:// write leaked to disk: %v, %v", diskRuns, err)
	}

	for _, bad := range []string{"", "mem://", "fs://", "shard://", "s3://bucket"} {
		if _, err := store.OpenURL(bad); err == nil {
			t.Errorf("OpenURL(%q) succeeded", bad)
		}
	}
}

// TestCopyBackend round-trips a store through Copy in both directions:
// fs -> mem (warm load) and mem -> fs (snapshot to disk).
func TestCopyBackend(t *testing.T) {
	s := spec.PaperSpec()
	st, err := store.NewMem(s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for _, name := range []string{"r1", "r2"} {
		r, _ := run.GenerateSized(s, rng, 90)
		if err := st.PutRun(name, r, nil, label.TCM{}); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := store.Copy(store.NewFSBackend(dir), st.Backend()); err != nil {
		t.Fatal(err)
	}
	onDisk, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := onDisk.Runs()
	if err != nil || len(names) != 2 {
		t.Fatalf("copied store Runs() = %v, %v", names, err)
	}
	if _, err := onDisk.OpenRun("r2", label.BFS{}); err != nil {
		t.Fatalf("querying copied store: %v", err)
	}
}
