package store_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// TestConcurrentStoreAccess enforces the package's concurrency contract
// under -race: one Store is hit by many goroutines that concurrently
// list runs, open sessions (including the same run repeatedly), and
// hammer reachability and data queries on a shared session.
func TestConcurrentStoreAccess(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	runNames := []string{"r1", "r2", "r3"}
	for _, name := range runNames {
		r, _ := run.GenerateSized(s, rng, 300)
		if err := st.PutRun(name, r, nil, label.TCM{}); err != nil {
			t.Fatalf("PutRun(%s): %v", name, err)
		}
	}

	// One shared session queried by everyone, checked against ground
	// truth computed up front. BFS makes the skeleton query path exercise
	// the pooled searchers, the scheme most sensitive to data races.
	shared, err := st.OpenRun("r1", label.BFS{})
	if err != nil {
		t.Fatal(err)
	}
	closure, _ := shared.Run.Graph.TransitiveClosure()
	n := shared.Run.NumVertices()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				// Interleave store-level reads with session queries.
				switch i % 3 {
				case 0:
					names, err := st.Runs()
					if err != nil || len(names) != len(runNames) {
						fail(fmt.Errorf("Runs() = %v, %v", names, err))
						return
					}
				case 1:
					sess, err := st.OpenRun(runNames[rng.Intn(len(runNames))], label.TCM{})
					if err != nil {
						fail(err)
						return
					}
					m := sess.Run.NumVertices()
					for q := 0; q < 20; q++ {
						sess.Labels.Reachable(dag.VertexID(rng.Intn(m)), dag.VertexID(rng.Intn(m)))
					}
				}
				for q := 0; q < 100; q++ {
					u := dag.VertexID(rng.Intn(n))
					v := dag.VertexID(rng.Intn(n))
					if shared.Labels.Reachable(u, v) != closure.Reachable(u, v) {
						fail(fmt.Errorf("shared session wrong at (%d,%d)", u, v))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentPutDistinctRuns checks that PutRun for distinct names
// may run concurrently with reads, per the documented contract.
func TestConcurrentPutDistinctRuns(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := run.GenerateSized(s, rand.New(rand.NewSource(1)), 200)
	if err := st.PutRun("seed", r0, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, _ := run.GenerateSized(s, rand.New(rand.NewSource(int64(g+2))), 150)
			if err := st.PutRun(fmt.Sprintf("w%d", g), r, nil, label.TCM{}); err != nil {
				errs <- err
				return
			}
			if _, err := st.OpenRun("seed", label.TCM{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	names, err := st.Runs()
	if err != nil || len(names) != 5 {
		t.Fatalf("Runs() = %v, %v", names, err)
	}
}
