package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"sync"
)

// OpenURL opens an existing store from a URL-style locator:
//
//	fs://dir          one directory on disk (a bare path means the same)
//	mem://dir         preload the fs store at dir into RAM and serve from
//	                  memory (ephemeral: writes are lost on exit)
//	shard://a,b,...   a store sharded across the listed directories, as
//	                  created by CreateSharded with the same list
//
// Additional schemes can be added through RegisterURLScheme; importing
// internal/store/faultinject registers "fault", a fault-injecting
// wrapper around any inner URL (fault://rate=0.05,seed=7/fs://dir).
//
// A bare "mem://" cannot be opened — an empty memory store has no
// specification; build one in-process with NewMem instead.
func OpenURL(rawurl string) (*Store, error) {
	b, err := OpenBackendURL(rawurl)
	if err != nil {
		return nil, err
	}
	st, err := OpenBackend(b)
	if err != nil {
		b.Close()
		return nil, err
	}
	return st, nil
}

// schemes holds the extension openers RegisterURLScheme added; the
// built-in fs/mem/shard schemes are matched first and cannot be
// overridden.
var (
	schemesMu sync.RWMutex
	schemes   = make(map[string]func(rest string) (Backend, error))
)

// RegisterURLScheme makes OpenURL and OpenBackendURL recognize
// scheme:// by delegating everything after the "://" to open. It is the
// database/sql-driver pattern for storage substrates: wrapper and
// remote backends register themselves from their own package's init, so
// the core store package never imports them. Registering a built-in
// scheme (fs, mem, shard) or registering the same scheme twice panics —
// both are wiring bugs, not runtime conditions.
func RegisterURLScheme(scheme string, open func(rest string) (Backend, error)) {
	switch scheme {
	case "fs", "mem", "shard":
		panic("store: cannot override built-in URL scheme " + scheme)
	}
	schemesMu.Lock()
	defer schemesMu.Unlock()
	if _, dup := schemes[scheme]; dup {
		panic("store: URL scheme " + scheme + " registered twice")
	}
	schemes[scheme] = open
}

// OpenBackendURL opens just the blob-level backend a store URL names,
// without loading the store's specification — the composition point for
// wrapper backends: open the inner backend from its URL, wrap it
// (WithRetry, a fault injector), then OpenBackend the result.
func OpenBackendURL(rawurl string) (Backend, error) {
	scheme, rest, ok := strings.Cut(rawurl, "://")
	if !ok {
		if rawurl == "" {
			return nil, fmt.Errorf("store: empty store URL")
		}
		return NewFSBackend(rawurl), nil
	}
	switch scheme {
	case "fs":
		if rest == "" {
			return nil, fmt.Errorf("store: fs:// needs a directory")
		}
		return NewFSBackend(rest), nil
	case "mem":
		if rest == "" {
			return nil, fmt.Errorf("store: mem:// starts empty and has no spec to open; use mem://<dir> to preload a directory, or build one in-process with NewMem")
		}
		mem := NewMemBackend()
		if err := Copy(mem, NewFSBackend(rest)); err != nil {
			return nil, err
		}
		return mem, nil
	case "shard":
		var dirs []string
		for _, d := range strings.Split(rest, ",") {
			if d = strings.TrimSpace(d); d != "" {
				dirs = append(dirs, d)
			}
		}
		if len(dirs) == 0 {
			return nil, fmt.Errorf("store: shard:// needs a comma-separated directory list")
		}
		return newShardFS(dirs)
	default:
		schemesMu.RLock()
		open, ok := schemes[scheme]
		schemesMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("store: unknown store URL scheme %q (want fs, mem, shard or a registered scheme)", scheme)
		}
		return open(rest)
	}
}

// Copy replicates src's spec and every run into dst. It is the
// workhorse behind "mem://<dir>" warm loading and works between any two
// backends — e.g. snapshotting an in-memory store to disk, or fanning a
// single directory out into a fresh shard set. Runs deleted from src
// between the listing and their read (a retention sweep on a live
// store) are skipped, not errors: the copy lands without them, exactly
// as if it had started a moment later.
func Copy(dst, src Backend) error {
	spec, err := readAll(src.ReadSpec())
	if err != nil {
		return err
	}
	if err := dst.WriteSpec(spec); err != nil {
		return err
	}
	names, err := src.ListRuns()
	if err != nil {
		return err
	}
	for _, name := range names {
		doc, err := readAll(src.ReadRun(name))
		if errors.Is(err, fs.ErrNotExist) {
			// Deleted between the listing and the read (a retention sweep
			// on a live store): the run is simply not part of the copy.
			continue
		}
		if err != nil {
			return err
		}
		labels, err := readAll(src.ReadLabels(name))
		if errors.Is(err, fs.ErrNotExist) {
			// The delete removes the document first, so a vanished .skl
			// means the same mid-copy delete caught between our two reads.
			continue
		}
		if err != nil {
			return err
		}
		if err := dst.WriteRun(name, doc, labels); err != nil {
			return err
		}
	}
	// The hot-session list rides along so a preloaded copy (mem://dir)
	// can warm-start the serving layer; a store that never saved one
	// simply has nothing to copy.
	hot, err := readAll(src.ReadMeta(HotListMeta))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	return dst.WriteMeta(HotListMeta, hot)
}

func readAll(rc io.ReadCloser, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}
