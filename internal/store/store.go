// Package store persists labeled provenance: the specification, each
// run's graph and data items (XML), and each run's reachability labels
// (compact binary snapshots). It is the provenance database the paper
// targets — "data can be labeled and stored in a database along with its
// label" — and supports opening a store and answering provenance queries
// without relabeling anything.
//
// # Architecture
//
// Store is backend-agnostic logic (run validation, labeling, snapshot
// binding, session construction) over a blob-level Backend interface.
// Three backends ship with the package:
//
//   - fs: one directory on disk (spec.xml, runs/<name>.xml,
//     runs/<name>.skl), with atomic temp-file+rename writes
//   - mem: everything in RAM, for tests and ephemeral serving
//   - shard: runs hash-routed across N child backends, so one store
//     spans many directories or disks
//
// OpenURL opens any of them from a URL ("fs://dir", a bare path,
// "mem://dir" to preload a directory into RAM, "shard://a,b,c").
//
// # Concurrency
//
// A Store is safe for concurrent use: any number of goroutines may call
// Spec, SpecName, Runs, OpenRun and Stat concurrently, including
// concurrently with PutRun calls for distinct run names (the internal
// skeleton-labeling cache is mutex-guarded; backends are concurrency-
// safe by contract). Concurrent PutRun calls for the same name race on
// the underlying blobs and must be serialized by the caller.
//
// A Session is immutable once OpenRun returns: Labels, DataView and the
// run graph answer queries without mutating shared state (search-based
// skeleton schemes draw per-query scratch from an internal pool), so one
// Session may serve any number of concurrent readers. This contract is
// what internal/server's session cache relies on and is enforced by the
// -race tests in this package and internal/server.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/xmlio"
)

// Store is a provenance store for one specification over some Backend.
type Store struct {
	backend  Backend
	spec     *spec.Spec
	specName string

	// skels caches built specification labelings by scheme name, so bulk
	// PutRun/OpenRun loops label the (small but not free) specification
	// once per scheme instead of once per call. Labelings are safe for
	// concurrent readers, so cached entries are shared across sessions.
	mu    sync.Mutex
	skels map[string]label.Labeling // guarded by mu
}

// New initializes a store over the backend for the specification,
// persisting the spec document through it.
func New(b Backend, s *spec.Spec, name string) (*Store, error) {
	var buf bytes.Buffer
	if err := xmlio.EncodeSpec(&buf, s, name); err != nil {
		return nil, err
	}
	if err := b.WriteSpec(buf.Bytes()); err != nil {
		return nil, err
	}
	return newStore(b, s, name), nil
}

// OpenBackend loads an existing store from the backend.
func OpenBackend(b Backend) (*Store, error) {
	rc, err := b.ReadSpec()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	s, name, err := xmlio.DecodeSpec(rc)
	if err != nil {
		return nil, err
	}
	return newStore(b, s, name), nil
}

func newStore(b Backend, s *spec.Spec, name string) *Store {
	return &Store{backend: b, spec: s, specName: name, skels: make(map[string]label.Labeling)}
}

// Create initializes an fs-backed store directory for the specification.
func Create(dir string, s *spec.Spec, name string) (*Store, error) {
	return New(NewFSBackend(dir), s, name)
}

// Open loads an existing fs-backed store.
func Open(dir string) (*Store, error) {
	return OpenBackend(NewFSBackend(dir))
}

// NewMem returns a store over a fresh in-memory backend.
func NewMem(s *spec.Spec, name string) (*Store, error) {
	return New(NewMemBackend(), s, name)
}

// CreateSharded initializes a store sharded across fs-backed child
// directories, replicating the spec to each so every shard is also
// independently openable.
func CreateSharded(dirs []string, s *spec.Spec, name string) (*Store, error) {
	b, err := newShardFS(dirs)
	if err != nil {
		return nil, err
	}
	return New(b, s, name)
}

// OpenSharded loads an existing store sharded across fs-backed child
// directories; the directory list must match the one it was created
// with (routing hashes the run name over the shard count and order).
func OpenSharded(dirs []string) (*Store, error) {
	b, err := newShardFS(dirs)
	if err != nil {
		return nil, err
	}
	return OpenBackend(b)
}

func newShardFS(dirs []string) (Backend, error) {
	children := make([]Backend, len(dirs))
	for i, d := range dirs {
		children[i] = NewFSBackend(d)
	}
	return NewShardBackend(children...)
}

// Spec returns the store's specification.
func (st *Store) Spec() *spec.Spec { return st.spec }

// SpecName returns the stored specification's name.
func (st *Store) SpecName() string { return st.specName }

// Backend returns the store's storage substrate.
func (st *Store) Backend() Backend { return st.backend }

// Stat describes the store's backend for monitoring.
func (st *Store) Stat() Stats { return st.backend.Stat() }

// Close releases the backend's resources.
func (st *Store) Close() error { return st.backend.Close() }

// Skeleton returns the store's cached specification labeling for the
// scheme, building it on first use — the same labeling PutRun and
// OpenRun bind, exported so layers labeling outside the store (the
// streaming ingest path's online labeler) share one skeleton per
// scheme instead of rebuilding it.
func (st *Store) Skeleton(scheme label.Scheme) (label.Labeling, error) {
	return st.skeleton(scheme)
}

// skeleton returns the cached specification labeling for the scheme,
// building it on first use.
func (st *Store) skeleton(scheme label.Scheme) (label.Labeling, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if skel, ok := st.skels[scheme.Name()]; ok {
		return skel, nil
	}
	skel, err := scheme.Build(st.spec.Graph)
	if err != nil {
		return nil, err
	}
	st.skels[scheme.Name()] = skel
	return skel, nil
}

// PutRun labels the run (with the given scheme) and persists graph, data
// items and label snapshot under the given run name. Putting an existing
// name overwrites the stored run, but overwrite is not atomic across
// the document/labels pair: concurrent PutRun or OpenRun calls for the
// *same* name race and must be serialized by the caller — the serving
// layer's ingest endpoint holds a per-run-name reader/writer lock
// across its writes and loads for exactly this reason. Distinct names
// never interfere.
func (st *Store) PutRun(name string, r *run.Run, ann *provdata.Annotation, scheme label.Scheme) error {
	_, _, _, err := st.putRun(name, r, ann, scheme)
	return err
}

// PutRunSession is PutRun plus a ready-to-query Session assembled from
// the same in-memory labeling — the ingest path's fast lane: the caller
// gets exactly what OpenRun would return without re-reading and
// re-decoding the blobs that were just written (the differential tests
// pin that a fresh labeling and a snapshot rebound to the skeleton
// answer identically).
func (st *Store) PutRunSession(name string, r *run.Run, ann *provdata.Annotation, scheme label.Scheme) (*Session, error) {
	stored, l, snapBytes, err := st.putRun(name, r, ann, scheme)
	if err != nil {
		return nil, err
	}
	sess := &Session{
		Run: stored, Data: ann, Labels: l,
		SnapshotVersion: core.SnapshotV2, SnapshotBytes: snapBytes,
	}
	if ann != nil {
		dv, err := provdata.LabelData(ann, l)
		if err != nil {
			return nil, err
		}
		sess.DataView = dv
	}
	return sess, nil
}

// putRun is the shared write path: validate, label, encode, persist.
// It returns the (possibly spec-normalized) run, its labeling, and the
// stored snapshot's size.
func (st *Store) putRun(name string, r *run.Run, ann *provdata.Annotation, scheme label.Scheme) (*run.Run, *core.Labeling, int, error) {
	if err := ValidRunName(name); err != nil {
		return nil, nil, 0, err
	}
	if r.Spec != st.spec {
		// Allow structurally equal specs (e.g. reopened stores) as long
		// as the run validates against the store's spec.
		r = &run.Run{Spec: st.spec, Graph: r.Graph, Origin: r.Origin}
	}
	if err := r.Validate(); err != nil {
		return nil, nil, 0, err
	}
	skel, err := st.skeleton(scheme)
	if err != nil {
		return nil, nil, 0, err
	}
	l, err := core.LabelRun(r, skel)
	if err != nil {
		return nil, nil, 0, err
	}
	var runDoc bytes.Buffer
	if err := xmlio.EncodeRun(&runDoc, r, ann, st.specName); err != nil {
		return nil, nil, 0, err
	}
	var labels bytes.Buffer
	if _, err := l.WriteTo(&labels); err != nil {
		return nil, nil, 0, err
	}
	if err := st.backend.WriteRun(name, runDoc.Bytes(), labels.Bytes()); err != nil {
		return nil, nil, 0, err
	}
	return r, l, labels.Len(), nil
}

// Runs lists the stored run names, sorted.
func (st *Store) Runs() ([]string, error) {
	return st.backend.ListRuns()
}

// DeleteRun removes the named run's document and label snapshot from
// the backend. Deleting a name that is not stored returns an error
// satisfying errors.Is(err, fs.ErrNotExist). Like PutRun, a delete
// concurrent with reads or writes of the *same* name races and must be
// serialized by the caller — the serving layer holds its per-run-name
// write lock across the backend delete and its cache invalidation;
// distinct names never interfere.
func (st *Store) DeleteRun(name string) error {
	if err := ValidRunName(name); err != nil {
		return err
	}
	return st.backend.DeleteRun(name)
}

// AppendRunEvents durably appends rendered event-log bytes to the named
// run's event log — the streaming ingest write-ahead step: the serving
// layer appends each accepted batch here before applying it, so crash
// recovery can rebuild the live session. Same-name appends race and are
// the caller's to serialize, like every same-name write in this package.
func (st *Store) AppendRunEvents(name string, data []byte) error {
	if err := ValidRunName(name); err != nil {
		return err
	}
	return st.backend.AppendEventLog(name, data)
}

// ReadRunEvents streams the named run's event log; a run never streamed
// to returns an error satisfying errors.Is(err, fs.ErrNotExist).
func (st *Store) ReadRunEvents(name string) (io.ReadCloser, error) {
	if err := ValidRunName(name); err != nil {
		return nil, err
	}
	return st.backend.ReadEventLog(name)
}

// DeleteRunEvents removes the named run's event log; removing a log
// that does not exist is a successful no-op (log deletion is cleanup
// after a finish or a run delete).
func (st *Store) DeleteRunEvents(name string) error {
	if err := ValidRunName(name); err != nil {
		return err
	}
	return st.backend.DeleteEventLog(name)
}

// Session is a loaded run ready for querying: stored labels bound to the
// specification's skeleton labeling, plus the run and its data items.
type Session struct {
	Run      *run.Run
	Data     *provdata.Annotation
	Labels   *core.Labeling
	DataView *provdata.Labeling // nil when the run has no data items
	// SnapshotVersion is the wire format the run's stored label snapshot
	// was encoded with (SKL1 or SKL2); stores written by older versions
	// keep loading transparently.
	SnapshotVersion core.SnapshotVersion
	// SnapshotBytes is the stored label snapshot's size in bytes.
	SnapshotBytes int
}

// OpenRun loads one run's labels for querying. The scheme's skeleton
// labeling of the (small) specification comes from the store's cache;
// the run labels come from the stored snapshot and are not recomputed.
func (st *Store) OpenRun(name string, scheme label.Scheme) (*Session, error) {
	if err := ValidRunName(name); err != nil {
		return nil, err
	}
	rf, err := st.backend.ReadRun(name)
	if err != nil {
		return nil, err
	}
	r, ann, err := xmlio.DecodeRun(rf, st.spec)
	rf.Close()
	if err != nil {
		return nil, err
	}
	lf, err := st.backend.ReadLabels(name)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(lf)
	lf.Close()
	if err != nil {
		return nil, err
	}
	snap, err := core.DecodeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	if len(snap.Labels) != r.NumVertices() {
		return nil, fmt.Errorf("store: snapshot covers %d vertices, run has %d", len(snap.Labels), r.NumVertices())
	}
	skel, err := st.skeleton(scheme)
	if err != nil {
		return nil, err
	}
	l, err := snap.Bind(skel)
	if err != nil {
		return nil, err
	}
	sess := &Session{
		Run: r, Data: ann, Labels: l,
		SnapshotVersion: snap.Version, SnapshotBytes: len(raw),
	}
	if ann != nil {
		dv, err := provdata.LabelData(ann, l)
		if err != nil {
			return nil, err
		}
		sess.DataView = dv
	}
	return sess, nil
}

// HotListMeta is the meta blob holding the serving layer's hot-session
// list: the run names that were resident in the query server's session
// cache when it shut down, one per line, most recently used first. A
// warm restart preloads these before accepting traffic.
const HotListMeta = ".hot"

// WriteHotList persists the hot-session list (run names, most recently
// used first) so a restarted server can preload them. Invalid names are
// rejected up front; names that no longer exist in the store (runs
// deleted while their session was still cached) are pruned rather than
// persisted — a .hot blob must never keep naming a deleted run, so a
// warm restart spends its startup loads only on runs that can actually
// load. An empty list (or one pruned empty) is stored as an empty blob.
func (st *Store) WriteHotList(names []string) error {
	for _, n := range names {
		if err := ValidRunName(n); err != nil {
			return err
		}
	}
	stored, err := st.backend.ListRuns()
	if err != nil {
		return err
	}
	exists := make(map[string]bool, len(stored))
	for _, n := range stored {
		exists[n] = true
	}
	kept := make([]string, 0, len(names))
	for _, n := range names {
		if exists[n] {
			kept = append(kept, n)
		}
	}
	return st.backend.WriteMeta(HotListMeta, []byte(strings.Join(kept, "\n")))
}

// ReadHotList returns the stored hot-session list, most recently used
// first. A store that never saved one returns an empty list, not an
// error. Names that are no longer valid are dropped rather than
// surfaced: the list is advisory (a stale entry just means one cold
// load), never a reason to refuse startup.
func (st *Store) ReadHotList() ([]string, error) {
	rc, err := st.backend.ReadMeta(HotListMeta)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line == "" {
			continue
		}
		if ValidRunName(line) == nil {
			names = append(names, line)
		}
	}
	return names, nil
}

// ValidMetaName reports whether name is usable as a backend meta blob
// name: a leading dot followed by one or more characters from
// [A-Za-z0-9._-], except ".." — with separators banned that is the one
// remaining path special, and the fs backend joins meta names onto its
// root directory. The mandatory dot prefix is exactly what ValidRunName
// forbids, so meta names and run names can never collide on any backend.
func ValidMetaName(name string) error {
	if len(name) < 2 || name[0] != '.' || name == ".." {
		return fmt.Errorf("store: invalid meta name %q", name)
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("store: invalid meta name %q", name)
		}
	}
	return nil
}

// ValidRunName reports whether name is usable as a stored run name:
// one or more characters from [A-Za-z0-9._-], not starting with ".".
// The character class rules out separators, whitespace and control
// characters on every backend, so a run name is always safe to embed in
// a file path, a URL or a shard key; banning the leading dot covers the
// path specials "." and ".." and reserves the dot-prefixed namespace
// for the fs backend's temp files. Callers accepting run names from
// untrusted input (e.g. the query server) can reject bad names up front
// instead of surfacing them as store errors.
func ValidRunName(name string) error {
	if name == "" || name[0] == '.' {
		return fmt.Errorf("store: invalid run name %q", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("store: invalid run name %q", name)
		}
	}
	return nil
}
