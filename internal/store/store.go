// Package store persists labeled provenance to disk: the specification,
// each run's graph and data items (XML), and each run's reachability
// labels (compact binary snapshots). It is the file-system equivalent of
// the provenance database the paper targets — "data can be labeled and
// stored in a database along with its label" — and supports opening a
// store and answering provenance queries without relabeling anything.
//
// Layout:
//
//	<dir>/spec.xml          the specification
//	<dir>/runs/<name>.xml   one run (+ data items) per file
//	<dir>/runs/<name>.skl   the run's label snapshot
//
// # Concurrency
//
// A Store is immutable after Create/Open except for the files PutRun
// writes, so any number of goroutines may call Spec, SpecName, Runs and
// OpenRun concurrently, including concurrently with PutRun calls for
// distinct run names. Concurrent PutRun calls for the same name race on
// the underlying files and must be serialized by the caller.
//
// A Session is immutable once OpenRun returns: Labels, DataView and the
// run graph answer queries without mutating shared state (search-based
// skeleton schemes draw per-query scratch from an internal pool), so one
// Session may serve any number of concurrent readers. This contract is
// what internal/server's session cache relies on and is enforced by the
// -race tests in this package and internal/server.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/label"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/xmlio"
)

// Store is an on-disk provenance store for one specification.
type Store struct {
	dir      string
	spec     *spec.Spec
	specName string
}

// Create initializes a store directory for the specification.
func Create(dir string, s *spec.Spec, name string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "spec.xml"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := xmlio.EncodeSpec(f, s, name); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &Store{dir: dir, spec: s, specName: name}, nil
}

// Open loads an existing store.
func Open(dir string) (*Store, error) {
	f, err := os.Open(filepath.Join(dir, "spec.xml"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	s, name, err := xmlio.DecodeSpec(f)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, spec: s, specName: name}, nil
}

// Spec returns the store's specification.
func (st *Store) Spec() *spec.Spec { return st.spec }

// SpecName returns the stored specification's name.
func (st *Store) SpecName() string { return st.specName }

// PutRun labels the run (with the given scheme) and persists graph, data
// items and label snapshot under the given run name.
func (st *Store) PutRun(name string, r *run.Run, ann *provdata.Annotation, scheme label.Scheme) error {
	if err := validName(name); err != nil {
		return err
	}
	if r.Spec != st.spec {
		// Allow structurally equal specs (e.g. reopened stores) as long
		// as the run validates against the store's spec.
		r = &run.Run{Spec: st.spec, Graph: r.Graph, Origin: r.Origin}
	}
	if err := r.Validate(); err != nil {
		return err
	}
	skel, err := scheme.Build(st.spec.Graph)
	if err != nil {
		return err
	}
	l, err := core.LabelRun(r, skel)
	if err != nil {
		return err
	}
	rf, err := os.Create(st.runPath(name, ".xml"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := xmlio.EncodeRun(rf, r, ann, st.specName); err != nil {
		rf.Close()
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	lf, err := os.Create(st.runPath(name, ".skl"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := l.WriteTo(lf); err != nil {
		lf.Close()
		return err
	}
	return lf.Close()
}

// Runs lists the stored run names, sorted.
func (st *Store) Runs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".xml") {
			out = append(out, strings.TrimSuffix(e.Name(), ".xml"))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Session is a loaded run ready for querying: stored labels bound to a
// freshly built skeleton labeling, plus the run and its data items.
type Session struct {
	Run      *run.Run
	Data     *provdata.Annotation
	Labels   *core.Labeling
	DataView *provdata.Labeling // nil when the run has no data items
}

// OpenRun loads one run's labels for querying. The scheme rebuilds the
// skeleton labeling of the (small) specification; the run labels come
// from the stored snapshot and are not recomputed.
func (st *Store) OpenRun(name string, scheme label.Scheme) (*Session, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	rf, err := os.Open(st.runPath(name, ".xml"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r, ann, err := xmlio.DecodeRun(rf, st.spec)
	rf.Close()
	if err != nil {
		return nil, err
	}
	lf, err := os.Open(st.runPath(name, ".skl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	snap, err := core.ReadSnapshot(lf)
	lf.Close()
	if err != nil {
		return nil, err
	}
	if len(snap.Labels) != r.NumVertices() {
		return nil, fmt.Errorf("store: snapshot covers %d vertices, run has %d", len(snap.Labels), r.NumVertices())
	}
	skel, err := scheme.Build(st.spec.Graph)
	if err != nil {
		return nil, err
	}
	l, err := snap.Bind(skel)
	if err != nil {
		return nil, err
	}
	sess := &Session{Run: r, Data: ann, Labels: l}
	if ann != nil {
		dv, err := provdata.LabelData(ann, l)
		if err != nil {
			return nil, err
		}
		sess.DataView = dv
	}
	return sess, nil
}

func (st *Store) runPath(name, ext string) string {
	return filepath.Join(st.dir, "runs", name+ext)
}

// ValidRunName reports whether name is usable as a stored run name:
// nonempty, no path separators, no "..". Callers accepting run names
// from untrusted input (e.g. the query server) can reject bad names up
// front instead of surfacing them as store errors.
func ValidRunName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("store: invalid run name %q", name)
	}
	return nil
}

func validName(name string) error { return ValidRunName(name) }
