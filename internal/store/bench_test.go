package store_test

import (
	"math/rand"
	"testing"

	"repro/internal/label"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/workload"
)

// benchBackends enumerates the substrates the CI bench smoke tracks, so
// an fs- or mem-specific regression shows up in the perf trajectory.
var benchBackends = []struct {
	kind string
	open func(b *testing.B, s *spec.Spec) *store.Store
}{
	{"fs", func(b *testing.B, s *spec.Spec) *store.Store {
		st, err := store.Create(b.TempDir(), s, "bench")
		if err != nil {
			b.Fatal(err)
		}
		return st
	}},
	{"mem", func(b *testing.B, s *spec.Spec) *store.Store {
		st, err := store.NewMem(s, "bench")
		if err != nil {
			b.Fatal(err)
		}
		return st
	}},
}

func benchSpecAndRun(b *testing.B) (*spec.Spec, *run.Run, *provdata.Annotation) {
	b.Helper()
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(1))
	r, _ := run.GenerateSized(s, rng, 1000)
	ann := provdata.RandomItems(r, rng, 1.2, 0.3)
	return s, r, ann
}

// BenchmarkStorePutRun measures the full ingest path — validation,
// labeling (cached skeleton), XML + snapshot encoding, backend write —
// per backend kind.
func BenchmarkStorePutRun(b *testing.B) {
	for _, bk := range benchBackends {
		b.Run(bk.kind, func(b *testing.B) {
			s, r, ann := benchSpecAndRun(b)
			st := bk.open(b, s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.PutRun("r1", r, ann, label.TCM{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreOpenRun measures the session load path per backend kind:
// decode run XML, read the snapshot, bind it to the cached skeleton
// labeling. This is the cost a query-server cache miss pays.
func BenchmarkStoreOpenRun(b *testing.B) {
	for _, bk := range benchBackends {
		b.Run(bk.kind, func(b *testing.B) {
			s, r, ann := benchSpecAndRun(b)
			st := bk.open(b, s)
			if err := st.PutRun("r1", r, ann, label.TCM{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.OpenRun("r1", label.TCM{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreSkeletonCache isolates the win from caching the built
// specification labeling inside the Store: "cached" opens runs through
// one long-lived Store (skeleton built once), "uncached" pays the
// pre-redesign cost of rebuilding the spec labeling on every open by
// using a fresh Store each iteration. The 2-hop scheme on the QBLAST
// stand-in makes the build cost realistic — schemes like 2-hop and Dual
// exist precisely because their expensive one-time construction buys
// cheap queries, which is only a good trade if the store actually
// amortizes the construction.
func BenchmarkStoreSkeletonCache(b *testing.B) {
	s, err := workload.StandIn("QBLAST", 1)
	if err != nil {
		b.Fatal(err)
	}
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(2)), 300)
	st, err := store.NewMem(s, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := st.PutRun("r1", r, nil, label.TwoHop{}); err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st.OpenRun("r1", label.TwoHop{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fresh, err := store.OpenBackend(st.Backend())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fresh.OpenRun("r1", label.TwoHop{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
