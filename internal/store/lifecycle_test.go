package store_test

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// plantOrphan fakes the crash the fs backend documents: a .skl that was
// durably renamed into place with no sibling .xml (power loss between
// WriteRun's two renames, or between DeleteRun's two removes).
func plantOrphan(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, "runs", name+".skl")
	if err := os.WriteFile(path, []byte("orphaned snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFSOrphanSweepOnOpen: opening a store collects label snapshots
// with no sibling run document — the debris is gone before the store
// serves anything, and intact runs are untouched.
func TestFSOrphanSweepOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(1)), 80)
	if err := st.PutRun("intact", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	orphan := plantOrphan(t, dir, "crashed")

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("orphaned snapshot survived open: %v", err)
	}
	// The intact run still has both blobs and still serves.
	if _, err := os.Stat(filepath.Join(dir, "runs", "intact.skl")); err != nil {
		t.Fatalf("sweep collected a live run's snapshot: %v", err)
	}
	sess, err := st2.OpenRun("intact", label.TCM{})
	if err != nil || sess.Run.NumVertices() != r.NumVertices() {
		t.Fatalf("intact run after sweep: %v", err)
	}
	if names, err := st2.Runs(); err != nil || fmt.Sprint(names) != "[intact]" {
		t.Fatalf("Runs after sweep = %v, %v", names, err)
	}
}

// TestShardChildOrphanSweepOnList: a shard set reads its spec only from
// the first child, so for the other children the first run listing is
// what triggers the open-time sweep — debris on any child must be gone
// after one ListRuns over the shard.
func TestShardChildOrphanSweepOnList(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	s := spec.PaperSpec()
	st, err := store.CreateSharded(dirs, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(3)), 80)
	if err := st.PutRun("intact", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	orphans := make([]string, len(dirs))
	for i, d := range dirs {
		orphans[i] = plantOrphan(t, d, "crashed")
	}
	st2, err := store.OpenSharded(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if names, err := st2.Runs(); err != nil || fmt.Sprint(names) != "[intact]" {
		t.Fatalf("Runs = %v, %v", names, err)
	}
	for i, orphan := range orphans {
		if _, err := os.Stat(orphan); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("orphan on shard child %d survived the first listing: %v", i, err)
		}
	}
	if _, err := st2.OpenRun("intact", label.TCM{}); err != nil {
		t.Fatalf("intact run after shard sweep: %v", err)
	}
}

// TestFSOrphanSweepOnDelete: DeleteRun collects crash debris left by
// earlier interrupted writes, so a retention sweep doubles as garbage
// collection.
func TestFSOrphanSweepOnDelete(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.GenerateSized(s, rand.New(rand.NewSource(2)), 80)
	for _, name := range []string{"stay", "go"} {
		if err := st.PutRun(name, r, nil, label.TCM{}); err != nil {
			t.Fatal(err)
		}
	}
	orphan := plantOrphan(t, dir, "debris")

	if err := st.DeleteRun("go"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("orphaned snapshot survived DeleteRun: %v", err)
	}
	for _, gone := range []string{"go.xml", "go.skl"} {
		if _, err := os.Stat(filepath.Join(dir, "runs", gone)); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("deleted run blob %s survived: %v", gone, err)
		}
	}
	if _, err := st.OpenRun("stay", label.TCM{}); err != nil {
		t.Fatalf("surviving run after sweep: %v", err)
	}
}

// TestCopySkipsRunDeletedMidCopy: a run deleted between Copy's listing
// and its reads (a retention sweep on a live source) is skipped; the
// copy completes with everything else. The .skl-side race (document
// read wins, labels already gone) is covered through the conformance
// suite's StoreDeleteRun subtest.
func TestCopySkipsRunDeletedMidCopy(t *testing.T) {
	src := store.NewMemBackend()
	defer src.Close()
	if err := src.WriteSpec([]byte("<spec>")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if err := src.WriteRun(name, []byte("d:"+name), []byte("l:"+name)); err != nil {
			t.Fatal(err)
		}
	}
	dst := store.NewMemBackend()
	defer dst.Close()
	if err := store.Copy(dst, vanishOnRead{Backend: src, name: "b"}); err != nil {
		t.Fatalf("Copy with mid-copy delete: %v", err)
	}
	names, err := dst.ListRuns()
	if err != nil || fmt.Sprint(names) != fmt.Sprint([]string{"a", "c"}) {
		t.Fatalf("copied runs = %v, %v; want [a c]", names, err)
	}
}

// TestCopySkipsLabelsDeletedMidCopy pins the narrower window: the
// document read succeeds but the labels vanish before their read —
// exactly what a concurrent DeleteRun's xml-then-skl ordering can
// expose to a copier that has already streamed the document.
func TestCopySkipsLabelsDeletedMidCopy(t *testing.T) {
	src := store.NewMemBackend()
	defer src.Close()
	if err := src.WriteSpec([]byte("<spec>")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if err := src.WriteRun(name, []byte("d:"+name), []byte("l:"+name)); err != nil {
			t.Fatal(err)
		}
	}
	dst := store.NewMemBackend()
	defer dst.Close()
	if err := store.Copy(dst, vanishOnLabels{Backend: src, name: "a"}); err != nil {
		t.Fatalf("Copy with labels vanishing mid-copy: %v", err)
	}
	names, err := dst.ListRuns()
	if err != nil || fmt.Sprint(names) != "[b]" {
		t.Fatalf("copied runs = %v, %v; want [b]", names, err)
	}
}

// vanishOnRead deletes the named run the moment its document is read.
type vanishOnRead struct {
	store.Backend
	name string
}

func (v vanishOnRead) ReadRun(name string) (io.ReadCloser, error) {
	if name == v.name {
		v.Backend.DeleteRun(name)
	}
	return v.Backend.ReadRun(name)
}

// vanishOnLabels deletes the named run between its document read and
// its labels read.
type vanishOnLabels struct {
	store.Backend
	name string
}

func (v vanishOnLabels) ReadLabels(name string) (io.ReadCloser, error) {
	if name == v.name {
		v.Backend.DeleteRun(name)
	}
	return v.Backend.ReadLabels(name)
}
