package store_test

import (
	"testing"

	"repro/internal/store"
	"repro/internal/store/backendtest"
)

// Every shipped backend passes the same conformance suite; shard is run
// twice to show child backends are interchangeable too.

func TestFSBackendConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) store.Backend {
		return store.NewFSBackend(t.TempDir())
	})
}

func TestMemBackendConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) store.Backend {
		return store.NewMemBackend()
	})
}

func TestShardFSBackendConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) store.Backend {
		b, err := store.NewShardBackend(
			store.NewFSBackend(t.TempDir()),
			store.NewFSBackend(t.TempDir()),
			store.NewFSBackend(t.TempDir()),
		)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
}

func TestShardMemBackendConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) store.Backend {
		b, err := store.NewShardBackend(store.NewMemBackend(), store.NewMemBackend())
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
}

// The retry wrapper must be contract-transparent: a conformance pass
// over a wrapped mem backend shows retries never change semantics on a
// healthy substrate.
func TestRetryBackendConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) store.Backend {
		return store.WithRetry(store.NewMemBackend(), store.RetryPolicy{})
	})
}

func TestShardNeedsChildren(t *testing.T) {
	if _, err := store.NewShardBackend(); err == nil {
		t.Fatal("NewShardBackend() accepted zero children")
	}
}
