package store_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/xmlio"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var originals []*run.Run
	for i, target := range []int{50, 200, 800} {
		r, _ := run.GenerateSized(s, rng, target)
		ann := provdata.RandomItems(r, rng, 1.3, 0.4)
		name := []string{"small", "medium", "large"}[i]
		if err := st.PutRun(name, r, ann, label.TCM{}); err != nil {
			t.Fatalf("PutRun(%s): %v", name, err)
		}
		originals = append(originals, r)
	}
	// Reopen from disk.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.SpecName() != "paper" || st2.Spec().NumVertices() != s.NumVertices() {
		t.Fatal("reopened spec mismatch")
	}
	names, err := st2.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "large" || names[1] != "medium" || names[2] != "small" {
		t.Fatalf("Runs() = %v", names)
	}
	// Query from stored labels; verify against direct search on the
	// stored graph.
	for i, name := range []string{"small", "medium", "large"} {
		sess, err := st2.OpenRun(name, label.TCM{})
		if err != nil {
			t.Fatalf("OpenRun(%s): %v", name, err)
		}
		if sess.Run.NumVertices() != originals[i].NumVertices() {
			t.Fatalf("%s: stored run size changed", name)
		}
		if sess.DataView == nil {
			t.Fatalf("%s: data items lost", name)
		}
		searcher := dag.NewSearcher(sess.Run.Graph)
		n := sess.Run.NumVertices()
		for q := 0; q < 1000; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if sess.Labels.Reachable(u, v) != searcher.ReachableBFS(u, v) {
				t.Fatalf("%s: stored labels wrong at (%d,%d)", name, u, v)
			}
		}
	}
}

func TestStoreDifferentQueryScheme(t *testing.T) {
	// Labels stored under TCM must be queryable with any other skeleton
	// scheme: the snapshot stores only positions + origin references.
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	r, _ := run.GenerateSized(s, rng, 300)
	if err := st.PutRun("r", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	sess, err := st.OpenRun("r", label.BFS{})
	if err != nil {
		t.Fatal(err)
	}
	searcher := dag.NewSearcher(sess.Run.Graph)
	for q := 0; q < 1000; q++ {
		u := dag.VertexID(rng.Intn(sess.Run.NumVertices()))
		v := dag.VertexID(rng.Intn(sess.Run.NumVertices()))
		if sess.Labels.Reachable(u, v) != searcher.ReachableBFS(u, v) {
			t.Fatal("cross-scheme query wrong")
		}
	}
	if sess.DataView != nil {
		t.Error("run stored without data should have nil DataView")
	}
}

func TestStoreErrors(t *testing.T) {
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "p")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := run.MustMaterialize(s, run.SingleExec(s))
	for _, bad := range []string{"", "a/b", "..", `a\b`} {
		if err := st.PutRun(bad, r, nil, label.TCM{}); err == nil {
			t.Errorf("PutRun accepted name %q", bad)
		}
	}
	if _, err := st.OpenRun("missing", label.TCM{}); err == nil {
		t.Error("OpenRun accepted missing run")
	}
	if _, err := store.Open(t.TempDir()); err == nil {
		t.Error("Open accepted empty directory")
	}
	// Invalid run (origin corrupted) must be rejected at Put time.
	badRun := &run.Run{Spec: s, Graph: r.Graph, Origin: append([]dag.VertexID(nil), r.Origin...)}
	badRun.Origin[0] = 99
	if err := st.PutRun("bad", badRun, nil, label.TCM{}); err == nil {
		t.Error("PutRun accepted invalid run")
	}
}

// TestStoreCrossCodecVersions verifies a store written before the SKL2
// codec still serves: a run whose label snapshot is stored in the
// legacy SKL1 format loads byte-identically (same labels, same query
// answers) next to an SKL2 run, and sessions report which codec backs
// them.
func TestStoreCrossCodecVersions(t *testing.T) {
	s := spec.PaperSpec()
	st, err := store.NewMem(s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	r, _ := run.GenerateSized(s, rng, 400)
	// "new" goes through PutRun (SKL2). "old" simulates a pre-SKL2
	// store: same run document, labels written in the V1 wire format
	// straight through the backend.
	if err := st.PutRun("new", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	skel, err := label.TCM{}.Build(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	var doc, v1 bytes.Buffer
	if err := xmlio.EncodeRun(&doc, r, nil, "paper"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.WriteToVersion(&v1, core.SnapshotV1); err != nil {
		t.Fatal(err)
	}
	if err := st.Backend().WriteRun("old", doc.Bytes(), v1.Bytes()); err != nil {
		t.Fatal(err)
	}

	oldSess, err := st.OpenRun("old", label.TCM{})
	if err != nil {
		t.Fatalf("OpenRun over SKL1 snapshot: %v", err)
	}
	newSess, err := st.OpenRun("new", label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	if oldSess.SnapshotVersion != core.SnapshotV1 || newSess.SnapshotVersion != core.SnapshotV2 {
		t.Fatalf("snapshot versions = %v, %v; want SKL1, SKL2", oldSess.SnapshotVersion, newSess.SnapshotVersion)
	}
	if oldSess.SnapshotBytes != v1.Len() || newSess.SnapshotBytes <= 0 {
		t.Fatalf("snapshot bytes = %d, %d", oldSess.SnapshotBytes, newSess.SnapshotBytes)
	}
	n := r.NumVertices()
	for q := 0; q < 2000; q++ {
		u := dag.VertexID(rng.Intn(n))
		v := dag.VertexID(rng.Intn(n))
		a, b := oldSess.Labels.Reachable(u, v), newSess.Labels.Reachable(u, v)
		if a != b || a != l.Reachable(u, v) {
			t.Fatalf("codec versions disagree at (%d,%d)", u, v)
		}
		if oldSess.Labels.Label(u) != newSess.Labels.Label(u) {
			t.Fatalf("stored label %d differs across codecs", u)
		}
	}
	// store.Copy moves both runs blob-for-blob: the SKL1 run stays SKL1.
	dst := store.NewMemBackend()
	if err := store.Copy(dst, st.Backend()); err != nil {
		t.Fatal(err)
	}
	st2, err := store.OpenBackend(dst)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := st2.OpenRun("old", label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	if copied.SnapshotVersion != core.SnapshotV1 || copied.SnapshotBytes != v1.Len() {
		t.Fatalf("copy changed the stored codec: %v, %d bytes", copied.SnapshotVersion, copied.SnapshotBytes)
	}
}
