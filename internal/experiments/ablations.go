package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/online"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/workload"
)

// AblationSpecSchemes measures SKL under every available specification
// labeling scheme at one run size: the robustness claim of Section 8.2
// extended beyond TCM and BFS.
func AblationSpecSchemes(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	s, err := workload.StandIn("QBLAST", cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	target := cfg.Sizes[len(cfg.Sizes)-1]
	r, _ := run.GenerateSized(s, rng, target)
	res := &Result{
		ID:     "Ablation A1",
		Title:  fmt.Sprintf("SKL robustness to the specification scheme (QBLAST, nR=%d)", r.NumVertices()),
		Header: []string{"skeleton scheme", "spec index bits", "spec build", "SKL label (ms)", "query ns", "context-only ns"},
		Notes:  []string{"run labeling time and label size are scheme-independent; only fall-through query cost varies"},
	}
	for _, scheme := range label.All() {
		l, skelT, sklT, err := buildSKL(r, scheme)
		if err != nil {
			return nil, err
		}
		q := min(cfg.Queries, 100_000)
		ns := queryNanos(rng, r.NumVertices(), q, l.Reachable)
		ctxNs := queryNanos(rng, r.NumVertices(), q, func(u, v dag.VertexID) bool {
			return l.AnsweredByContext(u, v)
		})
		res.Rows = append(res.Rows, []string{
			scheme.Name(),
			fmt.Sprint(l.Skeleton().IndexBits()),
			skelT.Round(time.Microsecond).String(),
			fmtMS(sklT),
			fmtF(ns),
			fmtF(ctxNs),
		})
	}
	return res, nil
}

// AblationContextShare measures, per run size, the fraction of random
// queries decided by the context encoding alone — the mechanism behind
// the decreasing BFS+SKL query time in Figures 17 and 20.
func AblationContextShare(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	s, err := workload.StandIn("QBLAST", cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Ablation A2",
		Title:  "Share of queries answered by context encoding alone (QBLAST)",
		Header: []string{"run size (nR)", "context-only share"},
	}
	skel, err := label.BFS{}.Build(s.Graph)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	for _, sr := range makeRuns(s, cfg.Sizes, cfg.Seed+400) {
		l, err := core.LabelRunWithPlan(sr.r, sr.truth, skel)
		if err != nil {
			return nil, err
		}
		n := sr.r.NumVertices()
		hits, total := 0, 0
		for q := 0; q < min(cfg.Queries, 200_000); q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			total++
			if l.AnsweredByContext(u, v) {
				hits++
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n), fmtF(float64(hits) / float64(total)),
		})
	}
	return res, nil
}

// DataOverhead measures the Section 6 data labels: label length factor
// (k+1) and data-dependency query cost versus the fan-out of shared items.
func DataOverhead(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	s, err := workload.StandIn("QBLAST", cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	target := cfg.Sizes[len(cfg.Sizes)/2]
	r, _ := run.GenerateSized(s, rng, target)
	skel, err := label.TCM{}.Build(s.Graph)
	if err != nil {
		return nil, err
	}
	mod, err := core.LabelRun(r, skel)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Section 6",
		Title:  fmt.Sprintf("Data provenance labels (QBLAST, nR=%d)", r.NumVertices()),
		Header: []string{"share prob", "items", "max fan-in k", "label factor (k+1)", "data query ns"},
		Notes:  []string{"data labels cost a factor k+1 in length and k in query time over module labels"},
	}
	for _, shareProb := range []float64{0, 0.25, 0.5, 1} {
		ann := provdata.RandomItems(r, rng, 1.2, shareProb)
		dl, err := provdata.LabelData(ann, mod)
		if err != nil {
			return nil, err
		}
		nItems := len(ann.Items)
		q := min(cfg.Queries, 100_000)
		pairs := workload.QueryPairs(rng, nItems, min(q, 1<<16))
		start := time.Now()
		total := 0
		for total < q {
			for _, p := range pairs {
				dl.DependsOn(provdata.ItemID(p[0]), provdata.ItemID(p[1]))
				total++
				if total >= q {
					break
				}
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(total)
		k := ann.MaxFanIn()
		res.Rows = append(res.Rows, []string{
			fmtF(shareProb), fmt.Sprint(nItems), fmt.Sprint(k), fmt.Sprint(k + 1), fmtF(ns),
		})
	}
	return res, nil
}

// OnlineAppend measures the Section 9 prototype: cost of labeling module
// executions online as the run grows, versus relabeling from scratch.
func OnlineAppend(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	s, err := workload.StandIn("QBLAST", cfg.Seed)
	if err != nil {
		return nil, err
	}
	skel, err := label.TCM{}.Build(s.Graph)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Section 9",
		Title:  "Online labeling prototype: incremental append vs full relabel (QBLAST)",
		Header: []string{"run size (nR)", "online total (ms)", "ns/exec", "renumbers", "full relabel (ms)"},
		Notes:  []string{"online labels are available immediately after each module execution"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	for _, sr := range makeRuns(s, cfg.Sizes, cfg.Seed+500) {
		sr := sr
		var l *online.Labeler
		onlineTime := timeIt(5*time.Millisecond, func() {
			var err error
			l, err = online.ReplayPlan(s, skel, sr.truth, sr.r.Origin)
			if err != nil {
				panic(err)
			}
		})
		relabel := timeIt(5*time.Millisecond, func() {
			if _, err := core.LabelRun(sr.r, skel); err != nil {
				panic(err)
			}
		})
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(sr.r.NumVertices()),
			fmtMS(onlineTime),
			fmtF(float64(onlineTime.Nanoseconds()) / float64(sr.r.NumVertices())),
			fmt.Sprint(l.Renumbers()),
			fmtMS(relabel),
		})
		_ = rng
	}
	return res, nil
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	Name string
	Run  func(Config) (*Result, error)
}

// All returns every experiment in report order.
func All() []Experiment {
	return []Experiment{
		{"table1", Table1},
		{"table2", Table2},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"fig15", Fig15},
		{"fig16", Fig16},
		{"fig17", Fig17},
		{"fig18", Fig18},
		{"fig19", Fig19},
		{"fig20", Fig20},
		{"schemes", SpecSchemes},
		{"ablation-spec", AblationSpecSchemes},
		{"ablation-context", AblationContextShare},
		{"data", DataOverhead},
		{"online", OnlineAppend},
	}
}

// ByName returns the experiment with the given name.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
