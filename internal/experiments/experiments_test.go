package experiments_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func quickCfg() experiments.Config {
	return experiments.Config{
		Seed:    7,
		Quick:   true,
		Sizes:   []int{100, 400, 1600},
		Queries: 5_000,
	}
}

func runExp(t *testing.T, name string) *experiments.Result {
	t.Helper()
	e, err := experiments.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(res.Rows) == 0 || len(res.Header) == 0 {
		t.Fatalf("%s: empty result", name)
	}
	for _, row := range res.Rows {
		if len(row) != len(res.Header) {
			t.Fatalf("%s: row width %d != header width %d", name, len(row), len(res.Header))
		}
	}
	return res
}

func cell(t *testing.T, res *experiments.Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(res.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, res.Rows[row][col], err)
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range experiments.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res := runExp(t, e.Name)
			var text, csv bytes.Buffer
			if err := res.WriteText(&text); err != nil {
				t.Fatal(err)
			}
			if err := res.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(text.String(), res.ID) {
				t.Error("text output missing ID")
			}
			if len(strings.Split(strings.TrimSpace(csv.String()), "\n")) != len(res.Rows)+1 {
				t.Error("csv row count wrong")
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := experiments.ByName("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res := runExp(t, "table1")
	want := [][]string{
		{"EBI", "29", "31", "4", "2"},
		{"PubMed", "35", "45", "3", "3"},
		{"QBLAST", "58", "72", "6", "3"},
		{"BioAID", "71", "87", "10", "4"},
		{"ProScan", "89", "119", "9", "4"},
		{"ProDisc", "111", "158", "9", "3"},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("row count %d", len(res.Rows))
	}
	for i, w := range want {
		for j := range w {
			if res.Rows[i][j] != w[j] {
				t.Errorf("row %d col %d = %q, want %q", i, j, res.Rows[i][j], w[j])
			}
		}
	}
}

// Figure 12's shape: max label length grows sub-linearly (roughly
// logarithmically) and stays under 3·log2(nR) + log2(nG).
func TestFig12Shape(t *testing.T) {
	res := runExp(t, "fig12")
	for i := range res.Rows {
		nR := cell(t, res, i, 0)
		maxBits := cell(t, res, i, 1)
		avgBits := cell(t, res, i, 2)
		bound := 3*log2ceil(int(nR)) + 6 // log2(58) < 6
		if maxBits > float64(bound) {
			t.Errorf("nR=%v: max %v exceeds bound %v", nR, maxBits, bound)
		}
		if avgBits > maxBits {
			t.Errorf("nR=%v: avg %v > max %v", nR, avgBits, maxBits)
		}
	}
	// Growth from first to last should be a few bits, not a factor.
	first, last := cell(t, res, 0, 1), cell(t, res, len(res.Rows)-1, 1)
	if last > 2.5*first {
		t.Errorf("label length not logarithmic: %v -> %v", first, last)
	}
}

func log2ceil(n int) int {
	b := 0
	for x := n - 1; x > 0; x >>= 1 {
		b++
	}
	return b
}

// Figure 17's shape at quick scale: TCM+SKL beats direct BFS by a wide
// margin on the largest run.
func TestFig17Shape(t *testing.T) {
	res := runExp(t, "fig17")
	lastRow := len(res.Rows) - 1
	tcmSkl := cell(t, res, lastRow, 1)
	bfsDirect := cell(t, res, lastRow, 4)
	if bfsDirect < 5*tcmSkl {
		t.Errorf("BFS direct (%v ns) should trail TCM+SKL (%v ns) by a wide margin", bfsDirect, tcmSkl)
	}
}

// Section 7's table shape: 6 workflows × 7 schemes; TCM carries the
// largest index, BFS/DFS none.
func TestSchemesTableShape(t *testing.T) {
	res := runExp(t, "schemes")
	if len(res.Rows) != 6*7 {
		t.Fatalf("rows = %d, want 42", len(res.Rows))
	}
	perWorkflow := make(map[string]map[string]float64)
	for i := range res.Rows {
		wf, scheme := res.Rows[i][0], res.Rows[i][1]
		if perWorkflow[wf] == nil {
			perWorkflow[wf] = make(map[string]float64)
		}
		perWorkflow[wf][scheme] = cell(t, res, i, 2)
	}
	for wf, bits := range perWorkflow {
		if bits["BFS"] != 0 || bits["DFS"] != 0 {
			t.Errorf("%s: search schemes should have zero index", wf)
		}
		for scheme, b := range bits {
			if scheme == "TCM" || scheme == "BFS" || scheme == "DFS" {
				continue
			}
			if b <= 0 {
				t.Errorf("%s/%s: index bits %v should be positive", wf, scheme, b)
			}
		}
	}
}

// Ablation A2's shape: the context-only share is monotone-ish increasing
// from the smallest to the largest run.
func TestContextShareIncreases(t *testing.T) {
	res := runExp(t, "ablation-context")
	first := cell(t, res, 0, 1)
	last := cell(t, res, len(res.Rows)-1, 1)
	if last <= first {
		t.Errorf("context-only share should grow: %v -> %v", first, last)
	}
}
