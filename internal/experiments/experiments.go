// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 8), plus the ablations listed in DESIGN.md. Each
// driver returns a Result that renders as aligned text or CSV; the
// provbench command exposes them all.
//
// Absolute times differ from the paper (Go on modern Linux vs Java on a
// 2.8GHz Pentium under Windows XP); the reproduced quantities are the
// curve shapes: logarithmic label growth, linear construction time, flat
// or decreasing query time, and the orderings and crossovers between
// schemes.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/plan"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/workload"
)

// Config controls workload scale. The zero value is filled with defaults
// by Normalize.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Sizes is the run-size sweep (vertices). Defaults to the paper's
	// 0.1K..102.4K doubling sweep, or a reduced sweep under Quick.
	Sizes []int
	// Queries is the number of random reachability queries per
	// measurement point (the paper uses 10⁶).
	Queries int
	// Quick caps sizes and query counts for smoke tests.
	Quick bool
}

// Normalize fills defaults and returns the effective config.
func (c Config) Normalize() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Sizes) == 0 {
		if c.Quick {
			c.Sizes = []int{100, 400, 1600, 6400}
		} else {
			c.Sizes = workload.RunSizes()
		}
	}
	if c.Queries == 0 {
		if c.Quick {
			c.Queries = 20_000
		} else {
			c.Queries = 1_000_000
		}
	}
	return c
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteText renders the result as an aligned text table.
func (r *Result) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Header, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the result as CSV (header row first).
func (r *Result) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// --- shared measurement helpers ---

// sizedRun is one generated run with its ground-truth plan.
type sizedRun struct {
	target int
	r      *run.Run
	truth  *plan.Plan
}

// makeRuns generates one run per requested size.
func makeRuns(s *spec.Spec, sizes []int, seed int64) []sizedRun {
	rng := rand.New(rand.NewSource(seed))
	out := make([]sizedRun, 0, len(sizes))
	for _, target := range sizes {
		r, truth := run.GenerateSized(s, rng, target)
		out = append(out, sizedRun{target: target, r: r, truth: truth})
	}
	return out
}

// timeIt measures fn, repeating until at least minDuration has elapsed,
// and returns the mean duration per call.
func timeIt(minDuration time.Duration, fn func()) time.Duration {
	reps := 0
	start := time.Now()
	for {
		fn()
		reps++
		if elapsed := time.Since(start); elapsed >= minDuration && reps >= 1 {
			return elapsed / time.Duration(reps)
		}
		if reps >= 1000 {
			return time.Since(start) / time.Duration(reps)
		}
	}
}

// queryNanos measures the mean time of one reachability query over q
// random pairs against the given predicate.
func queryNanos(rng *rand.Rand, n, q int, reachable func(u, v dag.VertexID) bool) float64 {
	pairs := workload.QueryPairs(rng, n, min(q, 1<<16))
	// Warm once.
	for _, p := range pairs[:min(len(pairs), 128)] {
		reachable(dag.VertexID(p[0]), dag.VertexID(p[1]))
	}
	total := 0
	start := time.Now()
	for total < q {
		for _, p := range pairs {
			reachable(dag.VertexID(p[0]), dag.VertexID(p[1]))
			total++
			if total >= q {
				break
			}
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(total)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fmtF renders a float compactly.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// fmtMS renders a duration in milliseconds.
func fmtMS(d time.Duration) string {
	return fmtF(float64(d.Nanoseconds()) / 1e6)
}

// buildSKL labels a run with the given skeleton scheme, returning the
// labeling, the skeleton build time and the run labeling time.
func buildSKL(r *run.Run, scheme label.Scheme) (*core.Labeling, time.Duration, time.Duration, error) {
	var skel label.Labeling
	var err error
	skelTime := timeIt(time.Millisecond, func() {
		skel, err = scheme.Build(r.Spec.Graph)
	})
	if err != nil {
		return nil, 0, 0, err
	}
	var l *core.Labeling
	start := time.Now()
	l, err = core.LabelRun(r, skel)
	sklTime := time.Since(start)
	if err != nil {
		return nil, 0, 0, err
	}
	return l, skelTime, sklTime, nil
}

// log2 of n as float.
func log2(n int) float64 { return math.Log2(float64(n)) }
