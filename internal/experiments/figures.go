package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/workload"
)

// qblast returns the QBLAST stand-in used by Figures 12-14.
func qblast(cfg Config) (*sizedRunSet, error) {
	s, err := workload.StandIn("QBLAST", cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &sizedRunSet{spec: "QBLAST", runs: makeRuns(s, cfg.Sizes, cfg.Seed+100)}, nil
}

type sizedRunSet struct {
	spec string
	runs []sizedRun
}

// Fig12 regenerates Figure 12: maximum and average label length versus
// run size for QBLAST under TCM+SKL, against the 3·log n asymptote.
func Fig12(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	set, err := qblast(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 12",
		Title:  "Label length for QBLAST (bits)",
		Header: []string{"run size (nR)", "max label", "avg label", "3·log2(nR)"},
		Notes:  []string{"max stays below 3·log nR + log nG and grows logarithmically"},
	}
	skel, err := label.TCM{}.Build(setSpec(set))
	if err != nil {
		return nil, err
	}
	for _, sr := range set.runs {
		l, err := core.LabelRun(sr.r, skel)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(sr.r.NumVertices()),
			fmt.Sprint(l.MaxLabelBits()),
			fmtF(l.AvgLabelBits()),
			fmtF(3 * log2(sr.r.NumVertices())),
		})
	}
	return res, nil
}

func setSpec(set *sizedRunSet) *dag.Graph { return set.runs[0].r.Spec.Graph }

// Fig13 regenerates Figure 13: construction time versus run size, in the
// default setting (plan reconstructed from the graph) and with the
// execution plan and context given.
func Fig13(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	set, err := qblast(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 13",
		Title:  "Construction time for QBLAST (ms)",
		Header: []string{"run size (nR)", "default (ms)", "with plan+context (ms)", "ns/vertex default"},
		Notes:  []string{"both settings scale linearly; plan extraction dominates the default setting"},
	}
	skel, err := label.TCM{}.Build(setSpec(set))
	if err != nil {
		return nil, err
	}
	for _, sr := range set.runs {
		sr := sr
		deflt := timeIt(5*time.Millisecond, func() {
			if _, err := core.LabelRun(sr.r, skel); err != nil {
				panic(err)
			}
		})
		withPlan := timeIt(5*time.Millisecond, func() {
			if _, err := core.LabelRunWithPlan(sr.r, sr.truth, skel); err != nil {
				panic(err)
			}
		})
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(sr.r.NumVertices()),
			fmtMS(deflt),
			fmtMS(withPlan),
			fmtF(float64(deflt.Nanoseconds()) / float64(sr.r.NumVertices())),
		})
	}
	return res, nil
}

// Fig14 regenerates Figure 14: query time versus run size for TCM+SKL
// (constant).
func Fig14(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	set, err := qblast(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 14",
		Title:  "Query time for QBLAST, TCM+SKL (ns/query)",
		Header: []string{"run size (nR)", "ns/query"},
		Notes:  []string{"flat across three orders of magnitude of run size"},
	}
	skel, err := label.TCM{}.Build(setSpec(set))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for _, sr := range set.runs {
		l, err := core.LabelRun(sr.r, skel)
		if err != nil {
			return nil, err
		}
		ns := queryNanos(rng, sr.r.NumVertices(), cfg.Queries, l.Reachable)
		res.Rows = append(res.Rows, []string{fmt.Sprint(sr.r.NumVertices()), fmtF(ns)})
	}
	return res, nil
}

// fig15Spec builds the synthetic workload shared by Figures 15-17:
// nG=100, mG=200, |TG|=10, [TG]=4.
func fig15Spec(cfg Config) (*sizedRunSet, error) {
	s, err := workload.Synthesize(rand.New(rand.NewSource(cfg.Seed)), workload.Params{
		NG: 100, MG: 200, TGSize: 10, TGDepth: 4,
	})
	if err != nil {
		return nil, err
	}
	return &sizedRunSet{spec: "synthetic-100", runs: makeRuns(s, cfg.Sizes, cfg.Seed+200)}, nil
}

// Fig15 regenerates Figure 15: maximum label length with amortized
// skeleton storage, TCM+SKL over k=1,2,10 runs versus BFS+SKL.
func Fig15(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	set, err := fig15Spec(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 15",
		Title:  "Amortized max label length (bits), synthetic nG=100 mG=200",
		Header: []string{"run size (nR)", "TCM+SKL k=1", "TCM+SKL k=2", "TCM+SKL k=10", "BFS+SKL"},
		Notes: []string{
			"TCM+SKL charges nG²/(k·nR) amortized bits for the closure matrix; the gap to BFS+SKL vanishes for large runs",
		},
	}
	skel, err := label.TCM{}.Build(setSpec(set))
	if err != nil {
		return nil, err
	}
	for _, sr := range set.runs {
		l, err := core.LabelRun(sr.r, skel)
		if err != nil {
			return nil, err
		}
		base := float64(l.MaxLabelBits())
		nR := float64(sr.r.NumVertices())
		amort := func(k float64) float64 {
			return base + float64(skel.IndexBits())/(k*nR)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(sr.r.NumVertices()),
			fmtF(amort(1)), fmtF(amort(2)), fmtF(amort(10)), fmtF(base),
		})
	}
	return res, nil
}

// Fig16 regenerates Figure 16: amortized construction time, TCM+SKL
// (k=1,2,10), BFS+SKL, and TCM applied directly to the run (capped at
// 25.6K vertices as in the paper's memory-bound runs).
func Fig16(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	set, err := fig15Spec(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 16",
		Title:  "Amortized construction time (ms), synthetic nG=100 mG=200",
		Header: []string{"run size (nR)", "TCM+SKL k=1", "TCM+SKL k=2", "TCM+SKL k=10", "BFS+SKL", "TCM (direct)"},
		Notes:  []string{"TCM direct is polynomial and only tractable to 25.6K vertices (as in the paper)"},
	}
	spc := set.runs[0].r.Spec
	var skel label.Labeling
	skelBuild := timeIt(5*time.Millisecond, func() {
		var err error
		skel, err = (label.TCM{}).Build(spc.Graph)
		if err != nil {
			panic(err)
		}
	})
	bfsSkel, err := label.BFS{}.Build(spc.Graph)
	if err != nil {
		return nil, err
	}
	for _, sr := range set.runs {
		sr := sr
		sklTime := timeIt(5*time.Millisecond, func() {
			if _, err := core.LabelRun(sr.r, skel); err != nil {
				panic(err)
			}
		})
		bfsTime := timeIt(5*time.Millisecond, func() {
			if _, err := core.LabelRun(sr.r, bfsSkel); err != nil {
				panic(err)
			}
		})
		amort := func(k float64) string {
			return fmtF(float64(sklTime.Nanoseconds())/1e6 + float64(skelBuild.Nanoseconds())/1e6/k)
		}
		direct := "-"
		if sr.r.NumVertices() <= 25_600 {
			d := timeIt(5*time.Millisecond, func() {
				if _, ok := sr.r.Graph.TransitiveClosure(); !ok {
					panic("cyclic run")
				}
			})
			direct = fmtMS(d)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(sr.r.NumVertices()),
			amort(1), amort(2), amort(10),
			fmtMS(bfsTime),
			direct,
		})
	}
	return res, nil
}

// Fig17 regenerates Figure 17: query time for TCM+SKL, BFS+SKL, TCM
// (direct) and BFS (direct).
func Fig17(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	set, err := fig15Spec(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 17",
		Title:  "Query time (ns/query), synthetic nG=100 mG=200",
		Header: []string{"run size (nR)", "TCM+SKL", "BFS+SKL", "TCM (direct)", "BFS (direct)"},
		Notes: []string{
			"TCM+SKL and TCM are flat; BFS+SKL *decreases* with run size (more queries decided by context alone);",
			"BFS grows linearly and trails by orders of magnitude",
		},
	}
	spc := set.runs[0].r.Spec
	tcmSkel, err := label.TCM{}.Build(spc.Graph)
	if err != nil {
		return nil, err
	}
	bfsSkel, err := label.BFS{}.Build(spc.Graph)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	for _, sr := range set.runs {
		nR := sr.r.NumVertices()
		lt, err := core.LabelRun(sr.r, tcmSkel)
		if err != nil {
			return nil, err
		}
		lb, err := core.LabelRunWithPlan(sr.r, sr.truth, bfsSkel)
		if err != nil {
			return nil, err
		}
		tcmSklNs := queryNanos(rng, nR, cfg.Queries, lt.Reachable)
		bfsSklNs := queryNanos(rng, nR, min(cfg.Queries, 100_000), lb.Reachable)
		direct := "-"
		if nR <= 25_600 {
			if closure, ok := sr.r.Graph.TransitiveClosure(); ok {
				direct = fmtF(queryNanos(rng, nR, cfg.Queries, closure.Reachable))
			}
		}
		searcher := dag.NewSearcher(sr.r.Graph)
		bfsQueries := min(cfg.Queries, max(200, 2_000_000/nR))
		bfsNs := queryNanos(rng, nR, bfsQueries, searcher.ReachableBFS)
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(nR), fmtF(tcmSklNs), fmtF(bfsSklNs), direct, fmtF(bfsNs),
		})
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// figSpecSweep builds the three specs of Figures 18-20: nG in {50, 100,
// 200} with mG/nG=2, |TG|=10, [TG]=4.
func figSpecSweep(cfg Config) ([]*sizedRunSet, error) {
	var out []*sizedRunSet
	for i, nG := range []int{50, 100, 200} {
		s, err := workload.Synthesize(rand.New(rand.NewSource(cfg.Seed+int64(i))), workload.Params{
			NG: nG, MG: 2 * nG, TGSize: 10, TGDepth: 4,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, &sizedRunSet{
			spec: fmt.Sprintf("nG=%d", nG),
			runs: makeRuns(s, cfg.Sizes, cfg.Seed+300+int64(i)),
		})
	}
	return out, nil
}

// Fig18 regenerates Figure 18: amortized max label length (k=2) for
// TCM+SKL across specification sizes.
func Fig18(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	sets, err := figSpecSweep(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 18",
		Title:  "Influence of specification: amortized max label length, TCM+SKL, k=2 (bits)",
		Header: []string{"run size (nR)", "nG=50", "nG=100", "nG=200"},
		Notes: []string{
			"small specs win for small runs (cheaper skeleton storage) and lose slightly for large runs (larger plans)",
		},
	}
	type point struct {
		nR   int
		bits float64
	}
	cols := make([][]point, len(sets))
	for i, set := range sets {
		skel, err := label.TCM{}.Build(set.runs[0].r.Spec.Graph)
		if err != nil {
			return nil, err
		}
		for _, sr := range set.runs {
			l, err := core.LabelRun(sr.r, skel)
			if err != nil {
				return nil, err
			}
			bits := float64(l.MaxLabelBits()) + float64(skel.IndexBits())/(2*float64(sr.r.NumVertices()))
			cols[i] = append(cols[i], point{sr.r.NumVertices(), bits})
		}
	}
	for j := range cols[0] {
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(cfg.Sizes[j]),
			fmtF(cols[0][j].bits), fmtF(cols[1][j].bits), fmtF(cols[2][j].bits),
		})
	}
	return res, nil
}

// Fig19 regenerates Figure 19: amortized construction time (k=2) for
// TCM+SKL across specification sizes.
func Fig19(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	sets, err := figSpecSweep(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 19",
		Title:  "Influence of specification: amortized construction time, TCM+SKL, k=2 (ms)",
		Header: []string{"run size (nR)", "nG=50", "nG=100", "nG=200"},
	}
	cols := make([][]string, len(sets))
	for i, set := range sets {
		spc := set.runs[0].r.Spec
		var skel label.Labeling
		skelBuild := timeIt(2*time.Millisecond, func() {
			var err error
			skel, err = (label.TCM{}).Build(spc.Graph)
			if err != nil {
				panic(err)
			}
		})
		for _, sr := range set.runs {
			sr := sr
			sklTime := timeIt(5*time.Millisecond, func() {
				if _, err := core.LabelRun(sr.r, skel); err != nil {
					panic(err)
				}
			})
			total := float64(sklTime.Nanoseconds())/1e6 + float64(skelBuild.Nanoseconds())/1e6/2
			cols[i] = append(cols[i], fmtF(total))
		}
	}
	for j := range cols[0] {
		res.Rows = append(res.Rows, []string{fmt.Sprint(cfg.Sizes[j]), cols[0][j], cols[1][j], cols[2][j]})
	}
	return res, nil
}

// Fig20 regenerates Figure 20: query time for BFS+SKL across
// specification sizes (decreasing in run size, increasing in nG).
func Fig20(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	sets, err := figSpecSweep(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Figure 20",
		Title:  "Influence of specification: query time, BFS+SKL (ns/query)",
		Header: []string{"run size (nR)", "nG=50", "nG=100", "nG=200"},
		Notes:  []string{"query time falls with run size and rises with spec size (graph search on G dominates)"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	cols := make([][]string, len(sets))
	for i, set := range sets {
		skel, err := label.BFS{}.Build(set.runs[0].r.Spec.Graph)
		if err != nil {
			return nil, err
		}
		for _, sr := range set.runs {
			l, err := core.LabelRunWithPlan(sr.r, sr.truth, skel)
			if err != nil {
				return nil, err
			}
			ns := queryNanos(rng, sr.r.NumVertices(), min(cfg.Queries, 100_000), l.Reachable)
			cols[i] = append(cols[i], fmtF(ns))
		}
	}
	for j := range cols[0] {
		res.Rows = append(res.Rows, []string{fmt.Sprint(cfg.Sizes[j]), cols[0][j], cols[1][j], cols[2][j]})
	}
	return res, nil
}
