package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/workload"
)

// Table1 regenerates Table 1: characteristics of the six real-life
// scientific workflows (stand-ins with exactly the published parameters).
func Table1(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{
		ID:     "Table 1",
		Title:  "Characteristics of real-life scientific workflows (synthesized stand-ins)",
		Header: []string{"workflow", "nG", "mG", "|TG|", "[TG]"},
		Notes: []string{
			"stand-ins synthesized to the exact published parameters (see DESIGN.md substitution note)",
		},
	}
	for _, w := range workload.RealWorkflows() {
		s, err := workload.StandIn(w.Name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			w.Name,
			fmt.Sprint(s.NumVertices()),
			fmt.Sprint(s.NumEdges()),
			fmt.Sprint(s.Hier.NumNodes()),
			fmt.Sprint(s.Hier.MaxDepth),
		})
	}
	return res, nil
}

// Table2 regenerates Table 2: the complexity comparison with amortized
// cost, as formulas plus an empirical spot check at one run size.
func Table2(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{
		ID:    "Table 2",
		Title: "Complexity comparison (with amortized cost over k runs)",
		Header: []string{
			"scheme", "label length (bits)", "construction time", "query time",
		},
		Rows: [][]string{
			{"TCM+SKL", "3 log nR + log nG + nG²/(k·nR)", "O(mR + nR + mG·nG/k)", "O(1)"},
			{"BFS+SKL", "3 log nR + log nG", "O(mR + nR)", "O(mG + nG)"},
			{"TCM", "nR", "O(mR × nR)", "O(1)"},
			{"BFS", "0", "0", "O(mR + nR)"},
		},
	}
	// Empirical spot check: one synthetic workload at a mid-size run.
	s, err := workload.Synthesize(rand.New(rand.NewSource(cfg.Seed)), workload.Params{
		NG: 100, MG: 200, TGSize: 10, TGDepth: 4,
	})
	if err != nil {
		return nil, err
	}
	target := cfg.Sizes[len(cfg.Sizes)/2]
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	r, _ := run.GenerateSized(s, rng, target)
	nR := r.NumVertices()
	q := min(cfg.Queries, 200_000)

	l, skelT, sklT, err := buildSKL(r, label.TCM{})
	if err != nil {
		return nil, err
	}
	tcmSklQ := queryNanos(rng, nR, q, l.Reachable)
	lb, _, sklTB, err := buildSKL(r, label.BFS{})
	if err != nil {
		return nil, err
	}
	bfsSklQ := queryNanos(rng, nR, min(q, 50_000), lb.Reachable)
	res.Notes = append(res.Notes,
		fmt.Sprintf("measured at nR=%d (nG=100, mG=200): TCM+SKL %d bits max, build %v(spec)+%v(run), %.0f ns/query",
			nR, l.MaxLabelBits(), skelT.Round(time.Microsecond), sklT.Round(time.Microsecond), tcmSklQ),
		fmt.Sprintf("BFS+SKL: %d bits max, build %v, %.0f ns/query",
			lb.MaxLabelBits(), sklTB.Round(time.Microsecond), bfsSklQ),
	)
	// Direct schemes on the run, kept small enough to be tractable.
	if nR <= 30_000 {
		start := time.Now()
		closure, ok := r.Graph.TransitiveClosure()
		tcmBuild := time.Since(start)
		if ok {
			tcmQ := queryNanos(rng, nR, q, closure.Reachable)
			res.Notes = append(res.Notes, fmt.Sprintf(
				"TCM on the run: %d bits/vertex, build %v, %.0f ns/query", nR, tcmBuild.Round(time.Microsecond), tcmQ))
		}
		searcher := dag.NewSearcher(r.Graph)
		bfsQ := queryNanos(rng, nR, min(q, 2_000), searcher.ReachableBFS)
		res.Notes = append(res.Notes, fmt.Sprintf("BFS on the run: 0 bits, %.0f ns/query", bfsQ))
	}
	return res, nil
}

// compile-time interface checks for the measurement plumbing.
var _ = core.Label{}
