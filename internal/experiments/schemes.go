package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/workload"
)

// SpecSchemes regenerates the Section 7 trade-off discussion as a table:
// every available specification labeling scheme applied to every Table-1
// workflow, reporting index size, construction time and query time on
// the specification itself. TCM and BFS are the paper's two extremes
// ("an expensive encoding and decoding step respectively"); the index
// families in between show the trade-off the paper's related work
// surveys.
func SpecSchemes(cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{
		ID:     "Section 7",
		Title:  "Specification labeling schemes across the Table-1 workflows",
		Header: []string{"workflow", "scheme", "index bits", "build", "query ns"},
		Notes: []string{
			"TCM: maximal index, O(1) queries; BFS/DFS: no index, linear queries; the others trade between them",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 21))
	for _, w := range workload.RealWorkflows() {
		s, err := workload.StandIn(w.Name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		n := s.NumVertices()
		for _, scheme := range label.All() {
			var l label.Labeling
			build := timeIt(time.Millisecond, func() {
				var err2 error
				l, err2 = scheme.Build(s.Graph)
				if err2 != nil {
					panic(err2)
				}
			})
			q := min(cfg.Queries, 50_000)
			ns := queryNanos(rng, n, q, func(u, v dag.VertexID) bool { return l.Reachable(u, v) })
			res.Rows = append(res.Rows, []string{
				w.Name, scheme.Name(),
				fmt.Sprint(l.IndexBits()),
				build.Round(time.Microsecond).String(),
				fmtF(ns),
			})
		}
	}
	return res, nil
}
