package provdata_test

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/online"
	"repro/internal/provdata"
	"repro/internal/spec"
)

// TestStreamOverOnlineLabeler exercises the §6 + §9 combination: data
// items registered and queried while the "workflow" is still growing.
func TestStreamOverOnlineLabeler(t *testing.T) {
	s := spec.PaperSpec()
	skel, err := label.TCM{}.Build(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	l := online.New(s, skel)
	root := l.Root()
	ds := provdata.NewStream(l)

	orig := func(name spec.ModuleName) dag.VertexID {
		v, _ := s.VertexOf(name)
		return v
	}
	var f1, l1 int
	for i, sub := range s.Subgraphs {
		switch {
		case sub.Kind == spec.Fork && s.NameOf(sub.Source) == "a":
			f1 = i + 1
		case sub.Kind == spec.Loop && s.NameOf(sub.Source) == "b":
			l1 = i + 1
		}
	}

	// a executes and writes x1, read (later) by both fork copies of b.
	a1, err := l.AddExec(root, orig("a"))
	if err != nil {
		t.Fatal(err)
	}
	x1 := ds.Add("x1", a1)

	// First fork copy: b1 reads x1, writes x3 to c1.
	f1c1, _ := l.StartCopy(root, f1)
	l1c1, _ := l.StartCopy(f1c1, l1)
	b1, _ := l.AddExec(l1c1, orig("b"))
	ds.AddReader(x1, b1)
	c1, _ := l.AddExec(l1c1, orig("c"))
	x3 := ds.Add("x3", b1, c1)

	// Mid-run data query: x3 already depends on x1.
	if !ds.DependsOn(x3, x1) {
		t.Error("x3 should depend on x1 mid-run")
	}
	if ds.DependsOn(x1, x3) {
		t.Error("x1 should not depend on x3")
	}

	// Second fork copy: b3 also reads x1 and writes x6' to c3.
	f1c2, _ := l.StartCopy(root, f1)
	l1c3, _ := l.StartCopy(f1c2, l1)
	b3, _ := l.AddExec(l1c3, orig("b"))
	ds.AddReader(x1, b3)
	c3, _ := l.AddExec(l1c3, orig("c"))
	x6 := ds.Add("x6", c3)
	_ = x6

	// x6 (second copy) depends on x1 via b3 but NOT on x3 (parallel copy).
	if !ds.DependsOn(x6, x1) {
		t.Error("x6 should depend on x1 (b3 reaches c3)")
	}
	if ds.DependsOn(x6, x3) {
		t.Error("x6 should not depend on x3 (parallel fork copies)")
	}
	// Module/data queries.
	if !ds.DataDependsOnModule(x6, b3) || ds.DataDependsOnModule(x6, b1) {
		t.Error("DataDependsOnModule wrong")
	}
	if !ds.ModuleDependsOnData(c1, x1) || ds.ModuleDependsOnData(b1, x3) {
		t.Error("ModuleDependsOnData wrong")
	}
	if ds.NumItems() != 3 {
		t.Errorf("NumItems = %d", ds.NumItems())
	}
	if ds.Item(x1).Name != "x1" || len(ds.Item(x1).Consumers) != 2 {
		t.Error("Item accessor wrong")
	}
	// Auto-naming.
	auto := ds.Add("", c3)
	if ds.Item(auto).Name == "" {
		t.Error("auto name missing")
	}
}
