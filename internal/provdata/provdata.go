// Package provdata implements the data-provenance extension of Section 6:
// data items flowing over the run's data channels, data labels derived
// from module reachability labels, and the dependency queries between
// data items and between data and modules.
package provdata

import (
	"fmt"
	"math/rand"

	"repro/internal/dag"
	"repro/internal/run"
)

// ItemID identifies a data item within one annotated run.
type ItemID int32

// Item is a data item: produced (written) by exactly one module execution
// and consumed (read) by one or more downstream module executions.
type Item struct {
	ID ItemID
	// Name is an optional human-readable identifier (x1, x2, ...).
	Name string
	// Producer is Output(x): the unique run vertex that wrote the item.
	Producer dag.VertexID
	// Consumers is Inputs(x): the run vertices that read the item. For
	// every consumer v the edge (Producer, v) must exist in the run graph
	// (the item flows over those data channels).
	Consumers []dag.VertexID
}

// Annotation attaches data items to a run.
type Annotation struct {
	Run   *run.Run
	Items []Item
}

// Validate checks that every item flows over existing data channels and
// has at least one consumer.
func (a *Annotation) Validate() error {
	n := dag.VertexID(a.Run.NumVertices())
	for i, it := range a.Items {
		if it.ID != ItemID(i) {
			return fmt.Errorf("provdata: item %d has ID %d", i, it.ID)
		}
		if it.Producer < 0 || it.Producer >= n {
			return fmt.Errorf("provdata: item %d has invalid producer %d", i, it.Producer)
		}
		if len(it.Consumers) == 0 {
			return fmt.Errorf("provdata: item %d has no consumers", i)
		}
		for _, c := range it.Consumers {
			if c < 0 || c >= n {
				return fmt.Errorf("provdata: item %d has invalid consumer %d", i, c)
			}
			if !a.Run.Graph.HasEdge(it.Producer, c) {
				return fmt.Errorf("provdata: item %d flows over nonexistent channel %d->%d",
					i, it.Producer, c)
			}
		}
	}
	return nil
}

// ModuleReachability answers reachability between run vertices; any
// labeling of the run (e.g. *core.Labeling) satisfies it.
type ModuleReachability interface {
	Reachable(u, v dag.VertexID) bool
}

// Labeling answers data-provenance queries using the labels of Section 6:
// each item is labeled by the reachability label of its producer and the
// set of labels of its consumers.
type Labeling struct {
	ann   *Annotation
	reach ModuleReachability
}

// LabelData combines an annotated run with a module labeling.
func LabelData(a *Annotation, reach ModuleReachability) (*Labeling, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &Labeling{ann: a, reach: reach}, nil
}

// NumItems returns the number of labeled data items.
func (l *Labeling) NumItems() int { return len(l.ann.Items) }

// Item returns the item with the given ID.
func (l *Labeling) Item(x ItemID) Item { return l.ann.Items[x] }

// DependsOn reports whether data item x depends on data item y: whether y
// was used, directly or transitively, in producing x. Per Section 6 this
// holds iff some consumer of y reaches (or is) the producer of x.
func (l *Labeling) DependsOn(x, y ItemID) bool {
	ix, iy := l.ann.Items[x], l.ann.Items[y]
	for _, v := range iy.Consumers {
		if l.reach.Reachable(v, ix.Producer) {
			return true
		}
	}
	return false
}

// DataDependsOnModule reports whether data item x depends on the module
// execution v: whether v lies upstream of (or is) x's producer.
func (l *Labeling) DataDependsOnModule(x ItemID, v dag.VertexID) bool {
	return l.reach.Reachable(v, l.ann.Items[x].Producer)
}

// ModuleDependsOnData reports whether module execution v depends on data
// item x: whether some consumer of x reaches (or is) v.
func (l *Labeling) ModuleDependsOnData(v dag.VertexID, x ItemID) bool {
	for _, c := range l.ann.Items[x].Consumers {
		if l.reach.Reachable(c, v) {
			return true
		}
	}
	return false
}

// AffectedItems returns the IDs of all items that depend on item x (the
// "which downstream data was affected by this bad result" query of the
// introduction). Cost is linear in the number of items; the per-item test
// is the constant-time label comparison.
func (l *Labeling) AffectedItems(x ItemID) []ItemID {
	var out []ItemID
	for i := range l.ann.Items {
		if ItemID(i) == x {
			continue
		}
		if l.DependsOn(ItemID(i), x) {
			out = append(out, ItemID(i))
		}
	}
	return out
}

// MaxFanIn returns k = max |Inputs(x)|: the factor by which data labels
// are longer than module labels (Section 6's cost analysis).
func (a *Annotation) MaxFanIn() int {
	k := 0
	for _, it := range a.Items {
		if len(it.Consumers) > k {
			k = len(it.Consumers)
		}
	}
	return k
}

// RandomItems annotates a run with synthetic data items: each data
// channel carries one or more items, and with probability shareProb an
// item produced by a module is shared across several of its out-channels
// (one item read by multiple modules, like x1 in Figure 11).
func RandomItems(r *run.Run, rng *rand.Rand, meanPerEdge float64, shareProb float64) *Annotation {
	if meanPerEdge < 1 {
		meanPerEdge = 1
	}
	a := &Annotation{Run: r}
	newItem := func(producer dag.VertexID, consumers ...dag.VertexID) {
		id := ItemID(len(a.Items))
		a.Items = append(a.Items, Item{
			ID:        id,
			Name:      fmt.Sprintf("x%d", id+1),
			Producer:  producer,
			Consumers: consumers,
		})
	}
	p := 0.0
	if meanPerEdge > 1 {
		p = (meanPerEdge - 1) / meanPerEdge
	}
	for u := 0; u < r.NumVertices(); u++ {
		outs := r.Graph.Out(dag.VertexID(u))
		if len(outs) == 0 {
			continue
		}
		if len(outs) > 1 && rng.Float64() < shareProb {
			// One shared item read by every successor, plus per-edge items.
			consumers := append([]dag.VertexID(nil), outs...)
			newItem(dag.VertexID(u), consumers...)
		}
		for _, v := range outs {
			k := 1
			for p > 0 && rng.Float64() < p && k < 1<<16 {
				k++
			}
			for i := 0; i < k; i++ {
				newItem(dag.VertexID(u), v)
			}
		}
	}
	return a
}
