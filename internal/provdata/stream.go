package provdata

import (
	"fmt"

	"repro/internal/dag"
)

// Stream registers data items as they are produced by a still-running
// workflow and answers dependency queries immediately — the combination
// of the Section 6 data labels with the Section 9 online module labels.
// Any ModuleReachability works; pair it with *online.Labeler to label
// and query intermediate data before the run completes.
//
// Stream performs no channel validation (the run graph may not exist
// yet); producers and consumers are trusted to be real module
// executions reported by the engine.
type Stream struct {
	reach ModuleReachability
	items []Item
}

// NewStream returns an empty stream over the given module reachability.
func NewStream(reach ModuleReachability) *Stream {
	return &Stream{reach: reach}
}

// Add registers a data item written by producer and read by consumers,
// returning its ID. Consumers may be extended later with AddReader as
// more modules consume the item.
func (s *Stream) Add(name string, producer dag.VertexID, consumers ...dag.VertexID) ItemID {
	id := ItemID(len(s.items))
	if name == "" {
		name = fmt.Sprintf("x%d", id+1)
	}
	s.items = append(s.items, Item{
		ID:        id,
		Name:      name,
		Producer:  producer,
		Consumers: append([]dag.VertexID(nil), consumers...),
	})
	return id
}

// AddReader records an additional consumer of an existing item.
func (s *Stream) AddReader(x ItemID, consumer dag.VertexID) {
	s.items[x].Consumers = append(s.items[x].Consumers, consumer)
}

// NumItems returns the number of registered items.
func (s *Stream) NumItems() int { return len(s.items) }

// Item returns the item with the given ID.
func (s *Stream) Item(x ItemID) Item { return s.items[x] }

// DependsOn reports whether item x depends on item y, under the current
// (possibly still growing) run.
func (s *Stream) DependsOn(x, y ItemID) bool {
	ix, iy := s.items[x], s.items[y]
	for _, v := range iy.Consumers {
		if s.reach.Reachable(v, ix.Producer) {
			return true
		}
	}
	return false
}

// DataDependsOnModule reports whether item x depends on module execution v.
func (s *Stream) DataDependsOnModule(x ItemID, v dag.VertexID) bool {
	return s.reach.Reachable(v, s.items[x].Producer)
}

// ModuleDependsOnData reports whether module execution v depends on item x.
func (s *Stream) ModuleDependsOnData(v dag.VertexID, x ItemID) bool {
	for _, c := range s.items[x].Consumers {
		if s.reach.Reachable(c, v) {
			return true
		}
	}
	return false
}
