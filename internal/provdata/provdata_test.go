package provdata_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
)

// figure11 reproduces the Figure 11 annotation on the Figure 3 run:
// x1 shared by (a1,b1) and (a1,b3); x6 on (c3,h1).
func figure11(t *testing.T) (*run.Run, *provdata.Annotation, map[string]dag.VertexID) {
	t.Helper()
	s := spec.PaperSpec()
	et := run.SingleExec(s)
	var f1Site, l2Site *run.ExecTree
	for _, site := range et.Copies[0].Sites {
		if s.KindOf(site.HNode) == spec.Fork {
			f1Site = site
		} else {
			l2Site = site
		}
	}
	run.Duplicate(run.Duplicatable{Site: f1Site, Index: 0})
	run.Duplicate(run.Duplicatable{Site: f1Site.Copies[0].Sites[0], Index: 0})
	run.Duplicate(run.Duplicatable{Site: l2Site, Index: 0})
	run.Duplicate(run.Duplicatable{Site: l2Site.Copies[1].Sites[0], Index: 0})
	r, _ := run.MustMaterialize(s, et)
	byName := make(map[string]dag.VertexID)
	for v := 0; v < r.NumVertices(); v++ {
		byName[r.NameOf(dag.VertexID(v))] = dag.VertexID(v)
	}
	a := &provdata.Annotation{Run: r}
	add := func(name string, producer string, consumers ...string) provdata.ItemID {
		id := provdata.ItemID(len(a.Items))
		cs := make([]dag.VertexID, len(consumers))
		for i, c := range consumers {
			cs[i] = byName[c]
		}
		a.Items = append(a.Items, provdata.Item{ID: id, Name: name, Producer: byName[producer], Consumers: cs})
		return id
	}
	add("x1", "a1", "b1", "b3")
	add("x2", "a1", "b1")
	add("x3", "b1", "c1")
	add("x4", "b2", "c2")
	add("x5", "b2", "c2")
	add("x6", "c3", "h1")
	add("x7", "c3", "h1")
	add("x8", "c3", "h1")
	if err := a.Validate(); err != nil {
		t.Fatalf("figure-11 annotation invalid: %v", err)
	}
	return r, a, byName
}

func labelFigure11(t *testing.T) (*provdata.Labeling, map[string]dag.VertexID) {
	t.Helper()
	r, a, byName := figure11(t)
	skel, _ := label.TCM{}.Build(r.Spec.Graph)
	mod, err := core.LabelRun(r, skel)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := provdata.LabelData(a, mod)
	if err != nil {
		t.Fatal(err)
	}
	return dl, byName
}

func TestPaperDataQueries(t *testing.T) {
	dl, byName := labelFigure11(t)
	// Example 10: does x6 depend on x1? Inputs(x1) = {b1, b3}; b3 reaches
	// c3 = Output(x6), so yes.
	if !dl.DependsOn(5, 0) {
		t.Error("x6 should depend on x1 (b3 reaches c3)")
	}
	// Intro query 1: x8 (output of c3) on x1? Same as above — yes via b3.
	if !dl.DependsOn(7, 0) {
		t.Error("x8 should depend on x1")
	}
	// x8 on x2 (consumed only by b1, parallel to c3): no.
	if dl.DependsOn(7, 1) {
		t.Error("x8 should not depend on x2 (b1 parallel to c3)")
	}
	// Intro query 2: x4 (output of b2) on x2 (input of... x2 consumed by
	// b1; wait the intro's x2 is input to c1) — with our numbering x3 is
	// (b1,c1); x4 on x3: c1 reaches b2 via the loop, so yes.
	if !dl.DependsOn(3, 2) {
		t.Error("x4 should depend on x3 (c1 reaches b2 across loop iterations)")
	}
	// Self-dependency is not implied: x1 does not depend on itself here
	// (b1/b3 do not reach a1).
	if dl.DependsOn(0, 0) {
		t.Error("x1 should not depend on itself")
	}
	// Data-module queries: x6 depends on module b3 but not on b1.
	if !dl.DataDependsOnModule(5, byName["b3"]) {
		t.Error("x6 should depend on b3")
	}
	if dl.DataDependsOnModule(5, byName["b1"]) {
		t.Error("x6 should not depend on b1")
	}
	// Module-data: h1 depends on x1 (b1 reaches h1); c1 does not depend
	// on x6 (h1 does not reach c1).
	if !dl.ModuleDependsOnData(byName["h1"], 0) {
		t.Error("h1 should depend on x1")
	}
	if dl.ModuleDependsOnData(byName["c1"], 5) {
		t.Error("c1 should not depend on x6")
	}
}

func TestAffectedItems(t *testing.T) {
	dl, _ := labelFigure11(t)
	// Items downstream of x3 = (b1,c1): x4, x5 (b2 after the loop) and
	// x6..x8? c1 reaches b2 and c2 but NOT c3 (parallel fork copy):
	// affected = {x4, x5}.
	got := dl.AffectedItems(2)
	want := map[provdata.ItemID]bool{3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("AffectedItems(x3) = %v, want x4,x5", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("AffectedItems(x3) = %v, want x4,x5", got)
		}
	}
}

func TestValidateRejectsBadItems(t *testing.T) {
	r, a, byName := figure11(t)
	_ = byName
	t.Run("wrong ID", func(t *testing.T) {
		bad := &provdata.Annotation{Run: r, Items: []provdata.Item{{ID: 3, Producer: 0, Consumers: []dag.VertexID{1}}}}
		if err := bad.Validate(); err == nil {
			t.Error("wrong ID accepted")
		}
	})
	t.Run("no consumers", func(t *testing.T) {
		bad := &provdata.Annotation{Run: r, Items: []provdata.Item{{ID: 0, Producer: 0}}}
		if err := bad.Validate(); err == nil {
			t.Error("consumer-less item accepted")
		}
	})
	t.Run("nonexistent channel", func(t *testing.T) {
		items := append([]provdata.Item(nil), a.Items...)
		items[0].Consumers = []dag.VertexID{items[0].Producer} // self channel
		bad := &provdata.Annotation{Run: r, Items: items}
		if err := bad.Validate(); err == nil {
			t.Error("nonexistent channel accepted")
		}
	})
	t.Run("invalid producer", func(t *testing.T) {
		items := append([]provdata.Item(nil), a.Items...)
		items[0].Producer = 1000
		bad := &provdata.Annotation{Run: r, Items: items}
		if err := bad.Validate(); err == nil {
			t.Error("invalid producer accepted")
		}
	})
}

func TestMaxFanIn(t *testing.T) {
	_, a, _ := figure11(t)
	if got := a.MaxFanIn(); got != 2 {
		t.Errorf("MaxFanIn = %d, want 2 (x1 read by b1 and b3)", got)
	}
}

func TestRandomItemsValid(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(4))
	r, _ := run.GenerateSized(s, rng, 300)
	a := provdata.RandomItems(r, rng, 2.0, 0.5)
	if err := a.Validate(); err != nil {
		t.Fatalf("random annotation invalid: %v", err)
	}
	if len(a.Items) < r.NumEdges() {
		t.Errorf("expected at least one item per edge, got %d items for %d edges",
			len(a.Items), r.NumEdges())
	}
}

// Property: data dependency agrees with a direct graph-search oracle —
// x depends on y iff some consumer of y reaches x's producer in R.
func TestQuickDataDependencyOracle(t *testing.T) {
	s := spec.PaperSpec()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecSteps(s, rng, rng.Intn(30))
		r, _ := run.MustMaterialize(s, et)
		a := provdata.RandomItems(r, rng, 1.5, 0.3)
		skel, _ := label.BFS{}.Build(s.Graph)
		mod, err := core.LabelRun(r, skel)
		if err != nil {
			return false
		}
		dl, err := provdata.LabelData(a, mod)
		if err != nil {
			return false
		}
		searcher := dag.NewSearcher(r.Graph)
		for q := 0; q < 200; q++ {
			x := provdata.ItemID(rng.Intn(len(a.Items)))
			y := provdata.ItemID(rng.Intn(len(a.Items)))
			want := false
			for _, c := range a.Items[y].Consumers {
				if searcher.ReachableBFS(c, a.Items[x].Producer) {
					want = true
					break
				}
			}
			if dl.DependsOn(x, y) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestItemAccessors(t *testing.T) {
	dl, _ := labelFigure11(t)
	if dl.NumItems() != 8 {
		t.Errorf("NumItems = %d, want 8", dl.NumItems())
	}
	if dl.Item(0).Name != "x1" {
		t.Errorf("Item(0).Name = %q, want x1", dl.Item(0).Name)
	}
}
