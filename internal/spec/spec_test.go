package spec

import (
	"strings"
	"testing"

	"repro/internal/dag"
)

func TestPaperSpecBuilds(t *testing.T) {
	s := PaperSpec()
	if s.NumVertices() != 8 {
		t.Fatalf("paper spec has %d vertices, want 8", s.NumVertices())
	}
	if s.NumEdges() != 8 {
		t.Fatalf("paper spec has %d edges, want 8", s.NumEdges())
	}
	if s.NameOf(s.Source) != "a" || s.NameOf(s.Sink) != "h" {
		t.Fatalf("terminals %q..%q, want a..h", s.NameOf(s.Source), s.NameOf(s.Sink))
	}
	if len(s.Subgraphs) != 4 {
		t.Fatalf("got %d subgraphs, want 4", len(s.Subgraphs))
	}
}

func TestPaperSpecHierarchy(t *testing.T) {
	s := PaperSpec()
	h := s.Hier
	// |T_G| = 5 (root + F1 + L1 + L2 + F2), depth 3 (Figure 6).
	if h.NumNodes() != 5 {
		t.Fatalf("|T_G| = %d, want 5", h.NumNodes())
	}
	if h.MaxDepth != 3 {
		t.Fatalf("[T_G] = %d, want 3", h.MaxDepth)
	}
	// Find nodes by terminals.
	find := func(kind Kind, src, snk ModuleName) int {
		for i, sub := range s.Subgraphs {
			if sub.Kind == kind && s.NameOf(sub.Source) == src && s.NameOf(sub.Sink) == snk {
				return i + 1
			}
		}
		t.Fatalf("subgraph %v %s..%s not found", kind, src, snk)
		return -1
	}
	f1 := find(Fork, "a", "h")
	l1 := find(Loop, "b", "c")
	l2 := find(Loop, "e", "g")
	f2 := find(Fork, "e", "g")
	if h.Parent[f1] != 0 || h.Parent[l2] != 0 {
		t.Errorf("F1/L2 should be children of root; parents %d %d", h.Parent[f1], h.Parent[l2])
	}
	if h.Parent[l1] != f1 {
		t.Errorf("L1 parent = %d, want F1 (%d)", h.Parent[l1], f1)
	}
	if h.Parent[f2] != l2 {
		t.Errorf("F2 parent = %d, want L2 (%d) — equal edge sets must nest fork inside loop", h.Parent[f2], l2)
	}
	if got := h.NodesAtDepth(3); len(got) != 2 {
		t.Errorf("depth-3 nodes = %v, want 2 nodes (L1, F2)", got)
	}
	if h.NodesAtDepth(0) != nil || h.NodesAtDepth(4) != nil {
		t.Error("NodesAtDepth out of range should be nil")
	}
}

func TestDomSets(t *testing.T) {
	s := PaperSpec()
	name := func(v dag.VertexID) string { return string(s.NameOf(v)) }
	for _, sub := range s.Subgraphs {
		dom := make([]string, 0)
		for _, v := range sub.DomSet() {
			dom = append(dom, name(v))
		}
		got := strings.Join(dom, "")
		var want string
		switch {
		case sub.Kind == Fork && name(sub.Source) == "a":
			want = "bc"
		case sub.Kind == Loop && name(sub.Source) == "b":
			want = "bc"
		case sub.Kind == Loop && name(sub.Source) == "e":
			want = "efg"
		case sub.Kind == Fork && name(sub.Source) == "e":
			want = "f"
		}
		if got != want {
			t.Errorf("%v %s..%s DomSet = %q, want %q", sub.Kind, name(sub.Source), name(sub.Sink), got, want)
		}
	}
}

func TestDirectVertices(t *testing.T) {
	s := PaperSpec()
	names := func(vs []dag.VertexID) string {
		var b strings.Builder
		for _, v := range vs {
			b.WriteString(string(s.NameOf(v)))
		}
		return b.String()
	}
	// Root directly owns a, h, d (b,c in F1/L1; e,f,g in L2); IDs follow
	// declaration order a,b,c,h,d,... so the sorted rendering is "ahd".
	if got := names(s.DirectVertices(0)); got != "ahd" {
		t.Errorf("root direct vertices = %q, want ahd", got)
	}
	for i, sub := range s.Subgraphs {
		node := s.NodeOf(i)
		got := names(s.DirectVertices(node))
		var want string
		switch {
		case sub.Kind == Fork && s.NameOf(sub.Source) == "a": // F1: internals {b,c} all taken by L1
			want = ""
		case sub.Kind == Loop && s.NameOf(sub.Source) == "b": // L1 owns b, c
			want = "bc"
		case sub.Kind == Loop && s.NameOf(sub.Source) == "e": // L2 owns e, g (f in F2)
			want = "eg"
		case sub.Kind == Fork && s.NameOf(sub.Source) == "e": // F2 owns f
			want = "f"
		}
		if got != want {
			t.Errorf("DirectVertices(%v %s..%s) = %q, want %q",
				sub.Kind, s.NameOf(sub.Source), s.NameOf(sub.Sink), got, want)
		}
	}
}

func TestEdgeOwner(t *testing.T) {
	s := PaperSpec()
	owner := s.EdgeOwner()
	edges := s.Graph.Edges()
	lookup := func(u, v ModuleName) int {
		ui, _ := s.VertexOf(u)
		vi, _ := s.VertexOf(v)
		for i, e := range edges {
			if e.Tail == ui && e.Head == vi {
				return owner[i]
			}
		}
		t.Fatalf("edge %s->%s not found", u, v)
		return -1
	}
	// (b,c) is innermost in L1 (depth 3); (a,b) in F1 (depth 2); (e,f) in F2
	// (depth 3, inside L2); (a,d) at root; (d,e) at root; (g,h) at root.
	if k := s.SubgraphOf(lookup("b", "c")); k == nil || k.Kind != Loop || s.NameOf(k.Source) != "b" {
		t.Error("(b,c) should be owned by L1")
	}
	if k := s.SubgraphOf(lookup("a", "b")); k == nil || k.Kind != Fork || s.NameOf(k.Source) != "a" {
		t.Error("(a,b) should be owned by F1")
	}
	if k := s.SubgraphOf(lookup("e", "f")); k == nil || k.Kind != Fork {
		t.Error("(e,f) should be owned by F2 (deeper than L2)")
	}
	if lookup("a", "d") != 0 || lookup("d", "e") != 0 || lookup("g", "h") != 0 {
		t.Error("root edges should be owned by node 0")
	}
}

func TestIntroSpec(t *testing.T) {
	s := IntroSpec()
	if s.NumVertices() != 4 || len(s.Subgraphs) != 2 || s.Hier.MaxDepth != 3 {
		t.Fatalf("intro spec shape wrong: n=%d subs=%d depth=%d",
			s.NumVertices(), len(s.Subgraphs), s.Hier.MaxDepth)
	}
}

func TestLinearSpec(t *testing.T) {
	s := LinearSpec(5)
	if s.NumVertices() != 5 || s.NumEdges() != 4 || len(s.Subgraphs) != 0 {
		t.Fatal("linear spec shape wrong")
	}
	if LinearSpec(0).NumVertices() != 2 {
		t.Fatal("LinearSpec clamps to 2")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate module", func(t *testing.T) {
		b := NewBuilder()
		b.Module("x")
		b.Module("x")
		b.Edge("x", "y")
		if _, err := b.Build(); err == nil {
			t.Error("duplicate module accepted")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		b := NewBuilder()
		b.Edge("x", "x")
		if _, err := b.Build(); err == nil {
			t.Error("self loop accepted")
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		b := NewBuilder()
		b.Edge("x", "y")
		b.Edge("x", "y")
		if _, err := b.Build(); err == nil {
			t.Error("duplicate edge accepted")
		}
	})
	t.Run("two sources", func(t *testing.T) {
		b := NewBuilder()
		b.Edge("x", "z")
		b.Edge("y", "z")
		if _, err := b.Build(); err == nil {
			t.Error("two sources accepted")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder()
		b.Chain("s", "x", "y", "t")
		b.Edge("y", "x")
		if _, err := b.Build(); err == nil {
			t.Error("cycle accepted")
		}
	})
	t.Run("unknown fork member", func(t *testing.T) {
		b := NewBuilder()
		b.Chain("s", "x", "t")
		b.Fork("s", "t", "nope")
		if _, err := b.Build(); err == nil {
			t.Error("unknown fork member accepted")
		}
	})
	t.Run("unknown fork terminal", func(t *testing.T) {
		b := NewBuilder()
		b.Chain("s", "x", "t")
		b.Fork("nope", "t", "x")
		if _, err := b.Build(); err == nil {
			t.Error("unknown fork source accepted")
		}
	})
}

func TestValidationRejectsBadSubgraphs(t *testing.T) {
	t.Run("fork without internal vertices", func(t *testing.T) {
		b := NewBuilder()
		b.Chain("s", "x", "t")
		b.Fork("s", "x") // no internals
		if _, err := b.Build(); err == nil {
			t.Error("bare-edge fork accepted")
		}
	})
	t.Run("fork not self-contained", func(t *testing.T) {
		// s -> x -> t and s -> y -> t, plus x -> y crossing the boundary.
		b := NewBuilder()
		b.Chain("s", "x", "t")
		b.Chain("s", "y", "t")
		b.Edge("x", "y")
		b.Fork("s", "t", "x")
		if _, err := b.Build(); err == nil {
			t.Error("boundary-crossing fork accepted")
		}
	})
	t.Run("fork not atomic", func(t *testing.T) {
		// Two parallel internal branches form a non-atomic fork.
		b := NewBuilder()
		b.Chain("s", "x", "t")
		b.Chain("s", "y", "t")
		b.Fork("s", "t", "x", "y")
		if _, err := b.Build(); err == nil {
			t.Error("non-atomic fork accepted")
		}
	})
	t.Run("loop not complete", func(t *testing.T) {
		// Loop over one branch while another branch shares its terminals.
		b := NewBuilder()
		b.Chain("s", "x", "t")
		b.Chain("s", "y", "t")
		b.SubgraphEdges(Loop, []dag.Edge{{Tail: 0, Head: 1}, {Tail: 1, Head: 2}}) // s->x->t only
		if _, err := b.Build(); err == nil {
			t.Error("incomplete loop accepted")
		}
	})
	t.Run("not well nested", func(t *testing.T) {
		// Two loops overlapping at a shared middle vertex.
		b := NewBuilder()
		b.Chain("s", "x", "y", "z", "t")
		b.Loop("s", "y", "x")
		b.Loop("y", "t", "z")
		// DomSets {s,x,y} and {y,z,t} intersect at y without nesting.
		if _, err := b.Build(); err == nil {
			t.Error("overlapping loops accepted")
		}
	})
	t.Run("duplicate subgraph", func(t *testing.T) {
		b := NewBuilder()
		b.Chain("s", "x", "t")
		b.Loop("s", "t", "x")
		b.Loop("s", "t", "x")
		if _, err := b.Build(); err == nil {
			t.Error("duplicate loops accepted")
		}
	})
	t.Run("empty subgraph edges", func(t *testing.T) {
		b := NewBuilder()
		b.Chain("s", "t")
		b.SubgraphEdges(Loop, nil)
		if _, err := b.Build(); err == nil {
			t.Error("empty subgraph accepted")
		}
	})
}

func TestForkInducedEdgesExcludeDirectEdge(t *testing.T) {
	// s -> x -> t with a direct s -> t edge: the fork over {x} must not
	// include (s,t), and a loop over the same region must include it.
	b := NewBuilder()
	b.Chain("s", "x", "t")
	b.Edge("s", "t")
	b.Fork("s", "t", "x")
	b.Loop("s", "t", "x")
	s, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var fork, loop *Subgraph
	for _, sub := range s.Subgraphs {
		if sub.Kind == Fork {
			fork = sub
		} else {
			loop = sub
		}
	}
	st, _ := s.VertexOf("s")
	tt, _ := s.VertexOf("t")
	if fork.HasEdge(st, tt) {
		t.Error("fork contains direct (s,t) edge")
	}
	if !loop.HasEdge(st, tt) {
		t.Error("loop missing direct (s,t) edge")
	}
	if len(fork.Edges) != 2 || len(loop.Edges) != 3 {
		t.Errorf("edge counts fork=%d loop=%d, want 2/3", len(fork.Edges), len(loop.Edges))
	}
	// Hierarchy: fork nested inside loop.
	fi, li := -1, -1
	for i, sub := range s.Subgraphs {
		if sub.Kind == Fork {
			fi = i + 1
		} else {
			li = i + 1
		}
	}
	if s.Hier.Parent[fi] != li {
		t.Errorf("fork parent = %d, want loop %d", s.Hier.Parent[fi], li)
	}
}

func TestSubgraphAccessors(t *testing.T) {
	s := PaperSpec()
	if s.SubgraphOf(0) != nil {
		t.Error("root subgraph should be nil")
	}
	if s.KindOf(0) != Loop {
		t.Error("root kind should behave like a loop (dominates terminals)")
	}
	if s.SourceOf(0) != s.Source || s.SinkOf(0) != s.Sink {
		t.Error("root terminals mismatch")
	}
	for i, sub := range s.Subgraphs {
		node := s.NodeOf(i)
		if s.SubgraphOf(node) != sub {
			t.Errorf("SubgraphOf(%d) mismatch", node)
		}
		if s.SourceOf(node) != sub.Source || s.SinkOf(node) != sub.Sink {
			t.Errorf("terminals mismatch for node %d", node)
		}
		if s.KindOf(node) != sub.Kind {
			t.Errorf("kind mismatch for node %d", node)
		}
		if !sub.HasVertex(sub.Source) || !sub.HasVertex(sub.Sink) {
			t.Errorf("subgraph %d missing own terminals in HasVertex", i)
		}
		if sub.HasVertex(dag.VertexID(100)) {
			t.Errorf("subgraph %d claims vertex 100", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if Fork.String() != "fork" || Loop.String() != "loop" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render something")
	}
}

func TestVertexOf(t *testing.T) {
	s := PaperSpec()
	v, ok := s.VertexOf("c")
	if !ok || s.NameOf(v) != "c" {
		t.Error("VertexOf roundtrip failed")
	}
	if _, ok := s.VertexOf("zz"); ok {
		t.Error("VertexOf found nonexistent module")
	}
}
