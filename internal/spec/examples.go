package spec

// PaperSpec returns the running example of the paper (Figure 2): the
// acyclic flow network G over modules a..h with
//
//	a -> b -> c -> h        (upper branch)
//	a -> d -> e -> f -> g -> h   (lower branch)
//
// and the well-nested system F = {F1, F2}, L = {L1, L2}:
//
//	F1: fork  a ..(b,c).. h     — internal {b, c}
//	L1: loop  b .. c            — vertices {b, c}, nested in F1
//	L2: loop  e .. g            — vertices {e, f, g}
//	F2: fork  e ..(f).. g       — internal {f}, nested in L2
//
// The hierarchy T_G (Figure 6) is G -> F1 -> L1 and G -> L2 -> F2.
func PaperSpec() *Spec {
	b := NewBuilder()
	b.Chain("a", "b", "c", "h")
	b.Chain("a", "d", "e", "f", "g", "h")
	b.Fork("a", "h", "b", "c") // F1
	b.Loop("b", "c")           // L1
	b.Loop("e", "g", "f")      // L2
	b.Fork("e", "g", "f")      // F2
	return b.MustBuild()
}

// IntroSpec returns the small motivating example of Figure 1: a -> b -> c
// -> d with a fork around {b, c} and a loop over {b, c}.
func IntroSpec() *Spec {
	b := NewBuilder()
	b.Chain("a", "b", "c", "d")
	b.Fork("a", "d", "b", "c")
	b.Loop("b", "c")
	return b.MustBuild()
}

// LinearSpec returns a fork/loop-free pipeline of n modules m0 -> m1 ->
// ... -> m(n-1), useful as a degenerate baseline in tests.
func LinearSpec(n int) *Spec {
	if n < 2 {
		n = 2
	}
	b := NewBuilder()
	names := make([]ModuleName, n)
	for i := range names {
		names[i] = ModuleName(moduleName(i))
	}
	b.Chain(names...)
	return b.MustBuild()
}

// moduleName generates short distinct names m0, m1, ...
func moduleName(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "m0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = digits[i%10]
		i /= 10
	}
	return "m" + string(buf[pos:])
}
