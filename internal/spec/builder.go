package spec

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Builder assembles a Spec incrementally. Methods record declarations;
// Build performs all validation and returns the immutable Spec.
type Builder struct {
	names  []ModuleName
	byName map[ModuleName]dag.VertexID
	edges  []dag.Edge
	decls  []subDecl
	err    error
}

type subDecl struct {
	kind    Kind
	source  ModuleName
	sink    ModuleName
	members []ModuleName // for Fork: internal vertices; for Loop: all vertices
	raw     []dag.Edge   // optional explicit edge set (by vertex id), overrides members
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[ModuleName]dag.VertexID)}
}

// Module declares a module with the given unique name and returns its
// vertex ID. Redeclaring a name records an error reported by Build.
func (b *Builder) Module(name ModuleName) dag.VertexID {
	if _, dup := b.byName[name]; dup {
		b.fail(fmt.Errorf("spec: duplicate module name %q", name))
		return b.byName[name]
	}
	id := dag.VertexID(len(b.names))
	b.names = append(b.names, name)
	b.byName[name] = id
	return id
}

// Modules declares several modules at once.
func (b *Builder) Modules(names ...ModuleName) {
	for _, n := range names {
		b.Module(n)
	}
}

// Edge declares a data channel from module u to module v (by name).
// Unknown names are declared implicitly.
func (b *Builder) Edge(u, v ModuleName) {
	b.edges = append(b.edges, dag.Edge{Tail: b.ensure(u), Head: b.ensure(v)})
}

// Chain declares edges along the given module sequence.
func (b *Builder) Chain(names ...ModuleName) {
	for i := 0; i+1 < len(names); i++ {
		b.Edge(names[i], names[i+1])
	}
}

// Fork declares a fork subgraph with the given source, sink and internal
// vertices. Its edge set is the set of edges of G induced on
// {source} ∪ internal ∪ {sink}, excluding a direct (source, sink) edge
// (which, if present, is a parallel branch outside the fork).
func (b *Builder) Fork(source, sink ModuleName, internal ...ModuleName) {
	b.decls = append(b.decls, subDecl{kind: Fork, source: source, sink: sink, members: internal})
}

// Loop declares a loop subgraph with the given source, sink and internal
// vertices. Its edge set is the set of edges of G induced on
// {source} ∪ internal ∪ {sink}, including a direct (source, sink) edge if
// one exists (loops are complete and own every branch).
func (b *Builder) Loop(source, sink ModuleName, internal ...ModuleName) {
	b.decls = append(b.decls, subDecl{kind: Loop, source: source, sink: sink, members: internal})
}

// SubgraphEdges declares a fork or loop by an explicit edge set. This is
// an escape hatch for corner cases the induced-edge constructors cannot
// express; the edge set is validated like any other.
func (b *Builder) SubgraphEdges(kind Kind, edges []dag.Edge) {
	b.decls = append(b.decls, subDecl{kind: kind, raw: append([]dag.Edge(nil), edges...)})
}

// DeclaredEdges returns the edges declared so far as module-name pairs, in
// declaration order. Generators use it to avoid duplicating base edges.
func (b *Builder) DeclaredEdges() [][2]ModuleName {
	out := make([][2]ModuleName, len(b.edges))
	for i, e := range b.edges {
		out[i] = [2]ModuleName{b.names[e.Tail], b.names[e.Head]}
	}
	return out
}

func (b *Builder) ensure(name ModuleName) dag.VertexID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	return b.Module(name)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates every declaration and returns the Spec.
func (b *Builder) Build() (*Spec, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.names)
	g := dag.New(n)
	seen := make(map[dag.Edge]bool, len(b.edges))
	for _, e := range b.edges {
		if e.Tail == e.Head {
			return nil, fmt.Errorf("spec: self loop on module %q", b.names[e.Tail])
		}
		if seen[e] {
			return nil, fmt.Errorf("spec: duplicate edge %q -> %q", b.names[e.Tail], b.names[e.Head])
		}
		seen[e] = true
		g.AddEdge(e.Tail, e.Head)
	}
	source, sink, err := g.FlowNetworkTerminals()
	if err != nil {
		return nil, err
	}

	subs := make([]*Subgraph, 0, len(b.decls))
	for _, d := range b.decls {
		sub, err := b.realizeDecl(g, d)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}

	s := &Spec{
		Graph:     g,
		Names:     append([]ModuleName(nil), b.names...),
		Source:    source,
		Sink:      sink,
		Subgraphs: subs,
		byName:    make(map[ModuleName]dag.VertexID, n),
	}
	for name, id := range b.byName {
		s.byName[name] = id
	}
	if err := Validate(s); err != nil {
		return nil, err
	}
	return s, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

func (b *Builder) realizeDecl(g *dag.Graph, d subDecl) (*Subgraph, error) {
	var edges []dag.Edge
	if d.raw != nil {
		edges = d.raw
	} else {
		src, ok := b.byName[d.source]
		if !ok {
			return nil, fmt.Errorf("spec: %s references unknown source module %q", d.kind, d.source)
		}
		snk, ok := b.byName[d.sink]
		if !ok {
			return nil, fmt.Errorf("spec: %s references unknown sink module %q", d.kind, d.sink)
		}
		members := map[dag.VertexID]bool{src: true, snk: true}
		for _, m := range d.members {
			v, ok := b.byName[m]
			if !ok {
				return nil, fmt.Errorf("spec: %s references unknown member module %q", d.kind, m)
			}
			members[v] = true
		}
		for _, e := range g.Edges() {
			if !members[e.Tail] || !members[e.Head] {
				continue
			}
			if d.kind == Fork && e.Tail == src && e.Head == snk {
				continue // direct (s,t) edge is a parallel branch, not part of the fork
			}
			edges = append(edges, e)
		}
	}
	return newSubgraph(d.kind, edges)
}

// newSubgraph derives the vertex sets and terminals of a subgraph from its
// edge set and performs the purely local structural checks.
func newSubgraph(kind Kind, edges []dag.Edge) (*Subgraph, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("spec: %s subgraph has no edges", kind)
	}
	sorted := append([]dag.Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Tail != sorted[j].Tail {
			return sorted[i].Tail < sorted[j].Tail
		}
		return sorted[i].Head < sorted[j].Head
	})
	inDeg := make(map[dag.VertexID]int)
	outDeg := make(map[dag.VertexID]int)
	vset := make(map[dag.VertexID]bool)
	for _, e := range sorted {
		vset[e.Tail] = true
		vset[e.Head] = true
		outDeg[e.Tail]++
		inDeg[e.Head]++
	}
	var sources, sinks []dag.VertexID
	for v := range vset {
		if inDeg[v] == 0 {
			sources = append(sources, v)
		}
		if outDeg[v] == 0 {
			sinks = append(sinks, v)
		}
	}
	if len(sources) != 1 || len(sinks) != 1 {
		return nil, fmt.Errorf("spec: %s subgraph must have exactly one source and one sink (got %d, %d)",
			kind, len(sources), len(sinks))
	}
	src, snk := sources[0], sinks[0]
	if src == snk {
		return nil, fmt.Errorf("spec: %s subgraph has identical source and sink", kind)
	}
	vertices := make([]dag.VertexID, 0, len(vset))
	for v := range vset {
		vertices = append(vertices, v)
	}
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
	internal := make([]dag.VertexID, 0, len(vertices))
	for _, v := range vertices {
		if v != src && v != snk {
			internal = append(internal, v)
		}
	}
	if kind == Fork && len(internal) == 0 {
		return nil, fmt.Errorf("spec: fork subgraph must have at least one internal vertex " +
			"(a bare edge fork would replicate into parallel edges)")
	}
	return &Subgraph{
		Kind:     kind,
		Source:   src,
		Sink:     snk,
		Edges:    sorted,
		Vertices: vertices,
		Internal: internal,
	}, nil
}
