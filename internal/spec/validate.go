package spec

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// Validate checks every model constraint of Definitions 1–3 against the
// specification and populates s.Hier (the fork-and-loop hierarchy T_G).
// It is called by Builder.Build and may be called directly on specs
// assembled by hand (e.g. after XML decoding).
func Validate(s *Spec) error {
	if s.Graph == nil {
		return fmt.Errorf("spec: nil graph")
	}
	n := s.Graph.NumVertices()
	if len(s.Names) != n {
		return fmt.Errorf("spec: %d names for %d vertices", len(s.Names), n)
	}
	seen := make(map[ModuleName]bool, n)
	for v, name := range s.Names {
		if name == "" {
			return fmt.Errorf("spec: vertex %d has empty module name", v)
		}
		if seen[name] {
			return fmt.Errorf("spec: duplicate module name %q", name)
		}
		seen[name] = true
	}
	src, snk, err := s.Graph.FlowNetworkTerminals()
	if err != nil {
		return err
	}
	if src != s.Source || snk != s.Sink {
		return fmt.Errorf("spec: declared terminals (%d,%d) do not match graph terminals (%d,%d)",
			s.Source, s.Sink, src, snk)
	}
	if s.byName == nil {
		s.byName = make(map[ModuleName]dag.VertexID, n)
		for v, name := range s.Names {
			s.byName[name] = dag.VertexID(v)
		}
	}

	for i, sub := range s.Subgraphs {
		if err := s.checkSelfContained(sub); err != nil {
			return fmt.Errorf("spec: subgraph %d (%s %q..%q): %w",
				i, sub.Kind, s.Names[sub.Source], s.Names[sub.Sink], err)
		}
		switch sub.Kind {
		case Fork:
			if err := s.checkAtomic(sub); err != nil {
				return fmt.Errorf("spec: fork %d (%q..%q): %w", i, s.Names[sub.Source], s.Names[sub.Sink], err)
			}
		case Loop:
			if err := s.checkComplete(sub); err != nil {
				return fmt.Errorf("spec: loop %d (%q..%q): %w", i, s.Names[sub.Source], s.Names[sub.Sink], err)
			}
		default:
			return fmt.Errorf("spec: subgraph %d has invalid kind %d", i, sub.Kind)
		}
	}

	if err := s.checkWellNested(); err != nil {
		return err
	}
	hier, err := s.buildHierarchy()
	if err != nil {
		return err
	}
	s.Hier = hier
	return nil
}

// checkSelfContained verifies Definition 1 for subgraph H: single source
// and sink (established structurally by newSubgraph), no edges crossing the
// boundary through internal vertices, and every edge of G induced on V(H)
// is in E(H) except possibly a direct (source, sink) edge.
func (s *Spec) checkSelfContained(sub *Subgraph) error {
	inH := make(map[dag.VertexID]bool, len(sub.Vertices))
	for _, v := range sub.Vertices {
		inH[v] = true
	}
	for _, u := range sub.Internal {
		for _, w := range s.Graph.Out(u) {
			if !inH[w] {
				return fmt.Errorf("internal vertex %q has edge to outside vertex %q", s.Names[u], s.Names[w])
			}
		}
		for _, w := range s.Graph.In(u) {
			if !inH[w] {
				return fmt.Errorf("internal vertex %q has edge from outside vertex %q", s.Names[u], s.Names[w])
			}
		}
	}
	for _, e := range s.Graph.Edges() {
		if inH[e.Tail] && inH[e.Head] && !sub.HasEdge(e.Tail, e.Head) {
			if e.Tail == sub.Source && e.Head == sub.Sink {
				continue // Definition 1(3) permits only the direct (s,t) edge
			}
			return fmt.Errorf("induced edge %q -> %q missing from subgraph edge set",
				s.Names[e.Tail], s.Names[e.Head])
		}
	}
	for _, e := range sub.Edges {
		if !s.Graph.HasEdge(e.Tail, e.Head) {
			return fmt.Errorf("subgraph edge %d -> %d does not exist in G", e.Tail, e.Head)
		}
	}
	return nil
}

// checkAtomic verifies that a fork is a single branch: no self-contained
// subgraph with the same terminals and a strictly smaller edge set exists.
// Given self-containment this reduces to (a) no direct (s,t) edge inside
// the fork and (b) the internal vertices form one weakly connected block.
func (s *Spec) checkAtomic(sub *Subgraph) error {
	if sub.HasEdge(sub.Source, sub.Sink) {
		return fmt.Errorf("not atomic: contains a direct source->sink edge (a splittable parallel branch)")
	}
	if len(sub.Internal) == 0 {
		return fmt.Errorf("fork has no internal vertices")
	}
	// Weak connectivity of V*(H) using only edges of H between internals.
	idx := make(map[dag.VertexID]int, len(sub.Internal))
	for i, v := range sub.Internal {
		idx[v] = i
	}
	adj := make([][]int, len(sub.Internal))
	for _, e := range sub.Edges {
		i, iok := idx[e.Tail]
		j, jok := idx[e.Head]
		if iok && jok {
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	seen := make([]bool, len(sub.Internal))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				count++
				stack = append(stack, y)
			}
		}
	}
	if count != len(sub.Internal) {
		return fmt.Errorf("not atomic: internal vertices split into parallel branches")
	}
	return nil
}

// checkComplete verifies Definition 1's completeness condition for loops:
// no edge (s(H), v) or (v, t(H)) leaves or enters through the terminals to
// vertices outside H.
func (s *Spec) checkComplete(sub *Subgraph) error {
	inH := make(map[dag.VertexID]bool, len(sub.Vertices))
	for _, v := range sub.Vertices {
		inH[v] = true
	}
	for _, w := range s.Graph.Out(sub.Source) {
		if !inH[w] {
			return fmt.Errorf("not complete: source %q has edge to outside vertex %q",
				s.Names[sub.Source], s.Names[w])
		}
	}
	for _, w := range s.Graph.In(sub.Sink) {
		if !inH[w] {
			return fmt.Errorf("not complete: sink %q has edge from outside vertex %q",
				s.Names[sub.Sink], s.Names[w])
		}
	}
	return nil
}

// checkWellNested verifies Definition 2: for every pair of subgraphs,
// exactly one of {H1 nested in H2, H2 nested in H1, fully disjoint} holds,
// comparing both dominated vertex sets and edge sets.
//
// Nesting uses non-strict edge containment with the dominated sets breaking
// ties: in the paper's own running example, fork F2 and loop L2 share the
// same edge set, and F2 is nested in L2 because DomSet(F2) = V*(F2) is a
// strict subset of DomSet(L2) = V(L2). Two subgraphs with identical edge
// sets AND identical dominated sets are duplicates and rejected.
func (s *Spec) checkWellNested() error {
	type sets struct {
		dom   map[dag.VertexID]bool
		edges map[dag.Edge]bool
	}
	all := make([]sets, len(s.Subgraphs))
	for i, sub := range s.Subgraphs {
		d := make(map[dag.VertexID]bool)
		for _, v := range sub.DomSet() {
			d[v] = true
		}
		e := make(map[dag.Edge]bool)
		for _, ed := range sub.Edges {
			e[ed] = true
		}
		all[i] = sets{dom: d, edges: e}
	}
	subsetV := func(a, b map[dag.VertexID]bool) bool {
		for v := range a {
			if !b[v] {
				return false
			}
		}
		return true
	}
	subsetE := func(a, b map[dag.Edge]bool) bool {
		for e := range a {
			if !b[e] {
				return false
			}
		}
		return true
	}
	disjointV := func(a, b map[dag.VertexID]bool) bool {
		for v := range a {
			if b[v] {
				return false
			}
		}
		return true
	}
	disjointE := func(a, b map[dag.Edge]bool) bool {
		for e := range a {
			if b[e] {
				return false
			}
		}
		return true
	}
	nested := func(a, b sets) bool {
		if !subsetV(a.dom, b.dom) || !subsetE(a.edges, b.edges) {
			return false
		}
		return len(a.edges) < len(b.edges) || len(a.dom) < len(b.dom)
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if len(a.edges) == len(b.edges) && subsetE(a.edges, b.edges) &&
				len(a.dom) == len(b.dom) && subsetV(a.dom, b.dom) {
				return fmt.Errorf("spec: subgraphs %d and %d are duplicates", i, j)
			}
			count := 0
			for _, c := range []bool{nested(a, b), nested(b, a), disjointV(a.dom, b.dom) && disjointE(a.edges, b.edges)} {
				if c {
					count++
				}
			}
			if count != 1 {
				return fmt.Errorf("spec: subgraphs %d and %d are not well-nested", i, j)
			}
		}
	}
	return nil
}

// buildHierarchy derives T_G: each subgraph's parent is the smallest
// subgraph properly containing it (edge containment, with dominated-set
// size breaking fork-inside-loop ties on equal edge sets), or the root.
func (s *Spec) buildHierarchy() (*Hierarchy, error) {
	k := len(s.Subgraphs)
	contains := func(outer, inner *Subgraph) bool {
		if len(outer.Edges) < len(inner.Edges) {
			return false
		}
		for _, e := range inner.Edges {
			if !outer.HasEdge(e.Tail, e.Head) {
				return false
			}
		}
		if len(outer.Edges) > len(inner.Edges) {
			return true
		}
		// Equal edge sets: the loop contains the fork (strictly larger DomSet).
		return len(outer.DomSet()) > len(inner.DomSet())
	}
	parent := make([]int, k+1)
	parent[0] = -1
	for i, sub := range s.Subgraphs {
		best := 0
		bestEdges := s.Graph.NumEdges() + 1
		bestDom := s.Graph.NumVertices() + 1
		for j, other := range s.Subgraphs {
			if i == j || !contains(other, sub) {
				continue
			}
			if len(other.Edges) < bestEdges ||
				(len(other.Edges) == bestEdges && len(other.DomSet()) < bestDom) {
				best = j + 1
				bestEdges = len(other.Edges)
				bestDom = len(other.DomSet())
			}
		}
		parent[i+1] = best
	}
	children := make([][]int, k+1)
	for node := 1; node <= k; node++ {
		p := parent[node]
		children[p] = append(children[p], node)
	}
	for i := range children {
		sort.Ints(children[i])
	}
	depth := make([]int, k+1)
	maxDepth := 1
	var assign func(node, d int)
	assign = func(node, d int) {
		depth[node] = d
		if d > maxDepth {
			maxDepth = d
		}
		for _, c := range children[node] {
			assign(c, d+1)
		}
	}
	assign(0, 1)
	for node := 1; node <= k; node++ {
		if depth[node] == 0 {
			return nil, fmt.Errorf("spec: hierarchy node %d disconnected from root", node)
		}
	}
	byDepth := make([][]int, maxDepth+1)
	for node := 0; node <= k; node++ {
		d := depth[node]
		byDepth[d] = append(byDepth[d], node)
	}
	return &Hierarchy{
		Parent:   parent,
		Children: children,
		Depth:    depth,
		MaxDepth: maxDepth,
		byDepth:  byDepth,
	}, nil
}
