// Package spec implements workflow specifications: a uniquely-labeled
// acyclic flow network G together with a well-nested system of fork and
// loop subgraphs (F, L), per Definitions 1–3 of Bao et al. (SIGMOD 2010).
//
// A Spec is immutable once built. Use Builder to assemble one; Build
// validates every model constraint (self-containment, atomicity for forks,
// completeness for loops, well-nestedness) and derives the fork-and-loop
// hierarchy T_G used by the labeling algorithms.
package spec

import (
	"fmt"
	"sort"

	"repro/internal/dag"
)

// ModuleName is the unique name of a module (vertex) in a specification.
type ModuleName string

// Kind distinguishes fork subgraphs from loop subgraphs.
type Kind uint8

const (
	// Fork subgraphs are atomic self-contained subgraphs replicated in
	// parallel; they dominate only their internal vertices.
	Fork Kind = iota
	// Loop subgraphs are complete self-contained subgraphs replicated in
	// series; they dominate all their vertices including the terminals.
	Loop
)

func (k Kind) String() string {
	switch k {
	case Fork:
		return "fork"
	case Loop:
		return "loop"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Subgraph is a fork or loop subgraph of the specification graph.
type Subgraph struct {
	Kind   Kind
	Source dag.VertexID
	Sink   dag.VertexID
	// Edges is the edge set E(H), sorted by (Tail, Head).
	Edges []dag.Edge
	// Vertices is V(H) = all endpoints of Edges, sorted.
	Vertices []dag.VertexID
	// Internal is V*(H) = V(H) \ {Source, Sink}, sorted.
	Internal []dag.VertexID
}

// DomSet returns the set of specification vertices dominated by the
// subgraph: internal vertices for a fork, all vertices for a loop (Def. 2).
func (h *Subgraph) DomSet() []dag.VertexID {
	if h.Kind == Fork {
		return h.Internal
	}
	return h.Vertices
}

// HasEdge reports whether (u,v) ∈ E(H), by binary search.
func (h *Subgraph) HasEdge(u, v dag.VertexID) bool {
	i := sort.Search(len(h.Edges), func(i int) bool {
		e := h.Edges[i]
		return e.Tail > u || (e.Tail == u && e.Head >= v)
	})
	return i < len(h.Edges) && h.Edges[i] == dag.Edge{Tail: u, Head: v}
}

// HasVertex reports whether v ∈ V(H), by binary search.
func (h *Subgraph) HasVertex(v dag.VertexID) bool {
	i := sort.Search(len(h.Vertices), func(i int) bool { return h.Vertices[i] >= v })
	return i < len(h.Vertices) && h.Vertices[i] == v
}

// Spec is a validated workflow specification (G, F, L).
type Spec struct {
	// Graph is the specification graph G.
	Graph *dag.Graph
	// Names maps each vertex to its unique module name.
	Names []ModuleName
	// Source and Sink are the unique terminals of G.
	Source, Sink dag.VertexID
	// Subgraphs lists all fork and loop subgraphs. The hierarchy node for
	// Subgraphs[i] is i+1 (node 0 is the root, representing all of G).
	Subgraphs []*Subgraph
	// Hier is the fork-and-loop hierarchy T_G.
	Hier *Hierarchy

	byName map[ModuleName]dag.VertexID
}

// NumVertices returns |V(G)|.
func (s *Spec) NumVertices() int { return s.Graph.NumVertices() }

// NumEdges returns |E(G)|.
func (s *Spec) NumEdges() int { return s.Graph.NumEdges() }

// NameOf returns the module name of vertex v.
func (s *Spec) NameOf(v dag.VertexID) ModuleName { return s.Names[v] }

// VertexOf returns the vertex with the given module name.
func (s *Spec) VertexOf(name ModuleName) (dag.VertexID, bool) {
	v, ok := s.byName[name]
	return v, ok
}

// Hierarchy is the fork-and-loop hierarchy T_G (an unordered tree). Node 0
// is the root and corresponds to the entire specification graph; node i >= 1
// corresponds to Subgraphs[i-1].
type Hierarchy struct {
	// Parent[i] is the parent of node i; Parent[0] == -1.
	Parent []int
	// Children[i] lists the children of node i in increasing node order.
	Children [][]int
	// Depth[i] is the depth of node i; the root has depth 1.
	Depth []int
	// MaxDepth is the paper's [T_G]: the depth of the deepest node.
	MaxDepth int
	// byDepth[d] lists the nodes at depth d (1-based).
	byDepth [][]int
}

// NumNodes returns |T_G| (forks + loops + 1).
func (h *Hierarchy) NumNodes() int { return len(h.Parent) }

// NodesAtDepth returns the hierarchy nodes at depth d (root depth is 1).
func (h *Hierarchy) NodesAtDepth(d int) []int {
	if d < 1 || d > h.MaxDepth {
		return nil
	}
	return h.byDepth[d]
}

// SubgraphOf returns the subgraph of hierarchy node i, or nil for the root.
func (s *Spec) SubgraphOf(node int) *Subgraph {
	if node == 0 {
		return nil
	}
	return s.Subgraphs[node-1]
}

// NodeOf returns the hierarchy node of subgraph index i (into Subgraphs).
func (s *Spec) NodeOf(i int) int { return i + 1 }

// SourceOf returns s(H) for hierarchy node i; for the root it is s(G).
func (s *Spec) SourceOf(node int) dag.VertexID {
	if node == 0 {
		return s.Source
	}
	return s.Subgraphs[node-1].Source
}

// SinkOf returns t(H) for hierarchy node i; for the root it is t(G).
func (s *Spec) SinkOf(node int) dag.VertexID {
	if node == 0 {
		return s.Sink
	}
	return s.Subgraphs[node-1].Sink
}

// KindOf returns the kind of hierarchy node i. The root is reported as
// Loop because, like a loop copy, the root region dominates its terminals.
func (s *Spec) KindOf(node int) Kind {
	if node == 0 {
		return Loop
	}
	return s.Subgraphs[node-1].Kind
}

// EdgeOwner returns, for every edge of G (indexed as in Graph.Edges()), the
// innermost hierarchy node whose subgraph contains the edge; edges outside
// all subgraphs map to the root (0).
func (s *Spec) EdgeOwner() []int {
	edges := s.Graph.Edges()
	owner := make([]int, len(edges))
	// Deeper nodes win; initialize to root.
	for i, e := range edges {
		best, bestDepth := 0, 1
		for j, sub := range s.Subgraphs {
			if sub.HasEdge(e.Tail, e.Head) {
				node := j + 1
				if d := s.Hier.Depth[node]; d > bestDepth {
					best, bestDepth = node, d
				}
			}
		}
		owner[i] = best
	}
	return owner
}

// DirectVertices returns, for hierarchy node i, the vertices that belong to
// the node's region but to no descendant's DomSet, excluding the region's
// own terminals when the node is a fork (forks do not dominate terminals)
// and excluding nothing extra for loops or the root. These are exactly the
// vertices whose context in a run copy of this node is the copy itself,
// unless claimed by a deeper shared-terminal loop.
func (s *Spec) DirectVertices(node int) []dag.VertexID {
	inRegion := make(map[dag.VertexID]bool)
	if node == 0 {
		for v := 0; v < s.Graph.NumVertices(); v++ {
			inRegion[dag.VertexID(v)] = true
		}
	} else {
		sub := s.Subgraphs[node-1]
		for _, v := range sub.Vertices {
			inRegion[v] = true
		}
		if sub.Kind == Fork {
			delete(inRegion, sub.Source)
			delete(inRegion, sub.Sink)
		}
	}
	for _, c := range s.Hier.Children[node] {
		for _, v := range s.Subgraphs[c-1].DomSet() {
			delete(inRegion, v)
		}
	}
	out := make([]dag.VertexID, 0, len(inRegion))
	for v := range inRegion {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
