package plan_test

import (
	"repro/internal/dag"
	"repro/internal/order"
	"repro/internal/plan"
)

// buildPredicate assembles the SKL reachability predicate for a plan and
// origin vector, using the order package and direct spec-graph search as
// the skeleton (replicating Algorithm 3 without importing core, whose
// tests already cover the integrated path).
func buildPredicate(p *plan.Plan, origin []dag.VertexID) func(u, v dag.VertexID) bool {
	o := order.Generate(p)
	searcher := dag.NewSearcher(p.Spec.Graph)
	return func(u, v dag.VertexID) bool {
		cu, cv := p.Context[u], p.Context[v]
		switch order.Classify(
			o.Pos1[cu.ID], o.Pos2[cu.ID], o.Pos3[cu.ID],
			o.Pos1[cv.ID], o.Pos2[cv.ID], o.Pos3[cv.ID]) {
		case order.ForkMinus, order.LoopMinusBackward:
			return false
		case order.LoopMinusForward:
			return true
		default:
			return searcher.ReachableBFS(origin[u], origin[v])
		}
	}
}
