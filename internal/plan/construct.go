package plan

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/spec"
)

// Construct recovers the execution plan T_R and the context function of a
// run from its graph and origin function alone, implementing the
// ComputeContext / SearchNodes algorithms of Section 5.
//
// The algorithm processes the fork-and-loop hierarchy bottom-up. At each
// level it locates every copy of every subgraph from a designated "leader"
// seed edge, explores the copy with an undirected DFS pruned at the copy's
// terminals, collapses the copy to a special edge, and then groups
// parallel fork copies (shared endpoints) under an F− node and serial loop
// chains (linked by connector edges) under an ordered L− node. Each edge
// is visited a constant number of times, so construction is O(m + n).
//
// Construct returns an error if the graph does not conform to the
// specification's fork/loop structure.
func Construct(s *spec.Spec, g *dag.Graph, origin []dag.VertexID) (*Plan, error) {
	if len(origin) != g.NumVertices() {
		return nil, fmt.Errorf("plan: %d origins for %d vertices", len(origin), g.NumVertices())
	}
	c := newConstructor(s, g, origin)
	return c.run()
}

// workEdge is an edge of the progressively collapsed run graph.
type workEdge struct {
	tail, head dag.VertexID
	deleted    bool
	collected  bool
	// copyPlus is set on the special edge standing for one collapsed copy
	// (between the collapse and grouping steps of a level).
	copyPlus *Node
	// group is set on the special edge standing for all copies at a site.
	group *Node
	// hnode is the hierarchy node of the collapse (0 for original edges).
	hnode int
	// leaderFor is the hierarchy node this group edge seeds, or -1.
	leaderFor int
}

type constructor struct {
	s      *spec.Spec
	g      *dag.Graph
	origin []dag.VertexID

	p   *Plan
	out [][]*workEdge
	in  [][]*workEdge

	// member[h] marks the specification vertices in V(H) of hierarchy
	// node h (all vertices for the root).
	member []*bitset.Set
	// leaderChild[h] is the child hierarchy node designated as leader for
	// internal node h, or 0.
	leaderChild []int
	// seeds[h] collects the seed edges for copies of hierarchy node h.
	seeds [][]*workEdge

	// DFS scratch.
	visited  []uint32
	gen      uint32
	frontier []dag.VertexID
}

func newConstructor(s *spec.Spec, g *dag.Graph, origin []dag.VertexID) *constructor {
	n := g.NumVertices()
	c := &constructor{
		s:       s,
		g:       g,
		origin:  origin,
		p:       &Plan{Spec: s, Context: make([]*Node, n)},
		out:     make([][]*workEdge, n),
		in:      make([][]*workEdge, n),
		seeds:   make([][]*workEdge, s.Hier.NumNodes()),
		visited: make([]uint32, n),
	}
	for _, e := range g.Edges() {
		we := &workEdge{tail: e.Tail, head: e.Head, leaderFor: -1}
		c.out[e.Tail] = append(c.out[e.Tail], we)
		c.in[e.Head] = append(c.in[e.Head], we)
	}
	nSpec := s.Graph.NumVertices()
	c.member = make([]*bitset.Set, s.Hier.NumNodes())
	all := bitset.New(nSpec)
	for v := 0; v < nSpec; v++ {
		all.Set(v)
	}
	c.member[0] = all
	for i, sub := range s.Subgraphs {
		b := bitset.New(nSpec)
		for _, v := range sub.Vertices {
			b.Set(int(v))
		}
		c.member[i+1] = b
	}
	c.leaderChild = make([]int, s.Hier.NumNodes())
	for h := 0; h < s.Hier.NumNodes(); h++ {
		if kids := s.Hier.Children[h]; len(kids) > 0 {
			c.leaderChild[h] = kids[0]
		}
	}
	return c
}

// newDetached creates a plan node without linking it to a parent.
func (c *constructor) newDetached(plus bool, hnode int) *Node {
	n := &Node{ID: len(c.p.Nodes), Plus: plus, HNode: hnode}
	c.p.Nodes = append(c.p.Nodes, n)
	return n
}

func link(parent, child *Node) {
	child.Parent = parent
	parent.Children = append(parent.Children, child)
}

func (c *constructor) addEdge(we *workEdge) {
	c.out[we.tail] = append(c.out[we.tail], we)
	c.in[we.head] = append(c.in[we.head], we)
}

// compactIter invokes fn on each live edge of list, removing deleted edges
// as it goes, and returns the compacted list.
func compactIter(list []*workEdge, fn func(*workEdge)) []*workEdge {
	w := 0
	for _, e := range list {
		if e.deleted {
			continue
		}
		list[w] = e
		w++
		fn(e)
	}
	return list[:w]
}

func (c *constructor) run() (*Plan, error) {
	// Initial scan: seeds for every leaf subgraph are the run edges whose
	// origin pair equals the leaf's designated leader edge.
	leafLeader := make(map[dag.Edge]int)
	for i, sub := range c.s.Subgraphs {
		h := i + 1
		if len(c.s.Hier.Children[h]) == 0 {
			leafLeader[sub.Edges[0]] = h
		}
	}
	if len(leafLeader) > 0 {
		for v := range c.out {
			for _, we := range c.out[v] {
				key := dag.Edge{Tail: c.origin[we.tail], Head: c.origin[we.head]}
				if h, ok := leafLeader[key]; ok {
					c.seeds[h] = append(c.seeds[h], we)
				}
			}
		}
	}

	for d := c.s.Hier.MaxDepth; d >= 2; d-- {
		for _, h := range c.s.Hier.NodesAtDepth(d) {
			if err := c.processSubgraph(h); err != nil {
				return nil, err
			}
		}
	}
	return c.finishRoot()
}

// processSubgraph collapses every copy of hierarchy node h and groups the
// copies into − nodes.
func (c *constructor) processSubgraph(h int) error {
	kind := c.s.KindOf(h)
	var copyEdges []*workEdge
	for _, seed := range c.seeds[h] {
		if seed.deleted || seed.collected {
			continue // consumed while collapsing an earlier copy (conformance errors only)
		}
		ce, err := c.collapseCopy(h, seed)
		if err != nil {
			return err
		}
		copyEdges = append(copyEdges, ce)
	}
	c.seeds[h] = nil
	if len(copyEdges) == 0 {
		return fmt.Errorf("plan: no copies of %s %q..%q found in run",
			kind, c.s.NameOf(c.s.SourceOf(h)), c.s.NameOf(c.s.SinkOf(h)))
	}
	if kind == spec.Fork {
		return c.groupForks(h, copyEdges)
	}
	return c.groupLoops(h, copyEdges)
}

// collapseCopy explores the copy of h containing the seed edge, creates
// its + node, attaches the group nodes of nested sites, assigns contexts,
// and replaces the copy's edges by a special copy edge.
func (c *constructor) collapseCopy(h int, seed *workEdge) (*workEdge, error) {
	srcOrig := c.s.SourceOf(h)
	snkOrig := c.s.SinkOf(h)
	kind := c.s.KindOf(h)
	memb := c.member[h]

	plus := c.newDetached(true, h)

	c.gen++
	if c.gen == 0 {
		for i := range c.visited {
			c.visited[i] = 0
		}
		c.gen = 1
	}
	var sTerm, tTerm dag.VertexID = -1, -1
	collected := []*workEdge{seed}
	seed.collected = true
	c.frontier = c.frontier[:0]

	arrive := func(v dag.VertexID) error {
		if c.visited[v] == c.gen {
			return nil
		}
		c.visited[v] = c.gen
		o := c.origin[v]
		if !memb.Test(int(o)) {
			return fmt.Errorf("plan: search for %s %q..%q escaped to vertex with origin %q — run does not conform",
				kind, c.s.NameOf(srcOrig), c.s.NameOf(snkOrig), c.s.NameOf(o))
		}
		switch o {
		case srcOrig:
			if sTerm >= 0 && sTerm != v {
				return fmt.Errorf("plan: copy of %s %q..%q has two sources", kind, c.s.NameOf(srcOrig), c.s.NameOf(snkOrig))
			}
			sTerm = v
		case snkOrig:
			if tTerm >= 0 && tTerm != v {
				return fmt.Errorf("plan: copy of %s %q..%q has two sinks", kind, c.s.NameOf(srcOrig), c.s.NameOf(snkOrig))
			}
			tTerm = v
		}
		c.frontier = append(c.frontier, v)
		return nil
	}
	if err := arrive(seed.tail); err != nil {
		return nil, err
	}
	if err := arrive(seed.head); err != nil {
		return nil, err
	}

	for len(c.frontier) > 0 {
		v := c.frontier[len(c.frontier)-1]
		c.frontier = c.frontier[:len(c.frontier)-1]
		o := c.origin[v]
		expandOut := true
		expandIn := true
		if o == srcOrig {
			if kind == spec.Fork {
				expandOut, expandIn = false, false
			} else {
				expandIn = false // only source-outgoing edges stay inside the loop copy
			}
		} else if o == snkOrig {
			if kind == spec.Fork {
				expandOut, expandIn = false, false
			} else {
				expandOut = false // only sink-incoming edges stay inside the loop copy
			}
		}
		var err error
		visit := func(we *workEdge, other dag.VertexID) {
			if err != nil || we.collected {
				return
			}
			we.collected = true
			collected = append(collected, we)
			err = arrive(other)
		}
		if expandOut {
			c.out[v] = compactIter(c.out[v], func(we *workEdge) { visit(we, we.head) })
		}
		if expandIn {
			c.in[v] = compactIter(c.in[v], func(we *workEdge) { visit(we, we.tail) })
		}
		if err != nil {
			return nil, err
		}
	}

	if sTerm < 0 || tTerm < 0 {
		return nil, fmt.Errorf("plan: copy of %s %q..%q has no source or sink — run does not conform",
			kind, c.s.NameOf(srcOrig), c.s.NameOf(snkOrig))
	}

	// Attach nested sites, assign contexts, delete the copy's edges.
	for _, we := range collected {
		if we.group != nil {
			link(plus, we.group)
		}
		we.deleted = true
	}
	// Context assignment: every visited vertex without a context belongs
	// to this copy; fork copies do not own their terminals.
	assign := func(v dag.VertexID) {
		if c.p.Context[v] == nil {
			c.p.Context[v] = plus
		}
	}
	for _, we := range collected {
		for _, v := range [2]dag.VertexID{we.tail, we.head} {
			if kind == spec.Fork && (v == sTerm || v == tTerm) {
				continue
			}
			assign(v)
		}
	}

	ce := &workEdge{tail: sTerm, head: tTerm, copyPlus: plus, hnode: h, leaderFor: -1}
	c.addEdge(ce)
	return ce, nil
}

// groupForks merges parallel copy edges sharing both endpoints into F−
// nodes and replaces each bucket with one group edge.
func (c *constructor) groupForks(h int, copyEdges []*workEdge) error {
	type key struct{ s, t dag.VertexID }
	buckets := make(map[key][]*workEdge)
	order := make([]key, 0, len(copyEdges))
	for _, ce := range copyEdges {
		k := key{ce.tail, ce.head}
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], ce)
	}
	for _, k := range order {
		minus := c.newDetached(false, h)
		for _, ce := range buckets[k] {
			link(minus, ce.copyPlus)
			ce.deleted = true
		}
		c.emitGroupEdge(h, minus, k.s, k.t)
	}
	return nil
}

// groupLoops chains serial copy edges through their connector edges into
// ordered L− nodes and replaces each chain with one group edge.
func (c *constructor) groupLoops(h int, copyEdges []*workEdge) error {
	srcOrig := c.s.SourceOf(h)
	bySource := make(map[dag.VertexID]*workEdge, len(copyEdges))
	for _, ce := range copyEdges {
		bySource[ce.tail] = ce
	}
	next := make(map[*workEdge]*workEdge, len(copyEdges))
	connectors := make(map[*workEdge]*workEdge, len(copyEdges))
	hasPred := make(map[*workEdge]bool, len(copyEdges))
	for _, ce := range copyEdges {
		// The connector, if any, is the unique out-edge of the copy's sink
		// leading to a vertex originating from the loop source.
		var conn *workEdge
		c.out[ce.head] = compactIter(c.out[ce.head], func(we *workEdge) {
			if we == ce || we.collected {
				return
			}
			if c.origin[we.head] == srcOrig {
				conn = we
			}
		})
		if conn == nil {
			continue
		}
		nxt, ok := bySource[conn.head]
		if !ok || nxt == ce {
			return fmt.Errorf("plan: loop %q..%q has a connector to a non-copy vertex",
				c.s.NameOf(srcOrig), c.s.NameOf(c.s.SinkOf(h)))
		}
		next[ce] = nxt
		connectors[ce] = conn
		hasPred[nxt] = true
	}
	chained := 0
	for _, head := range copyEdges {
		if hasPred[head] {
			continue
		}
		minus := c.newDetached(false, h)
		first, last := head, head
		for ce := head; ce != nil; ce = next[ce] {
			link(minus, ce.copyPlus)
			ce.deleted = true
			if conn := connectors[ce]; conn != nil {
				conn.deleted = true
			}
			last = ce
			chained++
			if chained > len(copyEdges) {
				return fmt.Errorf("plan: loop %q..%q chain is cyclic", c.s.NameOf(srcOrig), c.s.NameOf(c.s.SinkOf(h)))
			}
		}
		c.emitGroupEdge(h, minus, first.tail, last.head)
	}
	if chained != len(copyEdges) {
		return fmt.Errorf("plan: loop %q..%q chains cover %d of %d copies",
			c.s.NameOf(srcOrig), c.s.NameOf(c.s.SinkOf(h)), chained, len(copyEdges))
	}
	return nil
}

func (c *constructor) emitGroupEdge(h int, minus *Node, sV, tV dag.VertexID) {
	ge := &workEdge{tail: sV, head: tV, group: minus, hnode: h, leaderFor: -1}
	parent := c.s.Hier.Parent[h]
	if parent > 0 && c.leaderChild[parent] == h {
		ge.leaderFor = parent
		c.seeds[parent] = append(c.seeds[parent], ge)
	}
	c.addEdge(ge)
}

// finishRoot assigns the root context to every remaining vertex, attaches
// the surviving group edges to the root + node, and validates leftovers.
func (c *constructor) finishRoot() (*Plan, error) {
	root := c.newDetached(true, 0)
	c.p.Root = root
	for v := range c.out {
		c.out[v] = compactIter(c.out[v], func(we *workEdge) {
			if we.group != nil && we.group.Parent == nil {
				link(root, we.group)
			}
		})
	}
	for v, ctx := range c.p.Context {
		if ctx == nil {
			c.p.Context[v] = root
		}
	}
	// Conformance: no ungrouped copy edges may survive.
	for v := range c.out {
		for _, we := range c.out[v] {
			if we.copyPlus != nil && we.group == nil && !we.deleted {
				return nil, fmt.Errorf("plan: ungrouped copy of hierarchy node %d survived to the root", we.hnode)
			}
		}
	}
	return c.p, nil
}
