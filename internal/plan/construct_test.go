package plan_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/plan"
	"repro/internal/run"
	"repro/internal/spec"
)

// mustConstruct runs Construct and fails the test on error.
func mustConstruct(t *testing.T, r *run.Run) *plan.Plan {
	t.Helper()
	p, err := plan.Construct(r.Spec, r.Graph, r.Origin)
	if err != nil {
		t.Fatalf("Construct: %v", err)
	}
	if err := p.Validate(r.Graph); err != nil {
		t.Fatalf("constructed plan invalid: %v", err)
	}
	return p
}

func TestConstructMinimalRun(t *testing.T) {
	for _, s := range []*spec.Spec{spec.PaperSpec(), spec.IntroSpec(), spec.LinearSpec(5)} {
		r, truth := run.MustMaterialize(s, run.SingleExec(s))
		p := mustConstruct(t, r)
		if got, want := p.Canonical(), truth.Canonical(); got != want {
			t.Errorf("minimal run plan mismatch:\n got %s\nwant %s", got, want)
		}
	}
}

func TestConstructFigure3(t *testing.T) {
	s := spec.PaperSpec()
	et := run.SingleExec(s)
	rootCopy := et.Copies[0]
	var f1Site, l2Site *run.ExecTree
	for _, site := range rootCopy.Sites {
		if s.KindOf(site.HNode) == spec.Fork {
			f1Site = site
		} else {
			l2Site = site
		}
	}
	run.Duplicate(run.Duplicatable{Site: f1Site, Index: 0})
	run.Duplicate(run.Duplicatable{Site: f1Site.Copies[0].Sites[0], Index: 0})
	run.Duplicate(run.Duplicatable{Site: l2Site, Index: 0})
	run.Duplicate(run.Duplicatable{Site: l2Site.Copies[1].Sites[0], Index: 0})
	r, truth := run.MustMaterialize(s, et)
	p := mustConstruct(t, r)
	if len(p.Nodes) != 17 {
		t.Errorf("|V(T_R)| = %d, want 17 (Figure 7)", len(p.Nodes))
	}
	if got, want := p.Canonical(), truth.Canonical(); got != want {
		t.Errorf("figure-3 plan mismatch:\n got %s\nwant %s", got, want)
	}
	// Spot-check contexts from Figure 8 by module occurrence names.
	byName := make(map[string]dag.VertexID)
	for v := 0; v < r.NumVertices(); v++ {
		byName[r.NameOf(dag.VertexID(v))] = dag.VertexID(v)
	}
	if !p.Context[byName["a1"]].IsRoot() || !p.Context[byName["d1"]].IsRoot() || !p.Context[byName["h1"]].IsRoot() {
		t.Error("a1, d1, h1 should have the root context")
	}
	if p.Context[byName["b1"]] != p.Context[byName["c1"]] {
		t.Error("b1 and c1 should share a loop-copy context")
	}
	if p.Context[byName["b1"]] == p.Context[byName["b2"]] {
		t.Error("b1 and b2 are successive loop iterations with distinct contexts")
	}
	if p.Context[byName["e1"]] != p.Context[byName["g1"]] {
		t.Error("e1 and g1 should share the first L2 copy context")
	}
	if p.Context[byName["f2"]] == p.Context[byName["f3"]] {
		t.Error("f2 and f3 are parallel fork copies with distinct contexts")
	}
	// Loop copy order: the L2− node's children must put e1's copy before e2's.
	l2Minus := p.Context[byName["e1"]].Parent
	if l2Minus != p.Context[byName["e2"]].Parent {
		t.Fatal("e1 and e2 copies should share the L2− parent")
	}
	if len(l2Minus.Children) != 2 ||
		l2Minus.Children[0] != p.Context[byName["e1"]] ||
		l2Minus.Children[1] != p.Context[byName["e2"]] {
		t.Error("L2− children are not in serial order")
	}
}

func TestConstructTerminalSharingLoop(t *testing.T) {
	b := spec.NewBuilder()
	b.Chain("a", "b", "c")
	b.Loop("a", "b")
	s := b.MustBuild()
	et := run.SingleExec(s)
	run.Duplicate(run.Duplicatable{Site: et.Copies[0].Sites[0], Index: 0})
	run.Duplicate(run.Duplicatable{Site: et.Copies[0].Sites[0], Index: 0})
	r, truth := run.MustMaterialize(s, et)
	p := mustConstruct(t, r)
	if got, want := p.Canonical(), truth.Canonical(); got != want {
		t.Errorf("terminal-sharing plan mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestConstructEqualEdgeSetForkLoop(t *testing.T) {
	// A fork and loop with identical edge sets (the paper's F2/L2 shape),
	// replicated in both dimensions.
	s := spec.PaperSpec()
	et := run.SingleExec(s)
	var l2Site *run.ExecTree
	for _, site := range et.Copies[0].Sites {
		if s.KindOf(site.HNode) == spec.Loop {
			l2Site = site
		}
	}
	for i := 0; i < 3; i++ {
		run.Duplicate(run.Duplicatable{Site: l2Site, Index: i})
		f2 := l2Site.Copies[i].Sites[0]
		for j := 0; j <= i; j++ {
			run.Duplicate(run.Duplicatable{Site: f2, Index: 0})
		}
	}
	r, truth := run.MustMaterialize(s, et)
	p := mustConstruct(t, r)
	if got, want := p.Canonical(), truth.Canonical(); got != want {
		t.Errorf("plan mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestConstructRejectsNonConformingRun(t *testing.T) {
	s := spec.PaperSpec()
	r, _ := run.MustMaterialize(s, run.SingleExec(s))
	t.Run("origin length mismatch", func(t *testing.T) {
		if _, err := plan.Construct(s, r.Graph, r.Origin[:2]); err == nil {
			t.Error("short origin accepted")
		}
	})
	t.Run("cross-branch edge", func(t *testing.T) {
		g := r.Graph.Clone()
		// Connect the two parallel branches of G inside F1: c -> e crosses
		// from the fork interior into the loop, breaking self-containment.
		var cV, eV dag.VertexID = -1, -1
		for v := 0; v < g.NumVertices(); v++ {
			switch s.NameOf(r.Origin[v]) {
			case "c":
				cV = dag.VertexID(v)
			case "e":
				eV = dag.VertexID(v)
			}
		}
		g.AddEdge(cV, eV)
		if _, err := plan.Construct(s, g, r.Origin); err == nil {
			t.Error("cross-branch run accepted")
		}
	})
}

// Property: for random Definition-6 runs over several specs, the
// reconstructed plan is canonically identical to the materializer's ground
// truth.
func TestQuickConstructMatchesGroundTruth(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), spec.IntroSpec()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		et := run.RandomExecSteps(s, rng, rng.Intn(80))
		r, truth := run.MustMaterialize(s, et)
		p, err := plan.Construct(s, r.Graph, r.Origin)
		if err != nil {
			t.Logf("seed %d: construct failed: %v", seed, err)
			return false
		}
		if err := p.Validate(r.Graph); err != nil {
			t.Logf("seed %d: invalid plan: %v", seed, err)
			return false
		}
		if p.Canonical() != truth.Canonical() {
			t.Logf("seed %d: canonical mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: construction also matches ground truth for runs generated with
// the geometric expander (larger, bushier trees).
func TestQuickConstructOnExpandedRuns(t *testing.T) {
	s := spec.PaperSpec()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecExpand(s, rng, 1+3*rng.Float64())
		r, truth := run.MustMaterialize(s, et)
		p, err := plan.Construct(s, r.Graph, r.Origin)
		if err != nil {
			return false
		}
		return p.Canonical() == truth.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConstructLargeRunLinearTimeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large run")
	}
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(5))
	r, truth := run.GenerateSized(s, rng, 50_000)
	p := mustConstruct(t, r)
	if p.Canonical() != truth.Canonical() {
		t.Error("large run plan mismatch")
	}
}

func TestPlanStringAndNonEmptyPlus(t *testing.T) {
	s := spec.PaperSpec()
	r, truth := run.MustMaterialize(s, run.SingleExec(s))
	if truth.String() == "" {
		t.Error("String should render something")
	}
	ne := truth.NonEmptyPlus()
	for _, n := range ne {
		if !n.Plus {
			t.Error("NonEmptyPlus returned a − node")
		}
	}
	if len(ne) == 0 || len(ne) > truth.NumPlus() {
		t.Errorf("NonEmptyPlus count %d out of range", len(ne))
	}
	_ = r
}
