// Package plan implements execution plans (the tree T_R of Section 4.1)
// and the linear-time ConstructPlan algorithm of Section 5, which recovers
// the execution plan and the context function of a run from the run graph
// alone, given its specification and fork-and-loop hierarchy.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/spec"
)

// Node is a node of an execution plan T_R.
//
// A Plus node corresponds to a single copy of a fork or loop subgraph (or,
// for the root, to the entire run); a Minus node corresponds to all copies
// of one subgraph at one site, combined in parallel (forks) or in series
// (loops). Children of a loop Minus node are ordered by serial position;
// children of every other node are unordered (the stored order is an
// arbitrary fixed choice).
type Node struct {
	// ID is the node's index in Plan.Nodes.
	ID int
	// Plus is true for + nodes (single copies) and false for − nodes.
	Plus bool
	// HNode is the specification hierarchy node (T_G index) this node
	// instantiates; 0 is the root region.
	HNode int
	// Parent is nil for the root.
	Parent *Node
	// Children are ordered for loop − nodes, arbitrary otherwise.
	Children []*Node
}

// IsRoot reports whether n is the plan root (the G+ node).
func (n *Node) IsRoot() bool { return n.Parent == nil }

// Plan is an execution plan T_R together with the context function C
// mapping each run vertex to its deepest dominating + node (Def. 9).
type Plan struct {
	Spec *spec.Spec
	// Root is the G+ node.
	Root *Node
	// Nodes lists every node; Nodes[i].ID == i.
	Nodes []*Node
	// Context maps each run vertex to its context (always a + node).
	Context []*Node
}

// NewNode appends a fresh node to the plan and returns it.
func (p *Plan) NewNode(plus bool, hnode int, parent *Node) *Node {
	n := &Node{ID: len(p.Nodes), Plus: plus, HNode: hnode, Parent: parent}
	p.Nodes = append(p.Nodes, n)
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	return n
}

// NumPlus returns the number of + nodes.
func (p *Plan) NumPlus() int {
	c := 0
	for _, n := range p.Nodes {
		if n.Plus {
			c++
		}
	}
	return c
}

// NonEmptyPlus returns the + nodes that are the context of at least one run
// vertex, in Nodes order.
func (p *Plan) NonEmptyPlus() []*Node {
	occupied := make([]bool, len(p.Nodes))
	for _, n := range p.Context {
		if n != nil {
			occupied[n.ID] = true
		}
	}
	var out []*Node
	for _, n := range p.Nodes {
		if n.Plus && occupied[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

// KindOf returns the subgraph kind of the node's hierarchy entry; the root
// behaves like a loop (it dominates its terminals).
func (p *Plan) KindOf(n *Node) spec.Kind { return p.Spec.KindOf(n.HNode) }

// Validate checks the structural invariants of the plan against the run it
// describes:
//
//   - the root is a + node for hierarchy node 0;
//   - + and − nodes alternate by level, and a node's HNode is a hierarchy
//     child of its parent's HNode;
//   - every − node has at least one child and every child is a + node of
//     the same HNode;
//   - every run vertex has a + context;
//   - the size bound of Lemma 4.2: |V(T_R)| <= 4·|E(R)| (for runs with at
//     least one edge).
func (p *Plan) Validate(g *dag.Graph) error {
	if p.Root == nil || !p.Root.Plus || p.Root.HNode != 0 {
		return fmt.Errorf("plan: bad root")
	}
	if len(p.Context) != g.NumVertices() {
		return fmt.Errorf("plan: context covers %d vertices, run has %d", len(p.Context), g.NumVertices())
	}
	for i, n := range p.Nodes {
		if n.ID != i {
			return fmt.Errorf("plan: node %d has ID %d", i, n.ID)
		}
		if n.Parent == nil && n != p.Root {
			return fmt.Errorf("plan: node %d detached from root", i)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("plan: node %d child %d has wrong parent", n.ID, c.ID)
			}
			if c.Plus == n.Plus {
				return fmt.Errorf("plan: node %d and child %d have the same polarity", n.ID, c.ID)
			}
			if n.Plus {
				// Child is a − node for a hierarchy child of n.HNode.
				if p.Spec.Hier.Parent[c.HNode] != n.HNode {
					return fmt.Errorf("plan: − node %d (H %d) under + node %d (H %d) is not a hierarchy child",
						c.ID, c.HNode, n.ID, n.HNode)
				}
			} else if c.HNode != n.HNode {
				return fmt.Errorf("plan: + node %d under − node %d changes hierarchy node", c.ID, n.ID)
			}
		}
		if !n.Plus && len(n.Children) == 0 {
			return fmt.Errorf("plan: − node %d has no copies", n.ID)
		}
	}
	for v, c := range p.Context {
		if c == nil {
			return fmt.Errorf("plan: vertex %d has no context", v)
		}
		if !c.Plus {
			return fmt.Errorf("plan: vertex %d has − context %d", v, c.ID)
		}
	}
	if g.NumEdges() > 0 && len(p.Nodes) > 4*g.NumEdges() {
		return fmt.Errorf("plan: %d nodes exceeds Lemma 4.2 bound 4·|E(R)| = %d",
			len(p.Nodes), 4*g.NumEdges())
	}
	return nil
}

// Canonical returns a canonical string form of the plan, independent of
// the arbitrary child order of unordered nodes, and incorporating the
// context assignment. Two plans over the same run are semantically
// identical iff their canonical forms are equal.
func (p *Plan) Canonical() string {
	byNode := make([][]int, len(p.Nodes))
	for v, c := range p.Context {
		if c != nil {
			byNode[c.ID] = append(byNode[c.ID], v)
		}
	}
	var render func(n *Node) string
	render = func(n *Node) string {
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = render(c)
		}
		ordered := !n.Plus && p.KindOf(n) == spec.Loop
		if !ordered {
			sort.Strings(kids)
		}
		var b strings.Builder
		if n.Plus {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", n.HNode)
		if vs := byNode[n.ID]; len(vs) > 0 {
			sort.Ints(vs)
			fmt.Fprintf(&b, "%v", vs)
		}
		b.WriteByte('(')
		b.WriteString(strings.Join(kids, ","))
		b.WriteByte(')')
		return b.String()
	}
	return render(p.Root)
}

// String renders a compact indented tree for debugging.
func (p *Plan) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		sign := "-"
		if n.Plus {
			sign = "+"
		}
		fmt.Fprintf(&b, "%s H%d (node %d)\n", sign, n.HNode, n.ID)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}
