package plan_test

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/plan"
	"repro/internal/run"
	"repro/internal/spec"
)

// mutateRun applies one random structural corruption to a copy of the
// run graph and reports what it did.
func mutateRun(rng *rand.Rand, r *run.Run) (*dag.Graph, []dag.VertexID, string) {
	g := dag.New(r.NumVertices())
	for _, e := range r.Graph.Edges() {
		g.AddEdge(e.Tail, e.Head)
	}
	origin := append([]dag.VertexID(nil), r.Origin...)
	n := r.NumVertices()
	switch rng.Intn(3) {
	case 0:
		// Rewire a random edge to a random target (keeping direction by
		// construction order, which may create cross-copy edges).
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		g2 := dag.New(n)
		skipped := false
		for _, e2 := range edges {
			if !skipped && e2 == e {
				skipped = true
				continue
			}
			g2.AddEdge(e2.Tail, e2.Head)
		}
		g2.AddEdge(e.Tail, dag.VertexID(rng.Intn(n)))
		return g2, origin, "rewired edge"
	case 1:
		// Corrupt one origin.
		origin[rng.Intn(n)] = dag.VertexID(rng.Intn(r.Spec.NumVertices()))
		return g, origin, "corrupted origin"
	default:
		// Delete a random edge.
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		g2 := dag.New(n)
		skipped := false
		for _, e2 := range edges {
			if !skipped && e2 == e {
				skipped = true
				continue
			}
			g2.AddEdge(e2.Tail, e2.Head)
		}
		return g2, origin, "deleted edge"
	}
}

// TestFaultInjection corrupts valid runs and requires that the pipeline
// never silently produces a wrong labeling: either run validation fails,
// plan construction fails, or the resulting plan still satisfies every
// structural invariant AND answers queries consistently with the
// (possibly corrupted) graph... in which case the mutation must have
// produced another valid run (possible: deleting a duplicated loop
// connector can yield a smaller valid run shape). Silent acceptance with
// wrong answers is the only failure mode.
func TestFaultInjection(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(1234))
	accepted, rejected := 0, 0
	for trial := 0; trial < 300; trial++ {
		et := run.RandomExecSteps(s, rng, 2+rng.Intn(15))
		base, _ := run.MustMaterialize(s, et)
		g, origin, _ := mutateRun(rng, base)
		mutated := &run.Run{Spec: s, Graph: g, Origin: origin}
		if err := mutated.Validate(); err != nil {
			rejected++
			continue // caught by cheap validation
		}
		p, err := plan.Construct(s, g, origin)
		if err != nil {
			rejected++
			continue // caught by plan construction
		}
		if err := p.Validate(g); err != nil {
			rejected++
			continue // caught by structural invariants
		}
		// Construction accepted the mutant: the answers must then agree
		// with actual graph reachability (i.e. the mutant happens to be a
		// conforming run).
		accepted++
		closure, ok := g.TransitiveClosure()
		if !ok {
			t.Fatalf("trial %d: accepted cyclic mutant", trial)
		}
		reachable := buildPredicate(p, origin)
		n := g.NumVertices()
		for q := 0; q < 400; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if reachable(u, v) != closure.Reachable(u, v) {
				t.Fatalf("trial %d: silently accepted mutant with wrong answers at (%d,%d)", trial, u, v)
			}
		}
	}
	if rejected == 0 {
		t.Error("expected at least some mutants to be rejected")
	}
	t.Logf("fault injection: %d rejected, %d accepted-as-valid", rejected, accepted)
}
