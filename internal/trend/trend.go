// Package trend turns the repo's per-PR benchmark artifacts — the
// bench/BASELINE_<n>.json lineage plus the current BENCH_<n>.json
// emitted by `make bench-json` — into a cross-PR perf trajectory table
// and a regression gate with configurable tolerances (cmd/benchtrend).
//
// The file format is benchjson's "provbench.v1": a flat benches map of
// name -> {ns_op, b_op, allocs_op, mb_s}, with the pre-PR baseline
// embedded verbatim under "baseline". BASELINE_<n>.json is the
// measurement taken just before PR n's changes; comparing consecutive
// baselines (and the current run) therefore renders how each benchmark
// moved across PRs.
package trend

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one benchmark's measurements, benchjson field names.
type Bench struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	MBs      float64 `json:"mb_s,omitempty"`
}

// File is one provbench.v1 document.
type File struct {
	Schema   string           `json:"schema"`
	Go       string           `json:"go"`
	Benches  map[string]Bench `json:"benches"`
	Baseline *File            `json:"baseline,omitempty"`
}

// Point is one column of the trajectory: a labeled measurement set.
type Point struct {
	Label   string
	Seq     int
	Benches map[string]Bench
}

// ReadFile parses one provbench.v1 JSON document.
func ReadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benches) == 0 {
		return nil, fmt.Errorf("%s: no benches (schema %q)", path, f.Schema)
	}
	return &f, nil
}

var fileSeq = regexp.MustCompile(`(?:BASELINE|BENCH)_(\d+)\.json$`)

// SeqOf extracts the PR number from a BASELINE_<n>.json or
// BENCH_<n>.json path, -1 when the name does not follow the lineage
// convention.
func SeqOf(path string) int {
	m := fileSeq.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return -1
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return -1
	}
	return n
}

// LoadLineage reads every BASELINE_<n>.json in dir (sorted by n,
// labeled "PR n base") and, when currentPath is non-empty, appends that
// file's current benches as the final point (labeled "current"). The
// baselines embedded inside BENCH files are not re-read — the
// checked-in BASELINE files are the canonical lineage.
func LoadLineage(dir, currentPath string) ([]Point, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BASELINE_*.json"))
	if err != nil {
		return nil, err
	}
	var points []Point
	for _, path := range paths {
		seq := SeqOf(path)
		if seq < 0 {
			continue
		}
		f, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		points = append(points, Point{Label: fmt.Sprintf("PR %d base", seq), Seq: seq, Benches: f.Benches})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Seq < points[j].Seq })
	if len(points) == 0 && currentPath == "" {
		return nil, fmt.Errorf("no BASELINE_<n>.json files in %s", dir)
	}
	if currentPath != "" {
		f, err := ReadFile(currentPath)
		if err != nil {
			return nil, err
		}
		seq := SeqOf(currentPath)
		label := "current"
		if seq >= 0 {
			label = fmt.Sprintf("PR %d (current)", seq)
		}
		points = append(points, Point{Label: label, Seq: seq, Benches: f.Benches})
	}
	return points, nil
}

// Tolerance is the gate's per-metric relative slack: a measurement
// regresses when cur > prev*(1+tol) AND the absolute growth clears a
// small noise floor (50ns, 64 B, 2 allocs) — so a 2-alloc wobble on a
// 22-alloc benchmark or scheduler jitter on a 3µs one never fails CI.
type Tolerance struct {
	NsOp     float64
	BOp      float64
	AllocsOp float64
}

// DefaultTolerance is deliberately loose on wall time (shared CI
// runners are noisy) and tighter on the deterministic allocation
// metrics, which are the stable regression signal.
var DefaultTolerance = Tolerance{NsOp: 0.50, BOp: 0.25, AllocsOp: 0.10}

// noise floors below which absolute growth is never a regression.
const (
	noiseNs     = 50.0
	noiseBytes  = 64.0
	noiseAllocs = 2.0
)

// Regression is one gate failure.
type Regression struct {
	Bench  string
	Metric string // "ns/op", "B/op", "allocs/op"
	Prev   float64
	Cur    float64
	Tol    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %s -> %s (+%.1f%%, tolerance %.0f%%)",
		r.Bench, r.Metric, formatMetric(r.Metric, r.Prev), formatMetric(r.Metric, r.Cur),
		(r.Cur/r.Prev-1)*100, r.Tol*100)
}

// Gate compares cur against prev bench-by-bench. Benchmarks present in
// prev but missing from cur (renamed or retired) are tolerated and
// returned in missing; benchmarks new in cur have no baseline and are
// ignored.
func Gate(prev, cur map[string]Bench, tol Tolerance) (regs []Regression, missing []string) {
	names := make([]string, 0, len(prev))
	for name := range prev {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := prev[name]
		c, ok := cur[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		exceeds := func(prevV, curV, tol, floor float64) bool {
			return prevV > 0 && curV > prevV*(1+tol) && curV-prevV > floor
		}
		if exceeds(p.NsOp, c.NsOp, tol.NsOp, noiseNs) {
			regs = append(regs, Regression{Bench: name, Metric: "ns/op", Prev: p.NsOp, Cur: c.NsOp, Tol: tol.NsOp})
		}
		if exceeds(float64(p.BOp), float64(c.BOp), tol.BOp, noiseBytes) {
			regs = append(regs, Regression{Bench: name, Metric: "B/op", Prev: float64(p.BOp), Cur: float64(c.BOp), Tol: tol.BOp})
		}
		if exceeds(float64(p.AllocsOp), float64(c.AllocsOp), tol.AllocsOp, noiseAllocs) {
			regs = append(regs, Regression{Bench: name, Metric: "allocs/op", Prev: float64(p.AllocsOp), Cur: float64(c.AllocsOp), Tol: tol.AllocsOp})
		}
	}
	return regs, missing
}

// Metric selects one measurement for Table.
type Metric string

const (
	MetricNsOp     Metric = "ns/op"
	MetricBOp      Metric = "B/op"
	MetricAllocsOp Metric = "allocs/op"
)

func (m Metric) of(b Bench) (float64, bool) {
	switch m {
	case MetricNsOp:
		return b.NsOp, b.NsOp > 0
	case MetricBOp:
		return float64(b.BOp), b.BOp > 0
	case MetricAllocsOp:
		return float64(b.AllocsOp), b.AllocsOp > 0
	}
	return 0, false
}

func formatMetric(metric string, v float64) string {
	switch metric {
	case "ns/op":
		return formatNs(v)
	case "B/op":
		return fmt.Sprintf("%.0fB", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func formatNs(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%.0fns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.3gms", ns/1e6)
	default:
		return fmt.Sprintf("%.3gs", ns/1e9)
	}
}

// Table renders one metric's cross-PR trajectory as a GitHub-flavored
// markdown table: one row per benchmark (union over all points, sorted)
// and a final Δ column comparing the last point against the nearest
// earlier point that has the benchmark.
func Table(points []Point, metric Metric) string {
	namesSet := map[string]bool{}
	for _, p := range points {
		for name := range p.Benches {
			namesSet[name] = true
		}
	}
	names := make([]string, 0, len(namesSet))
	for name := range namesSet {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark (%s) |", metric)
	for _, p := range points {
		fmt.Fprintf(&b, " %s |", p.Label)
	}
	b.WriteString(" Δ |\n|---|")
	for range points {
		b.WriteString("---:|")
	}
	b.WriteString("---:|\n")
	for _, name := range names {
		fmt.Fprintf(&b, "| %s |", name)
		last, prevOfLast := -1.0, -1.0
		for _, p := range points {
			bench, ok := p.Benches[name]
			if !ok {
				b.WriteString(" — |")
				continue
			}
			v, has := metric.of(bench)
			if !has {
				b.WriteString(" — |")
				continue
			}
			fmt.Fprintf(&b, " %s |", formatMetric(string(metric), v))
			prevOfLast, last = last, v
		}
		if last > 0 && prevOfLast > 0 {
			fmt.Fprintf(&b, " %+.1f%% |\n", (last/prevOfLast-1)*100)
		} else {
			b.WriteString(" — |\n")
		}
	}
	return b.String()
}
