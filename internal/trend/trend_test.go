package trend

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The checked-in bench/BASELINE_3..5.json files are the golden fixtures:
// real measurements from PRs 3..5, exercised here so the lineage format
// can never drift without a test noticing. They are copied into a temp
// dir so later PRs adding BASELINE_6+.json never change these tables.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, n := range []string{"BASELINE_3.json", "BASELINE_4.json", "BASELINE_5.json"} {
		b, err := os.ReadFile(filepath.Join("../../bench", n))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, n), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadLineageFixtures(t *testing.T) {
	points, err := LoadLineage(fixtureDir(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("want >= 3 baseline points, got %d", len(points))
	}
	for i, want := range []int{3, 4, 5} {
		if points[i].Seq != want {
			t.Errorf("point %d: seq %d, want %d", i, points[i].Seq, want)
		}
		if points[i].Label != "PR "+string(rune('0'+want))+" base" {
			t.Errorf("point %d: label %q", i, points[i].Label)
		}
		if len(points[i].Benches) == 0 {
			t.Errorf("point %d has no benches", i)
		}
	}
	// Values every fixture must agree on (from the real lineage).
	b3 := points[0].Benches["ServerBatchReachable/pairs=1024"]
	if b3.NsOp != 563822 || b3.AllocsOp != 2095 {
		t.Errorf("PR 3 base pairs=1024 = %+v, fixture drifted", b3)
	}
	b5 := points[2].Benches["ServerBatchReachable/pairs=1024"]
	if b5.AllocsOp != 24 {
		t.Errorf("PR 5 base pairs=1024 allocs = %d, want 24", b5.AllocsOp)
	}
}

func TestTableGolden(t *testing.T) {
	points, err := LoadLineage(fixtureDir(t), "")
	if err != nil {
		t.Fatal(err)
	}
	table := Table(points, MetricNsOp)
	for _, want := range []string{
		"| benchmark (ns/op) | PR 3 base | PR 4 base | PR 5 base | Δ |",
		"| ServerBatchReachable/pairs=1024 | 564µs | 91.7µs | 107µs |",
		"| SnapshotDecode/SKL1/n=16000 |",
	} {
		if !strings.Contains(table, want) {
			t.Errorf("ns/op table missing %q:\n%s", want, table)
		}
	}
	// A benchmark absent from an early point renders as a dash, not a
	// crash or a zero.
	if !strings.Contains(table, "| ServerIngest | — | — |") {
		t.Errorf("missing-early-point rendering wrong:\n%s", table)
	}
	allocs := Table(points, MetricAllocsOp)
	if !strings.Contains(allocs, "| ServerBatchReachable/pairs=1024 | 2095 | 22 | 24 |") {
		t.Errorf("allocs table wrong:\n%s", allocs)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	prev := map[string]Bench{"X": {NsOp: 1000, BOp: 512, AllocsOp: 20}}
	cur := map[string]Bench{"X": {NsOp: 600, BOp: 256, AllocsOp: 10}}
	regs, missing := Gate(prev, cur, DefaultTolerance)
	if len(regs) != 0 || len(missing) != 0 {
		t.Errorf("improvement flagged: regs=%v missing=%v", regs, missing)
	}
}

func TestGateRegressionBeyondTolerance(t *testing.T) {
	prev := map[string]Bench{"X": {NsOp: 10_000, BOp: 4096, AllocsOp: 50}}
	cur := map[string]Bench{"X": {NsOp: 30_000, BOp: 4096, AllocsOp: 120}}
	regs, _ := Gate(prev, cur, DefaultTolerance)
	if len(regs) != 2 {
		t.Fatalf("want ns/op + allocs/op regressions, got %v", regs)
	}
	if regs[0].Metric != "ns/op" || regs[1].Metric != "allocs/op" {
		t.Errorf("wrong metrics: %v", regs)
	}
}

func TestGateNoiseFloors(t *testing.T) {
	// Tiny absolute wobbles must never gate, even when the ratio is
	// huge: 22 -> 24 allocs is +9% but only +2 allocs; 30ns -> 70ns is
	// +133% but under the 50ns floor.
	prev := map[string]Bench{
		"allocs": {NsOp: 1000, AllocsOp: 22},
		"fast":   {NsOp: 30},
	}
	cur := map[string]Bench{
		"allocs": {NsOp: 1000, AllocsOp: 24},
		"fast":   {NsOp: 70},
	}
	if regs, _ := Gate(prev, cur, DefaultTolerance); len(regs) != 0 {
		t.Errorf("noise-floor wobble gated: %v", regs)
	}
}

func TestGateMissingBenchTolerated(t *testing.T) {
	prev := map[string]Bench{"Renamed": {NsOp: 1000}, "Kept": {NsOp: 1000}}
	cur := map[string]Bench{"Kept": {NsOp: 900}, "Brand-new": {NsOp: 1}}
	regs, missing := Gate(prev, cur, DefaultTolerance)
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}
	if len(missing) != 1 || missing[0] != "Renamed" {
		t.Errorf("missing = %v, want [Renamed]", missing)
	}
}

func TestSeqOf(t *testing.T) {
	for path, want := range map[string]int{
		"bench/BASELINE_5.json": 5,
		"BENCH_12.json":         12,
		"whatever.json":         -1,
		"BASELINE_x.json":       -1,
	} {
		if got := SeqOf(path); got != want {
			t.Errorf("SeqOf(%q) = %d, want %d", path, got, want)
		}
	}
}
