package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtures maps each fixture directory under testdata/src to the import
// path it impersonates (errwrap and counterreg scope themselves by
// path) and the analyzer whose invariant it encodes.
var fixtures = []struct {
	dir      string
	asPath   string
	analyzer string
}{
	{"errwrap", "repro/internal/store/lintfixture", "errwrap"},
	{"guardedby", "fixture/guardedby", "guardedby"},
	{"counterreg", "fixture/internal/server", "counterreg"},
	{"seededrand", "fixture/seededrand", "seededrand"},
	{"droppederr", "fixture/droppederr", "droppederr"},
}

// One loader for the whole test binary: the stdlib is type-checked from
// source once, every fixture and self-check reuses it.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader("../..")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// expectation is one //lintwant comment: a diagnostic from analyzer at
// file:line with the given suppression state.
type expectation struct {
	file       string
	line       int
	analyzer   string
	suppressed bool
}

var lintwantRe = regexp.MustCompile(`//lintwant(\+\d+)?\s+(\S+)(\s+suppressed)?`)

// wantsIn parses //lintwant [analyzer] and //lintwant+N (N lines down)
// comments out of every .go file in dir.
func wantsIn(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := lintwantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, _ = strconv.Atoi(m[1][1:])
			}
			wants = append(wants, expectation{
				file:       path,
				line:       line + offset,
				analyzer:   m[2],
				suppressed: m[3] != "",
			})
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no //lintwant expectations", dir)
	}
	return wants
}

func diagKey(d Diagnostic) string {
	return fmt.Sprintf("%s:%d %s suppressed=%v", d.File, d.Line, d.Analyzer, d.Suppressed)
}

func wantKey(w expectation) string {
	return fmt.Sprintf("%s:%d %s suppressed=%v", w.file, w.line, w.analyzer, w.suppressed)
}

// runFixture lints one fixture dir with the given analyzers and returns
// the diagnostics with file paths as written in the fixture.
func runFixture(t *testing.T, dir, asPath string, analyzers []Analyzer) []Diagnostic {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return Run([]*Package{pkg}, analyzers, "")
}

// TestFixtureGolden compares, per fixture, the full diagnostic set from
// the full analyzer suite against the fixture's //lintwant comments —
// positions, analyzers and suppression state all have to match exactly.
func TestFixtureGolden(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", fx.dir)
			diags := runFixture(t, dir, fx.asPath, All())
			got := make(map[string]Diagnostic)
			for _, d := range diags {
				got[diagKey(d)] = d
			}
			want := make(map[string]expectation)
			for _, w := range wantsIn(t, dir) {
				want[wantKey(w)] = w
			}
			for k := range want {
				if _, ok := got[k]; !ok {
					t.Errorf("missing expected diagnostic: %s", k)
				}
			}
			for k, d := range got {
				if _, ok := want[k]; !ok {
					t.Errorf("unexpected diagnostic: %s (%s)", k, d.Message)
				}
			}
		})
	}
}

// TestFixtureRequiresAnalyzer proves each analyzer is load-bearing:
// with it disabled, its fixture — which deliberately violates only that
// analyzer's invariant — lints completely clean, so nothing else would
// have caught the bug.
func TestFixtureRequiresAnalyzer(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			var rest []Analyzer
			for _, a := range All() {
				if a.Name() != fx.analyzer {
					rest = append(rest, a)
				}
			}
			dir := filepath.Join("testdata", "src", fx.dir)
			full := runFixture(t, dir, fx.asPath, All())
			if n := len(findingsBy(full, fx.analyzer)); n == 0 {
				t.Fatalf("fixture produces no %s findings with the full suite", fx.analyzer)
			}
			reduced := runFixture(t, dir, fx.asPath, rest)
			if diags := Unsuppressed(reduced); len(diags) != 0 {
				t.Fatalf("without %s the fixture should lint clean, got %v", fx.analyzer, diags)
			}
		})
	}
}

func findingsBy(diags []Diagnostic, analyzer string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == analyzer && !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// TestMalformedDirective: an ignore directive without a reason is a
// finding itself and suppresses nothing.
func TestMalformedDirective(t *testing.T) {
	dir := filepath.Join("testdata", "src", "malformed")
	diags := runFixture(t, dir, "fixture/malformed", All())
	got := make(map[string]bool)
	for _, d := range diags {
		got[diagKey(d)] = true
	}
	for _, w := range wantsIn(t, dir) {
		if !got[wantKey(w)] {
			t.Errorf("missing expected diagnostic: %s (got %v)", wantKey(w), diags)
		}
	}
	for _, d := range diags {
		if d.Suppressed {
			t.Errorf("malformed directive must not suppress: %s", d)
		}
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics (provlint + droppederr), got %d: %v", len(diags), diags)
	}
}

// TestSuppressionCarriesReason: a justified drop in the droppederr
// fixture is suppressed and its reason survives into the diagnostic.
func TestSuppressionCarriesReason(t *testing.T) {
	dir := filepath.Join("testdata", "src", "droppederr")
	diags := runFixture(t, dir, "fixture/droppederr", All())
	var suppressed []Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		}
	}
	if len(suppressed) != 1 {
		t.Fatalf("want 1 suppressed diagnostic, got %v", suppressed)
	}
	if want := "fixture demonstrates a justified best-effort drop"; suppressed[0].Reason != want {
		t.Errorf("reason = %q, want %q", suppressed[0].Reason, want)
	}
	if len(Unsuppressed(diags)) != len(diags)-1 {
		t.Errorf("Unsuppressed dropped %d diagnostics, want exactly 1", len(diags)-len(Unsuppressed(diags)))
	}
}

// TestJSONReport pins the provlint.v1 report shape the CI artifact
// (LINT.json) carries: schema tag, analyzer list, finding count
// excluding suppressions, and per-diagnostic suppression reasons.
func TestJSONReport(t *testing.T) {
	dir := filepath.Join("testdata", "src", "droppederr")
	diags := runFixture(t, dir, "fixture/droppederr", All())
	report := NewReport("repro", All(), 1, diags)

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema    string   `json:"schema"`
		Module    string   `json:"module"`
		Analyzers []string `json:"analyzers"`
		Packages  int      `json:"packages"`
		Findings  int      `json:"findings"`
		Diags     []struct {
			Analyzer   string `json:"analyzer"`
			File       string `json:"file"`
			Line       int    `json:"line"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
			Reason     string `json:"reason"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	if decoded.Schema != "provlint.v1" {
		t.Errorf("schema = %q, want provlint.v1", decoded.Schema)
	}
	if decoded.Module != "repro" || decoded.Packages != 1 {
		t.Errorf("module/packages = %q/%d", decoded.Module, decoded.Packages)
	}
	if want := Names(All()); !equalStrings(decoded.Analyzers, want) {
		t.Errorf("analyzers = %v, want %v", decoded.Analyzers, want)
	}
	if decoded.Findings != len(Unsuppressed(diags)) || decoded.Findings == 0 {
		t.Errorf("findings = %d, want %d (nonzero)", decoded.Findings, len(Unsuppressed(diags)))
	}
	if len(decoded.Diags) != len(diags) {
		t.Fatalf("diagnostics = %d, want %d", len(decoded.Diags), len(diags))
	}
	foundSuppressed := false
	for _, d := range decoded.Diags {
		if d.Analyzer == "" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic in JSON: %+v", d)
		}
		if d.Suppressed {
			foundSuppressed = true
			if d.Reason == "" {
				t.Errorf("suppressed diagnostic lost its reason: %+v", d)
			}
		}
	}
	if !foundSuppressed {
		t.Error("JSON report must carry suppressed diagnostics")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSelect covers -only's selection semantics, typo included.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := Select("errwrap, droppederr")
	if err != nil || len(two) != 2 || two[0].Name() != "errwrap" || two[1].Name() != "droppederr" {
		t.Fatalf("Select(errwrap,droppederr) = %v, err %v", Names(two), err)
	}
	if _, err := Select("errwarp"); err == nil {
		t.Fatal("Select with a typo must fail, not silently skip an invariant")
	}
}

// TestVerbParsing pins the format-string/argument pairing errwrap
// relies on.
func TestVerbParsing(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
	}{
		{"plain", nil},
		{"%v", []verb{{'v', 0}}},
		{"%d %s %w", []verb{{'d', 0}, {'s', 1}, {'w', 2}}},
		{"100%% %v", []verb{{'v', 0}}},
		{"%*d %v", []verb{{'d', 1}, {'v', 2}}},
		{"%.2f %q", []verb{{'f', 0}, {'q', 1}}},
		{"%[2]v %[1]v", []verb{{'v', 1}, {'v', 0}}},
		{"%+v", []verb{{'v', 0}}},
	}
	for _, c := range cases {
		got := parseVerbs(c.format)
		if len(got) != len(c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseVerbs(%q)[%d] = %v, want %v", c.format, i, got[i], c.want[i])
			}
		}
	}
}

// TestCounterKeyForRoute pins the route -> snapshot-key derivation.
func TestCounterKeyForRoute(t *testing.T) {
	cases := map[string]string{
		"/healthz":                 "healthz",
		"/specs":                   "specs",
		"/runs":                    "runs",
		"/reachable":               "reachable",
		"/rpq":                     "rpq",
		"GET /runs/{name}":         "status",
		"PUT /runs/{name}":         "put",
		"DELETE /runs/{name}":      "delete",
		"POST /runs/{name}/events": "events",
		"POST /runs/{name}/finish": "finish",
	}
	for route, want := range cases {
		if got := counterKeyForRoute(route); got != want {
			t.Errorf("counterKeyForRoute(%q) = %q, want %q", route, got, want)
		}
	}
}
