// Package lint is a self-contained static-analysis framework and the
// repo-specific analyzers behind cmd/provlint and the tier-1
// TestLintRepoClean gate. It is built entirely on the standard
// library's go/parser, go/types and go/importer (source mode) — no
// golang.org/x/tools — so it loads, type-checks and analyzes the whole
// module fully offline.
//
// An Analyzer walks one type-checked Package and reports
// position-tagged diagnostics. Findings can be suppressed at the site
// with a mandatory reason:
//
//	//provlint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. A directive
// without a reason is itself a finding and suppresses nothing — the
// reason is the point: every suppression in the tree documents why the
// invariant legitimately does not apply there. Suppressed findings
// still appear (flagged, with their reason) in the provlint.v1 JSON
// report that `provlint -json` emits and CI uploads as LINT.json.
//
// # Enforced invariants
//
// Each analyzer mechanizes an invariant that earlier PRs established
// by convention and that a reviewer cannot reliably re-check by eye:
//
//   - errwrap: inside repro/internal/store/..., fmt.Errorf applied to
//     an error-typed argument must use %w, never %v/%s/%q. The store's
//     failure model classifies errors with errors.Is(err, ErrTransient)
//     through arbitrarily deep wrap chains; one %v flattens the chain
//     and silently turns a retryable fault into a permanent one,
//     defeating WithRetry and the server's circuit breaker. (Exactly
//     this bug existed in faultinject.ParsePlan until this PR.)
//
//   - guardedby: a struct field commented "guarded by <mu>" may only
//     be touched by functions that lock <mu> (Lock/RLock/TryLock/
//     TryRLock on it) or whose doc comment states the caller holds it
//     ("caller holds mu", "mu is held", ...). The check is
//     function-granular, not path-sensitive — deliberately simple, it
//     catches the common regression: a new accessor that forgets the
//     mutex entirely.
//
//   - counterreg: in internal/server, every route registered on the
//     mux must have a matching key in servedCounters' snapshot map and
//     vice versa ("other" is the sanctioned catch-all). /healthz is the
//     observability contract; an endpoint whose traffic silently lands
//     nowhere — or a stale key that reads forever-zero — is the kind of
//     drift that only shows up during an incident.
//
//   - seededrand: no calls to math/rand's top-level (process-global,
//     unseeded) functions outside _test.go files. Reproducibility is
//     load-bearing here: fault plans replay byte-identically from a
//     seed, the RPQ differential battery and run generation take
//     explicit seeds. The sanctioned form is a locally seeded
//     *rand.Rand via rand.New(rand.NewSource(seed)).
//
//   - droppederr: no `_ =` / `, _ :=` discards of error results from
//     store.Backend or store.Store calls in non-test code. The
//     resilience layer's guarantees (labels-before-document ordering,
//     acknowledged-means-durable streaming) assume write errors are
//     observed; a best-effort drop is allowed only with an ignore
//     directive explaining why it is safe.
//
// The analyzers are pinned three ways: golden fixtures under
// testdata/src/ (one per analyzer, with //lintwant expectations, each
// proven to lint clean when its analyzer is disabled), the
// TestLintRepoClean self-check that runs the suite over the real
// module in `go test ./...`, and `make lint` / cmd/provlint in CI.
package lint
