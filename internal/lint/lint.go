// Framework core: the Analyzer interface, diagnostics, suppression
// directives and the JSON report. The package doc comment — including
// what each invariant protects and why it is load-bearing — lives in
// doc.go.

package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package the analyzers run over.
// Test files (_test.go) are never loaded: the invariants govern shipped
// code, and tests are free to use unseeded randomness or drop errors.
type Package struct {
	// Path is the import path the package was loaded under. Analyzers
	// that scope themselves to part of the tree (errwrap to the store,
	// counterreg to the server) match on suffixes/segments of this path.
	Path string
	// Dir is the directory the files were parsed from.
	Dir string
	// Fset is the shared FileSet all positions resolve against.
	Fset *token.FileSet
	// Files are the parsed non-test files, comments included.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
}

// Diagnostic is one position-tagged finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	// File is the path relative to the module root when possible.
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Suppressed reports that a //provlint:ignore directive covers this
	// finding; Reason is the justification the directive carried.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Reporter is the callback analyzers deliver findings through.
type Reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one invariant checker. Check is called once per loaded
// package and reports findings through the Reporter; implementations
// must not retain pkg past the call.
type Analyzer interface {
	// Name is the analyzer's identifier — the token a
	// //provlint:ignore directive and the -only flag select it by.
	Name() string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc() string
	Check(pkg *Package, report Reporter)
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		ErrWrap{},
		GuardedBy{},
		CounterReg{},
		SeededRand{},
		DroppedErr{},
	}
}

// Select filters All() down to the comma-separated names in only
// (empty selects everything). Unknown names are an error so a typo in
// -only cannot silently skip an invariant.
func Select(only string) ([]Analyzer, error) {
	all := All()
	if strings.TrimSpace(only) == "" {
		return all, nil
	}
	byName := make(map[string]Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have %s)", name, strings.Join(Names(all), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the analyzers' names in order.
func Names(as []Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name()
	}
	return out
}

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//provlint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — a suppression without a justification is itself a
// finding, so every escape hatch in the tree documents why the
// invariant does not apply.
const IgnoreDirective = "provlint:ignore"

// suppression is one parsed //provlint:ignore directive.
type suppression struct {
	analyzer string
	reason   string
}

// suppressionIndex maps file -> line -> directive for one package.
type suppressionIndex map[string]map[int]suppression

// indexSuppressions scans a package's comments for ignore directives.
// Malformed directives (missing analyzer or reason) are reported as
// findings from the pseudo-analyzer "provlint" — they can never be
// suppressed, so a broken escape hatch is always visible.
func indexSuppressions(pkg *Package, root string, report func(Diagnostic)) suppressionIndex {
	idx := make(suppressionIndex)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file := relTo(root, pos.Filename)
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				analyzer, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if analyzer == "" || reason == "" {
					report(Diagnostic{
						Analyzer: "provlint",
						File:     file, Line: pos.Line, Col: pos.Column,
						Message: "malformed ignore directive: want //provlint:ignore <analyzer> <reason>",
					})
					continue
				}
				if idx[file] == nil {
					idx[file] = make(map[int]suppression)
				}
				idx[file][pos.Line] = suppression{analyzer: analyzer, reason: reason}
			}
		}
	}
	return idx
}

// covers reports whether a directive at the diagnostic's line or the
// line above names its analyzer.
func (idx suppressionIndex) covers(d Diagnostic) (suppression, bool) {
	lines := idx[d.File]
	if lines == nil {
		return suppression{}, false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		if s, ok := lines[line]; ok && s.analyzer == d.Analyzer {
			return s, true
		}
	}
	return suppression{}, false
}

// Run applies the analyzers to every package and returns all
// diagnostics — suppressed ones included, flagged — sorted by position.
// root (the module root) relativizes file paths; empty keeps them
// absolute.
func Run(pkgs []*Package, analyzers []Analyzer, root string) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		idx := indexSuppressions(pkg, root, func(d Diagnostic) { diags = append(diags, d) })
		for _, a := range analyzers {
			a := a
			a.Check(pkg, func(pos token.Pos, format string, args ...any) {
				p := pkg.Fset.Position(pos)
				d := Diagnostic{
					Analyzer: a.Name(),
					File:     relTo(root, p.Filename), Line: p.Line, Col: p.Column,
					Message: fmt.Sprintf(format, args...),
				}
				if s, ok := idx.covers(d); ok {
					d.Suppressed, d.Reason = true, s.reason
				}
				diags = append(diags, d)
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Unsuppressed filters diags down to the findings that fail a lint run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Report is the machine-readable output of one lint run ("provlint.v1").
type Report struct {
	Schema    string       `json:"schema"`
	Module    string       `json:"module"`
	Analyzers []string     `json:"analyzers"`
	Packages  int          `json:"packages"`
	Findings  int          `json:"findings"` // unsuppressed count
	Diags     []Diagnostic `json:"diagnostics"`
}

// NewReport assembles the JSON report for one run.
func NewReport(module string, analyzers []Analyzer, packages int, diags []Diagnostic) Report {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return Report{
		Schema:    "provlint.v1",
		Module:    module,
		Analyzers: Names(analyzers),
		Packages:  packages,
		Findings:  len(Unsuppressed(diags)),
		Diags:     diags,
	}
}

// WriteJSON encodes the report, indented for artifact diffing.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// relTo makes path relative to root when it nests inside it.
func relTo(root, path string) string {
	if root == "" {
		return path
	}
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// errorType is the universe error interface, shared by analyzers.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is or implements error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Identical(t, errorType)
}

// lastIdent returns the final identifier of a selector chain ("c.mu" ->
// "mu", "mu" -> "mu"), or "" when the expression is something else.
func lastIdent(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return lastIdent(x.X)
	}
	return ""
}

// funcFor resolves a call's callee to the *types.Func it invokes
// (package function, method, or interface method), or nil for calls
// through function-typed values, conversions, and builtins.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
