package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr forbids discarding storage errors into the blank
// identifier: an assignment whose `_` swallows an error returned by a
// function or method of repro/internal/store (the Store/Backend
// surface, the retry wrapper, faultinject) in non-test code. The
// failure contract from PR 8 only works end to end if every backend
// error reaches a classifier — a dropped error is a transient fault the
// retry layer never saw, a breaker strike never counted, and in the
// worst case a silent write loss. Genuinely best-effort cleanups must
// say so with a //provlint:ignore directive, which makes the judgment
// call reviewable instead of invisible.
type DroppedErr struct{}

func (DroppedErr) Name() string { return "droppederr" }

func (DroppedErr) Doc() string {
	return "errors returned by repro/internal/store APIs are never _-discarded in non-test code"
}

// droppedErrScope: calls whose callee is declared in this package (or a
// subpackage) are storage calls. Interface method calls resolve to the
// declaring package, so Backend implementations wrapped in retry or
// fault injection are covered through the interface they serve.
const droppedErrScope = "repro/internal/store"

func storeCall(info *types.Info, e ast.Expr) (*types.Func, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn := funcFor(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	path := fn.Pkg().Path()
	if path != droppedErrScope && !strings.HasPrefix(path, droppedErrScope+"/") {
		return nil, false
	}
	return fn, true
}

func (DroppedErr) Check(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch {
			case len(assign.Rhs) == 1:
				// `_ = call()` or `a, _, err := call()`: result i of the
				// call's (possibly tuple) type feeds Lhs[i].
				fn, ok := storeCall(pkg.Info, assign.Rhs[0])
				if !ok {
					return true
				}
				results := resultTypes(pkg.Info, assign.Rhs[0])
				for i, lhs := range assign.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && i < len(results) && isErrorType(results[i]) {
						report(lhs.Pos(),
							"error from %s.%s discarded into _; handle it, or //provlint:ignore droppederr with the reason it is best-effort",
							fn.Pkg().Name(), fn.Name())
					}
				}
			default:
				// `a, _ = f(), g()`: each Rhs maps 1:1 onto its Lhs.
				for i, lhs := range assign.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" || i >= len(assign.Rhs) {
						continue
					}
					fn, ok := storeCall(pkg.Info, assign.Rhs[i])
					if !ok {
						continue
					}
					if isErrorType(pkg.Info.Types[ast.Unparen(assign.Rhs[i])].Type) {
						report(lhs.Pos(),
							"error from %s.%s discarded into _; handle it, or //provlint:ignore droppederr with the reason it is best-effort",
							fn.Pkg().Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
}

// resultTypes flattens a call expression's result tuple.
func resultTypes(info *types.Info, e ast.Expr) []types.Type {
	t := info.Types[ast.Unparen(e)].Type
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}
