package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand enforces the determinism discipline behind the repo's
// byte-deterministic answers and reproducible chaos runs: non-test code
// never calls math/rand's top-level convenience functions (rand.Intn,
// rand.Float64, ...), which draw from the process-global, startup-seeded
// source. Synthetic specs, fault-injection decisions, zipfian load
// sampling and RPQ pattern generation must all flow from an explicitly
// seeded *rand.Rand so a failing run can be replayed from its seed —
// the /rpq differential battery and the fault:// plans (seed=N) depend
// on it. Constructors (rand.New, rand.NewSource, rand.NewZipf) are the
// sanctioned way in and stay allowed. Test files are exempt by
// construction (the loader never parses _test.go).
type SeededRand struct{}

func (SeededRand) Name() string { return "seededrand" }

func (SeededRand) Doc() string {
	return "non-test code draws randomness from an explicitly seeded *rand.Rand, never math/rand's global-source top-level functions"
}

// seededRandAllowed are the math/rand package-level functions that do
// not touch the global source.
var seededRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func (SeededRand) Check(pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand (and Source/Zipf) are the seeded,
			// reproducible path — only package-level functions draw from
			// the global source.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if seededRandAllowed[fn.Name()] {
				return true
			}
			report(call.Fun.Pos(),
				"rand.%s draws from the process-global source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) so runs are reproducible",
				fn.Name())
			return true
		})
	}
}
