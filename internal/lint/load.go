package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks the module's packages with nothing but
// the standard library: module-internal imports resolve against the
// module root, everything else is compiled from GOROOT source by
// go/importer's "source" mode (offline by construction — this module
// has zero dependencies, so any other import path is a bug). Loaded
// packages are cached, so a whole-module run type-checks each package
// and each stdlib dependency exactly once.
type Loader struct {
	fset   *token.FileSet
	module string
	root   string
	std    types.ImporterFrom

	mu   sync.Mutex // guards pkgs and loading against concurrent Load calls
	pkgs map[string]*Package
}

// The source importer compiles stdlib packages from GOROOT source and
// cannot process cgo files; forcing cgo off selects the pure-Go
// fallbacks (netgo, osusergo) every package here is buildable with.
var cgoOff = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

// NewLoader builds a Loader for the module rooted at root (the
// directory holding go.mod, from which the module path is read).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	cgoOff()
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		fset:   fset,
		module: module,
		root:   abs,
		std:    std,
		pkgs:   make(map[string]*Package),
	}, nil
}

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if path := strings.TrimSpace(rest); path != "" {
				return strings.Trim(path, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer over the module + stdlib split, so
// type-checking one package pulls its module-internal dependencies
// through the same loader (and cache).
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load type-checks the module package with the given import path
// (the module path itself or module/<dir>), cached.
func (l *Loader) Load(path string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle marker; module packages cannot import cyclically
	l.mu.Unlock()

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	pkg, err := l.loadDir(filepath.Join(l.root, filepath.FromSlash(rel)), path)

	l.mu.Lock()
	if err != nil {
		delete(l.pkgs, path)
	} else {
		l.pkgs[path] = pkg
	}
	l.mu.Unlock()
	return pkg, err
}

// LoadDir type-checks the package in dir under an explicit import path
// without touching the cache — the fixture-test entry point, so a
// fixture can impersonate a scoped path (e.g. live under testdata but
// type-check as a repro/internal/store subpackage).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no non-test Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}

// LoadAll walks the module tree and loads every package that has at
// least one non-test Go file. Directories named testdata, hidden and
// underscore-prefixed directories, and non-package directories (bench,
// .github, stores on disk) are skipped the same way the go tool skips
// them.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		hasGo, err := dirHasGo(p)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.module)
		} else {
			paths = append(paths, l.module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// dirHasGo reports whether dir directly contains a non-test Go file.
func dirHasGo(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
