package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CounterReg keeps the server's observability contract closed over its
// routes: every pattern registered on the internal/server request mux
// must surface a matching key in the servedCounters snapshot that
// /healthz reports (and cmd/provload diffs as server-side ground
// truth), and every snapshot key except the "other" catch-all must
// correspond to a registered route. Without this, a new endpoint ships
// with its traffic silently lumped into "other" — exactly how the /rpq
// counter had to be remembered by hand in PR 9 — and the load harness's
// served-vs-completed cross-check develops a blind spot.
type CounterReg struct{}

func (CounterReg) Name() string { return "counterreg" }

func (CounterReg) Doc() string {
	return "every mux route in internal/server has a servedCounters snapshot key, and every key (except \"other\") has a route"
}

// counterKeyForRoute derives the snapshot key a mux pattern must
// surface: the last non-wildcard path segment, or for routes addressing
// a run by wildcard ("GET /runs/{name}"), the conventional key of the
// method (GET reads status, PUT ingests as "put", DELETE deletes).
func counterKeyForRoute(route string) string {
	method, path := "", route
	if m, p, ok := strings.Cut(route, " "); ok && !strings.Contains(m, "/") {
		method, path = m, strings.TrimSpace(p)
	}
	segs := strings.Split(strings.Trim(path, "/"), "/")
	last := segs[len(segs)-1]
	if last == "" {
		return "other"
	}
	if strings.HasPrefix(last, "{") {
		switch method {
		case "GET":
			return "status"
		case "PUT":
			return "put"
		case "DELETE":
			return "delete"
		default:
			return strings.ToLower(method)
		}
	}
	return strings.TrimPrefix(last, "/")
}

func (CounterReg) Check(pkg *Package, report Reporter) {
	if pkg.Path != "repro/internal/server" && !strings.HasSuffix(pkg.Path, "/internal/server") {
		return
	}

	// The counter type is the contract's anchor; a package without it
	// has nothing to check.
	obj := pkg.Pkg.Scope().Lookup("servedCounters")
	if obj == nil {
		return
	}

	// Snapshot keys: string keys of map literals inside servedCounters'
	// snapshot method.
	keys := make(map[string]token.Pos)
	var snapshotEnd token.Pos
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "snapshot" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if recvNamed(pkg.Info, fn) != obj {
				continue
			}
			snapshotEnd = fn.Body.Rbrace
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				kv, ok := n.(*ast.KeyValueExpr)
				if !ok {
					return true
				}
				if tv, ok := pkg.Info.Types[kv.Key]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					keys[constant.StringVal(tv.Value)] = kv.Key.Pos()
				}
				return true
			})
		}
	}
	if snapshotEnd == token.NoPos {
		return
	}

	// Routes: constant-string patterns handed to (*http.ServeMux).HandleFunc
	// or Handle.
	derived := make(map[string]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			fn := funcFor(pkg.Info, call)
			if fn == nil || (fn.Name() != "HandleFunc" && fn.Name() != "Handle") {
				return true
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !strings.Contains(recv.Type().String(), "net/http.ServeMux") {
				return true
			}
			tv, ok := pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			route := constant.StringVal(tv.Value)
			key := counterKeyForRoute(route)
			derived[key] = true
			if _, ok := keys[key]; !ok {
				report(call.Args[0].Pos(),
					"route %q has no servedCounters snapshot key %q: its traffic would be invisible to /healthz and the provload cross-check",
					route, key)
			}
			return true
		})
	}

	// Reverse direction: stale keys with no route behind them.
	var stale []string
	for key := range keys {
		if key != "other" && !derived[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		report(keys[key],
			"servedCounters snapshot key %q matches no registered mux route: dead counter or renamed endpoint", key)
	}
}

// recvNamed resolves a method's receiver to the type name object it is
// declared on (pointer receivers included).
func recvNamed(info *types.Info, fn *ast.FuncDecl) types.Object {
	if len(fn.Recv.List) == 0 {
		return nil
	}
	t := info.Types[fn.Recv.List[0].Type].Type
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
