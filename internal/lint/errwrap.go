package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// ErrWrap enforces the storage layer's error-classification invariant:
// inside repro/internal/store and its subpackages, every fmt.Errorf
// that formats an error-typed argument must use the %w verb, never
// %v/%s/%q. The resilience stack — store.IsTransient, store.WithRetry,
// the server circuit breaker — classifies failures with errors.Is
// through the wrap chain; a %v wrap flattens the error to text, the
// store.ErrTransient sentinel disappears, and retry/breaker silently
// treat a transient fault as permanent (or vice versa).
type ErrWrap struct{}

func (ErrWrap) Name() string { return "errwrap" }

func (ErrWrap) Doc() string {
	return "fmt.Errorf in repro/internal/store/... must wrap error arguments with %w (not %v/%s/%q) so errors.Is classification survives"
}

// errWrapScope is the import-path prefix the invariant governs.
const errWrapScope = "repro/internal/store"

func (ErrWrap) Check(pkg *Package, report Reporter) {
	if pkg.Path != errWrapScope && !strings.HasPrefix(pkg.Path, errWrapScope+"/") {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pkg.Info, call)
			if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
				return true
			}
			tv, ok := pkg.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			format := constant.StringVal(tv.Value)
			for _, v := range parseVerbs(format) {
				argIdx := 1 + v.arg // args[0] is the format string
				if v.verb == 'w' || argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				if !isErrorType(pkg.Info.Types[arg].Type) {
					continue
				}
				if v.verb == 'v' || v.verb == 's' || v.verb == 'q' {
					report(arg.Pos(),
						"fmt.Errorf formats an error with %%%c; wrap with %%w so errors.Is sees through it (store error classification)",
						v.verb)
				}
			}
			return true
		})
	}
}

// verb is one conversion in a format string mapped to the variadic
// argument index it consumes (0-based over the args after the format).
type verb struct {
	verb rune
	arg  int
}

// parseVerbs walks a fmt format string and assigns each conversion its
// argument, honoring flags, star width/precision (each star consumes an
// argument) and explicit [n] argument indexes.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags.
		for i < len(runes) && strings.ContainsRune("+-# 0", runes[i]) {
			i++
		}
		// Width.
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		} else {
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(runes) && runes[i] == '.' {
			i++
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
			} else {
				for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
					i++
				}
			}
		}
		// Explicit argument index [n].
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verb{verb: runes[i], arg: arg})
		arg++
	}
	return out
}
