package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy makes the repo's documented lock discipline checkable. A
// struct field annotated
//
//	field T // guarded by mu
//
// (in its doc or trailing comment; mu names a sibling mutex, "c.mu"
// forms allowed) may only be selected — read or written — inside a
// function that either locks that mutex (a mu.Lock/RLock/TryLock call
// anywhere in its body, closures included) or declares in its doc
// comment that the caller already holds it ("caller holds c.mu", "mu
// must be held", ...Locked-suffix helpers with such docs). The check is
// function-granular, not path-sensitive: it cannot see that an access
// happens after an Unlock, but it catches the dominant failure mode —
// a new method or a refactor touching guarded state with no locking at
// all — which is exactly how cache/breaker/admission races would enter.
type GuardedBy struct{}

func (GuardedBy) Name() string { return "guardedby" }

func (GuardedBy) Doc() string {
	return "fields commented 'guarded by <mu>' are only accessed in functions that lock <mu> or document that the caller holds it"
}

// identPath matches a dotted identifier path ("mu", "c.mu") without
// swallowing a sentence-ending period.
const identPath = `[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*`

var (
	guardedRe = regexp.MustCompile(`guarded by\s+(` + identPath + `)`)
	// holdsRe matches doc-comment claims that the lock is the caller's
	// responsibility: "caller holds c.mu", "holding mu", "mu is held",
	// "mu must be held", "with mu held".
	holdsRe = []*regexp.Regexp{
		regexp.MustCompile(`(?i)\bhold(?:s|ing)?\s+(?:the\s+)?(` + identPath + `)`),
		regexp.MustCompile(`(?i)\b(` + identPath + `)\s+(?:is\s+|must\s+be\s+|already\s+)*held\b`),
	}
)

// guardName reduces an annotation like "c.mu" to the mutex field name.
func guardName(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func (GuardedBy) Check(pkg *Package, report Reporter) {
	// Pass 1: guarded field objects, by annotation.
	guards := make(map[types.Object]string) // field object -> mutex name
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := ""
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
						mu = guardName(m[1])
					}
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	// Pass 2: every function body, with the set of mutex names it locks
	// or declares held.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := make(map[string]bool)
			if fn.Doc != nil {
				doc := fn.Doc.Text()
				for _, re := range holdsRe {
					for _, m := range re.FindAllStringSubmatch(doc, -1) {
						held[guardName(m[1])] = true
					}
				}
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					if mu := lastIdent(sel.X); mu != "" {
						held[mu] = true
					}
				}
				return true
			})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[sel.Sel]
				if obj == nil {
					return true
				}
				mu, guarded := guards[obj]
				if !guarded || held[mu] {
					return true
				}
				report(sel.Sel.Pos(),
					"field %s is guarded by %s, but %s neither locks %s nor documents that the caller holds it",
					obj.Name(), mu, fn.Name.Name, mu)
				return true
			})
		}
	}
}
