// Package seededrand is the seededrand analyzer's golden fixture:
// global-source draws are findings, seeded *rand.Rand draws and the
// constructor functions are not.
package seededrand

import "math/rand"

// unseeded draws from the process-global source — irreproducible.
func unseeded() int {
	return rand.Intn(10) //lintwant seededrand
}

// shuffled exercises a second global-source function.
func shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) //lintwant seededrand
}

// seeded is the sanctioned path: rand.New and rand.NewSource are
// allowed, and methods on the resulting *rand.Rand are reproducible.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
