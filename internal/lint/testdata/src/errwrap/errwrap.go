// Package lintfixture is the errwrap analyzer's golden fixture: it is
// loaded by lint_test.go under the import path
// repro/internal/store/lintfixture so the store-scoped invariant
// applies. The lintwant comments mark the lines the analyzer must flag.
package lintfixture

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// flattened wraps with %v: errors.Is can no longer see errBase, which
// is exactly the bug that defeats transient classification.
func flattened(err error) error {
	return fmt.Errorf("op failed: %v", err) //lintwant errwrap
}

// stringified is the %s variant, with a non-error arg in front to
// exercise verb/argument pairing.
func stringified(err error) error {
	return fmt.Errorf("op %s failed: %s", "read", err) //lintwant errwrap
}

// quoted exercises %q and a star width consuming an argument.
func quoted(err error) error {
	return fmt.Errorf("pad %*d op: %q", 8, 1, err) //lintwant errwrap
}

// wrapped is the sanctioned form.
func wrapped(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// textOnly formats a plain string with %v — no error argument, no
// finding.
func textOnly(detail string) error {
	return fmt.Errorf("op failed: %v", detail)
}

// classified is why this matters: it must keep working through every
// wrap in this package.
func classified(err error) bool {
	return errors.Is(err, errBase)
}
