// Package guardedby is the guardedby analyzer's golden fixture: a
// struct with an annotated field, one compliant accessor, one
// documented caller-holds helper, and one racy accessor the analyzer
// must flag.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// hits is annotated with the dotted form.
	hits int // guarded by c.mu
	free int // unguarded on purpose
}

// newCounter initializes via composite literal — construction before
// the value is shared needs no lock and must not be flagged.
func newCounter() *counter {
	return &counter{n: 1, hits: 0}
}

// racyRead touches n with no lock and no caller-holds doc: the finding.
func (c *counter) racyRead() int {
	return c.n //lintwant guardedby
}

// racyWrite is the write-side finding, through the dotted annotation.
func (c *counter) racyWrite() {
	c.hits++ //lintwant guardedby
}

// locked is the compliant accessor.
func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	return c.n
}

// bumpLocked increments n; the caller holds c.mu.
func (c *counter) bumpLocked() {
	c.n++
}

// unguarded reads a field with no annotation — never flagged.
func (c *counter) unguarded() int {
	return c.free
}

// rw shows RLock counting as holding the mutex.
type rw struct {
	mu   sync.RWMutex
	view map[string]int // guarded by mu
}

func (r *rw) read(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.view[k]
}
