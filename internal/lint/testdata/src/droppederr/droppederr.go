// Package droppederr is the droppederr analyzer's golden fixture: it
// imports the real repro/internal/store package and discards errors
// from its API in every shape the analyzer must catch — plus the
// handled and justified-suppression shapes it must not.
package droppederr

import "repro/internal/store"

func cleanup(st *store.Store, b store.Backend) error {
	_ = st.DeleteRun("x") //lintwant droppederr

	_ = b.WriteMeta(".meta", nil) //lintwant droppederr

	// Multi-result call with the error position blanked.
	names, _ := b.ListRuns() //lintwant droppederr
	_ = names

	// Handled: no finding.
	if err := st.DeleteRun("y"); err != nil {
		return err
	}

	// Justified best-effort drop: suppressed, visible in the JSON
	// report with its reason.
	//provlint:ignore droppederr fixture demonstrates a justified best-effort drop
	_ = st.DeleteRun("z") //lintwant droppederr suppressed

	return nil
}
