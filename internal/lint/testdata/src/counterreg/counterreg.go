// Package server is the counterreg analyzer's golden fixture, loaded
// under an import path ending in internal/server so the route/counter
// contract applies: one route with no snapshot key, one stale key with
// no route, and a wildcard run route resolved through its method.
package server

import (
	"net/http"
	"sync/atomic"
)

type servedCounters struct {
	specs, status, stale atomic.Int64
}

func (c *servedCounters) snapshot() map[string]int64 {
	return map[string]int64{
		"specs":  c.specs.Load(),
		"status": c.status.Load(),
		"stale":  c.stale.Load(), //lintwant counterreg
		"other":  0,
	}
}

func register(mux *http.ServeMux) {
	mux.HandleFunc("/specs", serve)
	mux.HandleFunc("GET /runs/{name}", serve) // -> "status", registered
	mux.HandleFunc("/orphan", serve)          //lintwant counterreg
}

func serve(w http.ResponseWriter, r *http.Request) {}
