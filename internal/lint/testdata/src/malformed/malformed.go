// Package malformed holds a broken suppression directive: an ignore
// with no reason must itself be a finding (from the "provlint"
// pseudo-analyzer) and must NOT suppress the finding under it.
package malformed

import "repro/internal/store"

func drop(st *store.Store) {
	//lintwant+1 provlint
	//provlint:ignore droppederr
	_ = st.DeleteRun("x") //lintwant droppederr
}
