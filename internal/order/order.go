// Package order implements the three-dimensional context encoding of
// Section 4.3: three preorder traversals of the execution plan that differ
// only in the direction in which the children of F− (respectively L−)
// nodes are visited. Comparing a pair of nonempty + nodes across the three
// resulting total orders reveals whether their least common ancestor is an
// F− node, an L− node, or a + node (Lemma 4.5).
package order

import (
	"repro/internal/plan"
	"repro/internal/spec"
)

// Orders holds the positions of every nonempty + node of a plan in the
// three total orders O1, O2, O3. Positions are 1-based; nodes without a
// position (− nodes and empty + nodes) hold 0.
type Orders struct {
	// Pos1, Pos2, Pos3 are indexed by plan node ID.
	Pos1, Pos2, Pos3 []uint32
	// NumPositioned is the number of nonempty + nodes (the paper's n⁺_T).
	NumPositioned int
}

// Generate runs Algorithm 1: three preorder traversals of the plan.
//
//   - O1 visits children left to right everywhere;
//   - O2 reverses the children of F− nodes;
//   - O3 reverses the children of L− nodes.
//
// Only nonempty + nodes (those serving as the context of at least one run
// vertex) receive positions.
func Generate(p *plan.Plan) *Orders {
	n := len(p.Nodes)
	o := &Orders{
		Pos1: make([]uint32, n),
		Pos2: make([]uint32, n),
		Pos3: make([]uint32, n),
	}
	occupied := make([]bool, n)
	for _, c := range p.Context {
		if c != nil {
			occupied[c.ID] = true
		}
	}
	for _, flag := range occupied {
		if flag {
			o.NumPositioned++
		}
	}
	o.traverse(p, occupied, o.Pos1, spec.Kind(255)) // no reversal
	o.traverse(p, occupied, o.Pos2, spec.Fork)      // reverse at F−
	o.traverse(p, occupied, o.Pos3, spec.Loop)      // reverse at L−
	return o
}

// traverse performs one preorder traversal, reversing the children of −
// nodes whose subgraph kind equals reverseAt, and records 1-based visit
// positions of occupied + nodes into pos.
func (o *Orders) traverse(p *plan.Plan, occupied []bool, pos []uint32, reverseAt spec.Kind) {
	counter := uint32(0)
	// Iterative preorder with an explicit stack (plans can be deep for
	// long loop chains is false — depth is bounded by 2·[T_G] — but the
	// iterative form avoids growing the goroutine stack in hot paths).
	type frame struct {
		n *plan.Node
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{p.Root})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := f.n
		if n.Plus && occupied[n.ID] {
			counter++
			pos[n.ID] = counter
		}
		kids := n.Children
		reversed := !n.Plus && p.KindOf(n) == reverseAt
		// Push in the order that pops into the desired visit order.
		if reversed {
			for i := 0; i < len(kids); i++ {
				stack = append(stack, frame{kids[i]})
			}
		} else {
			for i := len(kids) - 1; i >= 0; i-- {
				stack = append(stack, frame{kids[i]})
			}
		}
	}
}

// LCAClass classifies the least common ancestor of two positioned nodes
// using only their order positions, per Lemma 4.5 and Algorithm 3's
// decision structure. It is exposed for testing and for the experiments'
// context-only-answer accounting.
type LCAClass uint8

const (
	// SameContext means the two positions belong to the same node.
	SameContext LCAClass = iota
	// ForkMinus means the LCA is an F− node: mutually unreachable.
	ForkMinus
	// LoopMinusForward means the LCA is an L− node with the first node in
	// an earlier iteration: first reaches second.
	LoopMinusForward
	// LoopMinusBackward is the symmetric case: second reaches first.
	LoopMinusBackward
	// PlusAncestor means the LCA is a + node: fall back to skeleton labels.
	PlusAncestor
)

// Classify applies the order-comparison rules to two positioned triples.
func Classify(q1, q2, q3, r1, r2, r3 uint32) LCAClass {
	if q1 == r1 {
		return SameContext
	}
	d2 := int64(q2) - int64(r2)
	d3 := int64(q3) - int64(r3)
	if d2*d3 < 0 {
		// O2 and O3 disagree: the LCA is an F− or L− node; O1 vs O3 tells
		// which and, for loops, in which direction.
		if q1 < r1 {
			if q3 > r3 {
				return LoopMinusForward
			}
			return ForkMinus
		}
		if q3 < r3 {
			return LoopMinusBackward
		}
		return ForkMinus
	}
	return PlusAncestor
}
