package order_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/order"
	"repro/internal/plan"
	"repro/internal/run"
	"repro/internal/spec"
)

// lca returns the least common ancestor of two plan nodes.
func lca(a, b *plan.Node) *plan.Node {
	depth := func(n *plan.Node) int {
		d := 0
		for x := n; x.Parent != nil; x = x.Parent {
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

func TestGeneratePositionsAreDenseAndConsistent(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(1))
	et := run.RandomExecSteps(s, rng, 20)
	_, p := run.MustMaterialize(s, et)
	o := order.Generate(p)
	nonEmpty := p.NonEmptyPlus()
	if o.NumPositioned != len(nonEmpty) {
		t.Fatalf("NumPositioned = %d, want %d", o.NumPositioned, len(nonEmpty))
	}
	for _, pos := range [][]uint32{o.Pos1, o.Pos2, o.Pos3} {
		seen := make(map[uint32]bool)
		count := 0
		for _, n := range p.Nodes {
			q := pos[n.ID]
			if q == 0 {
				continue
			}
			if !n.Plus {
				t.Fatal("− node received a position")
			}
			if seen[q] {
				t.Fatalf("duplicate position %d", q)
			}
			seen[q] = true
			count++
			if q > uint32(o.NumPositioned) {
				t.Fatalf("position %d exceeds n+T %d", q, o.NumPositioned)
			}
		}
		if count != o.NumPositioned {
			t.Fatalf("order covers %d nodes, want %d", count, o.NumPositioned)
		}
	}
}

// TestLemma45 verifies all three rules of Lemma 4.5 exhaustively: for
// every pair of nonempty + nodes, the order comparison classifies their
// true least common ancestor correctly, including the serial direction
// for loops.
func TestLemma45(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), spec.IntroSpec()}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := specs[trial%len(specs)]
		et := run.RandomExecSteps(s, rng, 5+rng.Intn(30))
		_, p := run.MustMaterialize(s, et)
		o := order.Generate(p)
		nodes := p.NonEmptyPlus()
		// Precompute each node's position among its L− parent's children
		// for direction checking.
		for _, x := range nodes {
			for _, y := range nodes {
				if x == y {
					continue
				}
				got := order.Classify(
					o.Pos1[x.ID], o.Pos2[x.ID], o.Pos3[x.ID],
					o.Pos1[y.ID], o.Pos2[y.ID], o.Pos3[y.ID])
				anc := lca(x, y)
				switch {
				case anc.Plus:
					if got != order.PlusAncestor {
						t.Fatalf("LCA is +, classified %v", got)
					}
				case p.KindOf(anc) == spec.Fork:
					if got != order.ForkMinus {
						t.Fatalf("LCA is F−, classified %v", got)
					}
				default: // L− ancestor: direction must match child order
					xi, yi := childIndexUnder(anc, x), childIndexUnder(anc, y)
					want := order.LoopMinusForward
					if xi > yi {
						want = order.LoopMinusBackward
					}
					if got != want {
						t.Fatalf("LCA is L− (indices %d,%d), classified %v want %v", xi, yi, got, want)
					}
				}
			}
		}
	}
}

// childIndexUnder returns the index of the child of anc on the path from
// anc down to n.
func childIndexUnder(anc, n *plan.Node) int {
	x := n
	for x.Parent != anc {
		x = x.Parent
	}
	for i, c := range anc.Children {
		if c == x {
			return i
		}
	}
	return -1
}

func TestClassifySameContext(t *testing.T) {
	if order.Classify(3, 5, 7, 3, 5, 7) != order.SameContext {
		t.Error("identical triples should classify as SameContext")
	}
}

// Property: classification is antisymmetric — swapping the arguments maps
// forward to backward and leaves fork/plus classifications fixed.
func TestQuickClassifyAntisymmetric(t *testing.T) {
	s := spec.PaperSpec()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := run.RandomExecSteps(s, rng, rng.Intn(40))
		_, p := run.MustMaterialize(s, et)
		o := order.Generate(p)
		nodes := p.NonEmptyPlus()
		for q := 0; q < 200; q++ {
			x := nodes[rng.Intn(len(nodes))]
			y := nodes[rng.Intn(len(nodes))]
			ab := order.Classify(o.Pos1[x.ID], o.Pos2[x.ID], o.Pos3[x.ID], o.Pos1[y.ID], o.Pos2[y.ID], o.Pos3[y.ID])
			ba := order.Classify(o.Pos1[y.ID], o.Pos2[y.ID], o.Pos3[y.ID], o.Pos1[x.ID], o.Pos2[x.ID], o.Pos3[x.ID])
			ok := false
			switch ab {
			case order.SameContext:
				ok = ba == order.SameContext
			case order.ForkMinus:
				ok = ba == order.ForkMinus
			case order.PlusAncestor:
				ok = ba == order.PlusAncestor
			case order.LoopMinusForward:
				ok = ba == order.LoopMinusBackward
			case order.LoopMinusBackward:
				ok = ba == order.LoopMinusForward
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
