package online_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/online"
	"repro/internal/run"
	"repro/internal/spec"
)

func skeletonFor(t testing.TB, s *spec.Spec) label.Labeling {
	skel, err := label.TCM{}.Build(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return skel
}

// TestReplayMatchesOracle replays materialized runs through the online
// API and checks every pair against graph reachability.
func TestReplayMatchesOracle(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), spec.IntroSpec()}
	rng := rand.New(rand.NewSource(3))
	for _, s := range specs {
		skel := skeletonFor(t, s)
		for trial := 0; trial < 6; trial++ {
			et := run.RandomExecSteps(s, rng, 3+rng.Intn(25))
			r, truth := run.MustMaterialize(s, et)
			l, err := online.ReplayPlan(s, skel, truth, r.Origin)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if l.NumVertices() != r.NumVertices() {
				t.Fatalf("replay registered %d vertices, want %d", l.NumVertices(), r.NumVertices())
			}
			closure, _ := r.Graph.TransitiveClosure()
			n := r.NumVertices()
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					got := l.Reachable(dag.VertexID(u), dag.VertexID(v))
					want := closure.Reachable(dag.VertexID(u), dag.VertexID(v))
					if got != want {
						t.Fatalf("online Reachable(%s,%s) = %v, want %v",
							r.NameOf(dag.VertexID(u)), r.NameOf(dag.VertexID(v)), got, want)
					}
				}
			}
		}
	}
}

// TestIncrementalAppendSemantics grows a run step by step through the
// online API and checks the semantic consequences of each append.
func TestIncrementalAppendSemantics(t *testing.T) {
	s := spec.PaperSpec()
	skel := skeletonFor(t, s)
	l := online.New(s, skel)
	root := l.Root()

	var f1, l1, l2, f2 int
	for i, sub := range s.Subgraphs {
		node := s.NodeOf(i)
		switch {
		case sub.Kind == spec.Fork && s.NameOf(sub.Source) == "a":
			f1 = node
		case sub.Kind == spec.Loop && s.NameOf(sub.Source) == "b":
			l1 = node
		case sub.Kind == spec.Loop && s.NameOf(sub.Source) == "e":
			l2 = node
		case sub.Kind == spec.Fork && s.NameOf(sub.Source) == "e":
			f2 = node
		}
	}
	orig := func(name spec.ModuleName) dag.VertexID {
		v, ok := s.VertexOf(name)
		if !ok {
			t.Fatalf("module %s missing", name)
		}
		return v
	}
	mustExec := func(c *online.Copy, name spec.ModuleName) dag.VertexID {
		v, err := l.AddExec(c, orig(name))
		if err != nil {
			t.Fatalf("AddExec(%s): %v", name, err)
		}
		return v
	}
	mustCopy := func(parent *online.Copy, hnode int) *online.Copy {
		c, err := l.StartCopy(parent, hnode)
		if err != nil {
			t.Fatalf("StartCopy: %v", err)
		}
		return c
	}

	// The engine starts the run: a executes, then the first F1 copy with
	// one L1 iteration.
	a1 := mustExec(root, "a")
	f1c1 := mustCopy(root, f1)
	l1c1 := mustCopy(f1c1, l1)
	b1 := mustExec(l1c1, "b")
	c1 := mustExec(l1c1, "c")
	if !l.Reachable(a1, b1) || l.Reachable(b1, a1) {
		t.Fatal("a1 -> b1 wrong")
	}
	if !l.Reachable(b1, c1) || l.Reachable(c1, b1) {
		t.Fatal("b1 -> c1 within iteration wrong")
	}
	// The loop iterates again: everything in iteration 1 reaches iteration 2.
	l1c2, err := l.StartLoopIterationAfter(l1c1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := mustExec(l1c2, "b")
	c2 := mustExec(l1c2, "c")
	if !l.Reachable(c1, b2) || !l.Reachable(b1, c2) {
		t.Fatal("loop iteration 1 should reach iteration 2")
	}
	if l.Reachable(b2, c1) {
		t.Fatal("iteration 2 should not reach iteration 1")
	}
	// A second parallel F1 copy: mutually unreachable with the first.
	f1c2 := mustCopy(root, f1)
	l1c3 := mustCopy(f1c2, l1)
	b3 := mustExec(l1c3, "b")
	c3 := mustExec(l1c3, "c")
	if l.Reachable(b1, c3) || l.Reachable(b3, c2) || l.Reachable(c3, b1) {
		t.Fatal("parallel fork copies should be mutually unreachable")
	}
	// The lower branch: d at the root, L2 with a nested F2.
	d1 := mustExec(root, "d")
	l2c1 := mustCopy(root, l2)
	e1 := mustExec(l2c1, "e")
	f2c1 := mustCopy(l2c1, f2)
	fx1 := mustExec(f2c1, "f")
	g1 := mustExec(l2c1, "g")
	if !l.Reachable(d1, fx1) || l.Reachable(fx1, d1) {
		t.Fatal("d1 -> f1 wrong")
	}
	if l.Reachable(b1, e1) || l.Reachable(e1, b1) {
		t.Fatal("parallel branches of G should be unreachable")
	}
	// Second L2 iteration with two parallel F2 copies.
	l2c2, err := l.StartLoopIterationAfter(l2c1)
	if err != nil {
		t.Fatal(err)
	}
	e2 := mustExec(l2c2, "e")
	f2c2 := mustCopy(l2c2, f2)
	fx2 := mustExec(f2c2, "f")
	f2c3 := mustCopy(l2c2, f2)
	fx3 := mustExec(f2c3, "f")
	g2 := mustExec(l2c2, "g")
	if !l.Reachable(fx1, e2) || !l.Reachable(g1, fx2) {
		t.Fatal("first L2 iteration should reach the second")
	}
	if l.Reachable(fx2, fx3) || l.Reachable(fx3, fx2) {
		t.Fatal("parallel F2 copies should be mutually unreachable")
	}
	// Insert an iteration BETWEEN the two existing L2 iterations.
	l2mid, err := l.StartLoopIterationAfter(l2c1)
	if err != nil {
		t.Fatal(err)
	}
	eM := mustExec(l2mid, "e")
	if !l.Reachable(e1, eM) || !l.Reachable(eM, e2) {
		t.Fatal("middle iteration should sit between 1 and 2")
	}
	if l.Reachable(e2, eM) || l.Reachable(eM, e1) {
		t.Fatal("middle iteration direction wrong")
	}
	// Finish: h at the root.
	h1 := mustExec(root, "h")
	for _, v := range []dag.VertexID{a1, b1, c2, b3, g2, eM} {
		if !l.Reachable(v, h1) {
			t.Fatalf("vertex %d should reach the sink", v)
		}
	}
	_ = g1
}

func TestOnlineErrors(t *testing.T) {
	s := spec.PaperSpec()
	l := online.New(s, skeletonFor(t, s))
	root := l.Root()
	if root.HNode() != 0 {
		t.Error("root hnode should be 0")
	}
	if _, err := l.StartCopy(root, 99); err == nil {
		t.Error("invalid hnode accepted")
	}
	// L1 is not a child of the root.
	var l1 int
	for i, sub := range s.Subgraphs {
		if sub.Kind == spec.Loop && s.NameOf(sub.Source) == "b" {
			l1 = s.NodeOf(i)
		}
	}
	if _, err := l.StartCopy(root, l1); err == nil {
		t.Error("non-child hierarchy node accepted")
	}
	if _, err := l.StartLoopIterationAfter(root); err == nil {
		t.Error("root accepted as loop iteration")
	}
	if _, err := l.AddExec(root, 100); err == nil {
		t.Error("invalid origin accepted")
	}
	// A module outside the copy's subgraph.
	var f1 int
	for i, sub := range s.Subgraphs {
		if sub.Kind == spec.Fork && s.NameOf(sub.Source) == "a" {
			f1 = s.NodeOf(i)
		}
	}
	c, err := l.StartCopy(root, f1)
	if err != nil {
		t.Fatal(err)
	}
	dOrig, _ := s.VertexOf("d")
	if _, err := l.AddExec(c, dOrig); err == nil {
		t.Error("module outside subgraph accepted")
	}
}

// TestRenumberStress forces key-gap exhaustion by repeatedly inserting at
// the same position and checks that answers stay correct across global
// renumberings.
func TestRenumberStress(t *testing.T) {
	b := spec.NewBuilder()
	b.Chain("s", "x", "t")
	b.Loop("s", "t", "x")
	s := b.MustBuild()
	l := online.New(s, skeletonFor(t, s))
	root := l.Root()
	first, err := l.StartCopy(root, 1)
	if err != nil {
		t.Fatal(err)
	}
	xOrig, _ := s.VertexOf("x")
	firstX, _ := l.AddExec(first, xOrig)
	var vertices []dag.VertexID
	// Repeatedly insert immediately after the first iteration: each new
	// iteration lands in the same shrinking gap, forcing renumbers.
	for i := 0; i < 300; i++ {
		c, err := l.StartLoopIterationAfter(first)
		if err != nil {
			t.Fatal(err)
		}
		v, err := l.AddExec(c, xOrig)
		if err != nil {
			t.Fatal(err)
		}
		vertices = append(vertices, v)
	}
	if l.Renumbers() == 0 {
		t.Error("expected at least one renumbering under adversarial inserts")
	}
	// Iterations were inserted after `first` each time, so the serial
	// order is: firstX, then vertices in REVERSE creation order.
	for i := 0; i < len(vertices); i++ {
		if !l.Reachable(firstX, vertices[i]) {
			t.Fatalf("first iteration should reach every later iteration (i=%d)", i)
		}
		if i > 0 && !l.Reachable(vertices[i], vertices[i-1]) {
			t.Fatalf("iteration inserted later should precede earlier insert (i=%d)", i)
		}
		if i > 0 && l.Reachable(vertices[i-1], vertices[i]) {
			t.Fatalf("backward reachability across inserts (i=%d)", i)
		}
	}
}

// Property: replaying any random run online agrees with the oracle on
// sampled pairs.
func TestQuickReplayAgainstOracle(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), spec.IntroSpec()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		skel, err := label.BFS{}.Build(s.Graph)
		if err != nil {
			return false
		}
		et := run.RandomExecSteps(s, rng, rng.Intn(60))
		r, truth := run.MustMaterialize(s, et)
		l, err := online.ReplayPlan(s, skel, truth, r.Origin)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		searcher := dag.NewSearcher(r.Graph)
		n := r.NumVertices()
		for q := 0; q < 300; q++ {
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			if l.Reachable(u, v) != searcher.ReachableBFS(u, v) {
				t.Logf("seed %d: mismatch (%s,%s)", seed, r.NameOf(u), r.NameOf(v))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOnlineAppendLoopIteration(b *testing.B) {
	s := spec.PaperSpec()
	skel, _ := label.TCM{}.Build(s.Graph)
	l := online.New(s, skel)
	root := l.Root()
	var l2 int
	for i, sub := range s.Subgraphs {
		if sub.Kind == spec.Loop && s.NameOf(sub.Source) == "e" {
			l2 = i + 1
		}
	}
	eOrig, _ := s.VertexOf("e")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := l.StartCopy(root, l2) // appends the next serial iteration
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.AddExec(c, eOrig); err != nil {
			b.Fatal(err)
		}
	}
}
