// Package online prototypes the paper's future-work direction (Section 9):
// an online labeling scheme that labels module executions as soon as they
// happen, so provenance queries can run on intermediate data while the
// workflow is still executing.
//
// The static scheme's dense preorder positions would shift globally on
// every new fork copy or loop iteration. Instead, this package maintains
// the three total orders as doubly-linked lists with sparse 64-bit keys:
// a new copy's plan node is inserted at the right place in each list and
// assigned the midpoint key of its neighbors. When a local gap is
// exhausted, keys are redistributed in an exponentially expanding
// neighborhood (counted via Renumbers, amortized cheap). Reachability
// queries evaluate Algorithm 3 on the live keys.
package online

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/spec"
)

// Copy is a handle to one live fork or loop copy (a + node of the growing
// execution plan). The root copy represents the run itself.
type Copy struct {
	hnode  int
	parent *Copy // nil for root
	minus  *site // the site this copy belongs to; nil for root
	sites  map[int]*site
	// elems are this copy's positions in the three order lists; end
	// caches the last element of this copy's subtree block per order.
	elems [3]*elem
	end   [3]*elem
}

// HNode returns the hierarchy node this copy instantiates.
func (c *Copy) HNode() int { return c.hnode }

type site struct {
	hnode  int
	parent *Copy
	kind   spec.Kind
	copies []*Copy
	// first caches the earliest element of the site's block per order.
	first [3]*elem
}

// elem is a node of one order list.
type elem struct {
	key        uint64
	prev, next *elem
}

// Labeler grows a labeled run incrementally.
type Labeler struct {
	s            *spec.Spec
	skeleton     label.Labeling
	root         *Copy
	heads, tails [3]*elem
	renumbers    int
	numVertices  int
	contexts     []*Copy
	origins      []dag.VertexID
}

// New starts an empty run for the specification. The root copy exists
// immediately; module executions and fork/loop copies are reported as the
// run progresses.
func New(s *spec.Spec, skeleton label.Labeling) *Labeler {
	l := &Labeler{s: s, skeleton: skeleton}
	for i := 0; i < 3; i++ {
		h := &elem{key: 0}
		t := &elem{key: ^uint64(0)}
		h.next, t.prev = t, h
		l.heads[i], l.tails[i] = h, t
	}
	root := &Copy{hnode: 0, sites: make(map[int]*site)}
	for i := 0; i < 3; i++ {
		e := l.insertAfter(i, l.heads[i])
		root.elems[i] = e
		root.end[i] = e
	}
	l.root = root
	return l
}

// Root returns the run's root copy.
func (l *Labeler) Root() *Copy { return l.root }

// Renumbers reports how many local key redistributions have occurred.
func (l *Labeler) Renumbers() int { return l.renumbers }

// NumVertices returns the number of module executions recorded.
func (l *Labeler) NumVertices() int { return l.numVertices }

// StartCopy begins a new copy of hierarchy node hnode within the parent
// copy: the next parallel copy for forks, or the iteration appended at the
// end of the chain for loops. The site is created on first use.
func (l *Labeler) StartCopy(parent *Copy, hnode int) (*Copy, error) {
	if hnode < 1 || hnode >= l.s.Hier.NumNodes() || l.s.Hier.Parent[hnode] != parent.hnode {
		return nil, fmt.Errorf("online: hierarchy node %d is not a child of %d", hnode, parent.hnode)
	}
	st := parent.sites[hnode]
	if st == nil {
		st = &site{hnode: hnode, parent: parent, kind: l.s.KindOf(hnode)}
		parent.sites[hnode] = st
	}
	return l.insertCopy(st, len(st.copies)), nil
}

// StartLoopIterationAfter begins a loop iteration inserted immediately
// after the given copy in its serial chain (re-execution of an
// intermediate iteration). prev must be a loop copy.
func (l *Labeler) StartLoopIterationAfter(prev *Copy) (*Copy, error) {
	if prev.minus == nil || prev.minus.kind != spec.Loop {
		return nil, fmt.Errorf("online: copy is not a loop iteration")
	}
	st := prev.minus
	for i, c := range st.copies {
		if c == prev {
			return l.insertCopy(st, i+1), nil
		}
	}
	return nil, fmt.Errorf("online: copy not found in its site")
}

// insertCopy creates the copy at serial index idx of the site and places
// its element in all three order lists, maintaining the block caches.
func (l *Labeler) insertCopy(st *site, idx int) *Copy {
	c := &Copy{hnode: st.hnode, parent: st.parent, minus: st, sites: make(map[int]*site)}
	for ord := 0; ord < 3; ord++ {
		reversed := l.reversedAt(st.kind, ord)
		var after *elem
		atFront := false
		switch {
		case len(st.copies) == 0:
			// First copy: the site block opens at the end of the parent
			// copy's subtree block (site order is creation order in every
			// traversal, keeping unordered children consistent across the
			// three orders).
			after = st.parent.end[ord]
		case reversed:
			if idx == len(st.copies) {
				// Highest logical index is visited first in reverse: the
				// element opens the site block.
				after = st.first[ord].prev
				atFront = true
			} else {
				// Visited immediately after the copy at logical index idx.
				after = st.copies[idx].end[ord]
			}
		default:
			if idx == 0 {
				after = st.first[ord].prev
				atFront = true
			} else {
				after = st.copies[idx-1].end[ord]
			}
		}
		e := l.insertAfter(ord, after)
		c.elems[ord] = e
		c.end[ord] = e
		if len(st.copies) == 0 || atFront {
			st.first[ord] = e
		}
		// Extend ancestor subtree-end caches when the insertion happened
		// at a block boundary.
		for a := st.parent; a != nil; a = a.parent {
			if a.end[ord] != after {
				break
			}
			a.end[ord] = e
		}
	}
	if idx == len(st.copies) {
		st.copies = append(st.copies, c) // O(1) amortized for the hot append path
	} else {
		st.copies = append(st.copies, nil)
		copy(st.copies[idx+1:], st.copies[idx:])
		st.copies[idx] = c
	}
	return c
}

// reversedAt reports whether order ord visits the children of a − node of
// the given kind in reverse (Algorithm 1: O2 reverses forks, O3 loops).
func (l *Labeler) reversedAt(kind spec.Kind, ord int) bool {
	return (ord == 1 && kind == spec.Fork) || (ord == 2 && kind == spec.Loop)
}

// insertAfter places a new element after prev in order ord, assigning the
// midpoint key; when the local gap is exhausted it redistributes keys in
// an exponentially expanding neighborhood (Bender-style local relabeling),
// keeping hot-spot inserts amortized polylogarithmic instead of paying a
// global renumbering.
func (l *Labeler) insertAfter(ord int, prev *elem) *elem {
	next := prev.next
	e := &elem{prev: prev, next: next}
	prev.next = e
	next.prev = e
	if next.key-prev.key < 2 {
		l.redistribute(ord, e)
	} else {
		e.key = prev.key + (next.key-prev.key)/2
	}
	return e
}

// redistribute reassigns keys in a window around e wide enough to give
// every window element at least minSpacing of slack.
func (l *Labeler) redistribute(ord int, e *elem) {
	l.renumbers++
	const minSpacing = 1 << 12
	head, tail := l.heads[ord], l.tails[ord]
	lo, hi := e.prev, e.next
	count := 1 // elements strictly between lo and hi
	step := 8
	for {
		for i := 0; i < step && lo != head; i++ {
			lo = lo.prev
			count++
		}
		for i := 0; i < step && hi != tail; i++ {
			hi = hi.next
			count++
		}
		span := hi.key - lo.key
		if span/uint64(count+1) >= minSpacing || (lo == head && hi == tail) {
			break
		}
		step *= 2
	}
	spacing := (hi.key - lo.key) / uint64(count+1)
	if spacing < 2 {
		spacing = 2 // unreachable with 64-bit keys, kept as a safety net
	}
	key := lo.key
	for x := lo.next; x != hi; x = x.next {
		key += spacing
		x.key = key
	}
}

// AddExec records one module execution with the given specification
// origin, belonging to the given copy (its context: the deepest fork or
// loop copy dominating it). It returns the new run vertex's ID.
func (l *Labeler) AddExec(c *Copy, origin dag.VertexID) (dag.VertexID, error) {
	if origin < 0 || int(origin) >= l.s.NumVertices() {
		return 0, fmt.Errorf("online: invalid origin %d", origin)
	}
	if c.hnode != 0 {
		sub := l.s.SubgraphOf(c.hnode)
		if !sub.HasVertex(origin) {
			return 0, fmt.Errorf("online: module %q is not in subgraph %q..%q",
				l.s.NameOf(origin), l.s.NameOf(sub.Source), l.s.NameOf(sub.Sink))
		}
	}
	v := dag.VertexID(l.numVertices)
	l.numVertices++
	l.contexts = append(l.contexts, c)
	l.origins = append(l.origins, origin)
	return v, nil
}

// Label is an online reachability label: three sparse order keys plus the
// origin reference. Labels are snapshots — a key redistribution (rare,
// counted) can invalidate previously exported snapshots, which is
// precisely the tension the paper's future-work section calls out for
// dynamic schemes. Live queries through the Labeler always use current
// keys.
type Label struct {
	K1, K2, K3 uint64
	Orig       dag.VertexID
}

// CurrentLabel exports the current label of run vertex v.
func (l *Labeler) CurrentLabel(v dag.VertexID) Label {
	c := l.contexts[v]
	return Label{
		K1:   c.elems[0].key,
		K2:   c.elems[1].key,
		K3:   c.elems[2].key,
		Orig: l.origins[v],
	}
}

// Reachable reports whether run vertex v is reachable from run vertex u,
// using the live keys.
func (l *Labeler) Reachable(u, v dag.VertexID) bool {
	return l.ReachableLabels(l.CurrentLabel(u), l.CurrentLabel(v))
}

// ReachableLabels evaluates Algorithm 3's predicate on two label
// snapshots taken under the same numbering epoch.
func (l *Labeler) ReachableLabels(a, b Label) bool {
	lt2 := a.K2 < b.K2
	lt3 := a.K3 < b.K3
	if lt2 != lt3 {
		return a.K1 < b.K1 && a.K3 > b.K3
	}
	return l.skeleton.Reachable(a.Orig, b.Orig)
}
