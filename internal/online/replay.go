package online

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/plan"
	"repro/internal/spec"
)

// ReplayPlan drives a Labeler from an existing execution plan and origin
// vector (e.g. extracted from a workflow engine's log, as the paper notes
// Taverna permits): every copy is started in plan order and every vertex
// registered with its context. Run vertex IDs are preserved.
func ReplayPlan(s *spec.Spec, skeleton label.Labeling, p *plan.Plan, origins []dag.VertexID) (*Labeler, error) {
	if len(origins) != len(p.Context) {
		return nil, fmt.Errorf("online: %d origins for %d contexts", len(origins), len(p.Context))
	}
	l := New(s, skeleton)
	copies := make(map[*plan.Node]*Copy, len(p.Nodes))
	copies[p.Root] = l.Root()
	var walk func(n *plan.Node, c *Copy) error
	walk = func(n *plan.Node, c *Copy) error {
		for _, minus := range n.Children { // − nodes: sites
			for _, plusChild := range minus.Children {
				cc, err := l.StartCopy(c, plusChild.HNode)
				if err != nil {
					return err
				}
				copies[plusChild] = cc
				if err := walk(plusChild, cc); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(p.Root, l.Root()); err != nil {
		return nil, err
	}
	for v, ctx := range p.Context {
		c, ok := copies[ctx]
		if !ok {
			return nil, fmt.Errorf("online: vertex %d has unknown context", v)
		}
		if _, err := l.AddExec(c, origins[v]); err != nil {
			return nil, err
		}
	}
	return l, nil
}
