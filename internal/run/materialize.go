package run

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/plan"
	"repro/internal/spec"
)

// Materialize builds the run graph described by an execution tree,
// following Lemma 4.1 bottom-up: a copy of a region instantiates its
// direct vertices and edges, loop sites chain their copies with serial
// connector edges, and fork sites attach all copies to the shared terminal
// vertices of the enclosing copy.
//
// Alongside the run it returns the ground-truth execution plan T_R and
// context function, which the ConstructPlan algorithm must later recover
// from the graph alone.
func Materialize(s *spec.Spec, t *ExecTree) (*Run, *plan.Plan, error) {
	if err := t.Validate(s); err != nil {
		return nil, nil, err
	}
	m := &materializer{
		s: s,
		g: dag.New(0),
		p: &plan.Plan{Spec: s},
	}
	m.directEdges = m.computeDirectEdges()
	root := m.p.NewNode(true, 0, nil)
	m.p.Root = root
	srcRun := m.newVertex(s.Source, root)
	snkRun := m.newVertex(s.Sink, root)
	m.emitCopy(0, t.Copies[0], root, srcRun, snkRun)
	m.p.Context = m.context
	r := &Run{Spec: s, Graph: m.g, Origin: m.origin}
	if err := m.p.Validate(m.g); err != nil {
		return nil, nil, fmt.Errorf("run: materialized plan invalid: %w", err)
	}
	return r, m.p, nil
}

// MustMaterialize is Materialize that panics on error, for tests.
func MustMaterialize(s *spec.Spec, t *ExecTree) (*Run, *plan.Plan) {
	r, p, err := Materialize(s, t)
	if err != nil {
		panic(err)
	}
	return r, p
}

type materializer struct {
	s       *spec.Spec
	g       *dag.Graph
	origin  []dag.VertexID
	context []*plan.Node
	p       *plan.Plan
	// directEdges[h] lists the edges of region h that belong to no
	// hierarchy child of h.
	directEdges [][]dag.Edge
}

func (m *materializer) newVertex(orig dag.VertexID, ctx *plan.Node) dag.VertexID {
	v := m.g.AddVertex()
	m.origin = append(m.origin, orig)
	m.context = append(m.context, ctx)
	return v
}

func (m *materializer) computeDirectEdges() [][]dag.Edge {
	h := m.s.Hier
	owner := m.s.EdgeOwner()
	out := make([][]dag.Edge, h.NumNodes())
	for i, e := range m.s.Graph.Edges() {
		out[owner[i]] = append(out[owner[i]], e)
	}
	// EdgeOwner assigns each edge to its innermost containing subgraph, but
	// "direct" means not in any child's edge set — for a fork and loop with
	// equal edge sets the innermost owner is the fork (deeper); that is the
	// correct direct owner, so nothing more to do.
	return out
}

// emitCopy emits the body of one copy of hierarchy node hn into the run
// graph. sRun and tRun are the run vertices standing for the region's
// source and sink; they are created by the caller. plus is the + plan node
// of this copy.
func (m *materializer) emitCopy(hn int, c *ExecCopy, plus *plan.Node, sRun, tRun dag.VertexID) {
	srcSpec := m.s.SourceOf(hn)
	snkSpec := m.s.SinkOf(hn)
	vmap := map[dag.VertexID]dag.VertexID{srcSpec: sRun, snkSpec: tRun}

	// Loops (and the root) dominate their terminals: claim them for this
	// copy. A deeper terminal-sharing loop child emitted below may
	// overwrite, implementing the "deepest dominating + node" rule.
	if m.s.KindOf(hn) == spec.Loop {
		m.context[sRun] = plus
		m.context[tRun] = plus
	}

	// Direct vertices of this region (terminals are already in vmap).
	for _, v := range m.s.DirectVertices(hn) {
		if v == srcSpec || v == snkSpec {
			continue
		}
		vmap[v] = m.newVertex(v, plus)
	}

	children := m.s.Hier.Children[hn]
	// Loop sites first: they create their own terminal vertices, which
	// sibling fork sites and direct edges may reference.
	for i, child := range children {
		if m.s.KindOf(child) != spec.Loop {
			continue
		}
		m.emitLoopSite(child, c.Sites[i], plus, vmap, srcSpec, snkSpec)
	}
	for i, child := range children {
		if m.s.KindOf(child) != spec.Fork {
			continue
		}
		m.emitForkSite(child, c.Sites[i], plus, vmap)
	}

	for _, e := range m.directEdges[hn] {
		u, ok := vmap[e.Tail]
		if !ok {
			panic(fmt.Sprintf("run: direct edge tail %d of region %d unmapped", e.Tail, hn))
		}
		w, ok := vmap[e.Head]
		if !ok {
			panic(fmt.Sprintf("run: direct edge head %d of region %d unmapped", e.Head, hn))
		}
		m.g.AddEdge(u, w)
	}
}

// emitLoopSite emits all serial copies of loop child, chains them with
// connector edges, and registers the chain terminals in the parent's vmap.
// When the loop shares a terminal with the enclosing region, the first
// copy's source (resp. last copy's sink) reuses the already-created vertex.
func (m *materializer) emitLoopSite(child int, site *ExecTree, parentPlus *plan.Node,
	vmap map[dag.VertexID]dag.VertexID, parentSrc, parentSnk dag.VertexID) {

	sub := m.s.SubgraphOf(child)
	minus := m.p.NewNode(false, child, parentPlus)
	k := len(site.Copies)
	var first, prevSink dag.VertexID
	for j, cp := range site.Copies {
		copyPlus := m.p.NewNode(true, child, minus)
		var sj, tj dag.VertexID
		if j == 0 && sub.Source == parentSrc {
			sj = vmap[parentSrc]
			m.context[sj] = copyPlus // deeper loop claims the shared terminal
		} else {
			sj = m.newVertex(sub.Source, copyPlus)
		}
		if j == k-1 && sub.Sink == parentSnk {
			tj = vmap[parentSnk]
			m.context[tj] = copyPlus
		} else {
			tj = m.newVertex(sub.Sink, copyPlus)
		}
		m.emitCopy(child, cp, copyPlus, sj, tj)
		if j > 0 {
			m.g.AddEdge(prevSink, sj) // serial connector
		} else {
			first = sj
		}
		prevSink = tj
	}
	vmap[sub.Source] = first
	vmap[sub.Sink] = prevSink
}

// emitForkSite emits all parallel copies of fork child between the shared
// terminal vertices already present in vmap.
func (m *materializer) emitForkSite(child int, site *ExecTree, parentPlus *plan.Node,
	vmap map[dag.VertexID]dag.VertexID) {

	sub := m.s.SubgraphOf(child)
	sRun, ok := vmap[sub.Source]
	if !ok {
		panic(fmt.Sprintf("run: fork %d source %d unmapped", child, sub.Source))
	}
	tRun, ok := vmap[sub.Sink]
	if !ok {
		panic(fmt.Sprintf("run: fork %d sink %d unmapped", child, sub.Sink))
	}
	minus := m.p.NewNode(false, child, parentPlus)
	for _, cp := range site.Copies {
		copyPlus := m.p.NewNode(true, child, minus)
		m.emitCopy(child, cp, copyPlus, sRun, tRun)
	}
}
