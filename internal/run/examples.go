package run

import (
	"repro/internal/plan"
	"repro/internal/spec"
)

// Figure3Exec builds the execution tree of the paper's Figure 3 run for
// the Figure 2 specification: F1 executed twice (its first copy loops L1
// twice, the second once), L2 executed twice (its second iteration forks
// F2 twice).
func Figure3Exec(s *spec.Spec) *ExecTree {
	et := SingleExec(s)
	var f1Site, l2Site *ExecTree
	for _, site := range et.Copies[0].Sites {
		if s.KindOf(site.HNode) == spec.Fork {
			f1Site = site
		} else {
			l2Site = site
		}
	}
	if f1Site == nil || l2Site == nil {
		panic("run: Figure3Exec requires the paper specification")
	}
	Duplicate(Duplicatable{Site: f1Site, Index: 0})
	Duplicate(Duplicatable{Site: f1Site.Copies[0].Sites[0], Index: 0})
	Duplicate(Duplicatable{Site: l2Site, Index: 0})
	Duplicate(Duplicatable{Site: l2Site.Copies[1].Sites[0], Index: 0})
	return et
}

// Figure3Run materializes the paper's Figure 3 run (16 vertices, 18
// edges) with its ground-truth execution plan (Figure 7).
func Figure3Run(s *spec.Spec) (*Run, *plan.Plan) {
	r, p := MustMaterialize(s, Figure3Exec(s))
	return r, p
}
