package run

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/spec"
)

// figure3Exec builds the execution tree of the paper's Figure 3 run:
// F1 executed twice (one copy loops L1 twice, the other once); L2 executed
// twice (the second copy forks F2 twice).
func figure3Exec(t *testing.T, s *spec.Spec) *ExecTree {
	t.Helper()
	et := SingleExec(s)
	rootCopy := et.Copies[0]
	var f1Site, l2Site *ExecTree
	for _, site := range rootCopy.Sites {
		switch s.KindOf(site.HNode) {
		case spec.Fork:
			f1Site = site
		case spec.Loop:
			l2Site = site
		}
	}
	if f1Site == nil || l2Site == nil {
		t.Fatal("paper spec root sites not found")
	}
	// F1 twice.
	Duplicate(Duplicatable{Site: f1Site, Index: 0})
	// First F1 copy: L1 twice.
	l1Site := f1Site.Copies[0].Sites[0]
	Duplicate(Duplicatable{Site: l1Site, Index: 0})
	// L2 twice; in its second copy, F2 twice.
	Duplicate(Duplicatable{Site: l2Site, Index: 0})
	f2Site := l2Site.Copies[1].Sites[0]
	Duplicate(Duplicatable{Site: f2Site, Index: 0})
	return et
}

func TestSingleExecMatchesSpecShape(t *testing.T) {
	s := spec.PaperSpec()
	r, p := MustMaterialize(s, SingleExec(s))
	if r.NumVertices() != s.NumVertices() || r.NumEdges() != s.NumEdges() {
		t.Fatalf("minimal run is %dv/%de, want %dv/%de",
			r.NumVertices(), r.NumEdges(), s.NumVertices(), s.NumEdges())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("minimal run invalid: %v", err)
	}
	// Minimal run must be isomorphic to G through the origin map.
	for _, e := range r.Graph.Edges() {
		if !s.Graph.HasEdge(r.Origin[e.Tail], r.Origin[e.Head]) {
			t.Fatalf("edge %v has no specification counterpart", e)
		}
	}
	// Plan: 1 root + one (−,+) pair per subgraph = 1 + 2*4 = 9 nodes.
	if len(p.Nodes) != 9 {
		t.Fatalf("minimal plan has %d nodes, want 9", len(p.Nodes))
	}
}

func TestFigure3Run(t *testing.T) {
	s := spec.PaperSpec()
	et := figure3Exec(t, s)
	if err := et.Validate(s); err != nil {
		t.Fatalf("figure-3 exec tree invalid: %v", err)
	}
	r, p := MustMaterialize(s, et)
	if err := r.Validate(); err != nil {
		t.Fatalf("figure-3 run invalid: %v", err)
	}
	if r.NumVertices() != 16 {
		t.Errorf("|V(R)| = %d, want 16", r.NumVertices())
	}
	if r.NumEdges() != 18 {
		t.Errorf("|E(R)| = %d, want 18", r.NumEdges())
	}
	// Execution plan matches Figure 7: 17 nodes, 11 + nodes, 6 − nodes.
	if len(p.Nodes) != 17 {
		t.Errorf("|V(T_R)| = %d, want 17", len(p.Nodes))
	}
	if p.NumPlus() != 11 {
		t.Errorf("plus nodes = %d, want 11", p.NumPlus())
	}
	// Nonempty + nodes: Figure 9 numbers exactly 9 of them.
	if got := len(p.NonEmptyPlus()); got != 9 {
		t.Errorf("nonempty + nodes = %d, want 9", got)
	}
	// Context multiset: root owns 3 vertices (a1, d1, h1); the two F1+
	// copies are empty; L1 copies own 2 vertices each; L2 copies own 2
	// each; F2 copies own 1 each (Figure 8).
	sizes := make(map[int]int) // context node ID -> #vertices
	for _, c := range p.Context {
		sizes[c.ID]++
	}
	var rootSize int
	counts := map[string]map[int]int{"fork": {}, "loop": {}}
	for id, n := range sizes {
		node := p.Nodes[id]
		if node.IsRoot() {
			rootSize = n
			continue
		}
		counts[s.KindOf(node.HNode).String()][n]++
	}
	if rootSize != 3 {
		t.Errorf("root context size = %d, want 3", rootSize)
	}
	// Loops: L1 copies {b1,c1},{b2,c2},{b3,c3} and L2 copies {e1,g1},{e2,g2}: five 2-vertex contexts.
	if counts["loop"][2] != 5 {
		t.Errorf("loop copies with 2 vertices = %d, want 5", counts["loop"][2])
	}
	// Forks: F2 copies {f1},{f2},{f3}: three 1-vertex contexts; F1 copies empty.
	if counts["fork"][1] != 3 {
		t.Errorf("fork copies with 1 vertex = %d, want 3", counts["fork"][1])
	}
	// Reachability facts from Section 1/4.2 checked on the raw graph.
	byName := func(name string) dag.VertexID {
		for v := 0; v < r.NumVertices(); v++ {
			if r.NameOf(dag.VertexID(v)) == name {
				return dag.VertexID(v)
			}
		}
		t.Fatalf("vertex %s not found", name)
		return -1
	}
	// b1/b2/c1/c2 live in one fork copy, b3/c3 in the other.
	if r.Graph.ReachableBFS(byName("b1"), byName("c3")) {
		t.Error("b1 should not reach c3 (parallel fork copies)")
	}
	if !r.Graph.ReachableBFS(byName("c1"), byName("b2")) {
		t.Error("c1 should reach b2 (successive loop iterations)")
	}
	if !r.Graph.ReachableBFS(byName("b1"), byName("c1")) {
		t.Error("b1 should reach c1 (same copy, spec edge)")
	}
	if r.Graph.ReachableBFS(byName("c1"), byName("d1")) {
		t.Error("c1 should not reach d1 (parallel branches in G)")
	}
	if !r.Graph.ReachableBFS(byName("f1"), byName("e2")) {
		t.Error("f1 should reach e2 (successive L2 iterations)")
	}
}

func TestNameOfSubscripts(t *testing.T) {
	s := spec.PaperSpec()
	et := figure3Exec(t, s)
	r, _ := MustMaterialize(s, et)
	seen := make(map[string]bool)
	for v := 0; v < r.NumVertices(); v++ {
		name := r.NameOf(dag.VertexID(v))
		if seen[name] {
			t.Fatalf("duplicate run vertex name %q", name)
		}
		seen[name] = true
	}
	for _, want := range []string{"a1", "b1", "b2", "b3", "c3", "f3", "g2", "h1"} {
		if !seen[want] {
			t.Errorf("expected run vertex %q", want)
		}
	}
}

func TestEstimateVerticesExact(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		et := RandomExecSteps(s, rng, rng.Intn(40))
		r, _ := MustMaterialize(s, et)
		if est := et.EstimateVertices(s); est != r.NumVertices() {
			t.Fatalf("estimate %d != actual %d", est, r.NumVertices())
		}
	}
}

func TestCountCopiesAndSites(t *testing.T) {
	s := spec.PaperSpec()
	et := SingleExec(s)
	if et.CountCopies() != 5 { // root + 4 subgraph copies
		t.Errorf("CountCopies = %d, want 5", et.CountCopies())
	}
	if et.CountSites() != 4 {
		t.Errorf("CountSites = %d, want 4", et.CountSites())
	}
	// Figure 7: 11 copies (+ nodes) and 6 sites (− nodes).
	ft := figure3Exec(t, s)
	if ft.CountCopies() != 11 || ft.CountSites() != 6 {
		t.Errorf("figure-3 copies/sites = %d/%d, want 11/6", ft.CountCopies(), ft.CountSites())
	}
}

func TestDuplicateDeepCopies(t *testing.T) {
	s := spec.PaperSpec()
	et := SingleExec(s)
	root := et.Copies[0]
	var f1Site *ExecTree
	for _, site := range root.Sites {
		if s.KindOf(site.HNode) == spec.Fork {
			f1Site = site
		}
	}
	// Blow up the nested L1 of copy 0, then duplicate copy 0: the clone
	// must carry the nested executions but be structurally independent.
	l1 := f1Site.Copies[0].Sites[0]
	Duplicate(Duplicatable{Site: l1, Index: 0})
	Duplicate(Duplicatable{Site: f1Site, Index: 0})
	if len(f1Site.Copies) != 2 {
		t.Fatalf("fork has %d copies, want 2", len(f1Site.Copies))
	}
	c0, c1 := f1Site.Copies[0].Sites[0], f1Site.Copies[1].Sites[0]
	if len(c0.Copies) != 2 || len(c1.Copies) != 2 {
		t.Fatal("duplication did not replicate nested loop executions")
	}
	Duplicate(Duplicatable{Site: c1, Index: 0})
	if len(c0.Copies) != 2 || len(c1.Copies) != 3 {
		t.Fatal("clone shares structure with original")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := spec.PaperSpec()
	et := RandomExecSteps(s, rand.New(rand.NewSource(3)), 10)
	cl := et.Clone()
	before := et.CountCopies()
	Duplicate(Duplicatable{Site: cl.Copies[0].Sites[0], Index: 0})
	if et.CountCopies() != before {
		t.Fatal("mutating clone changed original")
	}
}

func TestExecValidateRejectsMalformed(t *testing.T) {
	s := spec.PaperSpec()
	et := SingleExec(s)
	et.HNode = 1
	if err := et.Validate(s); err == nil {
		t.Error("wrong root HNode accepted")
	}
	et = SingleExec(s)
	et.Copies = append(et.Copies, et.Copies[0])
	if err := et.Validate(s); err == nil {
		t.Error("multi-copy root accepted")
	}
	et = SingleExec(s)
	et.Copies[0].Sites[0].Copies = nil
	if err := et.Validate(s); err == nil {
		t.Error("empty site accepted")
	}
	et = SingleExec(s)
	et.Copies[0].Sites = et.Copies[0].Sites[:1]
	if err := et.Validate(s); err == nil {
		t.Error("missing site accepted")
	}
}

func TestTerminalSharingLoop(t *testing.T) {
	// A loop whose source is the specification source: the first copy must
	// reuse the run source vertex and claim its context.
	b := spec.NewBuilder()
	b.Chain("a", "b", "c")
	b.Loop("a", "b")
	s := b.MustBuild()
	et := SingleExec(s)
	Duplicate(Duplicatable{Site: et.Copies[0].Sites[0], Index: 0})
	Duplicate(Duplicatable{Site: et.Copies[0].Sites[0], Index: 0})
	r, p := MustMaterialize(s, et)
	if err := r.Validate(); err != nil {
		t.Fatalf("terminal-sharing run invalid: %v", err)
	}
	// 3 loop copies: a1 b1 | a2 b2 | a3 b3, then c1: 7 vertices, 3 body
	// edges + 2 connectors + b3->c1 = 6 edges.
	if r.NumVertices() != 7 || r.NumEdges() != 6 {
		t.Fatalf("run is %dv/%de, want 7v/6e", r.NumVertices(), r.NumEdges())
	}
	// The run source's context must be the first loop copy, not the root.
	src, _, err := r.Graph.FlowNetworkTerminals()
	if err != nil {
		t.Fatal(err)
	}
	if p.Context[src].IsRoot() {
		t.Error("shared source context should be the loop copy, not the root")
	}
	// Estimator over-counts by exactly the documented adjustment (0 here
	// thanks to rootTerminalAdjustment).
	if est := et.EstimateVertices(s); est != r.NumVertices() {
		t.Errorf("estimate %d != actual %d", est, r.NumVertices())
	}
}

func TestValidateCatchesCorruptRuns(t *testing.T) {
	s := spec.PaperSpec()
	r, _ := MustMaterialize(s, SingleExec(s))
	// Corrupt an origin.
	bad := &Run{Spec: s, Graph: r.Graph, Origin: append([]dag.VertexID(nil), r.Origin...)}
	bad.Origin[0] = 99
	if err := bad.Validate(); err == nil {
		t.Error("invalid origin accepted")
	}
	// Origin count mismatch.
	bad2 := &Run{Spec: s, Graph: r.Graph, Origin: r.Origin[:3]}
	if err := bad2.Validate(); err == nil {
		t.Error("short origin vector accepted")
	}
	// An edge whose origin pair is neither a spec edge nor a loop
	// connector: c -> d crosses parallel branches of G.
	g := r.Graph.Clone()
	var cV, dV dag.VertexID = -1, -1
	for v := 0; v < g.NumVertices(); v++ {
		switch s.NameOf(r.Origin[v]) {
		case "c":
			cV = dag.VertexID(v)
		case "d":
			dV = dag.VertexID(v)
		}
	}
	g.AddEdge(cV, dV)
	bad3 := &Run{Spec: s, Graph: g, Origin: r.Origin}
	if err := bad3.Validate(); err == nil {
		t.Error("cross-branch edge accepted")
	}
}

func TestOriginByName(t *testing.T) {
	s := spec.PaperSpec()
	names := []spec.ModuleName{"a", "b", "c", "h"}
	origin, err := OriginByName(s, names)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if s.NameOf(origin[i]) != n {
			t.Errorf("origin[%d] = %q, want %q", i, s.NameOf(origin[i]), n)
		}
	}
	if _, err := OriginByName(s, []spec.ModuleName{"a", "zz"}); err == nil {
		t.Error("unknown module accepted")
	}
}

func TestGenerateSizedApproximatesTarget(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(11))
	for _, target := range []int{100, 400, 1600, 6400} {
		r, p := GenerateSized(s, rng, target)
		if err := r.Validate(); err != nil {
			t.Fatalf("generated run invalid: %v", err)
		}
		if err := p.Validate(r.Graph); err != nil {
			t.Fatalf("generated plan invalid: %v", err)
		}
		n := r.NumVertices()
		if n < target/2 || n > target*2 {
			t.Errorf("target %d produced %d vertices (outside [%d,%d])", target, n, target/2, target*2)
		}
	}
}

func TestGenerateSizedOnLinearSpec(t *testing.T) {
	s := spec.LinearSpec(6)
	r, _ := GenerateSized(s, rand.New(rand.NewSource(1)), 1000)
	if r.NumVertices() != 6 {
		t.Errorf("fork/loop-free spec should yield the minimal run, got %d vertices", r.NumVertices())
	}
}

// Property: any run produced by random Definition-6 duplications is a
// valid acyclic flow network conforming to the specification, its
// materialized size matches the estimator, and its ground-truth plan
// passes all structural invariants including the Lemma 4.2 bound.
func TestQuickRandomRunsValid(t *testing.T) {
	specs := []*spec.Spec{spec.PaperSpec(), spec.IntroSpec()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		et := RandomExecSteps(s, rng, rng.Intn(60))
		r, p := MustMaterialize(s, et)
		if err := r.Validate(); err != nil {
			t.Logf("run invalid: %v", err)
			return false
		}
		if err := p.Validate(r.Graph); err != nil {
			t.Logf("plan invalid: %v", err)
			return false
		}
		if et.EstimateVertices(s) != r.NumVertices() {
			t.Logf("estimate mismatch")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the run graph never lets two copies of the same fork site see
// each other — checked indirectly: every run is acyclic and single
// source/sink (full reachability semantics are verified in the core
// package against labels).
func TestQuickRandomExpandValid(t *testing.T) {
	s := spec.PaperSpec()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		et := RandomExecExpand(s, rng, 1+rng.Float64()*3)
		if err := et.Validate(s); err != nil {
			return false
		}
		r, _ := MustMaterialize(s, et)
		return r.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
