// Package run implements workflow runs: graphs derived from a
// specification by fork and loop executions (Definition 6), the execution
// trees that describe them, a materializer that builds the run graph (and
// its ground-truth execution plan) from an execution tree, and random run
// generation by the paper's copy-duplication semantics.
package run

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/spec"
)

// Run is a workflow run of a specification.
type Run struct {
	// Spec is the specification this run conforms to.
	Spec *spec.Spec
	// Graph is the run graph R.
	Graph *dag.Graph
	// Origin maps each run vertex to its specification vertex (Def. 8).
	// In the paper this is recovered from module names; module names in a
	// run are the spec module name of the origin (plus an occurrence
	// subscript when rendered).
	Origin []dag.VertexID
}

// NumVertices returns |V(R)|.
func (r *Run) NumVertices() int { return r.Graph.NumVertices() }

// NumEdges returns |E(R)|.
func (r *Run) NumEdges() int { return r.Graph.NumEdges() }

// NameOf renders the unique display name of run vertex v: the module name
// of its origin plus the vertex's rank among copies of that origin
// (matching the paper's b1, b2, ... convention).
func (r *Run) NameOf(v dag.VertexID) string {
	rank := 1
	for u := dag.VertexID(0); u < v; u++ {
		if r.Origin[u] == r.Origin[v] {
			rank++
		}
	}
	return fmt.Sprintf("%s%d", r.Spec.NameOf(r.Origin[v]), rank)
}

// Validate checks the basic conformance invariants of the run that do not
// require reconstructing the execution plan:
//
//   - R is an acyclic flow network whose terminals originate from the
//     specification terminals;
//   - every origin is a valid specification vertex;
//   - every run edge's origin pair is either a specification edge or a
//     loop connector (t(H), s(H)) for some loop H.
func (r *Run) Validate() error {
	if len(r.Origin) != r.Graph.NumVertices() {
		return fmt.Errorf("run: %d origins for %d vertices", len(r.Origin), r.Graph.NumVertices())
	}
	n := dag.VertexID(r.Spec.NumVertices())
	for v, o := range r.Origin {
		if o < 0 || o >= n {
			return fmt.Errorf("run: vertex %d has invalid origin %d", v, o)
		}
	}
	src, snk, err := r.Graph.FlowNetworkTerminals()
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if r.Origin[src] != r.Spec.Source {
		return fmt.Errorf("run: source originates from %q, want %q",
			r.Spec.NameOf(r.Origin[src]), r.Spec.NameOf(r.Spec.Source))
	}
	if r.Origin[snk] != r.Spec.Sink {
		return fmt.Errorf("run: sink originates from %q, want %q",
			r.Spec.NameOf(r.Origin[snk]), r.Spec.NameOf(r.Spec.Sink))
	}
	connector := make(map[dag.Edge]bool)
	for _, sub := range r.Spec.Subgraphs {
		if sub.Kind == spec.Loop {
			connector[dag.Edge{Tail: sub.Sink, Head: sub.Source}] = true
		}
	}
	for _, e := range r.Graph.Edges() {
		oe := dag.Edge{Tail: r.Origin[e.Tail], Head: r.Origin[e.Head]}
		if !r.Spec.Graph.HasEdge(oe.Tail, oe.Head) && !connector[oe] {
			return fmt.Errorf("run: edge %d->%d originates from (%q,%q), which is neither a spec edge nor a loop connector",
				e.Tail, e.Head, r.Spec.NameOf(oe.Tail), r.Spec.NameOf(oe.Head))
		}
	}
	return nil
}

// OriginByName computes the origin function for a run graph whose vertex
// module names are given explicitly (e.g. decoded from XML): each run
// vertex's module name must be a specification module name.
func OriginByName(s *spec.Spec, names []spec.ModuleName) ([]dag.VertexID, error) {
	origin := make([]dag.VertexID, len(names))
	for v, name := range names {
		o, ok := s.VertexOf(name)
		if !ok {
			return nil, fmt.Errorf("run: vertex %d has module %q not present in the specification", v, name)
		}
		origin[v] = o
	}
	return origin, nil
}
