package run

import (
	"fmt"

	"repro/internal/dag"
)

// Namer resolves the display names of run vertices (module name plus
// occurrence subscript) in O(1) after an O(n) build, replacing the O(n)
// per-call Run.NameOf for callers that name many vertices.
type Namer struct {
	names  []string
	byName map[string]dag.VertexID
}

// NewNamer indexes all vertex names of the run.
func NewNamer(r *Run) *Namer {
	n := r.NumVertices()
	counts := make([]int, r.Spec.NumVertices())
	names := make([]string, n)
	byName := make(map[string]dag.VertexID, n)
	for v := 0; v < n; v++ {
		o := r.Origin[v]
		counts[o]++
		name := fmt.Sprintf("%s%d", r.Spec.NameOf(o), counts[o])
		names[v] = name
		byName[name] = dag.VertexID(v)
	}
	return &Namer{names: names, byName: byName}
}

// Name returns the display name of vertex v.
func (nm *Namer) Name(v dag.VertexID) string { return nm.names[v] }

// Vertex resolves a display name back to its vertex.
func (nm *Namer) Vertex(name string) (dag.VertexID, bool) {
	v, ok := nm.byName[name]
	return v, ok
}

// VertexBytes is Vertex for a byte-slice key: the compiler elides the
// string conversion in the map index, so lookup hot paths (the query
// server's hand-rolled /batch decoder) resolve names with zero
// allocation.
func (nm *Namer) VertexBytes(name []byte) (dag.VertexID, bool) {
	v, ok := nm.byName[string(name)]
	return v, ok
}
