package run

import (
	"math/rand"

	"repro/internal/plan"
	"repro/internal/spec"
)

// RandomExecExpand builds an execution tree top-down, drawing an
// independent copy count for every fork/loop site from a geometric
// distribution with the given mean (mean >= 1). This matches the paper's
// synthetic workload: "we randomly replicated each fork or loop one or
// more times".
func RandomExecExpand(s *spec.Spec, rng *rand.Rand, meanCopies float64) *ExecTree {
	if meanCopies < 1 {
		meanCopies = 1
	}
	p := 0.0
	if meanCopies > 1 {
		p = (meanCopies - 1) / meanCopies
	}
	drawCount := func() int {
		k := 1
		for p > 0 && rng.Float64() < p && k < 1<<20 {
			k++
		}
		return k
	}
	var buildSite func(hnode int) *ExecTree
	var buildCopy func(hnode int) *ExecCopy
	buildCopy = func(hnode int) *ExecCopy {
		c := &ExecCopy{}
		for _, child := range s.Hier.Children[hnode] {
			c.Sites = append(c.Sites, buildSite(child))
		}
		return c
	}
	buildSite = func(hnode int) *ExecTree {
		t := &ExecTree{HNode: hnode}
		k := drawCount()
		for i := 0; i < k; i++ {
			t.Copies = append(t.Copies, buildCopy(hnode))
		}
		return t
	}
	root := &ExecTree{HNode: 0, Copies: []*ExecCopy{buildCopy(0)}}
	return root
}

// GenerateSized produces a run whose vertex count approximates
// targetVertices (within roughly ±30% for feasible targets), by searching
// over the mean copy count of RandomExecExpand. Specifications without any
// fork or loop yield the unique minimal run regardless of target.
func GenerateSized(s *spec.Spec, rng *rand.Rand, targetVertices int) (*Run, *plan.Plan) {
	t := ExecForSize(s, rng, targetVertices)
	r, p, err := Materialize(s, t)
	if err != nil {
		panic(err) // generated trees are valid by construction
	}
	return r, p
}

// ExecForSize searches for an execution tree whose estimated materialized
// size approximates targetVertices.
func ExecForSize(s *spec.Spec, rng *rand.Rand, targetVertices int) *ExecTree {
	if len(s.Subgraphs) == 0 || targetVertices <= s.NumVertices() {
		return SingleExec(s)
	}
	mean := 2.0
	var best *ExecTree
	bestErr := -1
	for iter := 0; iter < 60; iter++ {
		t := RandomExecExpand(s, rng, mean)
		est := t.EstimateVertices(s)
		diff := est - targetVertices
		if diff < 0 {
			diff = -diff
		}
		if bestErr < 0 || diff < bestErr {
			best, bestErr = t, diff
		}
		switch {
		case est < targetVertices*8/10:
			mean *= 1.4
		case est > targetVertices*13/10:
			mean = 1 + (mean-1)/1.5
		default:
			return t
		}
	}
	return best
}
