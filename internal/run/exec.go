package run

import (
	"fmt"
	"math/rand"

	"repro/internal/spec"
)

// ExecTree describes one site of a fork or loop subgraph within a run: how
// many copies exist at the site and, recursively, how each copy executes
// its nested subgraphs. The root ExecTree (HNode 0) always has exactly one
// copy — the run itself.
//
// ExecTree is the constructive counterpart of the execution plan T_R: a
// site corresponds to a − node, each copy to a + node.
type ExecTree struct {
	// HNode is the specification hierarchy node this site instantiates.
	HNode int
	// Copies holds one entry per copy, in serial order for loops.
	Copies []*ExecCopy
}

// ExecCopy is one copy of a subgraph: one site per hierarchy child.
type ExecCopy struct {
	// Sites has one entry per child of HNode in the hierarchy, in
	// Hier.Children order.
	Sites []*ExecTree
}

// SingleExec returns the execution tree of the minimal run: every fork and
// loop executed exactly once.
func SingleExec(s *spec.Spec) *ExecTree {
	var build func(hnode int) *ExecTree
	build = func(hnode int) *ExecTree {
		c := &ExecCopy{}
		for _, child := range s.Hier.Children[hnode] {
			c.Sites = append(c.Sites, build(child))
		}
		return &ExecTree{HNode: hnode, Copies: []*ExecCopy{c}}
	}
	return build(0)
}

// Clone returns a deep copy of the tree.
func (t *ExecTree) Clone() *ExecTree {
	c := &ExecTree{HNode: t.HNode, Copies: make([]*ExecCopy, len(t.Copies))}
	for i, cp := range t.Copies {
		c.Copies[i] = cp.clone()
	}
	return c
}

func (c *ExecCopy) clone() *ExecCopy {
	out := &ExecCopy{Sites: make([]*ExecTree, len(c.Sites))}
	for i, s := range c.Sites {
		out.Sites[i] = s.Clone()
	}
	return out
}

// Validate checks that the tree mirrors the specification hierarchy.
func (t *ExecTree) Validate(s *spec.Spec) error {
	if t.HNode != 0 {
		return fmt.Errorf("run: exec tree root instantiates hierarchy node %d, want 0", t.HNode)
	}
	if len(t.Copies) != 1 {
		return fmt.Errorf("run: exec tree root must have exactly one copy, has %d", len(t.Copies))
	}
	var walk func(t *ExecTree) error
	walk = func(t *ExecTree) error {
		if len(t.Copies) == 0 {
			return fmt.Errorf("run: site of hierarchy node %d has no copies", t.HNode)
		}
		children := s.Hier.Children[t.HNode]
		for _, cp := range t.Copies {
			if len(cp.Sites) != len(children) {
				return fmt.Errorf("run: copy of hierarchy node %d has %d sites, want %d",
					t.HNode, len(cp.Sites), len(children))
			}
			for i, site := range cp.Sites {
				if site.HNode != children[i] {
					return fmt.Errorf("run: site %d of hierarchy node %d instantiates %d, want %d",
						i, t.HNode, site.HNode, children[i])
				}
				if err := walk(site); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(t)
}

// CountCopies returns the total number of copies (+ nodes) in the tree.
func (t *ExecTree) CountCopies() int {
	total := len(t.Copies)
	for _, cp := range t.Copies {
		for _, site := range cp.Sites {
			total += site.CountCopies()
		}
	}
	return total
}

// CountSites returns the total number of sites (− nodes) in the tree,
// excluding the root.
func (t *ExecTree) CountSites() int {
	total := 0
	if t.HNode != 0 {
		total++
	}
	for _, cp := range t.Copies {
		for _, site := range cp.Sites {
			total += site.CountSites()
		}
	}
	return total
}

// EstimateVertices returns |V(R)| for the materialized run, mirroring the
// materializer's vertex creation exactly: each copy creates its direct
// non-terminal vertices, each loop copy creates its own terminals except
// where the first/last copy reuses a terminal shared with the enclosing
// region, and the root creates the two run terminals.
func (t *ExecTree) EstimateVertices(s *spec.Spec) int {
	directNonTerminal := make([]int, s.Hier.NumNodes())
	for h := range directNonTerminal {
		n := 0
		src, snk := s.SourceOf(h), s.SinkOf(h)
		for _, v := range s.DirectVertices(h) {
			if v != src && v != snk {
				n++
			}
		}
		directNonTerminal[h] = n
	}
	var copyCount func(hnode int, c *ExecCopy) int
	copyCount = func(hnode int, c *ExecCopy) int {
		total := directNonTerminal[hnode]
		src, snk := s.SourceOf(hnode), s.SinkOf(hnode)
		for _, site := range c.Sites {
			child := site.HNode
			k := len(site.Copies)
			if s.KindOf(child) == spec.Loop {
				// Each loop copy creates both terminals, except a first
				// copy reusing a shared source or a last copy reusing a
				// shared sink.
				terms := 2 * k
				if s.SourceOf(child) == src {
					terms--
				}
				if s.SinkOf(child) == snk {
					terms--
				}
				total += terms
			}
			for _, cp := range site.Copies {
				total += copyCount(child, cp)
			}
		}
		return total
	}
	return 2 + copyCount(0, t.Copies[0])
}

// Duplicatable collects every copy that can be duplicated (every copy of a
// fork or loop site; the root copy is not duplicatable). The returned
// pointers identify (site, index) pairs.
type Duplicatable struct {
	Site  *ExecTree
	Index int
}

// duplicatables appends all duplicatable copies under t to out.
func (t *ExecTree) duplicatables(out []Duplicatable) []Duplicatable {
	for i, cp := range t.Copies {
		if t.HNode != 0 {
			out = append(out, Duplicatable{Site: t, Index: i})
		}
		for _, site := range cp.Sites {
			out = site.duplicatables(out)
		}
	}
	return out
}

// Duplicate performs one fork/loop execution in the sense of Definition 6:
// it deep-copies the copy at d.Index and inserts the clone immediately
// after it (adjacent serial position for loops, an additional parallel
// branch for forks).
func Duplicate(d Duplicatable) {
	clone := d.Site.Copies[d.Index].clone()
	copies := d.Site.Copies
	copies = append(copies, nil)
	copy(copies[d.Index+2:], copies[d.Index+1:])
	copies[d.Index+1] = clone
	d.Site.Copies = copies
}

// RandomExec builds an execution tree by repeatedly applying Definition-6
// duplication steps to uniformly random copies until the estimated run
// size reaches targetVertices (or no fork/loop exists). This mirrors how a
// real run grows: each duplication replicates a copy including all of its
// nested executions.
func RandomExec(s *spec.Spec, rng *rand.Rand, targetVertices int) *ExecTree {
	t := SingleExec(s)
	if len(s.Subgraphs) == 0 {
		return t
	}
	for t.EstimateVertices(s) < targetVertices {
		cands := t.duplicatables(nil)
		if len(cands) == 0 {
			break
		}
		Duplicate(cands[rng.Intn(len(cands))])
	}
	return t
}

// RandomExecSteps applies exactly n random duplication steps.
func RandomExecSteps(s *spec.Spec, rng *rand.Rand, n int) *ExecTree {
	t := SingleExec(s)
	if len(s.Subgraphs) == 0 {
		return t
	}
	for i := 0; i < n; i++ {
		cands := t.duplicatables(nil)
		if len(cands) == 0 {
			break
		}
		Duplicate(cands[rng.Intn(len(cands))])
	}
	return t
}
