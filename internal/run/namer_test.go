package run

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/spec"
)

func TestNamerMatchesNameOf(t *testing.T) {
	s := spec.PaperSpec()
	rng := rand.New(rand.NewSource(1))
	r, _ := GenerateSized(s, rng, 400)
	nm := NewNamer(r)
	for v := 0; v < r.NumVertices(); v++ {
		vid := dag.VertexID(v)
		want := r.NameOf(vid)
		if got := nm.Name(vid); got != want {
			t.Fatalf("Name(%d) = %q, want %q", v, got, want)
		}
		back, ok := nm.Vertex(want)
		if !ok || back != vid {
			t.Fatalf("Vertex(%q) = %d,%v", want, back, ok)
		}
	}
	if _, ok := nm.Vertex("nonexistent99"); ok {
		t.Error("Vertex found a nonexistent name")
	}
}

func BenchmarkNamerLookup(b *testing.B) {
	s := spec.PaperSpec()
	r, _ := GenerateSized(s, rand.New(rand.NewSource(2)), 5000)
	nm := NewNamer(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nm.Name(dag.VertexID(i % r.NumVertices()))
	}
}
