// Package rpq answers regular path queries over skeleton-labeled runs:
// does some directed path between two run vertices spell a word matching
// a regular expression over module labels? It follows the authors' RPQ
// extension of the skeleton-label scheme (arXiv 1408.0528): compile the
// pattern into an automaton, then evaluate the product of the automaton
// with the run graph, using label-based reachability to prune every
// branch that cannot reach the target.
//
// # Patterns
//
// A pattern is a regular expression over module names:
//
//	expr   := term ('|' term)*         alternation
//	term   := factor*                  concatenation (whitespace separated)
//	factor := atom ('*' | '+' | '?')*  quantifiers bind to the atom
//	atom   := name | '.' | '(' expr ')'
//
// A name is a maximal run of bytes that are not whitespace, not one of
// the structural characters `| * + ? ( ) .`, and not reserved
// (`[ ] { } ^ $ \ " '` are reserved for future syntax). `.` matches any
// single label. A name that is not a module of the specification parses
// fine — patterns are spec-independent text — but matches nothing.
//
// # Word semantics
//
// The word spelled by a path v0 -> v1 -> ... -> vk is the label sequence
// of v1..vk: the start vertex contributes no symbol, every edge
// contributes the label of the vertex it enters. The empty path (from ==
// to) spells the empty word, so a nullable pattern matches every vertex
// paired with itself.
//
// # Engines
//
// Compile builds a Thompson NFA (states linear in the pattern).
// NewMatcher wraps it in a lazily determinized DFA under a hard state
// budget — pathological patterns fail with ErrStateBudget instead of
// exponential memory — and Matcher.Eval runs the pruned product search.
// The deliberately naive reference evaluator, dag.MatchAutomaton, runs
// the same NFA directly over (vertex, state) pairs with no
// determinization and no pruning: the differential oracle the fast
// engine is tested against.
package rpq

import (
	"errors"
	"fmt"

	"repro/internal/dag"
)

const (
	// MaxPatternLen bounds the pattern text Compile accepts, the
	// first-line defense against hostile inputs.
	MaxPatternLen = 4096
	// MaxNesting bounds parenthesis depth.
	MaxNesting = 128
	// DefaultMaxDFAStates is the determinization budget NewMatcher
	// applies when given no explicit one.
	DefaultMaxDFAStates = 4096
)

// ErrStateBudget reports a pattern whose lazy determinization needs more
// DFA states than the matcher's budget: the query is rejected rather
// than allowed exponential memory.
var ErrStateBudget = errors.New("rpq: pattern needs more DFA states than the budget allows")

// ParseError reports a syntactically invalid pattern.
type ParseError struct {
	Pos int // byte offset into the pattern
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rpq: pattern offset %d: %s", e.Pos, e.Msg)
}

// Symbol sentinels for nstate.sym. Real symbols (spec vertex IDs) are
// always non-negative.
const (
	symNone dag.VertexID = -1 // state has no symbol arrow (eps only)
	symWild dag.VertexID = -2 // arrow taken on every symbol
	symDead dag.VertexID = -3 // arrow never taken (unknown label name)
)

// nstate is one Thompson NFA state: either a single symbol arrow or up
// to two epsilon arrows (the construction never needs both).
type nstate struct {
	sym dag.VertexID
	to  int32
	eps [2]int32
}

// Prog is a compiled pattern: a Thompson NFA over spec-vertex symbols.
// It is immutable and safe for concurrent use. Prog implements
// dag.Automaton, so the naive reference evaluator runs the exact same
// automaton the fast engine determinizes.
type Prog struct {
	states  []nstate
	start   int32
	accept  int32
	pattern string
}

var _ dag.Automaton = (*Prog)(nil)

// Compile parses pattern and builds its NFA. lookup resolves a label
// name to its symbol (a non-negative spec vertex ID); names it rejects
// still parse but can never match. A nil lookup rejects every name,
// which keeps parsing spec-independent.
func Compile(pattern string, lookup func(name string) (dag.VertexID, bool)) (*Prog, error) {
	if len(pattern) > MaxPatternLen {
		return nil, &ParseError{0, fmt.Sprintf("pattern is %d bytes, the limit is %d", len(pattern), MaxPatternLen)}
	}
	if lookup == nil {
		lookup = func(string) (dag.VertexID, bool) { return 0, false }
	}
	p := &parser{src: pattern, lookup: lookup}
	f, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, &ParseError{p.pos, fmt.Sprintf("unexpected %q", p.src[p.pos])}
	}
	accept := p.add(nstate{sym: symNone, eps: [2]int32{-1, -1}})
	p.patchAll(f.outs, accept)
	return &Prog{states: p.states, start: f.start, accept: accept, pattern: pattern}, nil
}

// Pattern returns the source text the program was compiled from.
func (p *Prog) Pattern() string { return p.pattern }

// NumStates returns the NFA state count.
func (p *Prog) NumStates() int { return len(p.states) }

// Start returns the NFA start state.
func (p *Prog) Start() int { return int(p.start) }

// Accepting reports whether q is the accept state.
func (p *Prog) Accepting(q int) bool { return int32(q) == p.accept }

// AppendEps appends q's epsilon-successors to dst and returns it.
func (p *Prog) AppendEps(dst []int, q int) []int {
	for _, e := range p.states[q].eps {
		if e >= 0 {
			dst = append(dst, int(e))
		}
	}
	return dst
}

// AppendMove appends q's successors on symbol sym to dst and returns it.
// sym must be non-negative (the sentinels are internal).
func (p *Prog) AppendMove(dst []int, q int, sym dag.VertexID) []int {
	s := &p.states[q]
	if s.sym == symWild || (s.sym >= 0 && s.sym == sym) {
		dst = append(dst, int(s.to))
	}
	return dst
}

// parser is a recursive-descent parser building Thompson fragments
// in place.
type parser struct {
	src    string
	pos    int
	depth  int
	lookup func(string) (dag.VertexID, bool)
	states []nstate
}

// frag is a partially built automaton: a start state plus the dangling
// arrows a later fragment (or the accept state) will be patched into.
type frag struct {
	start int32
	outs  []patch
}

// patch addresses one dangling arrow: slot 0 is nstate.to, slots 1 and 2
// are the two epsilon arrows.
type patch struct {
	st   int32
	slot uint8
}

func (p *parser) add(s nstate) int32 {
	p.states = append(p.states, s)
	return int32(len(p.states) - 1)
}

func (p *parser) patchAll(outs []patch, target int32) {
	for _, o := range outs {
		switch o.slot {
		case 0:
			p.states[o.st].to = target
		case 1:
			p.states[o.st].eps[0] = target
		default:
			p.states[o.st].eps[1] = target
		}
	}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func isReserved(c byte) bool {
	switch c {
	case '[', ']', '{', '}', '^', '$', '\\', '"', '\'':
		return true
	}
	return false
}

func isNameByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '|', '*', '+', '?', '(', ')', '.':
		return false
	}
	return !isReserved(c)
}

func (p *parser) parseAlt() (frag, error) {
	f, err := p.parseConcat()
	if err != nil {
		return frag{}, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '|' {
			return f, nil
		}
		p.pos++
		g, err := p.parseConcat()
		if err != nil {
			return frag{}, err
		}
		sp := p.add(nstate{sym: symNone, eps: [2]int32{f.start, g.start}})
		f = frag{start: sp, outs: append(f.outs, g.outs...)}
	}
}

func (p *parser) parseConcat() (frag, error) {
	var f frag
	have := false
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		if c := p.src[p.pos]; c == '|' || c == ')' {
			break
		}
		g, err := p.parseFactor()
		if err != nil {
			return frag{}, err
		}
		if !have {
			f, have = g, true
			continue
		}
		p.patchAll(f.outs, g.start)
		f = frag{start: f.start, outs: g.outs}
	}
	if !have {
		// An empty term ("a|", "()") is epsilon.
		st := p.add(nstate{sym: symNone, eps: [2]int32{-1, -1}})
		return frag{start: st, outs: []patch{{st, 1}}}, nil
	}
	return f, nil
}

func (p *parser) parseFactor() (frag, error) {
	f, err := p.parseAtom()
	if err != nil {
		return frag{}, err
	}
	// Quantifiers must immediately follow their atom: "a *" is a
	// dangling quantifier, not postfix application at a distance.
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '*':
			p.pos++
			sp := p.add(nstate{sym: symNone, eps: [2]int32{f.start, -1}})
			p.patchAll(f.outs, sp)
			f = frag{start: sp, outs: []patch{{sp, 2}}}
		case '+':
			p.pos++
			sp := p.add(nstate{sym: symNone, eps: [2]int32{f.start, -1}})
			p.patchAll(f.outs, sp)
			f = frag{start: f.start, outs: []patch{{sp, 2}}}
		case '?':
			p.pos++
			sp := p.add(nstate{sym: symNone, eps: [2]int32{f.start, -1}})
			f = frag{start: sp, outs: append(f.outs, patch{sp, 2})}
		default:
			return f, nil
		}
	}
	return f, nil
}

func (p *parser) parseAtom() (frag, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return frag{}, &ParseError{p.pos, "unexpected end of pattern"}
	}
	switch c := p.src[p.pos]; {
	case c == '(':
		p.depth++
		if p.depth > MaxNesting {
			return frag{}, &ParseError{p.pos, fmt.Sprintf("more than %d nested groups", MaxNesting)}
		}
		p.pos++
		f, err := p.parseAlt()
		if err != nil {
			return frag{}, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return frag{}, &ParseError{p.pos, "missing ')'"}
		}
		p.pos++
		p.depth--
		return f, nil
	case c == '.':
		p.pos++
		st := p.add(nstate{sym: symWild, to: -1, eps: [2]int32{-1, -1}})
		return frag{start: st, outs: []patch{{st, 0}}}, nil
	case c == '*' || c == '+' || c == '?':
		return frag{}, &ParseError{p.pos, fmt.Sprintf("quantifier %q has nothing to repeat", c)}
	case isReserved(c):
		return frag{}, &ParseError{p.pos, fmt.Sprintf("reserved character %q", c)}
	default:
		start := p.pos
		for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
			p.pos++
		}
		sym, ok := p.lookup(p.src[start:p.pos])
		if !ok || sym < 0 {
			sym = symDead
		}
		st := p.add(nstate{sym: sym, to: -1, eps: [2]int32{-1, -1}})
		return frag{start: st, outs: []patch{{st, 0}}}, nil
	}
}
