package rpq

import (
	"errors"
	"testing"

	"repro/internal/dag"
)

// FuzzRPQParse throws hostile pattern text at the full pipeline: parse,
// NFA construction, determinization under a small budget, and both
// evaluators on a small graph. A pattern either fails with a typed
// *ParseError or evaluates without panicking, and the DFA never exceeds
// its state budget — the contract the server's 4xx mapping relies on.
func FuzzRPQParse(f *testing.F) {
	f.Add("a b c")
	f.Add("(a|b)* c")
	f.Add(".* a .+ b?")
	f.Add("a**")
	f.Add("((((a))))")
	f.Add("a|b|")
	f.Add("()")
	f.Add("(a|b)* a . . . . . . . . . .")
	f.Add("[a-z]{3}")
	f.Add("\\(")
	f.Add("|||***")
	f.Add("nosuchmodule .")
	f.Fuzz(func(t *testing.T, pattern string) {
		p, err := Compile(pattern, testLookup)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Compile(%q) failed with untyped error %v", pattern, err)
			}
			return
		}
		g := dag.New(4)
		g.AddEdge(0, 1)
		g.AddEdge(0, 2)
		g.AddEdge(1, 3)
		g.AddEdge(2, 3)
		syms := []dag.VertexID{0, 1, 2, 3}
		const budget = 64
		m := NewMatcher(p, budget)
		got, err := m.Eval(g, syms, nil, 0, 3)
		if err != nil && !errors.Is(err, ErrStateBudget) {
			t.Fatalf("Eval(%q) failed with unexpected error %v", pattern, err)
		}
		if m.NumDFAStates() > budget {
			t.Fatalf("Eval(%q) built %d DFA states over budget %d", pattern, m.NumDFAStates(), budget)
		}
		if err == nil {
			if naive := g.MatchAutomaton(0, 3, syms, p); naive != got {
				t.Fatalf("Eval(%q) = %v but the naive oracle says %v", pattern, got, naive)
			}
		}
	})
}
