package rpq

import (
	"math/rand"
	"strings"
)

// RandomPattern returns a random, always-compilable pattern over the
// given label names: the generator behind the differential test battery
// and the load harness's rpq traffic class. maxDepth bounds group
// nesting; an empty name list falls back to wildcards.
func RandomPattern(rng *rand.Rand, names []string, maxDepth int) string {
	var b strings.Builder
	randExpr(rng, &b, names, maxDepth)
	return b.String()
}

func randExpr(rng *rand.Rand, b *strings.Builder, names []string, depth int) {
	terms := 1
	if rng.Intn(3) == 0 {
		terms = 2 + rng.Intn(2)
	}
	for i := 0; i < terms; i++ {
		if i > 0 {
			b.WriteByte('|')
		}
		if terms > 1 && rng.Intn(8) == 0 {
			continue // an empty alternative: matches the empty word
		}
		randTerm(rng, b, names, depth)
	}
}

func randTerm(rng *rand.Rand, b *strings.Builder, names []string, depth int) {
	factors := 1 + rng.Intn(3)
	for i := 0; i < factors; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		randFactor(rng, b, names, depth)
	}
}

func randFactor(rng *rand.Rand, b *strings.Builder, names []string, depth int) {
	switch {
	case depth > 0 && rng.Intn(4) == 0:
		b.WriteByte('(')
		randExpr(rng, b, names, depth-1)
		b.WriteByte(')')
	case len(names) == 0 || rng.Intn(5) == 0:
		b.WriteByte('.')
	default:
		b.WriteString(names[rng.Intn(len(names))])
	}
	if rng.Intn(5) < 2 {
		b.WriteByte("*+?"[rng.Intn(3)])
	}
}
