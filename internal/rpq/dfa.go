package rpq

import (
	"encoding/binary"
	"sort"

	"repro/internal/dag"
)

// deadState is the implicit DFA reject state (the empty NFA set). It is
// never stored; transitions into it simply end the branch.
const deadState = int32(-1)

// dstate is one lazily built DFA state: an epsilon-closed, sorted set of
// NFA states with memoized outgoing transitions.
type dstate struct {
	set    []int32
	accept bool
	next   map[dag.VertexID]int32
}

// Matcher evaluates one compiled pattern with a lazily determinized DFA
// under a hard state budget. The DFA cache persists across Eval calls,
// so evaluating many pairs with one Matcher amortizes determinization.
// A Matcher is not safe for concurrent use; create one per goroutine
// (the Prog behind it is shareable).
type Matcher struct {
	p         *Prog
	maxStates int
	states    []dstate
	index     map[string]int32
	seen      []bool // closure scratch, one flag per NFA state
	stack     []int32
	key       []byte
}

// NewMatcher wraps a compiled pattern in a DFA evaluator holding at most
// maxStates determinized states (DefaultMaxDFAStates when <= 0).
func NewMatcher(p *Prog, maxStates int) *Matcher {
	if maxStates <= 0 {
		maxStates = DefaultMaxDFAStates
	}
	return &Matcher{
		p:         p,
		maxStates: maxStates,
		index:     make(map[string]int32),
		seen:      make([]bool, len(p.states)),
	}
}

// NumDFAStates returns how many DFA states have been built so far.
func (m *Matcher) NumDFAStates() int { return len(m.states) }

// startState returns (building on first use) the DFA start state.
func (m *Matcher) startState() (int32, error) {
	if len(m.states) == 0 {
		return m.intern(m.closure([]int32{m.p.start}))
	}
	return 0, nil
}

// closure returns the sorted epsilon-closure of seed.
func (m *Matcher) closure(seed []int32) []int32 {
	m.stack = m.stack[:0]
	push := func(q int32) {
		if !m.seen[q] {
			m.seen[q] = true
			m.stack = append(m.stack, q)
		}
	}
	for _, q := range seed {
		push(q)
	}
	for i := 0; i < len(m.stack); i++ {
		for _, e := range m.p.states[m.stack[i]].eps {
			if e >= 0 {
				push(e)
			}
		}
	}
	set := make([]int32, len(m.stack))
	copy(set, m.stack)
	for _, q := range set {
		m.seen[q] = false
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// intern returns the DFA state for an epsilon-closed sorted set, adding
// it if new. The empty set is deadState. Exceeding the state budget
// returns ErrStateBudget.
func (m *Matcher) intern(set []int32) (int32, error) {
	if len(set) == 0 {
		return deadState, nil
	}
	m.key = m.key[:0]
	for _, q := range set {
		m.key = binary.LittleEndian.AppendUint32(m.key, uint32(q))
	}
	if si, ok := m.index[string(m.key)]; ok {
		return si, nil
	}
	if len(m.states) >= m.maxStates {
		return 0, ErrStateBudget
	}
	accept := false
	for _, q := range set {
		if q == m.p.accept {
			accept = true
			break
		}
	}
	si := int32(len(m.states))
	m.states = append(m.states, dstate{set: set, accept: accept, next: make(map[dag.VertexID]int32)})
	m.index[string(m.key)] = si
	return si, nil
}

// step returns the DFA state after reading sym in state si, determinizing
// and memoizing on first use.
func (m *Matcher) step(si int32, sym dag.VertexID) (int32, error) {
	if to, ok := m.states[si].next[sym]; ok {
		return to, nil
	}
	var moved []int32
	for _, q := range m.states[si].set {
		st := &m.p.states[q]
		if st.sym == symWild || (st.sym >= 0 && st.sym == sym) {
			moved = append(moved, st.to)
		}
	}
	to, err := m.intern(m.closure(moved))
	if err != nil {
		return 0, err
	}
	m.states[si].next[sym] = to
	return to, nil
}

// Eval reports whether some directed path in g from one vertex to
// another spells a word the pattern accepts. syms assigns every vertex
// its label symbol (a run's Origin column works verbatim); the word of
// a path is the symbol sequence of its vertices strictly after 'from',
// so from == to matches the empty word iff the pattern is nullable.
//
// reach is the skeleton-label reachability oracle used for pruning and
// may be nil (no pruning). With it, Eval upholds the label-pruning
// guarantee: no product state whose graph vertex cannot reach 'to' is
// ever explored, and an unreachable pair is rejected in O(1) before any
// expansion.
//
// Eval returns ErrStateBudget when lazy determinization would exceed
// the matcher's state budget.
func (m *Matcher) Eval(g *dag.Graph, syms []dag.VertexID, reach func(u, v dag.VertexID) bool, from, to dag.VertexID) (bool, error) {
	start, err := m.startState()
	if err != nil {
		return false, err
	}
	if from == to && m.states[start].accept {
		return true, nil
	}
	if from != to && reach != nil && !reach(from, to) {
		// The labels answer "no path at all" in O(1): nothing to explore.
		return false, nil
	}
	type pstate struct {
		v dag.VertexID
		d int32
	}
	key := func(v dag.VertexID, d int32) uint64 {
		return uint64(uint32(v))<<32 | uint64(uint32(d))
	}
	visited := map[uint64]bool{key(from, start): true}
	queue := []pstate{{from, start}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, y := range g.Out(p.v) {
			if y != to && reach != nil && !reach(y, to) {
				continue // label pruning: y cannot reach the target
			}
			d2, err := m.step(p.d, syms[y])
			if err != nil {
				return false, err
			}
			if d2 == deadState {
				continue
			}
			if y == to && m.states[d2].accept {
				return true, nil
			}
			if k := key(y, d2); !visited[k] {
				visited[k] = true
				queue = append(queue, pstate{y, d2})
			}
		}
	}
	return false, nil
}
