package rpq

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// testLookup resolves single-letter names a..e to symbols 0..4.
func testLookup(name string) (dag.VertexID, bool) {
	if len(name) == 1 && name[0] >= 'a' && name[0] <= 'e' {
		return dag.VertexID(name[0] - 'a'), true
	}
	return 0, false
}

func compile(t *testing.T, pattern string) *Prog {
	t.Helper()
	p, err := Compile(pattern, testLookup)
	if err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	return p
}

// diamond returns the graph 0 -> {1,2} -> 3 with labels a,b,c,d.
func diamond() (*dag.Graph, []dag.VertexID) {
	g := dag.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g, []dag.VertexID{0, 1, 2, 3}
}

func TestMatcherEval(t *testing.T) {
	g, syms := diamond()
	cases := []struct {
		pattern  string
		from, to dag.VertexID
		want     bool
	}{
		{"b d", 0, 3, true},
		{"c d", 0, 3, true},
		{"b c", 0, 3, false},
		{". .", 0, 3, true},
		{".", 0, 3, false},
		{".*", 0, 3, true},
		{".+", 0, 3, true},
		{"(b|c) d", 0, 3, true},
		{"b* d", 0, 3, true}, // 0->1->3 spells "b d": one b, then d
		{"d", 1, 3, true},
		{"d", 2, 3, true},
		{"b", 0, 1, true},
		{"c", 0, 1, false},
		{"", 0, 0, true},
		{"", 0, 3, false},
		{"a", 0, 0, false},
		{".*", 2, 2, true},
		{"nosuchmodule", 0, 3, false},
		{"nosuchmodule|b d", 0, 3, true},
		{"b? d", 0, 3, true},
		{"(b|c)+ d?", 0, 3, true},
	}
	for _, tc := range cases {
		p := compile(t, tc.pattern)
		m := NewMatcher(p, 0)
		got, err := m.Eval(g, syms, nil, tc.from, tc.to)
		if err != nil {
			t.Fatalf("Eval(%q, %d->%d): %v", tc.pattern, tc.from, tc.to, err)
		}
		if got != tc.want {
			t.Errorf("Eval(%q, %d->%d) = %v, want %v", tc.pattern, tc.from, tc.to, got, tc.want)
		}
		if naive := g.MatchAutomaton(tc.from, tc.to, syms, p); naive != tc.want {
			t.Errorf("MatchAutomaton(%q, %d->%d) = %v, want %v", tc.pattern, tc.from, tc.to, naive, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(", ")", "a)", "(a", "*", "a|*", "(+)", "a**b)",
		"[abc]", "a{3}", "a\\b", "^a$", `"a"`,
	}
	for _, pattern := range bad {
		_, err := Compile(pattern, testLookup)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Compile(%q) = %v, want *ParseError", pattern, err)
		}
	}
	long := make([]byte, MaxPatternLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := Compile(string(long), testLookup); err == nil {
		t.Error("Compile accepted an over-length pattern")
	}
	deep := ""
	for i := 0; i <= MaxNesting; i++ {
		deep += "("
	}
	deep += "a"
	for i := 0; i <= MaxNesting; i++ {
		deep += ")"
	}
	var pe *ParseError
	if _, err := Compile(deep, testLookup); !errors.As(err, &pe) {
		t.Errorf("Compile(deeply nested) = %v, want *ParseError", err)
	}
}

// TestStateBudget drives determinization over a two-vertex cyclic graph
// (every word over {a,b} is a path), so the classic exponential pattern
// (a|b)* a (.x10) must exhaust a small DFA budget instead of building
// ~2^10 states.
func TestStateBudget(t *testing.T) {
	pattern := "(a|b)* a . . . . . . . . . ."
	p := compile(t, pattern)
	g := dag.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	syms := []dag.VertexID{0, 1, 2} // a, b, c; vertex 2 is isolated
	m := NewMatcher(p, 32)
	_, err := m.Eval(g, syms, nil, 0, 2)
	if !errors.Is(err, ErrStateBudget) {
		t.Fatalf("Eval = %v, want ErrStateBudget", err)
	}
	if m.NumDFAStates() > 32 {
		t.Fatalf("matcher built %d DFA states, budget was 32", m.NumDFAStates())
	}
	// A generous budget evaluates the same query fine (to false: vertex
	// 2 has no in-edges).
	m = NewMatcher(p, 0)
	if got, err := m.Eval(g, syms, nil, 0, 2); err != nil || got {
		t.Fatalf("Eval with default budget = (%v, %v), want (false, nil)", got, err)
	}
}

// TestEvalAgainstOracle cross-checks the pruned DFA engine against the
// naive dag.MatchAutomaton oracle — and against itself without pruning —
// on random small DAGs and random patterns.
func TestEvalAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c"}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		g := dag.New(n)
		syms := make([]dag.VertexID, n)
		for v := range syms {
			syms[v] = dag.VertexID(rng.Intn(3))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(dag.VertexID(i), dag.VertexID(j))
				}
			}
		}
		tc, ok := g.TransitiveClosure()
		if !ok {
			t.Fatal("random DAG has a cycle")
		}
		for k := 0; k < 5; k++ {
			pattern := RandomPattern(rng, names, 3)
			p, err := Compile(pattern, testLookup)
			if err != nil {
				t.Fatalf("RandomPattern produced uncompilable %q: %v", pattern, err)
			}
			m := NewMatcher(p, 0)
			u := dag.VertexID(rng.Intn(n))
			v := dag.VertexID(rng.Intn(n))
			want := g.MatchAutomaton(u, v, syms, p)
			pruned, err := m.Eval(g, syms, tc.Reachable, u, v)
			if err != nil {
				t.Fatalf("Eval(%q): %v", pattern, err)
			}
			plain, err := NewMatcher(p, 0).Eval(g, syms, nil, u, v)
			if err != nil {
				t.Fatalf("Eval(%q, no pruning): %v", pattern, err)
			}
			if pruned != want || plain != want {
				t.Fatalf("trial %d: pattern %q %d->%d: oracle=%v pruned=%v plain=%v",
					trial, pattern, u, v, want, pruned, plain)
			}
		}
	}
}
