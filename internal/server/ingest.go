package server

import (
	"errors"
	"net/http"
	"sync"

	"repro/internal/run"
	"repro/internal/store"
	"repro/internal/xmlio"
)

// ingest.go is the server's write path: PUT /runs/{name} accepts a run
// document (the xmlio run XML, with data items inline when present),
// labels and persists it through store.PutRun under the server's
// scheme, refreshes the session cache so the very next query sees the
// new run, and reports the stored snapshot's version and size. Ingest
// is off unless Config.EnableIngest is set: a provserve fronting a
// read-only store stays read-only.
//
// The store contract leaves same-name write/write and write/read races
// to the caller, and this server is that caller: runLocks is a striped
// reader/writer lock over run names. A PUT holds the write side across
// store.PutRun and the cache invalidation; every cache-miss session
// load holds the read side (see Server.load). So concurrent PUTs for
// one name serialize, a load can never interleave a WriteRun and pair
// the old run document with the new label snapshot (a torn session),
// and distinct names — modulo stripe collisions — ingest and load fully
// in parallel. Cache *hits* take no lock at all: a resident session is
// immutable. Writers from other processes on a shared store are outside
// this lock and remain the deployment's to serialize, per the store
// contract; OpenRun's vertex-count check turns such torn pairs into
// errors rather than wrong answers whenever the sizes differ.

// runLocks is the striped per-run-name RWMutex. 64 stripes keyed by
// FNV-1a of the run name: collisions cost unrelated-name serialization,
// never correctness, and the fixed size means no per-name bookkeeping
// to leak.
type runLocks struct {
	mu [64]sync.RWMutex
}

// fnv32a is the package's one inlined FNV-1a over a run name (the same
// keying as the shard backend's router) — hash/fnv would heap-allocate
// its state and copy the name on every load and every PUT. Both stripe
// consumers (runLocks, the session cache's generation table) derive
// their index from this single implementation.
func fnv32a(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h
}

// forName picks the run's lock stripe.
func (l *runLocks) forName(name string) *sync.RWMutex {
	return &l.mu[fnv32a(name)%uint32(len(l.mu))]
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.ingest {
		writeErr(w, http.StatusForbidden,
			"ingest is disabled on this server (start it with ingest enabled to accept PUT /runs)")
		return
	}
	name := r.PathValue("name")
	if err := store.ValidRunName(name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.brk.isOpen() {
		s.unavailable(w, "degraded mode: the storage backend is unavailable, ingest is disabled")
		return
	}
	// Shield this name from retention sweeps for the whole handler: a
	// sweep triggered by a concurrent PUT must not delete a run whose
	// 200 is still on its way to the client.
	s.ingestingMu.Lock()
	s.ingesting[name]++
	s.ingestingMu.Unlock()
	defer func() {
		s.ingestingMu.Lock()
		if s.ingesting[name]--; s.ingesting[name] <= 0 {
			delete(s.ingesting, name)
		}
		s.ingestingMu.Unlock()
	}()
	// The decoder must never trust Content-Length or read an unbounded
	// hostile body: MaxBytesReader caps what xml parsing can consume.
	r.Body = http.MaxBytesReader(w, r.Body, s.maxIngestBytes)
	rn, ann, err := xmlio.DecodeRun(r.Body, s.st.Spec())
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"run document exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "malformed run document: %v", err)
		return
	}

	mu := s.runMu.forName(name)
	mu.Lock()
	sess, err := s.st.PutRunSession(name, rn, ann, s.scheme)
	if err == nil && s.cache.Invalidate(name) {
		// The run was resident, so someone is querying it: refresh the
		// entry in place from the labeling just built instead of
		// evicting it and re-reading the backend. Runs nobody queried
		// stay out of the cache entirely — cache membership is driven
		// by query traffic, so a bulk ingest can never flush the query
		// working set. Both steps happen under the write lock: no load
		// is in flight, so nothing can re-cache the old run in between.
		s.cache.Put(name, &session{Session: sess, namer: run.NewNamer(sess.Run)})
	}
	mu.Unlock()
	s.brk.note(err)
	if err != nil {
		// The document already decoded and validated against the spec,
		// so a PutRunSession failure is the store's (labeling, encoding,
		// or backend I/O) — the client's request was well-formed. A
		// transient failure left no usable pair behind (a partial write
		// is transient precisely because an overwrite retry heals it), so
		// the client is told to retry, not that the server broke.
		if store.IsTransient(err) {
			s.unavailable(w, "storing run %q: %v", name, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "storing run %q: %v", name, err)
		return
	}
	if s.maxRuns > 0 {
		// Retention rides the write path: every PUT that may have grown
		// the store sweeps it back under the bound. The just-ingested run
		// is protected — a PUT must never delete its own run, even when
		// nobody has queried it yet.
		if _, err := s.EnforceMaxRuns(s.maxRuns, name); err != nil {
			s.logf("server: retention sweep after PUT %q: %v", name, err)
		}
	}
	items := 0
	if sess.Data != nil {
		items = len(sess.Data.Items)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":              name,
		"vertices":         sess.Run.NumVertices(),
		"edges":            sess.Run.NumEdges(),
		"data_items":       items,
		"snapshot_version": sess.SnapshotVersion.String(),
		"snapshot_bytes":   sess.SnapshotBytes,
	})
}
