package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/store"
)

// breaker.go is the server's circuit breaker over the storage backend —
// the control half of the failure model documented on store.Backend.
// Transient backend errors that survive the store-level retry wrapper
// (configure one with cmd/provserve's -retry) are counted here; a run
// of consecutive failures means the substrate is down, not flaky, and
// hammering it with more load only deepens the outage. The breaker then
// flips the server into degraded read-only mode:
//
//   - Writes (PUT, DELETE, POST events, POST finish) answer 503 with
//     Retry-After instead of touching the backend.
//   - Cache-hit reads (/reachable, /batch, /lineage, run status) keep
//     answering at full fidelity — resident sessions are immutable and
//     need no I/O. Live streaming sessions also keep answering queries;
//     only their appends are refused.
//   - Cache-miss reads answer 503 with Retry-After: better an honest
//     "come back shortly" than a slow 500 after a doomed backend trip.
//
// While open, a probe goroutine re-checks the backend every cooldown
// (half-open: exactly one cheap read is in flight, client traffic stays
// shed) and the first success closes the breaker. Any organic backend
// success observed meanwhile closes it too. /healthz reports the state
// throughout ("degraded" plus a breaker block), so operators and load
// balancers can see the transition without tailing logs.

// breaker counts consecutive transient backend failures and trips into
// degraded mode at the configured threshold. All methods are safe for
// concurrent use; a nil or disabled breaker reports closed forever.
type breaker struct {
	threshold int
	cooldown  time.Duration
	probe     func() error
	logf      func(format string, args ...any)

	mu          sync.Mutex
	open        bool      // guarded by mu
	probing     bool      // guarded by mu
	consecutive int       // guarded by mu
	openedAt    time.Time // guarded by mu
	opens       int64     // guarded by mu
	probes      int64     // guarded by mu
}

// newBreaker builds a breaker tripping after threshold consecutive
// transient failures and probing the backend every cooldown while open.
// threshold <= 0 disables the breaker (isOpen is always false).
func newBreaker(threshold int, cooldown time.Duration, probe func() error, logf func(string, ...any)) *breaker {
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	return &breaker{threshold: threshold, cooldown: cooldown, probe: probe, logf: logf}
}

func (b *breaker) enabled() bool { return b.threshold > 0 }

// isOpen reports whether the server is in degraded read-only mode.
func (b *breaker) isOpen() bool {
	if !b.enabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// note records the outcome of one backend interaction. A transient
// error is a strike; reaching the threshold opens the breaker and
// starts the probe loop. Anything else — success, not-exist, even a
// permanent error — proves the backend is answering, resets the strike
// count, and closes an open breaker.
func (b *breaker) note(err error) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil && store.IsTransient(err) {
		b.consecutive++
		if !b.open && b.consecutive >= b.threshold {
			b.open = true
			b.openedAt = time.Now()
			b.opens++
			b.logf("server: circuit breaker OPEN after %d consecutive transient backend failures (last: %v); degraded read-only mode, probing every %v",
				b.consecutive, err, b.cooldown)
			if !b.probing {
				b.probing = true
				go b.probeLoop()
			}
		}
		return
	}
	b.consecutive = 0
	if b.open {
		b.open = false
		b.logf("server: circuit breaker closed after %v degraded; backend healthy again", time.Since(b.openedAt).Round(time.Millisecond))
	}
}

// probeLoop is the half-open state: while the breaker is open it issues
// one cheap backend read per cooldown and feeds the result back through
// note, which closes the breaker on the first success. The loop exits
// once the breaker is closed (by its own probe or organically).
func (b *breaker) probeLoop() {
	for {
		time.Sleep(b.cooldown)
		b.mu.Lock()
		if !b.open {
			b.probing = false
			b.mu.Unlock()
			return
		}
		b.probes++
		b.mu.Unlock()
		b.note(b.probe())
	}
}

// retryAfterSeconds is the Retry-After value for 503s shed while the
// breaker is open: the probe cadence, so a client that honors it comes
// back roughly when the server could first have healed.
func (b *breaker) retryAfterSeconds() int {
	secs := int(b.cooldown / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// BreakerStats is the circuit breaker's /healthz snapshot.
type BreakerStats struct {
	Enabled bool `json:"enabled"`
	// State is "closed" (normal) or "open" (degraded read-only; the
	// probe loop doubles as the half-open state).
	State       string `json:"state"`
	Threshold   int    `json:"threshold,omitempty"`
	Consecutive int    `json:"consecutive_failures"`
	// Opens counts closed→open transitions since the server started.
	Opens int64 `json:"opens"`
	// Probes counts half-open backend probes issued.
	Probes int64 `json:"probes"`
	// OpenSeconds is how long the breaker has currently been open.
	OpenSeconds float64 `json:"open_seconds,omitempty"`
	// RetryAfterSeconds is what shed requests are told.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func (b *breaker) stats() BreakerStats {
	st := BreakerStats{Enabled: b.enabled(), State: "closed"}
	if !b.enabled() {
		st.State = "disabled"
		return st
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st.Threshold = b.threshold
	st.Consecutive = b.consecutive
	st.Opens = b.opens
	st.Probes = b.probes
	if b.open {
		st.State = "open"
		st.OpenSeconds = time.Since(b.openedAt).Seconds()
		st.RetryAfterSeconds = b.retryAfterSeconds()
	}
	return st
}

// unavailable answers one request with 503 and the breaker's
// Retry-After. Used both for requests shed in degraded mode and for
// transient backend errors on the normal path — either way the honest
// answer is "temporarily unavailable, retry shortly", and provquery's
// append retry loop keys off exactly this shape.
func (s *Server) unavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.brk.retryAfterSeconds()))
	writeErr(w, http.StatusServiceUnavailable, format, args...)
}
