package server

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

func TestDeleteRun(t *testing.T) {
	s, st := newIngestServer(t, Config{})
	sp := spec.PaperSpec()
	r, _ := run.GenerateSized(sp, rand.New(rand.NewSource(21)), 100)
	if rec := do(t, s, "PUT", "/runs/doomed", encodeRun(t, r, nil), nil); rec.Code != 200 {
		t.Fatalf("PUT: %d", rec.Code)
	}
	// Query it so the session is cache-resident: the delete must kill the
	// zombie session too, not just the blobs.
	if rec := do(t, s, "GET", "/runs?run=doomed", "", nil); rec.Code != 200 {
		t.Fatalf("warmup GET: %d", rec.Code)
	}

	var del struct {
		Run     string `json:"run"`
		Deleted bool   `json:"deleted"`
	}
	if rec := do(t, s, "DELETE", "/runs/doomed", "", &del); rec.Code != 200 {
		t.Fatalf("DELETE: %d %s", rec.Code, rec.Body.String())
	}
	if del.Run != "doomed" || !del.Deleted {
		t.Fatalf("DELETE response = %+v", del)
	}
	// Every read surface agrees the run is gone.
	if rec := do(t, s, "GET", "/runs?run=doomed", "", nil); rec.Code != 404 {
		t.Fatalf("GET after delete = %d, want 404 (stale session still answering)", rec.Code)
	}
	if rec := do(t, s, "GET", "/reachable?run=doomed&from=0&to=1", "", nil); rec.Code != 404 {
		t.Fatalf("/reachable after delete = %d, want 404", rec.Code)
	}
	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, s, "GET", "/runs", "", &runs)
	if len(runs.Runs) != 0 {
		t.Fatalf("/runs after delete = %v, want empty", runs.Runs)
	}
	if names, err := st.Runs(); err != nil || len(names) != 0 {
		t.Fatalf("store after delete = %v, %v", names, err)
	}
	if cs := s.Stats(); cs.Invalidations < 1 {
		t.Fatalf("stats after delete = %+v, want >= 1 invalidation", cs)
	}
	// The second delete is 404: the name is gone, not silently absorbed.
	if rec := do(t, s, "DELETE", "/runs/doomed", "", nil); rec.Code != 404 {
		t.Fatalf("second DELETE = %d, want 404", rec.Code)
	}
	// The name is free for reuse over the wire.
	r2, _ := run.GenerateSized(sp, rand.New(rand.NewSource(22)), 140)
	if rec := do(t, s, "PUT", "/runs/doomed", encodeRun(t, r2, nil), nil); rec.Code != 200 {
		t.Fatalf("re-PUT: %d", rec.Code)
	}
	var detail struct {
		Vertices int `json:"vertices"`
	}
	do(t, s, "GET", "/runs?run=doomed", "", &detail)
	if detail.Vertices != r2.NumVertices() {
		t.Fatalf("re-PUT serves %d vertices, want %d", detail.Vertices, r2.NumVertices())
	}
}

func TestDeleteRejections(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	cases := []struct {
		name, target string
		want         int
	}{
		{"missing run", "/runs/absent", 404},
		{"invalid name", "/runs/..evil", 400},
		{"meta-shaped name", "/runs/.hot", 400},
		{"nested path", "/runs/a%2Fb", 400},
	}
	for _, c := range cases {
		var e struct {
			Error string `json:"error"`
		}
		rec := do(t, s, "DELETE", c.target, "", &e)
		if rec.Code != c.want {
			t.Errorf("%s: status %d (want %d), body %s", c.name, rec.Code, c.want, rec.Body.String())
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}

	// A read-only server refuses deletion outright, before looking at the
	// name — the mirror of the ingest 403.
	st, err := store.NewMem(spec.PaperSpec(), "paper")
	if err != nil {
		t.Fatal(err)
	}
	ro, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, ro, "DELETE", "/runs/anything", "", nil); rec.Code != 403 {
		t.Errorf("DELETE on read-only server = %d, want 403", rec.Code)
	}
	// MaxRuns without ingest is a configuration error, not a silent no-op.
	if _, err := New(Config{Store: st, MaxRuns: 5}); err == nil {
		t.Error("New accepted MaxRuns without EnableIngest")
	}
}

// TestRetentionMaxRuns pins the -max-runs sweep: the store never holds
// more than the bound after a PUT, victims fall cold-first then
// LRU-first, and the freshly ingested run is never its own victim.
func TestRetentionMaxRuns(t *testing.T) {
	s, st := newIngestServer(t, Config{MaxRuns: 3})
	sp := spec.PaperSpec()
	put := func(name string) {
		t.Helper()
		r, _ := run.GenerateSized(sp, rand.New(rand.NewSource(int64(len(name)))), 60)
		if rec := do(t, s, "PUT", "/runs/"+name, encodeRun(t, r, nil), nil); rec.Code != 200 {
			t.Fatalf("PUT %s: %d %s", name, rec.Code, rec.Body.String())
		}
	}
	query := func(name string) {
		t.Helper()
		if rec := do(t, s, "GET", "/runs?run="+name, "", nil); rec.Code != 200 {
			t.Fatalf("GET %s: %d", name, rec.Code)
		}
	}
	put("aa")
	put("bb")
	put("cc")
	// Make aa and bb hot (bb most recently used); cc stays cold.
	query("aa")
	query("bb")

	// The 4th run pushes the store to 4: the sweep must delete exactly
	// one, and it must be the cold cc — not the hot pair, and never the
	// run this very PUT just stored.
	put("dd")
	names, err := st.Runs()
	if err != nil || fmt.Sprint(names) != fmt.Sprint([]string{"aa", "bb", "dd"}) {
		t.Fatalf("runs after sweep = %v, %v; want [aa bb dd]", names, err)
	}
	if rec := do(t, s, "GET", "/runs?run=cc", "", nil); rec.Code != 404 {
		t.Fatalf("evicted run still serves: %d", rec.Code)
	}

	// Make dd hot too. Next PUT: no cold runs besides the protected
	// newcomer, so the least recently used cached run (aa) goes.
	query("dd")
	put("ee")
	names, _ = st.Runs()
	if fmt.Sprint(names) != fmt.Sprint([]string{"bb", "dd", "ee"}) {
		t.Fatalf("runs after second sweep = %v; want [bb dd ee] (LRU aa evicted)", names)
	}
	// The evicted run's session is invalidated with it.
	if rec := do(t, s, "GET", "/runs?run=aa", "", nil); rec.Code != 404 {
		t.Fatalf("LRU-evicted run still serves: %d", rec.Code)
	}

	// EnforceMaxRuns is callable directly for deployment-driven
	// retention; shrinking the bound deletes down to it.
	deleted, err := s.EnforceMaxRuns(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("EnforceMaxRuns(1) deleted %v, want 2 runs", deleted)
	}
	if names, _ := st.Runs(); len(names) != 1 {
		t.Fatalf("runs after manual sweep = %v", names)
	}
}

// TestRetentionProtectsInflightIngest: a run whose PUT handler is still
// executing — persisted, maybe acknowledged, but the response not yet
// delivered — must never be a retention victim, even for a sweep
// triggered by a different client's concurrent PUT.
func TestRetentionProtectsInflightIngest(t *testing.T) {
	s, st := newIngestServer(t, Config{MaxRuns: 2})
	sp := spec.PaperSpec()
	for _, name := range []string{"cold1", "cold2"} {
		r, _ := run.GenerateSized(sp, rand.New(rand.NewSource(int64(len(name)))), 60)
		if rec := do(t, s, "PUT", "/runs/"+name, encodeRun(t, r, nil), nil); rec.Code != 200 {
			t.Fatalf("PUT %s: %d", name, rec.Code)
		}
	}
	// Simulate another client's PUT of "fresh" mid-handler: persisted
	// and marked in flight, its own sweep not yet run.
	r, _ := run.GenerateSized(sp, rand.New(rand.NewSource(77)), 60)
	if err := st.PutRun("fresh", r, nil, s.scheme); err != nil {
		t.Fatal(err)
	}
	s.ingestingMu.Lock()
	s.ingesting["fresh"]++
	s.ingestingMu.Unlock()
	// A concurrent sweep (any other PUT's, or deployment-driven) sees 3
	// runs over a bound of 2 — it must evict a cold old run, never the
	// in-flight one, even though "fresh" is cold and unprotected by the
	// caller's own protect list.
	deleted, err := s.EnforceMaxRuns(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || deleted[0] == "fresh" {
		t.Fatalf("sweep deleted %v; the in-flight ingest must survive", deleted)
	}
	names, _ := st.Runs()
	found := false
	for _, n := range names {
		found = found || n == "fresh"
	}
	if !found {
		t.Fatalf("in-flight run missing after sweep: %v", names)
	}
}

// TestInvalidateFencesInflightLoad pins the generation fence: a load
// that is in flight when its name is invalidated must not land its
// stale result in the cache — the next Get goes back to the backend.
func TestInvalidateFencesInflightLoad(t *testing.T) {
	loads := make(chan string, 8)
	gate := make(chan struct{})
	cache := newSessionCache(4, func(name string) (*session, error) {
		loads <- name
		<-gate
		return &session{}, nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cache.Get("x")
	}()
	<-loads // load is in flight
	if !cache.Invalidate("x") {
		t.Fatal("Invalidate did not find the in-flight entry")
	}
	close(gate)
	<-done
	if cs := cache.Stats(); cs.Fenced != 1 || cs.Cached != 0 {
		t.Fatalf("stats after fenced load = %+v, want Fenced=1 Cached=0", cs)
	}
	// The next Get must reload, not serve the fenced result.
	if _, err := cache.Get("x"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-loads: // the reload hit the backend, as it must
	default:
		t.Fatal("Get after a fenced load served the stale session instead of reloading")
	}
	if cs := cache.Stats(); cs.Cached != 1 || cs.Misses != 2 {
		t.Fatalf("stats after reload = %+v, want Cached=1 Misses=2", cs)
	}
}

// TestDeleteLoadRaceStress is the delete-side twin of
// TestIngestNoTornSessions, meaningful under -race: with a one-entry
// cache forcing cold loads, one goroutine cycles PUT -> verify 200 ->
// DELETE -> verify 404 on a hot name while readers hammer it and a
// neighbor. A read may answer 200 (run present or load overlapped the
// delete) or 404 (deleted) but never 5xx, and — the resurrection
// check — immediately after a DELETE response and before the re-PUT,
// the run must be gone, no matter what loads were in flight.
func TestDeleteLoadRaceStress(t *testing.T) {
	s, _ := newIngestServer(t, Config{CacheSize: 1})
	sp := spec.PaperSpec()
	hot, _ := run.GenerateSized(sp, rand.New(rand.NewSource(41)), 90)
	other, _ := run.GenerateSized(sp, rand.New(rand.NewSource(42)), 60)
	docHot := encodeRun(t, hot, nil)
	if rec := do(t, s, "PUT", "/runs/other", encodeRun(t, other, nil), nil); rec.Code != 200 {
		t.Fatalf("seeding other: %d", rec.Code)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				// Alternate the neighbor in to force evictions of "hot",
				// so its reads are cold loads racing the lifecycle.
				name := "hot"
				if i%2 == 1 {
					name = "other"
				}
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/runs?run="+name, nil))
				if rec.Code != 200 && rec.Code != 404 {
					t.Errorf("GET %s: %d %s", name, rec.Code, rec.Body.String())
					return
				}
				if name == "other" && rec.Code != 200 {
					t.Errorf("GET other: %d (an unrelated delete touched it)", rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < 60 && !t.Failed(); i++ {
		if rec := do(t, s, "PUT", "/runs/hot", docHot, nil); rec.Code != 200 {
			t.Fatalf("cycle %d PUT: %d %s", i, rec.Code, rec.Body.String())
		}
		if rec := do(t, s, "GET", "/runs?run=hot", "", nil); rec.Code != 200 {
			t.Fatalf("cycle %d: run missing right after PUT: %d", i, rec.Code)
		}
		if rec := do(t, s, "DELETE", "/runs/hot", "", nil); rec.Code != 200 {
			t.Fatalf("cycle %d DELETE: %d %s", i, rec.Code, rec.Body.String())
		}
		// The linearization point: the DELETE answered, so no load — not
		// even one that was in flight across it — may resurrect the run.
		if rec := do(t, s, "GET", "/runs?run=hot", "", nil); rec.Code != 404 {
			t.Fatalf("cycle %d: run visible after DELETE completed: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	close(done)
	wg.Wait()
}

// TestWarmRestartAfterDelete is the satellite regression: delete a run
// whose session is hot, shut down saving the hot list, and restart
// warm — the restart must come up with the surviving sessions, the
// saved list must not name the deleted run, and a stale list written by
// an older version (or mutated behind the server's back) must cost a
// logged skip, never a wedged startup.
func TestWarmRestartAfterDelete(t *testing.T) {
	dir, st := newTestStore(t)
	s1, err := New(Config{Store: st, CacheSize: 4, EnableIngest: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"beta", "alpha"} {
		if rec := do(t, s1, "GET", "/reachable?run="+name+"&from=a1&to=0", "", nil); rec.Code != 200 {
			t.Fatalf("warmup %s: %d", name, rec.Code)
		}
	}
	// Both sessions are hot; delete beta, then "SIGTERM": SaveHotList.
	if rec := do(t, s1, "DELETE", "/runs/beta", "", nil); rec.Code != 200 {
		t.Fatalf("DELETE beta: %d", rec.Code)
	}
	if err := s1.SaveHotList(); err != nil {
		t.Fatal(err)
	}
	if names, err := st.ReadHotList(); err != nil || fmt.Sprint(names) != "[alpha]" {
		t.Fatalf("hot list after delete = %v, %v; want [alpha] (deleted run pruned)", names, err)
	}

	// Restart warm over a reopened store.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	s2, err := New(Config{Store: st2, CacheSize: 4,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s2.WarmFromHotList(); err != nil || n != 1 {
		t.Fatalf("WarmFromHotList = %d, %v; want 1", n, err)
	}
	if rec := do(t, s2, "GET", "/reachable?run=alpha&from=a1&to=0", "", nil); rec.Code != 200 {
		t.Fatalf("surviving run after warm restart: %d", rec.Code)
	}
	if rec := do(t, s2, "GET", "/runs?run=beta", "", nil); rec.Code != 404 {
		t.Fatalf("deleted run after warm restart = %d, want 404", rec.Code)
	}

	// The hostile variant: a .hot blob naming a deleted run (written
	// behind the store's back, as an older version could have). Warm
	// preload must skip it, log it, and still load the rest.
	if err := st2.Backend().WriteMeta(store.HotListMeta, []byte("ghost\nalpha\n")); err != nil {
		t.Fatal(err)
	}
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	logged = nil
	s3, err := New(Config{Store: st3, CacheSize: 4,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s3.WarmFromHotList()
	if err != nil || n != 1 {
		t.Fatalf("WarmFromHotList with ghost entry = %d, %v; want 1 and no error", n, err)
	}
	found := false
	for _, line := range logged {
		if strings.Contains(line, "ghost") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped ghost entry was not logged: %v", logged)
	}
	if _, err := st3.OpenRun("ghost", label.TCM{}); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ghost unexpectedly exists: %v", err)
	}
}
