// Package server is a concurrent provenance query service over a
// provenance store: an HTTP/JSON API answering reachability and lineage
// queries from stored skeleton labels. It is the serving layer the paper
// motivates — labels are computed once at ingest (store.PutRun) and then
// answer constant-time queries for many concurrent clients. The server
// is backend-agnostic: it speaks to store.Store, which runs over any
// store.Backend (one directory, RAM, or a shard set), so the same
// process can front a local store, an ephemeral in-memory copy, or many
// disks.
//
// Endpoints:
//
//	GET  /healthz              liveness + backend + cache + admission stats
//	GET  /specs                the store's specification (modules, channels)
//	GET  /runs                 stored run names
//	GET  /runs?run=R           one run's size and label statistics
//	PUT  /runs/{name}          ingest one run document (xmlio run XML, data
//	                           items inline); the run is labeled, persisted
//	                           via store.PutRun, and immediately queryable
//	                           (requires Config.EnableIngest)
//	DELETE /runs/{name}        remove a stored run and its label snapshot;
//	                           the very next query for it answers 404
//	                           (requires Config.EnableIngest or
//	                           Config.EnableStream; with streaming it also
//	                           aborts a live stream under the name)
//	GET  /runs/{name}          one run's status: live streaming progress or
//	                           finished-run label statistics
//	POST /runs/{name}/events   append a batch of engine events to a live
//	                           run at an explicit offset; idempotent resume,
//	                           409 on gap or conflict (requires
//	                           Config.EnableStream; see stream.go)
//	POST /runs/{name}/finish   seal a live run into a stored, labeled run
//	GET  /reachable?run=R&from=U&to=V
//	                           one reachability query
//	POST /batch                {"run":R,"pairs":[[U,V],...]} -> {"results":[...]}
//	                           pair elements are vertex references as JSON
//	                           strings ("b2", "12") or bare non-negative
//	                           integers (12); both forms may be mixed in
//	                           one request
//	GET  /lineage?run=R&vertex=V&dir=up|down
//	                           the vertex's upstream or downstream cone
//
// Vertices are addressed by occurrence name ("b2" = second execution of
// module b) or by numeric vertex ID. All handlers are safe for concurrent
// use: sessions are immutable once loaded (see the store package's
// concurrency contract) and shared through an LRU cache with singleflight
// load dedup, so a cache hit answers queries with zero disk I/O.
//
// /batch is the allocation-critical path: request decode, pair
// resolution, batch evaluation and response encode all run in pooled
// per-request scratch (see batchcodec.go), and large batches fan out
// across CPUs through the labeling's parallel batch evaluator
// (Config.BatchParallelism).
//
// Every endpoint except /healthz sits behind an admission-control layer
// (admission.go): a bounded concurrency gate with a bounded wait queue,
// plus optional per-client token-bucket rate limits. Overload answers
// 429 with Retry-After instead of accumulating unbounded in-flight
// work, so cold-cache stampedes and ingest bursts degrade gracefully.
//
// The write path (ingest.go) pairs with warm-restart support:
// SaveHotList persists which sessions were resident at shutdown and
// WarmFromHotList preloads them before a restarted server takes
// traffic, trading a short startup delay for zero cold-load latency on
// the first queries (see cmd/provserve's -warm flag).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/lineage"
	"repro/internal/live"
	"repro/internal/run"
	"repro/internal/store"
)

// Config configures a Server.
type Config struct {
	// Store is the opened provenance store to serve. Required.
	Store *store.Store
	// Scheme labels the specification skeleton when sessions are loaded.
	// Defaults to TCM (constant-time skeleton queries).
	Scheme label.Scheme
	// CacheSize bounds the number of concurrently cached run sessions
	// (LRU eviction beyond it). Defaults to 16.
	CacheSize int
	// MaxBatch bounds the number of pairs accepted by one /batch request.
	// Defaults to 8192.
	MaxBatch int
	// BatchParallelism caps the goroutines answering one /batch
	// request's pairs: batches of at least 1024 pairs are split across
	// up to this many CPUs (smaller ones are answered sequentially —
	// fan-out costs more than it saves). <= 0 uses GOMAXPROCS; 1 forces
	// sequential evaluation.
	BatchParallelism int
	// EnableIngest turns on the write path: PUT /runs/{name} labels and
	// persists posted run documents, and DELETE /runs/{name} removes
	// stored runs. Off by default so a server over a shared or read-only
	// store cannot be written through.
	EnableIngest bool
	// MaxIngestBytes bounds one ingest request body. Defaults to 16 MiB.
	MaxIngestBytes int64
	// EnableStream turns on the streaming ingest subsystem: POST
	// /runs/{name}/events appends engine events to a live per-run
	// session labeled online, POST /runs/{name}/finish seals it into a
	// normal stored run, and queries answer against live sessions
	// transparently (see stream.go). Independent of EnableIngest: a
	// server may accept streams but not documents, or vice versa.
	EnableStream bool
	// CheckpointEvery bounds how many events a live session applies
	// between checkpoints — the replay debt a crash can accumulate.
	// 0 defaults to 256; negative disables periodic checkpointing
	// (recovery then replays the whole event log).
	CheckpointEvery int
	// MaxRuns, when positive, bounds how many runs the store may hold:
	// after each successful ingest the retention sweep deletes
	// least-valuable runs (cold before cached, cached in LRU order —
	// see EnforceMaxRuns) until the bound holds again. 0 disables
	// retention. Requires EnableIngest (the sweep rides the write path).
	MaxRuns int
	// Logf, when set, receives operational log lines (warm-preload
	// skips, deletions, retention sweeps) printf-style. Nil discards
	// them; cmd/provserve passes log.Printf.
	Logf func(format string, args ...any)
	// MaxInflight bounds how many requests execute concurrently across
	// all endpoints but /healthz; excess requests wait in a bounded
	// queue. Defaults to 64.
	MaxInflight int
	// QueueDepth bounds how many requests may wait for an execution
	// slot before new arrivals are shed with 429/Retry-After. Defaults
	// to 2*MaxInflight.
	QueueDepth int
	// RatePerClient, when positive, enforces a per-client token-bucket
	// rate limit (requests per second), keyed by X-Client-ID or remote
	// host. 0 disables rate limiting.
	RatePerClient float64
	// RateBurst is the token bucket's capacity. <= 0 means
	// 2*RatePerClient; values below one token are clamped to 1 (a
	// bucket that can never fill a whole token would reject forever).
	RateBurst float64
	// BreakerThreshold is how many consecutive transient backend
	// failures flip the server into degraded read-only mode (see
	// breaker.go): writes shed with 503 + Retry-After, cache-hit and
	// live-session reads keep answering, cache-miss reads shed. 0
	// defaults to 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the interval between backend health probes
	// while the breaker is open — and the Retry-After clients are told.
	// <= 0 defaults to 500ms.
	BreakerCooldown time.Duration
	// RPQMaxDFAStates caps how many DFA states one POST /rpq
	// evaluation may lazily determinize before the pattern is rejected
	// as pathological (400). <= 0 uses rpq.DefaultMaxDFAStates.
	RPQMaxDFAStates int
}

// Server answers provenance queries over one store. It is an
// http.Handler; all methods are safe for concurrent use.
type Server struct {
	st             *store.Store
	scheme         label.Scheme
	cache          *sessionCache
	maxBatch       int
	batchPar       int
	ingest         bool
	maxIngestBytes int64
	maxRuns        int
	rpqMaxStates   int
	logf           func(format string, args ...any)
	runMu          runLocks
	adm            *admission
	brk            *breaker
	mux            *http.ServeMux

	// Streaming ingest state (nil/zero unless Config.EnableStream):
	// the live-session registry, the skeleton labeling feeding online
	// labelers, and the checkpoint cadence. See stream.go.
	stream     bool
	ckptEvery  int
	live       *live.Registry
	streamSkel label.Labeling
	// streamsExpired counts live sessions the idle-TTL sweep reclaimed
	// (SweepIdleStreams), surfaced in /healthz.
	streamsExpired atomic.Int64

	// ingesting refcounts run names with a PUT handler in flight, from
	// before the document decodes until the response is written. The
	// retention sweep never victimizes these: without it, a concurrent
	// sweep could list another client's just-persisted (cold, unqueried)
	// run and delete it before that client even receives its 200.
	ingestingMu sync.Mutex
	ingesting   map[string]int

	served servedCounters
}

// servedCounters counts admitted requests per endpoint — the
// server-side ground truth a load harness (cmd/provload) diffs across a
// run to cross-check its client-side counts: under overload, responses
// lost in transit appear as a gap between served and completed.
type servedCounters struct {
	healthz, specs, runs, reachable, batch, lineage, ingest, delete atomic.Int64
	events, finish, status, rpq, other                              atomic.Int64
}

// counterFor maps one request to its endpoint counter.
func (c *servedCounters) counterFor(r *http.Request) *atomic.Int64 {
	switch {
	case r.URL.Path == "/healthz":
		return &c.healthz
	case r.URL.Path == "/specs":
		return &c.specs
	case r.URL.Path == "/runs":
		return &c.runs
	case r.URL.Path == "/reachable":
		return &c.reachable
	case r.URL.Path == "/batch":
		return &c.batch
	case r.URL.Path == "/lineage":
		return &c.lineage
	case r.URL.Path == "/rpq":
		return &c.rpq
	case strings.HasPrefix(r.URL.Path, "/runs/"):
		switch {
		case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/events"):
			return &c.events
		case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/finish"):
			return &c.finish
		case r.Method == http.MethodPut:
			return &c.ingest
		case r.Method == http.MethodDelete:
			return &c.delete
		case r.Method == http.MethodGet:
			return &c.status
		}
	}
	return &c.other
}

func (c *servedCounters) snapshot() map[string]int64 {
	return map[string]int64{
		"healthz":   c.healthz.Load(),
		"specs":     c.specs.Load(),
		"runs":      c.runs.Load(),
		"reachable": c.reachable.Load(),
		"batch":     c.batch.Load(),
		"lineage":   c.lineage.Load(),
		"put":       c.ingest.Load(),
		"delete":    c.delete.Load(),
		"events":    c.events.Load(),
		"finish":    c.finish.Load(),
		"status":    c.status.Load(),
		"rpq":       c.rpq.Load(),
		"other":     c.other.Load(),
	}
}

// Served returns the number of requests dispatched per endpoint since
// the server started (admitted requests only — 429s rejected at the
// admission layer are counted in AdmissionState instead).
func (s *Server) Served() map[string]int64 { return s.served.snapshot() }

// session is one cached run: the stored session plus the name index,
// both immutable after load.
type session struct {
	*store.Session
	namer *run.Namer
}

// New builds a Server for the configured store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.Scheme == nil {
		cfg.Scheme = label.TCM{}
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 16
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	if cfg.MaxIngestBytes <= 0 {
		cfg.MaxIngestBytes = 16 << 20
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInflight
	}
	if cfg.MaxRuns > 0 && !cfg.EnableIngest {
		return nil, errors.New("server: Config.MaxRuns requires EnableIngest (retention sweeps ride the write path)")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	s := &Server{
		st:             cfg.Store,
		scheme:         cfg.Scheme,
		maxBatch:       cfg.MaxBatch,
		batchPar:       cfg.BatchParallelism,
		ingest:         cfg.EnableIngest,
		maxIngestBytes: cfg.MaxIngestBytes,
		maxRuns:        cfg.MaxRuns,
		rpqMaxStates:   cfg.RPQMaxDFAStates,
		logf:           cfg.Logf,
		adm:            newAdmission(cfg.MaxInflight, cfg.QueueDepth, cfg.RatePerClient, cfg.RateBurst),
		mux:            http.NewServeMux(),
	}
	s.ingesting = make(map[string]int)
	s.cache = newSessionCache(cfg.CacheSize, s.load)
	// The probe is the cheapest whole-backend read there is: the spec
	// blob exists in every opened store, so a successful read means the
	// substrate answers again.
	s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, func() error {
		rc, err := cfg.Store.Backend().ReadSpec()
		if err == nil {
			rc.Close()
		}
		return err
	}, cfg.Logf)
	if cfg.EnableStream {
		skel, err := cfg.Store.Skeleton(s.scheme)
		if err != nil {
			return nil, fmt.Errorf("server: building skeleton labeling for streaming: %w", err)
		}
		s.stream = true
		s.ckptEvery = cfg.CheckpointEvery
		s.streamSkel = skel
		s.live = live.NewRegistry()
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/specs", s.handleSpecs)
	s.mux.HandleFunc("/runs", s.handleRuns)
	s.mux.HandleFunc("GET /runs/{name}", s.handleRunStatus)
	s.mux.HandleFunc("PUT /runs/{name}", s.handleIngest)
	s.mux.HandleFunc("DELETE /runs/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /runs/{name}/events", s.handleAppendEvents)
	s.mux.HandleFunc("POST /runs/{name}/finish", s.handleFinish)
	s.mux.HandleFunc("/reachable", s.handleReachable)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/lineage", s.handleLineage)
	s.mux.HandleFunc("/rpq", s.handleRPQ)
	return s, nil
}

// ServeHTTP implements http.Handler. /healthz bypasses admission so the
// server stays observable while shedding load; everything else pays the
// admission toll (rate limit + bounded concurrency) before dispatch.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		s.served.healthz.Add(1)
		s.mux.ServeHTTP(w, r)
		return
	}
	release, ok := s.adm.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.served.counterFor(r).Add(1)
	s.mux.ServeHTTP(w, r)
}

// Stats returns the session cache's counters.
func (s *Server) Stats() CacheStats { return s.cache.Stats() }

// AdmissionState returns the admission layer's counters.
func (s *Server) AdmissionState() AdmissionStats { return s.adm.Stats() }

// SaveHotList persists the names of the sessions currently resident in
// the cache (most recently used first) to the store's hot-list meta
// blob, so the next server over the same store can WarmFromHotList.
// Call it on graceful shutdown (cmd/provserve does, under -warm).
func (s *Server) SaveHotList() error { return s.st.WriteHotList(s.cache.Names()) }

// WarmFromHotList preloads the store's saved hot-session list into the
// cache, returning how many sessions loaded. Stale entries (runs since
// deleted, corrupt snapshots) are skipped and logged, never fatal: the
// list is advisory, and a partially warm cache still beats a cold one —
// a .hot blob naming a vanished run must never wedge a restart.
// (Store.WriteHotList prunes deleted names at save time, so skips here
// mean the run vanished after the list was written — e.g. another
// process deleted it, or the list predates this version.) Loads run
// oldest-first so the list's most recently used name ends up at the
// front of the LRU, exactly as it was at shutdown.
func (s *Server) WarmFromHotList() (int, error) {
	names, err := s.st.ReadHotList()
	if err != nil {
		return 0, err
	}
	if len(names) > s.cache.max {
		names = names[:s.cache.max]
	}
	loaded := 0
	for i := len(names) - 1; i >= 0; i-- {
		if _, err := s.cache.Get(names[i]); err == nil {
			loaded++
		} else {
			s.logf("server: warm preload skipping %q: %v", names[i], err)
		}
	}
	return loaded, nil
}

// NewHTTPServer wraps a handler in the http.Server configuration every
// deployment of this service should carry: read/idle timeouts so slow
// or idle clients cannot pin connections forever. ListenAndServe and
// cmd/provserve both build on it, so the timeout policy lives in
// exactly one place.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServe builds a Server and serves it on addr until the
// listener fails.
func ListenAndServe(addr string, cfg Config) error {
	s, err := New(cfg)
	if err != nil {
		return err
	}
	return NewHTTPServer(addr, s).ListenAndServe()
}

// load opens one run from the store's backend; it runs at most once per
// run name at a time (singleflight in the cache) and its result is
// shared by all subsequent cache hits. It holds the run's read lock so
// an in-process ingest can never overwrite the blobs mid-load and hand
// back a torn session (old document, new labels); see ingest.go.
func (s *Server) load(name string) (*session, error) {
	mu := s.runMu.forName(name)
	mu.RLock()
	sess, err := s.st.OpenRun(name, s.scheme)
	mu.RUnlock()
	s.brk.note(err)
	if err != nil {
		return nil, err
	}
	return &session{Session: sess, namer: run.NewNamer(sess.Run)}, nil
}

// vertex resolves a vertex reference; it and the /batch decoder share
// vertexBytes so every endpoint resolves references identically.
func (se *session) vertex(ref string) (dag.VertexID, bool) {
	return se.vertexBytes([]byte(ref))
}

// vertexBytes resolves a vertex reference: an occurrence name ("b2")
// first — so every name the server itself emits resolves, even when
// module names start with digits — falling back to a numeric vertex ID
// (sign-tolerant like the strconv.Atoi path it replaced, without the
// string conversion the /batch hot path cannot afford).
func (se *session) vertexBytes(ref []byte) (dag.VertexID, bool) {
	if len(ref) == 0 {
		return 0, false
	}
	if v, ok := se.namer.VertexBytes(ref); ok {
		return v, true
	}
	digits := ref
	if digits[0] == '+' {
		digits = digits[1:]
	}
	if len(digits) == 0 {
		return 0, false
	}
	id := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		if id = id*10 + int(c-'0'); id >= se.Run.NumVertices() {
			return 0, false
		}
	}
	return dag.VertexID(id), true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	degraded := s.brk.isOpen()
	status := "ok"
	if degraded {
		status = "degraded"
	}
	body := map[string]any{
		"status":    status,
		"degraded":  degraded,
		"breaker":   s.brk.stats(),
		"spec":      s.st.SpecName(),
		"scheme":    s.scheme.Name(),
		"ingest":    s.ingest,
		"stream":    s.stream,
		"store":     s.st.Stat(),
		"cache":     s.cache.Stats(),
		"admission": s.adm.Stats(),
		"served":    s.served.snapshot(),
	}
	if s.stream {
		body["live"] = s.live.Stats()
		body["streams_expired"] = s.streamsExpired.Load()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	sp := s.st.Spec()
	modules := make([]string, sp.NumVertices())
	for v := range modules {
		modules[v] = string(sp.NameOf(dag.VertexID(v)))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":     s.st.SpecName(),
		"vertices": sp.NumVertices(),
		"edges":    sp.NumEdges(),
		"modules":  modules,
	})
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	name := r.URL.Query().Get("run")
	if name == "" {
		if s.brk.isOpen() {
			s.unavailable(w, "degraded mode: backend unavailable, run listing needs it")
			return
		}
		runs, err := s.st.Runs()
		s.brk.note(err)
		if err != nil {
			if store.IsTransient(err) {
				s.unavailable(w, "listing runs: %v", err)
				return
			}
			writeErr(w, http.StatusInternalServerError, "listing runs: %v", err)
			return
		}
		if runs == nil {
			runs = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"runs": runs})
		return
	}
	s.writeRunStatus(w, name)
}

func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	ls, release, sess, ok := s.resolveRun(w, q.Get("run"))
	if !ok {
		return
	}
	if ls != nil {
		defer release()
	}
	from, to := q.Get("from"), q.Get("to")
	if from == "" || to == "" {
		writeErr(w, http.StatusBadRequest, "missing 'from' or 'to' parameter")
		return
	}
	var u, v dag.VertexID
	var okU, okV bool
	if ls != nil {
		u, okU = ls.Vertex(from)
		v, okV = ls.Vertex(to)
	} else {
		u, okU = sess.vertex(from)
		v, okV = sess.vertex(to)
	}
	if !okU || !okV {
		bad := from
		if okU {
			bad = to
		}
		writeErr(w, http.StatusNotFound, "unknown vertex %q", bad)
		return
	}
	var reach, byCtx bool
	if ls != nil {
		reach, byCtx = ls.Reachable(u, v), ls.ByContext(u, v)
	} else {
		reach, byCtx = sess.Labels.Reachable(u, v), sess.Labels.AnsweredByContext(u, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":        q.Get("run"),
		"from":       from,
		"to":         to,
		"reachable":  reach,
		"by_context": byCtx,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	// Bound the body by what maxBatch pairs could plausibly occupy.
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*128+4096)
	sc := getBatchScratch()
	defer sc.release()
	if err := sc.readBody(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if err := parseBatchRequest(sc.body, sc, s.maxBatch); err != nil {
		if errors.Is(err, errBatchTooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"batch exceeds limit of %d pairs", s.maxBatch)
			return
		}
		writeErr(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	ls, release, sess, ok := s.resolveRun(w, string(sc.run))
	if !ok {
		return
	}
	if ls != nil {
		defer release()
	}
	for i := range sc.tokens {
		var u, v dag.VertexID
		var okU, okV bool
		if ls != nil {
			u, okU = liveVertexToken(ls, sc.tokens[i][0])
			v, okV = liveVertexToken(ls, sc.tokens[i][1])
		} else {
			u, okU = sess.vertexToken(sc.tokens[i][0])
			v, okV = sess.vertexToken(sc.tokens[i][1])
		}
		if !okU || !okV {
			bad := sc.tokens[i][0].raw
			if okU {
				bad = sc.tokens[i][1].raw
			}
			writeErr(w, http.StatusNotFound, "pair %d: unknown vertex %q", i, bad)
			return
		}
		sc.pairs = append(sc.pairs, [2]dag.VertexID{u, v})
	}
	if ls != nil {
		// Live sessions answer sequentially: the online labeler is
		// mutable state under the run lock, not a parallel-safe snapshot.
		for _, p := range sc.pairs {
			sc.results = append(sc.results, ls.Reachable(p[0], p[1]))
		}
	} else {
		// The hot path: evaluation and encoding run entirely in the pooled
		// scratch, fanning out across CPUs for large batches.
		sc.results = sess.Labels.AppendReachableBatch(sc.results, sc.pairs, s.batchPar)
	}
	sc.out = appendBatchResponse(sc.out, sc.run, sc.results)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.out)
}

func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	ls, release, sess, ok := s.resolveRun(w, q.Get("run"))
	if !ok {
		return
	}
	if ls != nil {
		defer release()
	}
	ref := q.Get("vertex")
	if ref == "" {
		writeErr(w, http.StatusBadRequest, "missing 'vertex' parameter")
		return
	}
	var v dag.VertexID
	var okV bool
	if ls != nil {
		v, okV = ls.Vertex(ref)
	} else {
		v, okV = sess.vertex(ref)
	}
	if !okV {
		writeErr(w, http.StatusNotFound, "unknown vertex %q", ref)
		return
	}
	dir := q.Get("dir")
	var cone []dag.VertexID
	switch dir {
	case "", "up":
		dir = "up"
		if ls != nil {
			cone = ls.Upstream(v)
		} else {
			cone = lineage.UpstreamByLabels(sess.Labels, v)
		}
	case "down":
		if ls != nil {
			cone = ls.Downstream(v)
		} else {
			cone = lineage.DownstreamByLabels(sess.Labels, v)
		}
	default:
		writeErr(w, http.StatusBadRequest, "dir must be 'up' or 'down', got %q", dir)
		return
	}
	names := make([]string, len(cone))
	for i, u := range cone {
		if ls != nil {
			names[i] = ls.Name(u)
		} else {
			names[i] = sess.namer.Name(u)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":       q.Get("run"),
		"vertex":    ref,
		"direction": dir,
		"count":     len(names),
		"cone":      names,
	})
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
