package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/provdata"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"
)

// newTestStore builds an on-disk store with the paper spec and two runs:
// "alpha" (with data items) and "beta".
func newTestStore(t *testing.T) (string, *store.Store) {
	t.Helper()
	dir := t.TempDir()
	s := spec.PaperSpec()
	st, err := store.Create(dir, s, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i, name := range []string{"alpha", "beta"} {
		r, _ := run.GenerateSized(s, rng, 150+150*i)
		var ann *provdata.Annotation
		if name == "alpha" {
			ann = provdata.RandomItems(r, rng, 1.2, 0.3)
		}
		if err := st.PutRun(name, r, ann, label.TCM{}); err != nil {
			t.Fatalf("PutRun(%s): %v", name, err)
		}
	}
	return dir, st
}

func newTestServer(t *testing.T, st *store.Store, cacheSize, maxBatch int) *Server {
	t.Helper()
	s, err := New(Config{Store: st, CacheSize: cacheSize, MaxBatch: maxBatch})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get issues a request against the handler directly and decodes the JSON
// response body into out (which may be nil).
func do(t *testing.T, s *Server, method, target, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec
}

func TestEndpoints(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 100)

	var health struct {
		Status string `json:"status"`
		Spec   string `json:"spec"`
		Scheme string `json:"scheme"`
	}
	if rec := do(t, s, "GET", "/healthz", "", &health); rec.Code != 200 {
		t.Fatalf("/healthz: %d", rec.Code)
	}
	if health.Status != "ok" || health.Spec != "paper" || health.Scheme != "TCM" {
		t.Fatalf("/healthz = %+v", health)
	}

	var specs struct {
		Name     string   `json:"name"`
		Vertices int      `json:"vertices"`
		Modules  []string `json:"modules"`
	}
	do(t, s, "GET", "/specs", "", &specs)
	if specs.Name != "paper" || specs.Vertices != st.Spec().NumVertices() || len(specs.Modules) != specs.Vertices {
		t.Fatalf("/specs = %+v", specs)
	}

	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, s, "GET", "/runs", "", &runs)
	if len(runs.Runs) != 2 || runs.Runs[0] != "alpha" || runs.Runs[1] != "beta" {
		t.Fatalf("/runs = %+v", runs)
	}

	var detail struct {
		Vertices  int `json:"vertices"`
		DataItems int `json:"data_items"`
		MaxBits   int `json:"max_label_bits"`
	}
	do(t, s, "GET", "/runs?run=alpha", "", &detail)
	if detail.Vertices == 0 || detail.DataItems == 0 || detail.MaxBits == 0 {
		t.Fatalf("/runs?run=alpha = %+v", detail)
	}
}

func TestReachableMatchesGraphSearch(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 100)
	sess, err := st.OpenRun("beta", label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	searcher := dag.NewSearcher(sess.Run.Graph)
	nm := run.NewNamer(sess.Run)
	rng := rand.New(rand.NewSource(3))
	n := sess.Run.NumVertices()
	for q := 0; q < 200; q++ {
		u := dag.VertexID(rng.Intn(n))
		v := dag.VertexID(rng.Intn(n))
		// Alternate between name and numeric-ID addressing.
		from, to := nm.Name(u), fmt.Sprint(int(v))
		var resp struct {
			Reachable bool `json:"reachable"`
		}
		rec := do(t, s, "GET", "/reachable?run=beta&from="+from+"&to="+to, "", &resp)
		if rec.Code != 200 {
			t.Fatalf("query %d: status %d body %s", q, rec.Code, rec.Body.String())
		}
		if want := searcher.ReachableBFS(u, v); resp.Reachable != want {
			t.Fatalf("(%s,%s): got %v want %v", from, to, resp.Reachable, want)
		}
	}
}

func TestBatch(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 8)
	sess, err := st.OpenRun("alpha", label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	searcher := dag.NewSearcher(sess.Run.Graph)
	rng := rand.New(rand.NewSource(5))
	n := sess.Run.NumVertices()
	pairs := make([][2]string, 8)
	want := make([]bool, len(pairs))
	for i := range pairs {
		u := dag.VertexID(rng.Intn(n))
		v := dag.VertexID(rng.Intn(n))
		pairs[i] = [2]string{fmt.Sprint(int(u)), fmt.Sprint(int(v))}
		want[i] = searcher.ReachableBFS(u, v)
	}
	body, _ := json.Marshal(map[string]any{"run": "alpha", "pairs": pairs})
	var resp struct {
		Count   int    `json:"count"`
		Results []bool `json:"results"`
	}
	rec := do(t, s, "POST", "/batch", string(body), &resp)
	if rec.Code != 200 {
		t.Fatalf("/batch: status %d body %s", rec.Code, rec.Body.String())
	}
	if resp.Count != len(pairs) {
		t.Fatalf("count = %d, want %d", resp.Count, len(pairs))
	}
	for i := range want {
		if resp.Results[i] != want[i] {
			t.Fatalf("pair %d (%v): got %v want %v", i, pairs[i], resp.Results[i], want[i])
		}
	}
}

func TestLineage(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 100)
	sess, err := st.OpenRun("beta", label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	nm := run.NewNamer(sess.Run)
	// The run's sink depends on everything upstream; check count against
	// a direct graph traversal for a handful of vertices.
	for _, v := range []dag.VertexID{0, dag.VertexID(sess.Run.NumVertices() / 2), dag.VertexID(sess.Run.NumVertices() - 1)} {
		for _, dir := range []string{"up", "down"} {
			var resp struct {
				Count int      `json:"count"`
				Cone  []string `json:"cone"`
			}
			rec := do(t, s, "GET", "/lineage?run=beta&dir="+dir+"&vertex="+nm.Name(v), "", &resp)
			if rec.Code != 200 {
				t.Fatalf("lineage(%d,%s): status %d", v, dir, rec.Code)
			}
			var want int
			if dir == "up" {
				want = len(coneSize(sess.Run.Graph, v, true))
			} else {
				want = len(coneSize(sess.Run.Graph, v, false))
			}
			if resp.Count != want || len(resp.Cone) != want {
				t.Fatalf("lineage(%s,%s): got %d want %d", nm.Name(v), dir, resp.Count, want)
			}
		}
	}
}

// coneSize is a reference BFS cone (excluding the start vertex).
func coneSize(g *dag.Graph, v dag.VertexID, reverse bool) []dag.VertexID {
	seen := make([]bool, g.NumVertices())
	seen[v] = true
	queue := []dag.VertexID{v}
	var out []dag.VertexID
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		next := g.Out(x)
		if reverse {
			next = g.In(x)
		}
		for _, w := range next {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
				queue = append(queue, w)
			}
		}
	}
	return out
}

func TestMalformedRequests(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 4)
	cases := []struct {
		method, target, body string
		want                 int
	}{
		{"GET", "/reachable", "", 400},                             // missing run
		{"GET", "/reachable?run=alpha", "", 400},                   // missing from/to
		{"GET", "/reachable?run=nosuch&from=a1&to=h1", "", 404},    // unknown run
		{"GET", "/reachable?run=..%2Fspec&from=a1&to=h1", "", 400}, // invalid run name, not 500
		{"GET", "/reachable?run=alpha&from=zz9&to=a1", "", 404},    // unknown vertex
		{"GET", "/reachable?run=alpha&from=999999&to=a1", "", 404}, // ID out of range
		{"GET", "/runs?run=nosuch", "", 404},
		{"POST", "/batch", "{not json", 400},
		{"POST", "/batch", `{"run":"alpha","pairs":[["a1","h1"],["a1","h1"],["a1","h1"],["a1","h1"],["a1","h1"]]}`, 413},
		// An over-limit body is 413 (MaxBytesReader), not a generic 400.
		{"POST", "/batch", `{"run":"alpha","pairs":[["` + strings.Repeat("x", 8192) + `","h1"]]}`, 413},
		{"POST", "/batch", `{"run":"alpha","pairs":[["a1","zz9"]]}`, 404},
		{"GET", "/batch", "", 405},
		{"POST", "/reachable?run=alpha&from=a1&to=h1", "", 405},
		{"GET", "/lineage?run=alpha", "", 400},
		{"GET", "/lineage?run=alpha&vertex=a1&dir=sideways", "", 400},
		{"GET", "/lineage?run=alpha&vertex=zz9", "", 404},
	}
	for _, c := range cases {
		var e struct {
			Error string `json:"error"`
		}
		rec := do(t, s, c.method, c.target, c.body, &e)
		if rec.Code != c.want {
			t.Errorf("%s %s: status %d (want %d), body %s", c.method, c.target, rec.Code, c.want, rec.Body.String())
		}
		if e.Error == "" {
			t.Errorf("%s %s: no error message in %s", c.method, c.target, rec.Body.String())
		}
	}
}

// TestCacheHitMissEviction drives the LRU through hit, miss and eviction
// and proves cache hits do zero disk I/O by deleting the store's run
// files after warming the cache.
func TestCacheHitMissEviction(t *testing.T) {
	dir, st := newTestStore(t)
	s := newTestServer(t, st, 1, 100) // capacity 1 forces eviction

	query := func(runName string) int {
		rec := do(t, s, "GET", "/reachable?run="+runName+"&from=a1&to=0", "", nil)
		return rec.Code
	}
	if code := query("alpha"); code != 200 { // miss, load
		t.Fatalf("alpha: %d", code)
	}
	if code := query("alpha"); code != 200 { // hit
		t.Fatalf("alpha again: %d", code)
	}
	st1 := s.Stats()
	if st1.Misses != 1 || st1.Hits != 1 || st1.Evictions != 0 || st1.Cached != 1 {
		t.Fatalf("after warm: %+v", st1)
	}

	if code := query("beta"); code != 200 { // miss; successful load evicts alpha
		t.Fatalf("beta: %d", code)
	}
	st2 := s.Stats()
	if st2.Misses != 2 || st2.Evictions != 1 || st2.Cached != 1 {
		t.Fatalf("after eviction: %+v", st2)
	}

	// Remove the run files: cache hits must keep working, misses must
	// fail — and a failed load must not evict the live session.
	if err := os.RemoveAll(filepath.Join(dir, "runs")); err != nil {
		t.Fatal(err)
	}
	if code := query("beta"); code != 200 {
		t.Fatalf("cached beta after file removal: %d (cache hit touched disk)", code)
	}
	if code := query("alpha"); code != 404 { // miss -> disk -> not found
		t.Fatalf("alpha after file removal: %d, want 404", code)
	}
	if code := query("beta"); code != 200 {
		t.Fatalf("beta after failed alpha load: %d (failed load evicted a live session)", code)
	}
	st3 := s.Stats()
	if st3.Evictions != 1 || st3.Cached != 1 {
		t.Fatalf("after failed load: %+v", st3)
	}
}

// TestSingleflight verifies that concurrent Gets for the same key
// trigger exactly one load.
func TestSingleflight(t *testing.T) {
	loads := 0
	started := make(chan struct{})
	release := make(chan struct{})
	c := newSessionCache(4, func(name string) (*session, error) {
		loads++
		close(started)
		<-release
		return &session{}, nil
	})

	var wg sync.WaitGroup
	results := make([]*session, 16)
	wg.Add(1)
	go func() { defer wg.Done(); results[0], _ = c.Get("x") }()
	<-started // the first load is in flight
	for i := 1; i < len(results); i++ {
		i := i
		wg.Add(1)
		go func() { defer wg.Done(); results[i], _ = c.Get("x") }()
	}
	close(release)
	wg.Wait()
	if loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
	for i, r := range results {
		if r != results[0] || r == nil {
			t.Fatalf("waiter %d got a different session", i)
		}
	}
}

// TestConcurrentServer hammers every endpoint from many goroutines with
// a cache small enough to force constant eviction churn; run under
// -race this is the serving layer's concurrency audit.
func TestConcurrentServer(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 1, 100)
	runs := []string{"alpha", "beta"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for q := 0; q < 100; q++ {
				runName := runs[rng.Intn(len(runs))]
				switch q % 4 {
				case 0:
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, httptest.NewRequest("GET",
						fmt.Sprintf("/reachable?run=%s&from=%d&to=%d", runName, rng.Intn(100), rng.Intn(100)), nil))
					if rec.Code != 200 {
						t.Errorf("reachable: %d", rec.Code)
						return
					}
				case 1:
					body, _ := json.Marshal(map[string]any{
						"run":   runName,
						"pairs": [][2]string{{fmt.Sprint(rng.Intn(100)), fmt.Sprint(rng.Intn(100))}},
					})
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, httptest.NewRequest("POST", "/batch", strings.NewReader(string(body))))
					if rec.Code != 200 {
						t.Errorf("batch: %d", rec.Code)
						return
					}
				case 2:
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, httptest.NewRequest("GET",
						fmt.Sprintf("/lineage?run=%s&vertex=%d", runName, rng.Intn(100)), nil))
					if rec.Code != 200 {
						t.Errorf("lineage: %d", rec.Code)
						return
					}
				default:
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
					if rec.Code != 200 {
						t.Errorf("healthz: %d", rec.Code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestServerAllBackends serves the same workload from fs-, mem- and
// shard-backed stores: the server is backend-agnostic by construction
// (it only sees store.Store), and /healthz reports which substrate is
// underneath, including per-shard stats.
func TestServerAllBackends(t *testing.T) {
	s := spec.PaperSpec()
	backends := []struct {
		kind string
		make func(t *testing.T) *store.Store
	}{
		{"fs", func(t *testing.T) *store.Store {
			st, err := store.Create(t.TempDir(), s, "paper")
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
		{"mem", func(t *testing.T) *store.Store {
			st, err := store.NewMem(s, "paper")
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
		{"shard", func(t *testing.T) *store.Store {
			st, err := store.CreateSharded([]string{t.TempDir(), t.TempDir()}, s, "paper")
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
	}
	for _, bk := range backends {
		bk := bk
		t.Run(bk.kind, func(t *testing.T) {
			st := bk.make(t)
			rng := rand.New(rand.NewSource(13))
			for _, name := range []string{"alpha", "beta"} {
				r, _ := run.GenerateSized(s, rng, 150)
				if err := st.PutRun(name, r, nil, label.TCM{}); err != nil {
					t.Fatalf("PutRun(%s): %v", name, err)
				}
			}
			srv := newTestServer(t, st, 4, 100)

			var health struct {
				Status string      `json:"status"`
				Store  store.Stats `json:"store"`
			}
			if rec := do(t, srv, "GET", "/healthz", "", &health); rec.Code != 200 {
				t.Fatalf("/healthz: %d", rec.Code)
			}
			if health.Status != "ok" || health.Store.Kind != bk.kind {
				t.Fatalf("/healthz = %+v, want store kind %q", health, bk.kind)
			}
			if bk.kind == "shard" && len(health.Store.Shards) != 2 {
				t.Fatalf("/healthz shard stats = %+v, want 2 children", health.Store)
			}

			var runs struct {
				Runs []string `json:"runs"`
			}
			do(t, srv, "GET", "/runs", "", &runs)
			if len(runs.Runs) != 2 || runs.Runs[0] != "alpha" || runs.Runs[1] != "beta" {
				t.Fatalf("/runs = %+v", runs)
			}

			var reach struct {
				Reachable bool `json:"reachable"`
			}
			if rec := do(t, srv, "GET", "/reachable?run=beta&from=a1&to=h1", "", &reach); rec.Code != 200 || !reach.Reachable {
				t.Fatalf("/reachable = %d %+v, want 200 true", rec.Code, reach)
			}
			if rec := do(t, srv, "GET", "/reachable?run=missing&from=a1&to=h1", "", nil); rec.Code != 404 {
				t.Fatalf("missing run over %s backend = %d, want 404", bk.kind, rec.Code)
			}
		})
	}
}

// TestBatchNumericPairs verifies the /batch decoder's second accepted
// form — bare integers — and that mixed forms answer identically to the
// all-strings form.
func TestBatchNumericPairs(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 100)
	sess, err := st.OpenRun("beta", label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	nm := run.NewNamer(sess.Run)
	rng := rand.New(rand.NewSource(17))
	n := sess.Run.NumVertices()
	type resp struct {
		Count   int    `json:"count"`
		Results []bool `json:"results"`
	}
	var pairsStr, pairsMixed []string
	for i := 0; i < 12; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		pairsStr = append(pairsStr, fmt.Sprintf(`["%d","%d"]`, u, v))
		switch i % 3 {
		case 0:
			pairsMixed = append(pairsMixed, fmt.Sprintf(`[%d,%d]`, u, v))
		case 1:
			pairsMixed = append(pairsMixed, fmt.Sprintf(`[%d,"%s"]`, u, nm.Name(dag.VertexID(v))))
		default:
			pairsMixed = append(pairsMixed, fmt.Sprintf(`["%s",%d]`, nm.Name(dag.VertexID(u)), v))
		}
	}
	var rs, rm resp
	recS := do(t, s, "POST", "/batch", `{"run":"beta","pairs":[`+strings.Join(pairsStr, ",")+`]}`, &rs)
	recM := do(t, s, "POST", "/batch", `{"run":"beta","pairs":[`+strings.Join(pairsMixed, ",")+`]}`, &rm)
	if recS.Code != 200 || recM.Code != 200 {
		t.Fatalf("statuses %d, %d; bodies %s / %s", recS.Code, recM.Code, recS.Body, recM.Body)
	}
	if rs.Count != 12 || rm.Count != 12 {
		t.Fatalf("counts %d, %d", rs.Count, rm.Count)
	}
	for i := range rs.Results {
		if rs.Results[i] != rm.Results[i] {
			t.Fatalf("pair %d: string form %v, mixed form %v", i, rs.Results[i], rm.Results[i])
		}
	}
	// Numeric IDs out of range are 404, like their string twins.
	if rec := do(t, s, "POST", "/batch", `{"run":"beta","pairs":[[999999,0]]}`, nil); rec.Code != 404 {
		t.Fatalf("out-of-range numeric ID: %d, want 404", rec.Code)
	}
}

// TestBatchParallel answers one large batch with fan-out enabled and
// checks it against the sequential answers pair by pair.
func TestBatchParallel(t *testing.T) {
	_, st := newTestStore(t)
	seq, err := New(Config{Store: st, MaxBatch: 5000, BatchParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Config{Store: st, MaxBatch: 5000, BatchParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := st.OpenRun("alpha", label.TCM{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	n := sess.Run.NumVertices()
	var sb strings.Builder
	sb.WriteString(`{"run":"alpha","pairs":[`)
	const pairs = 3000 // above the 1024 fan-out threshold
	for i := 0; i < pairs; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d]", rng.Intn(n), rng.Intn(n))
	}
	sb.WriteString(`]}`)
	type resp struct {
		Count   int    `json:"count"`
		Results []bool `json:"results"`
	}
	var rSeq, rPar resp
	if rec := do(t, seq, "POST", "/batch", sb.String(), &rSeq); rec.Code != 200 {
		t.Fatalf("sequential: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, par, "POST", "/batch", sb.String(), &rPar); rec.Code != 200 {
		t.Fatalf("parallel: %d %s", rec.Code, rec.Body)
	}
	if rSeq.Count != pairs || rPar.Count != pairs {
		t.Fatalf("counts %d, %d, want %d", rSeq.Count, rPar.Count, pairs)
	}
	for i := range rSeq.Results {
		if rSeq.Results[i] != rPar.Results[i] {
			t.Fatalf("pair %d: sequential %v, parallel %v", i, rSeq.Results[i], rPar.Results[i])
		}
	}
}

// TestRunDetailSnapshotInfo checks /runs?run=R reports which snapshot
// codec backs the stored labels.
func TestRunDetailSnapshotInfo(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 100)
	var detail struct {
		SnapshotVersion string `json:"snapshot_version"`
		SnapshotBytes   int    `json:"snapshot_bytes"`
	}
	do(t, s, "GET", "/runs?run=alpha", "", &detail)
	if detail.SnapshotVersion != "SKL2" || detail.SnapshotBytes <= 0 {
		t.Fatalf("snapshot info = %+v, want SKL2 with positive size", detail)
	}
}

// TestVertexRefEquivalence pins that /reachable and /batch resolve the
// same reference forms identically (shared resolver), including the
// sign-tolerant numeric fallback strconv.Atoi used to provide.
func TestVertexRefEquivalence(t *testing.T) {
	_, st := newTestStore(t)
	s := newTestServer(t, st, 4, 100)
	for _, ref := range []string{"a1", "12", "+12", "007", "-3", "zz9", ""} {
		var single struct {
			Reachable *bool `json:"reachable"`
		}
		recG := do(t, s, "GET", "/reachable?run=alpha&from="+url.QueryEscape(ref)+"&to=0", "", &single)
		body, _ := json.Marshal(map[string]any{"run": "alpha", "pairs": [][2]string{{ref, "0"}}})
		recB := do(t, s, "POST", "/batch", string(body), nil)
		okG := recG.Code == 200
		okB := recB.Code == 200
		if ref == "" {
			// GET reports a missing parameter (400); /batch carries an
			// explicit empty string (404). Both reject; codes differ.
			okG = recG.Code == 400
			okB = recB.Code == 404
			if !okG || !okB {
				t.Errorf("empty ref: GET %d, batch %d", recG.Code, recB.Code)
			}
			continue
		}
		if okG != okB {
			t.Errorf("ref %q: GET /reachable %d but /batch %d — endpoints resolve differently", ref, recG.Code, recB.Code)
		}
	}
}

// TestServedCounters pins the per-endpoint served counters /healthz
// exposes for the load harness: admitted requests increment exactly one
// endpoint counter, and admission rejections increment none.
func TestServedCounters(t *testing.T) {
	_, st := newTestStore(t)
	defer st.Close()
	s := newTestServer(t, st, 4, 64)

	do(t, s, http.MethodGet, "/reachable?run=alpha&from=0&to=1", "", nil)
	do(t, s, http.MethodGet, "/reachable?run=alpha&from=1&to=0", "", nil)
	do(t, s, http.MethodPost, "/batch", `{"run":"alpha","pairs":[[0,1]]}`, nil)
	do(t, s, http.MethodGet, "/runs", "", nil)
	do(t, s, http.MethodGet, "/specs", "", nil)
	do(t, s, http.MethodGet, "/lineage?run=alpha&vertex=0&dir=down", "", nil)
	// A rejected method still counts: the counter tracks dispatch, not
	// success.
	do(t, s, http.MethodDelete, "/runs/alpha", "", nil)      // 403: ingest off
	do(t, s, http.MethodGet, "/runs/alpha", "", nil)         // status endpoint
	do(t, s, http.MethodPost, "/runs/alpha/events", "", nil) // 403: stream off
	do(t, s, http.MethodPost, "/runs/alpha/finish", "", nil) // 403: stream off
	do(t, s, http.MethodPost, "/rpq", `{"run":"alpha","from":"0","to":"1","pattern":".*"}`, nil)
	do(t, s, http.MethodPost, "/rpq", `{"run":"alpha","from":"0","to":"1","pattern":"((("}`, nil) // 400 still counts

	var health struct {
		Served map[string]int64 `json:"served"`
	}
	do(t, s, http.MethodGet, "/healthz", "", &health)
	want := map[string]int64{
		"reachable": 2, "batch": 1, "runs": 1, "specs": 1,
		"lineage": 1, "delete": 1, "healthz": 1, "put": 0, "other": 0,
		"status": 1, "events": 1, "finish": 1, "rpq": 2,
	}
	for k, v := range want {
		if health.Served[k] != v {
			t.Errorf("served[%s] = %d, want %d (all: %v)", k, health.Served[k], v, health.Served)
		}
	}
	if got := s.Served()["reachable"]; got != 2 {
		t.Errorf("Served()[reachable] = %d, want 2", got)
	}
}
