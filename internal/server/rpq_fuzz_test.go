package server

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"fmt"
	"repro/internal/dag"
	"repro/internal/label"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/store"

	"repro/internal/rpq"
)

// FuzzServerRPQ throws hostile bodies at the path-query endpoint:
// whatever the bytes, POST /rpq must answer 200, 4xx or 413 — never
// 5xx, never a panic. Pathological-but-parseable patterns whose
// determinization would blow up must come back as 400 via the DFA
// state budget, not as runaway memory. A 200 must carry a decodable
// verdict. Mirrors FuzzIngestRun one endpoint over.
func FuzzServerRPQ(f *testing.F) {
	sp := spec.PaperSpec()
	st, err := store.NewMem(sp, "paper")
	if err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	r, _ := run.GenerateSized(sp, rng, 80)
	if err := st.PutRun("r1", r, nil, label.TCM{}); err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Store: st})
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: well-formed requests, wrong-shape JSON, raw garbage, and a
	// state-budget torture pattern (the (a|b)* a .^k family needs ~2^k
	// DFA states).
	f.Add(`{"run":"r1","from":"0","to":"1","pattern":".*"}`)
	f.Add(`{"run":"r1","from":"0","to":"1","pattern":"()"}`)
	f.Add(`{"run":"r1","from":"0","to":"1","pattern":"(a|b)* d"}`)
	f.Add(`{"run":"r1","from":"0","to":"1","pattern":"(a|b)* a . . . . . . . . . . . . . ."}`)
	f.Add(`{"run":"r1","from":"0","to":"1","pattern":"((((("}`)
	f.Add(`{"run":"r1","from":"0","to":"1","pattern":"[a-z]{3}"}`)
	f.Add(`{"run":"nosuchrun","from":"0","to":"1","pattern":"."}`)
	f.Add(`{"run":"r1","from":"-1","to":"99999","pattern":"."}`)
	f.Add(`{"run":"r1"}`)
	f.Add(`{"pattern":42}`)
	f.Add(`not json at all`)
	f.Add(``)
	f.Add(`{"run":"r1","from":"0","to":"1","pattern":"` + strings.Repeat("a ", 300) + `"}`)

	f.Fuzz(func(t *testing.T, body string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/rpq", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		s.ServeHTTP(rec, req)
		switch {
		case rec.Code >= 500:
			t.Fatalf("/rpq answered %d for a client-supplied body %.80q: %s", rec.Code, body, rec.Body.String())
		case rec.Code == 200:
			if !strings.Contains(rec.Body.String(), `"match":`) {
				t.Fatalf("/rpq answered 200 without a verdict: %s", rec.Body.String())
			}
		}
	})
}

// TestRPQStateBudgetOverWire pins the pathological-pattern contract at
// the HTTP layer: an evaluation that exceeds the DFA state budget is a
// 400 naming the budget, not a 500 and not a hang. The budget is set
// to one state — only the start subset fits, so the first product step
// over any real edge trips it deterministically.
func TestRPQStateBudgetOverWire(t *testing.T) {
	sp := spec.PaperSpec()
	st, err := store.NewMem(sp, "paper")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	r, _ := run.GenerateSized(sp, rng, 60)
	if err := st.PutRun("r1", r, nil, label.TCM{}); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Store: st, RPQMaxDFAStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Any edge (u, v) will do: pattern "." steps the DFA from the start
	// subset to a distinct accept subset, the second state.
	var u, v dag.VertexID
	found := false
	for x := 0; x < r.NumVertices() && !found; x++ {
		if out := r.Graph.Out(dag.VertexID(x)); len(out) > 0 {
			u, v, found = dag.VertexID(x), out[0], true
		}
	}
	if !found {
		t.Fatal("generated run has no edges")
	}
	body := fmt.Sprintf(`{"run":"r1","from":"%d","to":"%d","pattern":"."}`, u, v)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/rpq", strings.NewReader(body)))
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "DFA states") {
		t.Fatalf("budget-1 eval: status %d body %s, want 400 naming the DFA state budget", rec.Code, rec.Body.String())
	}
	// The default budget answers the same query fine.
	s2, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rpq.DefaultMaxDFAStates < 16 {
		t.Fatalf("DefaultMaxDFAStates = %d, suspiciously small", rpq.DefaultMaxDFAStates)
	}
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest("POST", "/rpq", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("default budget: status %d body %s", rec.Code, rec.Body.String())
	}
}
