package server

import (
	"errors"
	"io"
	"io/fs"
	"net/http"
	"os"
	"strconv"

	"repro/internal/dag"
	"repro/internal/events"
	"repro/internal/live"
	"repro/internal/run"
	"repro/internal/store"
)

// stream.go is the server's streaming ingest path (Config.EnableStream):
// POST /runs/{name}/events appends engine events to a live per-run
// session labeled online by internal/live, POST /runs/{name}/finish
// seals the session into a normal stored run, and GET /runs/{name}
// reports either side's status. Query endpoints answer against the live
// session transparently whenever one exists (resolveRun), so a client
// can interrogate a run while the workflow is still executing.
//
// Concurrency reuses the write path's striped per-run-name locks:
// appends, finishes and recoveries hold the write side, queries against
// a live session hold the read side for the whole answer (the online
// labeler mutates under appends, unlike the immutable stored sessions),
// and stored-session queries keep their existing lock-free cache-hit
// path. Crash recovery is lazy: the first append, finish or query for a
// run that has durable stream state but no registered session rebuilds
// it from the checkpoint and event-log tail (live.Recover). When a run
// is both stored and has leftover stream state, the stored run wins and
// the stale stream state is discarded — Finish persists the run before
// cleaning the log, so its crash window leaves exactly that pair.

// maxEventLine bounds one event-log line accepted from the wire; the
// longest legitimate record is two decimal ints plus a module name, so
// 4 KiB is generous without letting one token balloon.
const maxEventLine = 4096

// resolveRun resolves a run name for a query endpoint: the live session
// when one exists (returned with its read lock held; call release when
// done answering), the cached stored session otherwise. A cache miss on
// a streaming server probes durable stream state and resurrects the
// live session from it before answering 404. Exactly one of the session
// returns is non-nil on ok.
func (s *Server) resolveRun(w http.ResponseWriter, name string) (*live.Session, func(), *session, bool) {
	if name == "" {
		writeErr(w, http.StatusBadRequest, "missing 'run' parameter")
		return nil, nil, nil, false
	}
	if err := store.ValidRunName(name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return nil, nil, nil, false
	}
	if s.stream {
		if ls, release := s.liveLocked(name); ls != nil {
			ls.Touch()
			return ls, release, nil, true
		}
	}
	if s.brk.isOpen() {
		// Degraded read-only mode: resident sessions answer at full
		// fidelity, everything else is shed — a cache miss here would
		// send a query to a backend known to be failing.
		if sess, ok := s.cache.Peek(name); ok {
			return nil, nil, sess, true
		}
		s.unavailable(w, "degraded mode: run %q is not resident and the storage backend is unavailable", name)
		return nil, nil, nil, false
	}
	sess, err := s.cache.Get(name)
	if err == nil {
		return nil, nil, sess, true
	}
	if !errors.Is(err, os.ErrNotExist) {
		if store.IsTransient(err) {
			s.unavailable(w, "loading run %q: %v", name, err)
			return nil, nil, nil, false
		}
		writeErr(w, http.StatusInternalServerError, "loading run %q: %v", name, err)
		return nil, nil, nil, false
	}
	if s.stream {
		ls, release, rerr := s.resurrect(name)
		if rerr != nil {
			s.brk.note(rerr)
			if store.IsTransient(rerr) {
				s.unavailable(w, "recovering stream %q: %v", name, rerr)
				return nil, nil, nil, false
			}
			writeErr(w, http.StatusInternalServerError, "recovering stream %q: %v", name, rerr)
			return nil, nil, nil, false
		}
		if ls != nil {
			ls.Touch()
			return ls, release, nil, true
		}
		// resurrect found a stored run instead of stream state: a PUT or
		// finish landed after our cache miss. Load it.
		if sess, err := s.cache.Get(name); err == nil {
			return nil, nil, sess, true
		}
	}
	writeErr(w, http.StatusNotFound, "unknown run %q", name)
	return nil, nil, nil, false
}

// liveLocked returns name's live session with its stripe read lock
// held, or (nil, nil) after releasing the lock. Holding the read side
// across the whole query keeps appends (write side) from mutating the
// labeler mid-answer.
func (s *Server) liveLocked(name string) (*live.Session, func()) {
	mu := s.runMu.forName(name)
	mu.RLock()
	if ls := s.live.Get(name); ls != nil {
		return ls, mu.RUnlock
	}
	mu.RUnlock()
	return nil, nil
}

// resurrect rebuilds a live session from durable stream state under the
// run's write lock, registering it and returning it with that lock
// still held. It returns (nil, nil, nil) when the run has no stream
// state to recover — including when a stored run exists (store wins;
// the caller should load that instead).
func (s *Server) resurrect(name string) (*live.Session, func(), error) {
	mu := s.runMu.forName(name)
	mu.Lock()
	if ls := s.live.Get(name); ls != nil {
		// Another request resurrected it while we waited for the lock.
		return ls, mu.Unlock, nil
	}
	if s.runStored(name) {
		mu.Unlock()
		return nil, nil, nil
	}
	ls, err := live.Recover(s.st, name, s.streamSkel, s.live.Gauges())
	if err != nil {
		mu.Unlock()
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	s.logf("server: recovered live stream %q at sequence %d", name, ls.Seq())
	s.live.Put(name, ls)
	return ls, mu.Unlock, nil
}

// runStored reports whether a stored run document exists for name,
// bypassing the session cache (a probe, not a load).
func (s *Server) runStored(name string) bool {
	rc, err := s.st.Backend().ReadRun(name)
	if err != nil {
		return false
	}
	rc.Close()
	return true
}

func (s *Server) handleAppendEvents(w http.ResponseWriter, r *http.Request) {
	if !s.stream {
		writeErr(w, http.StatusForbidden,
			"streaming is disabled on this server (start it with streaming enabled to accept POST /runs/{name}/events)")
		return
	}
	name := r.PathValue("name")
	if err := store.ValidRunName(name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.brk.isOpen() {
		s.unavailable(w, "degraded mode: the storage backend is unavailable, appends are disabled")
		return
	}
	offset := -1
	if raw := r.URL.Query().Get("offset"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "offset must be a non-negative integer, got %q", raw)
			return
		}
		offset = v
	}
	// Shield the name from retention sweeps while the append executes,
	// exactly like PUT: a sweep must not delete a run mid-write.
	s.ingestingMu.Lock()
	s.ingesting[name]++
	s.ingestingMu.Unlock()
	defer func() {
		s.ingestingMu.Lock()
		if s.ingesting[name]--; s.ingesting[name] <= 0 {
			delete(s.ingesting, name)
		}
		s.ingestingMu.Unlock()
	}()
	// Parse before taking the run lock: a slow client body must not
	// block queries. The event count cap is what the byte cap implies
	// (every record is several bytes), so neither bound is the weak one.
	r.Body = http.MaxBytesReader(w, r.Body, s.maxIngestBytes)
	evs, err := events.ReadLogLimits(r.Body, maxEventLine, int(s.maxIngestBytes/8))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				"event batch exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "malformed event log: %v", err)
		return
	}

	mu := s.runMu.forName(name)
	mu.Lock()
	defer mu.Unlock()
	ls := s.live.Get(name)
	if ls != nil && ls.Broken() {
		// A storage failure left the durable tail unknown; drop the
		// session and rebuild from disk. The client's offset-based resume
		// re-sends anything the partial append lost.
		s.live.Remove(name)
		ls = nil
	}
	if ls == nil {
		if s.runStored(name) {
			writeErr(w, http.StatusConflict, "run %q is already finished", name)
			return
		}
		switch recovered, err := live.Recover(s.st, name, s.streamSkel, s.live.Gauges()); {
		case err == nil:
			s.logf("server: recovered live stream %q at sequence %d", name, recovered.Seq())
			ls = recovered
		case errors.Is(err, fs.ErrNotExist):
			ls = live.NewSession(s.st, name, s.streamSkel, s.live.Gauges())
		default:
			s.brk.note(err)
			if store.IsTransient(err) {
				s.unavailable(w, "recovering stream %q: %v", name, err)
				return
			}
			writeErr(w, http.StatusInternalServerError, "recovering stream %q: %v", name, err)
			return
		}
		s.live.Put(name, ls)
	}
	ls.Touch()
	if offset < 0 {
		offset = ls.Seq()
	}
	applied, err := ls.Append(evs, offset)
	if err != nil {
		var evErr *live.EventError
		if errors.Is(err, live.ErrGap) || errors.Is(err, live.ErrConflict) || errors.As(err, &evErr) {
			// The response carries the applied sequence so a resuming
			// client knows exactly where to continue from.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": err.Error(), "run": name, "seq": ls.Seq(),
			})
			return
		}
		s.brk.note(err)
		if store.IsTransient(err) {
			// The failed call had no side effect (the transient contract),
			// so the session is intact and the client may simply retry the
			// batch at the same offset.
			s.unavailable(w, "appending to stream %q: %v", name, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "appending to stream %q: %v", name, err)
		return
	}
	s.brk.note(nil)
	if s.ckptEvery > 0 && ls.SinceCheckpoint() >= s.ckptEvery {
		// Checkpoint failure never fails the append — the events are
		// already durable in the log; only the replay bound suffers.
		if err := ls.Checkpoint(); err != nil {
			s.brk.note(err)
			s.logf("server: checkpointing stream %q: %v", name, err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":      name,
		"applied":  applied,
		"seq":      ls.Seq(),
		"vertices": ls.NumVertices(),
		"copies":   ls.NumCopies(),
	})
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	if !s.stream {
		writeErr(w, http.StatusForbidden,
			"streaming is disabled on this server (start it with streaming enabled to accept POST /runs/{name}/finish)")
		return
	}
	name := r.PathValue("name")
	if err := store.ValidRunName(name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.brk.isOpen() {
		s.unavailable(w, "degraded mode: the storage backend is unavailable, finish is disabled")
		return
	}
	// Shield the freshly stored run from the retention sweep until the
	// 200 is written, like PUT does for its run.
	s.ingestingMu.Lock()
	s.ingesting[name]++
	s.ingestingMu.Unlock()
	defer func() {
		s.ingestingMu.Lock()
		if s.ingesting[name]--; s.ingesting[name] <= 0 {
			delete(s.ingesting, name)
		}
		s.ingestingMu.Unlock()
	}()

	mu := s.runMu.forName(name)
	mu.Lock()
	ls := s.live.Get(name)
	if ls == nil {
		switch recovered, err := live.Recover(s.st, name, s.streamSkel, s.live.Gauges()); {
		case err == nil:
			s.logf("server: recovered live stream %q at sequence %d", name, recovered.Seq())
			ls = recovered
			s.live.Put(name, ls)
		case errors.Is(err, fs.ErrNotExist):
			stored := s.runStored(name)
			mu.Unlock()
			if stored {
				writeErr(w, http.StatusConflict, "run %q is already finished", name)
			} else {
				writeErr(w, http.StatusNotFound, "no live stream for run %q", name)
			}
			return
		default:
			mu.Unlock()
			writeErr(w, http.StatusInternalServerError, "recovering stream %q: %v", name, err)
			return
		}
	}
	sess, err := ls.Finish(s.scheme)
	if err == nil {
		s.live.Remove(name)
		if s.cache.Invalidate(name) {
			// Same refresh-in-place as PUT: the run was resident, so
			// someone is querying it — hand them the sealed session.
			s.cache.Put(name, &session{Session: sess, namer: run.NewNamer(sess.Run)})
		}
	}
	seq := ls.Seq()
	mu.Unlock()
	if err != nil {
		// On any failure the session stays registered and appendable: an
		// incomplete stream continues, a store failure retries.
		var inc *live.IncompleteError
		if errors.As(err, &inc) {
			writeErr(w, http.StatusConflict, "cannot finish run %q: %v", name, inc.Err)
			return
		}
		s.brk.note(err)
		if store.IsTransient(err) {
			s.unavailable(w, "finishing run %q: %v", name, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "finishing run %q: %v", name, err)
		return
	}
	s.brk.note(nil)
	s.logf("server: finished streamed run %q (%d events, %d vertices)", name, seq, sess.Run.NumVertices())
	if s.maxRuns > 0 {
		if _, err := s.EnforceMaxRuns(s.maxRuns, name); err != nil {
			s.logf("server: retention sweep after finish %q: %v", name, err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":              name,
		"vertices":         sess.Run.NumVertices(),
		"edges":            sess.Run.NumEdges(),
		"events":           seq,
		"snapshot_version": sess.SnapshotVersion.String(),
		"snapshot_bytes":   sess.SnapshotBytes,
	})
}

// handleRunStatus answers GET /runs/{name} — the per-run twin of
// /runs?run=R, distinguishing live streams from finished runs.
func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	s.writeRunStatus(w, r.PathValue("name"))
}

// writeRunStatus writes one run's status: live-session progress while a
// stream is open, stored-run statistics once finished. Shared by
// GET /runs/{name} and the /runs?run=R detail branch.
func (s *Server) writeRunStatus(w http.ResponseWriter, name string) {
	ls, release, sess, ok := s.resolveRun(w, name)
	if !ok {
		return
	}
	if ls != nil {
		defer release()
		writeJSON(w, http.StatusOK, map[string]any{
			"run":             name,
			"status":          "live",
			"vertices":        ls.NumVertices(),
			"copies":          ls.NumCopies(),
			"events":          ls.Seq(),
			"renumbers":       ls.Renumbers(),
			"checkpoint_seq":  ls.CheckpointSeq(),
			"event_log_bytes": ls.EventLogBytes(),
		})
		return
	}
	items := 0
	if sess.Data != nil {
		items = len(sess.Data.Items)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"run":              name,
		"status":           "finished",
		"vertices":         sess.Run.NumVertices(),
		"edges":            sess.Run.NumEdges(),
		"data_items":       items,
		"max_label_bits":   sess.Labels.MaxLabelBits(),
		"avg_label_bits":   sess.Labels.AvgLabelBits(),
		"snapshot_version": sess.SnapshotVersion.String(),
		"snapshot_bytes":   sess.SnapshotBytes,
	})
}

// clearStreamState drops name's live session and durable stream state
// (event log + checkpoint), reporting whether any existed — so DELETE
// can abort a stream that was never finished (and so never stored) and
// still answer success. Callers hold the run's write lock.
func (s *Server) clearStreamState(name string) bool {
	had := s.live.Remove(name) != nil
	if rc, err := s.st.ReadRunEvents(name); err == nil {
		rc.Close()
		had = true
	}
	if rc, err := s.st.Backend().ReadMeta(live.CheckpointMeta(name)); err == nil {
		data, _ := io.ReadAll(rc)
		rc.Close()
		if len(data) > 0 {
			had = true
		}
	}
	// Cleanup failures are survivable — the store-wins rule deletes
	// stale stream state lazily — but a backend refusing deletes is an
	// operator-visible condition, not one to swallow.
	if err := s.st.DeleteRunEvents(name); err != nil {
		s.logf("server: clearing event log for %q: %v", name, err)
	}
	if err := s.st.Backend().WriteMeta(live.CheckpointMeta(name), nil); err != nil {
		s.logf("server: clearing checkpoint for %q: %v", name, err)
	}
	return had
}

// liveVertexToken resolves one /batch pair element against a live
// session, mirroring session.vertexToken: numeric elements are ID range
// checks, string elements resolve by name first.
func liveVertexToken(ls *live.Session, t vertexToken) (dag.VertexID, bool) {
	if t.id >= 0 {
		if t.id < ls.NumVertices() {
			return dag.VertexID(t.id), true
		}
		return 0, false
	}
	return ls.Vertex(string(t.raw))
}
