package server

import (
	"time"

	"repro/internal/live"
	"repro/internal/store"
)

// recover.go is the streaming path's proactive side: crash recovery at
// startup (instead of lazily on first touch) and an idle-TTL sweep that
// retires abandoned live sessions. Both reuse the lazy path's building
// blocks — live.Recover under the run's write lock, clearStreamState —
// so a run recovered eagerly is indistinguishable from one resurrected
// by its first query, and an expired stream leaves exactly as little
// behind as a DELETE.

// RecoverStreams eagerly rebuilds every live session that has durable
// stream state, so a restarted server answers its first query or append
// from memory instead of paying a replay on the request path. The scan
// is driven by the backend's event-log listing; for each log the lazy
// path's rules apply: a run that is also stored was finished (or
// overwritten by a PUT) before the crash cleaned its log, so the store
// wins and the stale stream state is deleted; anything else is
// recovered and registered. Per-run failures are logged and skipped —
// one corrupt log must not keep the server from coming up — and only a
// failure to list the logs at all is returned. provserve calls this
// before listening when started with -recover-at-start; it is exported
// so embedders can do the same.
func (s *Server) RecoverStreams() (recovered, cleaned int, err error) {
	if !s.stream {
		return 0, 0, nil
	}
	names, err := s.st.Backend().ListEventLogs()
	if err != nil {
		s.brk.note(err)
		return 0, 0, err
	}
	for _, name := range names {
		if store.ValidRunName(name) != nil {
			// Not a name this server could have written (the append path
			// validates first); leave foreign blobs alone.
			continue
		}
		mu := s.runMu.forName(name)
		mu.Lock()
		switch {
		case s.live.Get(name) != nil:
			// Already live — an append raced the scan and resurrected it.
		case s.runStored(name):
			// Finish persisted the run but crashed before cleaning the log
			// (or a PUT overwrote a streamed name). The stored run is the
			// acknowledged state; the leftover stream state is garbage.
			s.clearStreamState(name)
			cleaned++
			s.logf("server: startup recovery: run %q is stored, cleaned stale stream state", name)
		default:
			ls, rerr := live.Recover(s.st, name, s.streamSkel, s.live.Gauges())
			if rerr != nil {
				s.logf("server: startup recovery: stream %q: %v (left for lazy recovery)", name, rerr)
			} else {
				s.live.Put(name, ls)
				recovered++
				s.logf("server: startup recovery: stream %q live at sequence %d", name, ls.Seq())
			}
		}
		mu.Unlock()
	}
	return recovered, cleaned, nil
}

// SweepIdleStreams expires live sessions idle for at least ttl: the
// session, its event log and its checkpoint are dropped, exactly as a
// DELETE would — an abandoned stream (a client that crashed mid-run and
// never resumed) must not hold its labeler and history in memory
// forever. Activity is anything that touches the session: appends,
// finishes and queries all stamp it. Returns the expired run names;
// /healthz counts them cumulatively as streams_expired. provserve runs
// this on a ticker when started with -stream-ttl; it is exported for
// embedders with their own schedule.
func (s *Server) SweepIdleStreams(ttl time.Duration) []string {
	if !s.stream || ttl <= 0 {
		return nil
	}
	var expired []string
	for _, name := range s.live.Names() {
		mu := s.runMu.forName(name)
		mu.Lock()
		if ls := s.live.Get(name); ls != nil && time.Since(ls.LastActive()) >= ttl {
			s.clearStreamState(name)
			s.streamsExpired.Add(1)
			expired = append(expired, name)
			s.logf("server: expired idle stream %q (last active %s ago)",
				name, time.Since(ls.LastActive()).Round(time.Second))
		}
		mu.Unlock()
	}
	return expired
}
