package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// parseOK parses body into a fresh scratch, failing the test on error.
func parseOK(t *testing.T, body string, maxPairs int) *batchScratch {
	t.Helper()
	sc := getBatchScratch()
	t.Cleanup(sc.release)
	if err := parseBatchRequest([]byte(body), sc, maxPairs); err != nil {
		t.Fatalf("parse %q: %v", body, err)
	}
	return sc
}

func TestParseBatchRequestForms(t *testing.T) {
	cases := []struct {
		body string
		run  string
		want [][2]string // expected raw ref texts
	}{
		{`{"run":"r1","pairs":[["b1","c3"]]}`, "r1", [][2]string{{"b1", "c3"}}},
		{`{"run":"r1","pairs":[[12,34]]}`, "r1", [][2]string{{"12", "34"}}},
		{`{"run":"r1","pairs":[["12",34],[7,"c3"]]}`, "r1", [][2]string{{"12", "34"}, {"7", "c3"}}},
		{`{"pairs":[],"run":"r2"}`, "r2", nil},
		{` { "run" : "r1" , "pairs" : [ [ "a1" , 0 ] ] } `, "r1", [][2]string{{"a1", "0"}}},
		// Key order flipped: pairs before run.
		{`{"pairs":[["a1","b1"]],"run":"r9"}`, "r9", [][2]string{{"a1", "b1"}}},
		// Unknown keys (scalar, nested object, nested array) are skipped.
		{`{"run":"r1","debug":true,"opts":{"a":[1,{"b":null}],"s":"x,][}"},"n":-1.5e3,"pairs":[["a1","b2"]]}`,
			"r1", [][2]string{{"a1", "b2"}}},
		// Escapes decode: "b2" is "b2", "a\n" holds a newline.
		{`{"run":"r1","pairs":[["b2","a\n"]]}`, "r1", [][2]string{{"b2", "a\n"}}},
		// Unicode escapes decode, including a surrogate pair.
		{`{"run":"r\u0031","pairs":[["\ud83d\ude00","b1"]]}`, "r1", [][2]string{{"\U0001F600", "b1"}}},
	}
	for _, c := range cases {
		sc := parseOK(t, c.body, 100)
		if string(sc.run) != c.run {
			t.Errorf("%s: run = %q, want %q", c.body, sc.run, c.run)
		}
		if len(sc.tokens) != len(c.want) {
			t.Fatalf("%s: %d pairs, want %d", c.body, len(sc.tokens), len(c.want))
		}
		for i, w := range c.want {
			if string(sc.tokens[i][0].raw) != w[0] || string(sc.tokens[i][1].raw) != w[1] {
				t.Errorf("%s: pair %d = (%q,%q), want (%q,%q)", c.body, i,
					sc.tokens[i][0].raw, sc.tokens[i][1].raw, w[0], w[1])
			}
		}
	}
}

func TestParseBatchRequestNumericTokens(t *testing.T) {
	sc := parseOK(t, `{"run":"r","pairs":[[5,"7"]]}`, 10)
	if sc.tokens[0][0].id != 5 {
		t.Errorf("numeric element id = %d, want 5", sc.tokens[0][0].id)
	}
	if sc.tokens[0][1].id != -1 {
		t.Errorf("string element id = %d, want -1", sc.tokens[0][1].id)
	}
	// A numeric ID beyond int32 range parses but resolves to no vertex.
	sc2 := parseOK(t, `{"run":"r","pairs":[[99999999999999999999,1]]}`, 10)
	if sc2.tokens[0][0].id != math.MaxInt32 {
		t.Errorf("overflowed id = %d, want clamped out of VertexID range", sc2.tokens[0][0].id)
	}
}

// TestParseBatchRequestDuplicateKeys pins encoding/json's last-key-wins
// semantics for repeated keys.
func TestParseBatchRequestDuplicateKeys(t *testing.T) {
	sc := parseOK(t, `{"run":"a","pairs":[[1,2]],"run":"b","pairs":[[3,4],[5,6]]}`, 10)
	if string(sc.run) != "b" {
		t.Errorf("run = %q, want last value %q", sc.run, "b")
	}
	if len(sc.tokens) != 2 || string(sc.tokens[0][0].raw) != "3" {
		t.Errorf("tokens = %d pairs starting %q, want the last pairs value", len(sc.tokens), sc.tokens[0][0].raw)
	}
}

func TestParseBatchRequestErrors(t *testing.T) {
	bad := []string{
		``,
		`{`,
		`[1,2]`,
		`{"run":1,"pairs":[]}`,                 // run must be a string
		`{"run":"r","pairs":{"a":1}}`,          // pairs must be an array
		`{"run":"r","pairs":[["a"]]}`,          // one-element pair
		`{"run":"r","pairs":[["a","b","c"]]}`,  // three-element pair
		`{"run":"r","pairs":[[null,"b"]]}`,     // null element
		`{"run":"r","pairs":[[true,1]]}`,       // bool element
		`{"run":"r","pairs":[[-1,2]]}`,         // negative ID
		`{"run":"r","pairs":[[1.5,2]]}`,        // fractional ID
		`{"run":"r","pairs":[[1e3,2]]}`,        // exponent ID
		`{"run":"r","pairs":[["a","b"]]}extra`, // trailing garbage
		`{"run":"r" "pairs":[]}`,               // missing comma
		`{"run":"\uZZZZ","pairs":[]}`,          // bad \u escape
		`{"run":"r","pairs":[["a","b"]]`,       // unterminated
		`{"x":-,"run":"r","pairs":[[0,1]]}`,    // bare minus in skipped number
		`{"x":"\q","run":"r","pairs":[[0,1]]}`, // bad escape in skipped string
		strings.Repeat(`{"x":`, 100) + `1` + strings.Repeat(`}`, 100), // deep nesting in a skipped key
	}
	for _, body := range bad {
		sc := getBatchScratch()
		err := parseBatchRequest([]byte(body), sc, 100)
		sc.release()
		if err == nil {
			t.Errorf("parse %q: accepted malformed body", body)
		} else if errors.Is(err, errBatchTooLarge) {
			t.Errorf("parse %q: reported too-large instead of syntax error", body)
		}
	}
}

func TestParseBatchRequestTooLarge(t *testing.T) {
	sc := getBatchScratch()
	defer sc.release()
	err := parseBatchRequest([]byte(`{"run":"r","pairs":[[1,2],[3,4],[5,6]]}`), sc, 2)
	if !errors.Is(err, errBatchTooLarge) {
		t.Fatalf("err = %v, want errBatchTooLarge", err)
	}
}

func TestAppendBatchResponse(t *testing.T) {
	out := appendBatchResponse(nil, []byte("my-run.1"), []bool{true, false, true})
	var resp struct {
		Run     string `json:"run"`
		Count   int    `json:"count"`
		Results []bool `json:"results"`
	}
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatalf("response %q is not valid JSON: %v", out, err)
	}
	if resp.Run != "my-run.1" || resp.Count != 3 ||
		len(resp.Results) != 3 || !resp.Results[0] || resp.Results[1] || !resp.Results[2] {
		t.Fatalf("response = %+v", resp)
	}
	if !bytes.HasSuffix(out, []byte("\n")) {
		t.Error("response lost the trailing newline the json.Encoder used to emit")
	}
	// Empty results encode as an empty array, not null.
	if out := appendBatchResponse(nil, []byte("r"), nil); !bytes.Contains(out, []byte(`"results":[]`)) {
		t.Errorf("empty response = %q", out)
	}
}

// TestBatchScratchReuse pins pooling behavior: a scratch reused across
// requests must not leak state from the previous request.
func TestBatchScratchReuse(t *testing.T) {
	sc := getBatchScratch()
	if err := parseBatchRequest([]byte(`{"run":"first","pairs":[[1,2],[3,4]]}`), sc, 10); err != nil {
		t.Fatal(err)
	}
	sc.results = append(sc.results, true, true)
	sc.out = appendBatchResponse(sc.out, sc.run, sc.results)
	sc.release()

	sc2 := getBatchScratch()
	defer sc2.release()
	if len(sc2.tokens) != 0 || len(sc2.results) != 0 || len(sc2.out) != 0 || sc2.run != nil {
		t.Fatalf("reused scratch carries state: %d tokens, %d results, %d out bytes", len(sc2.tokens), len(sc2.results), len(sc2.out))
	}
	if err := parseBatchRequest([]byte(`{"run":"second","pairs":[["a1","b1"]]}`), sc2, 10); err != nil {
		t.Fatal(err)
	}
	if string(sc2.run) != "second" || len(sc2.tokens) != 1 {
		t.Fatalf("second parse: run=%q tokens=%d", sc2.run, len(sc2.tokens))
	}
}
