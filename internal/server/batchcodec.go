package server

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"repro/internal/dag"
)

// The /batch request and response codec. /batch is the serving hot path
// — a cache-hit request is pure CPU — and encoding/json costs it one
// reflection-driven allocation per decoded string plus an encoder
// allocation per response. This file replaces both directions with a
// hand-rolled codec over pooled buffers: the body is read into a reused
// buffer, pair references are parsed as byte slices into that buffer
// (resolved against the session's name index without string
// conversions), and the response is appended into a reused buffer and
// written in one call. A warm /batch request allocates O(1) regardless
// of batch size.
//
// The decoder accepts both pair element forms:
//
//	{"run":"r1","pairs":[["b2","c3"],["12","34"]]}   string refs
//	{"run":"r1","pairs":[[12,34],[7,"c3"]]}          numeric vertex IDs
//
// Unknown object keys are skipped, matching encoding/json.

// vertexToken is one parsed pair element: raw always holds the
// reference text for error messages; id >= 0 carries the value of a
// numeric (unquoted) element, id < 0 marks a string element to resolve
// by name first.
type vertexToken struct {
	raw []byte
	id  int
}

// batchScratch is the per-request scratch a pooled /batch request runs
// in. All slices are reused across requests; their capacity is bounded
// by the request body limit and the batch size limit.
type batchScratch struct {
	body    []byte
	run     []byte
	tokens  [][2]vertexToken
	pairs   [][2]dag.VertexID
	results []bool
	out     []byte
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch() *batchScratch {
	sc := batchScratchPool.Get().(*batchScratch)
	sc.body = sc.body[:0]
	sc.run = nil
	sc.tokens = sc.tokens[:0]
	sc.pairs = sc.pairs[:0]
	sc.results = sc.results[:0]
	sc.out = sc.out[:0]
	return sc
}

func (sc *batchScratch) release() { batchScratchPool.Put(sc) }

// readBody reads r into the scratch's reused body buffer.
func (sc *batchScratch) readBody(r io.Reader) error {
	buf := sc.body
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.body = buf
			return nil
		}
		if err != nil {
			sc.body = buf
			return err
		}
	}
}

// errBatchTooLarge signals more pairs than the server's limit; the
// handler maps it to 413.
var errBatchTooLarge = errors.New("too many pairs")

// batchSyntaxError is any malformed-body condition; the handler maps it
// to 400.
type batchSyntaxError struct {
	off int
	msg string
}

func (e *batchSyntaxError) Error() string {
	return fmt.Sprintf("invalid batch request at offset %d: %s", e.off, e.msg)
}

// jparser is a minimal JSON parser over the request bytes.
type jparser struct {
	data []byte
	pos  int
}

func (p *jparser) syntax(msg string) error { return &batchSyntaxError{off: p.pos, msg: msg} }

func (p *jparser) ws() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// eat consumes c if it is the next byte.
func (p *jparser) eat(c byte) bool {
	if p.pos < len(p.data) && p.data[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// parseBatchRequest decodes {"run":string,"pairs":[[ref,ref],...]} into
// sc.run and sc.tokens. Returns errBatchTooLarge once pairs exceed
// maxPairs, or a *batchSyntaxError for malformed input.
func parseBatchRequest(data []byte, sc *batchScratch, maxPairs int) error {
	p := &jparser{data: data}
	p.ws()
	if !p.eat('{') {
		return p.syntax("expected '{'")
	}
	p.ws()
	if !p.eat('}') {
		for {
			p.ws()
			key, err := p.str()
			if err != nil {
				return err
			}
			p.ws()
			if !p.eat(':') {
				return p.syntax("expected ':' after object key")
			}
			p.ws()
			switch string(key) {
			case "run":
				v, err := p.str()
				if err != nil {
					return err
				}
				sc.run = v
			case "pairs":
				if err := p.pairs(sc, maxPairs); err != nil {
					return err
				}
			default:
				if err := p.skipValue(0); err != nil {
					return err
				}
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				break
			}
			return p.syntax("expected ',' or '}'")
		}
	}
	p.ws()
	if p.pos != len(p.data) {
		return p.syntax("trailing data after request object")
	}
	return nil
}

// pairs parses the [[ref,ref],...] array into sc.tokens. Truncating
// first keeps encoding/json's last-key-wins semantics when "pairs"
// appears more than once.
func (p *jparser) pairs(sc *batchScratch, maxPairs int) error {
	sc.tokens = sc.tokens[:0]
	if !p.eat('[') {
		return p.syntax("pairs must be an array")
	}
	p.ws()
	if p.eat(']') {
		return nil
	}
	for {
		if len(sc.tokens) >= maxPairs {
			return errBatchTooLarge
		}
		p.ws()
		if !p.eat('[') {
			return p.syntax("each pair must be a two-element array")
		}
		var pair [2]vertexToken
		for k := 0; k < 2; k++ {
			p.ws()
			tok, err := p.vertexRef()
			if err != nil {
				return err
			}
			pair[k] = tok
			p.ws()
			if k == 0 && !p.eat(',') {
				return p.syntax("each pair must have two elements")
			}
		}
		if !p.eat(']') {
			return p.syntax("each pair must have exactly two elements")
		}
		sc.tokens = append(sc.tokens, pair)
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return nil
		}
		return p.syntax("expected ',' or ']' in pairs")
	}
}

// vertexRef parses one pair element: a string ("b2", "12") or a bare
// non-negative integer (12).
func (p *jparser) vertexRef() (vertexToken, error) {
	if p.pos >= len(p.data) {
		return vertexToken{}, p.syntax("truncated pair")
	}
	if p.data[p.pos] == '"' {
		s, err := p.str()
		if err != nil {
			return vertexToken{}, err
		}
		return vertexToken{raw: s, id: -1}, nil
	}
	start := p.pos
	n := 0
	for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
		if n < (math.MaxInt32-9)/10 {
			n = n*10 + int(p.data[p.pos]-'0')
		} else {
			// Out of dag.VertexID range: clamp so it resolves to
			// "unknown vertex", like any other nonexistent numeric ID.
			n = math.MaxInt32
		}
		p.pos++
	}
	if p.pos == start {
		return vertexToken{}, p.syntax("pair element must be a string or non-negative integer")
	}
	if p.pos < len(p.data) {
		switch p.data[p.pos] {
		case '.', 'e', 'E', '+', '-':
			return vertexToken{}, p.syntax("pair element must be an integer")
		}
	}
	return vertexToken{raw: p.data[start:p.pos], id: n}, nil
}

// str parses a JSON string and returns its bytes — a zero-copy subslice
// of the input when the string has no escapes, a decoded copy otherwise.
func (p *jparser) str() ([]byte, error) {
	if !p.eat('"') {
		return nil, p.syntax("expected string")
	}
	start := p.pos
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c == '"':
			s := p.data[start:p.pos]
			p.pos++
			return s, nil
		case c == '\\':
			return p.strEscaped(start)
		case c < 0x20:
			return nil, p.syntax("control character in string")
		default:
			p.pos++
		}
	}
	return nil, p.syntax("unterminated string")
}

// strEscaped finishes parsing a string containing escapes, decoding
// into a fresh buffer (the rare path: vertex names and run names are
// plain ASCII in practice).
func (p *jparser) strEscaped(start int) ([]byte, error) {
	out := append([]byte(nil), p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return out, nil
		case c < 0x20:
			return nil, p.syntax("control character in string")
		case c != '\\':
			out = append(out, c)
			p.pos++
		default:
			p.pos++
			if p.pos >= len(p.data) {
				return nil, p.syntax("truncated escape")
			}
			e := p.data[p.pos]
			p.pos++
			switch e {
			case '"', '\\', '/':
				out = append(out, e)
			case 'b':
				out = append(out, '\b')
			case 'f':
				out = append(out, '\f')
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case 'u':
				r, err := p.hex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					if p.pos+1 < len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
						p.pos += 2
						r2, err := p.hex4()
						if err != nil {
							return nil, err
						}
						r = utf16.DecodeRune(r, r2)
					} else {
						r = utf8.RuneError
					}
				}
				out = utf8.AppendRune(out, r)
			default:
				return nil, p.syntax("invalid escape")
			}
		}
	}
	return nil, p.syntax("unterminated string")
}

func (p *jparser) hex4() (rune, error) {
	if p.pos+4 > len(p.data) {
		return 0, p.syntax("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, p.syntax("invalid \\u escape")
		}
	}
	p.pos += 4
	return r, nil
}

// skipValue skips any JSON value (for unknown object keys).
func (p *jparser) skipValue(depth int) error {
	if depth > 64 {
		return p.syntax("value nested too deeply")
	}
	p.ws()
	if p.pos >= len(p.data) {
		return p.syntax("truncated value")
	}
	switch c := p.data[p.pos]; {
	case c == '"':
		// Full string parse (escapes validated) so malformed bodies are
		// rejected like encoding/json would, just with the value unused.
		_, err := p.str()
		return err
	case c == '{' || c == '[':
		open, closing := c, byte('}')
		if open == '[' {
			closing = ']'
		}
		p.pos++
		p.ws()
		if p.eat(closing) {
			return nil
		}
		for {
			if open == '{' {
				p.ws()
				if _, err := p.str(); err != nil {
					return err
				}
				p.ws()
				if !p.eat(':') {
					return p.syntax("expected ':' after object key")
				}
			}
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat(closing) {
				return nil
			}
			return p.syntax("expected ',' or close")
		}
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	case c == '-' || (c >= '0' && c <= '9'):
		digits := 0
		if c == '-' {
			p.pos++
		}
		for p.pos < len(p.data) {
			switch d := p.data[p.pos]; {
			case d >= '0' && d <= '9':
				digits++
				p.pos++
			case d == '.', d == 'e', d == 'E', d == '+', d == '-':
				p.pos++
			default:
				if digits == 0 {
					return p.syntax("invalid number")
				}
				return nil
			}
		}
		if digits == 0 {
			return p.syntax("invalid number")
		}
		return nil
	default:
		return p.syntax("unexpected character")
	}
}

func (p *jparser) lit(s string) error {
	if p.pos+len(s) > len(p.data) || string(p.data[p.pos:p.pos+len(s)]) != s {
		return p.syntax("invalid literal")
	}
	p.pos += len(s)
	return nil
}

// vertexToken resolves one parsed pair element against the session:
// numeric elements are plain ID range checks, string elements go
// through the same resolver the GET endpoints use.
func (se *session) vertexToken(t vertexToken) (dag.VertexID, bool) {
	if t.id >= 0 {
		if t.id < se.Run.NumVertices() {
			return dag.VertexID(t.id), true
		}
		return 0, false
	}
	return se.vertexBytes(t.raw)
}

// appendBatchResponse encodes {"run":...,"count":N,"results":[...]}
// into dst. Run names are validated to [A-Za-z0-9._-], so they embed in
// JSON without escaping.
func appendBatchResponse(dst []byte, run []byte, results []bool) []byte {
	dst = append(dst, `{"run":"`...)
	dst = append(dst, run...)
	dst = append(dst, `","count":`...)
	dst = strconv.AppendInt(dst, int64(len(results)), 10)
	dst = append(dst, `,"results":[`...)
	for i, r := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		if r {
			dst = append(dst, "true"...)
		} else {
			dst = append(dst, "false"...)
		}
	}
	// encoding/json's Encoder terminated the old responses with a
	// newline; keep emitting it for byte-compatibility.
	return append(dst, "]}\n"...)
}
